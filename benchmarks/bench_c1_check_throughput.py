"""EXP-C1 -- systematic checker throughput: executions/sec and POR yield.

Two claims, one per section:

**Throughput.**  Stateless re-execution is cheap enough for CI: the
bounded-exhaustive DFS explores the depth-6 schedule space of every
protocol's transfer scenario at tens of executions per wall-clock
second, and partial-order reduction prunes the large majority of the
raw schedule branches (messages to different destinations commute), so
the bounded space stays exhaustable within a small budget.

**Detection.**  The same budget that certifies the clean protocols
finds the §3.3 guard-disabled mutant (commit-before with L1 conflict
enforcement off) within a handful of executions and shrinks its
counterexample to at most 12 choices -- the checker earns its run time.
"""

import time

from repro.bench import format_table
from repro.check import (
    CHECK_PROTOCOLS,
    CheckSpec,
    enumerate_crash_points,
    explore,
    shrink_counterexample,
)

from benchmarks._common import run_once, save_result

DEPTH = 6
BUDGET = 200

#: Headline numbers of the last ``run_experiment`` call, recorded by
#: ``run_all.py`` in the per-bench JSON report.
METRICS: dict = {}


def measure_explore(protocol: str, granularity: str) -> dict:
    """One bounded-exhaustive DFS, timed."""
    spec = CheckSpec(protocol=protocol, granularity=granularity)
    start = time.perf_counter()
    report = explore(spec, depth=DEPTH, budget=BUDGET)
    elapsed = time.perf_counter() - start
    return {
        "protocol": f"{protocol}/{granularity}",
        "executions": report.executions,
        "choice_points": report.choice_points,
        "pruned": report.pruned,
        "exhausted": report.exhausted,
        "violations": report.violation_count,
        "exec_per_sec": report.executions / max(elapsed, 1e-9),
        "seconds": elapsed,
    }


def measure_mutant() -> dict:
    """Detect + shrink the guard-disabled mutant, timed."""
    spec = CheckSpec(
        protocol="before",
        granularity="per_action",
        workload="rw_cross",
        mutant="no_l1_guard",
    )
    start = time.perf_counter()
    report = explore(spec, depth=DEPTH, budget=BUDGET)
    detect_elapsed = time.perf_counter() - start
    assert report.counterexample is not None, "mutant must be caught"
    start = time.perf_counter()
    shrunk = shrink_counterexample(spec, report.counterexample.choices)
    shrink_elapsed = time.perf_counter() - start
    assert shrunk is not None
    return {
        "executions_to_violation": report.executions,
        "raw_choices": len(report.counterexample.choices),
        "shrunk_choices": len(shrunk),
        "detect_seconds": detect_elapsed,
        "shrink_seconds": shrink_elapsed,
    }


def measure_crash_boundaries(protocol: str, granularity: str) -> int:
    spec = CheckSpec(protocol=protocol, granularity=granularity)
    return len(enumerate_crash_points(spec))


def headline() -> dict:
    """Compact summary for BENCH_perf.json."""
    sweep = {}
    for protocol, granularity in CHECK_PROTOCOLS:
        row = measure_explore(protocol, granularity)
        raw_branches = row["choice_points"] + row["pruned"]
        sweep[row["protocol"]] = {
            "executions": row["executions"],
            "exec_per_sec": round(row["exec_per_sec"], 1),
            "pruned_by_por": row["pruned"],
            "por_prune_ratio": round(row["pruned"] / max(raw_branches, 1), 3),
            "exhausted": row["exhausted"],
            "violations": row["violations"],
        }
    mutant = measure_mutant()
    return {
        "scenario": (
            f"depth-{DEPTH} DFS, budget {BUDGET}, 2-site transfer scenario "
            "per protocol"
        ),
        "explore": sweep,
        "all_clean_exhausted": all(
            entry["exhausted"] and entry["violations"] == 0
            for entry in sweep.values()
        ),
        "mutant": {
            "executions_to_violation": mutant["executions_to_violation"],
            "shrunk_choices": mutant["shrunk_choices"],
        },
    }


def run_experiment() -> str:
    METRICS.clear()
    rows = []
    sweep = []
    for protocol, granularity in CHECK_PROTOCOLS:
        row = measure_explore(protocol, granularity)
        sweep.append(row)
        raw_branches = row["choice_points"] + row["pruned"]
        rows.append([
            row["protocol"], row["executions"], row["choice_points"],
            row["pruned"], f"{row['pruned'] / max(raw_branches, 1):.0%}",
            "yes" if row["exhausted"] else "no", row["violations"],
            round(row["exec_per_sec"], 1),
        ])
    table = format_table(
        ["protocol", "executions", "choice points", "POR-pruned",
         "prune ratio", "exhausted", "violations", "exec/s (wall)"],
        rows,
        title=f"EXP-C1a: depth-{DEPTH} bounded-exhaustive DFS, budget {BUDGET}",
    )

    boundary_rows = []
    for protocol, granularity in CHECK_PROTOCOLS:
        n_points = measure_crash_boundaries(protocol, granularity)
        boundary_rows.append([f"{protocol}/{granularity}", n_points])
    table += "\n\n" + format_table(
        ["protocol", "log-force boundaries"],
        boundary_rows,
        title="EXP-C1b: crash points discovered per traced baseline",
    )

    mutant = measure_mutant()
    table += "\n\n" + format_table(
        ["executions to violation", "raw choices", "shrunk choices",
         "detect s", "shrink s"],
        [[mutant["executions_to_violation"], mutant["raw_choices"],
          mutant["shrunk_choices"], round(mutant["detect_seconds"], 3),
          round(mutant["shrink_seconds"], 3)]],
        title="EXP-C1c: no_l1_guard mutant detection + shrinking",
    )

    # The tentpole claims, enforced.
    assert all(row["exhausted"] and row["violations"] == 0 for row in sweep), (
        "clean protocols must exhaust their bounded space without violations"
    )
    assert all(row["pruned"] > 0 for row in sweep), "POR must prune something"
    assert mutant["shrunk_choices"] <= 12, "counterexample must stay replayable-small"
    assert all(count > 0 for _proto, count in boundary_rows), (
        "every committing baseline must force site logs"
    )

    METRICS.update(
        exec_per_sec={row["protocol"]: round(row["exec_per_sec"], 1) for row in sweep},
        pruned={row["protocol"]: row["pruned"] for row in sweep},
        crash_boundaries={proto: count for proto, count in boundary_rows},
        mutant=dict(mutant),
    )
    return table


def test_c1_check_throughput(benchmark):
    save_result("c1_check_throughput", run_once(benchmark, run_experiment))
