"""EXP-T3 -- §4.3 claim 3: intended aborts favour commit-after.

Sweep the intended-abort probability.  Expected shape: under
commit-after an intended abort is nearly free (every local is still
running: a plain abort message suffices, no recovery work); under
commit-before every already-committed local must be undone by an
inverse transaction.  Commit-before+MLT remains *absolutely* faster
(short L0 transactions dominate), so the crossover shows up in the
*relative* cost: its completion rate degrades steeply with the abort
rate while commit-after's barely moves -- the §4.3 trade-off.
"""

from repro.bench import closed_loop, format_table, protocol_federation
from repro.integration.federation import SiteSpec
from repro.workloads import WorkloadGenerator, WorkloadSpec

from benchmarks._common import run_once, save_result

HORIZON = 900
ABORT_RATES = [0.0, 0.2, 0.5, 0.8]


def measure(protocol: str, granularity: str, abort_rate: float):
    specs = [
        SiteSpec(f"s{i}", tables={f"t{i}": {f"k{j}": 100 for j in range(8)}})
        for i in range(2)
    ]
    fed = protocol_federation(protocol, specs, granularity=granularity, seed=17)
    workload = WorkloadSpec(
        ops_per_txn=4,
        read_fraction=0.0,
        increment_fraction=1.0,
        hotspot_fraction=0.0,   # low contention isolates the abort cost
        intended_abort_rate=abort_rate,
    )
    generator = WorkloadGenerator(
        workload, [(f"t{i}", f"k{j}") for i in range(2) for j in range(8)]
    )
    return closed_loop(
        fed, generator.next_transaction, n_workers=4, horizon=HORIZON,
        label=f"{protocol}@{abort_rate}",
    )


def run_experiment() -> str:
    rows = []
    undo_work: dict[tuple[str, float], int] = {}
    completed: dict[tuple[str, float], float] = {}
    for protocol, granularity, label in [
        ("after", "per_site", "commit-after"),
        ("before", "per_action", "commit-before+MLT"),
    ]:
        for rate in ABORT_RATES:
            stats = measure(protocol, granularity, rate)
            total = stats.committed + stats.aborted
            undo_work[(label, rate)] = stats.undo_executions
            completed[(label, rate)] = total / HORIZON * 1000
            relative = completed[(label, rate)] / completed[(label, 0.0)]
            rows.append([
                label, rate, stats.committed, stats.aborted,
                stats.undo_executions,
                round(total / HORIZON * 1000, 2),
                round(relative, 3),
            ])
    table = format_table(
        ["protocol", "abort rate", "committed", "aborted", "undo txns",
         "completed/1k time", "vs own baseline"],
        rows,
        title="EXP-T3 (§4.3): intended-abort sweep -- who handles aborts better?",
    )
    # Shape: commit-after never runs inverse transactions for intended
    # aborts; commit-before's undo work grows with the abort rate.
    assert all(undo_work[("commit-after", r)] == 0 for r in ABORT_RATES)
    assert undo_work[("commit-before+MLT", 0.8)] > undo_work[("commit-before+MLT", 0.2)] > 0
    # Relative degradation: commit-after barely notices intended aborts;
    # commit-before pays for every one of them with inverse transactions.
    degradation_after = completed[("commit-after", 0.8)] / completed[("commit-after", 0.0)]
    degradation_before = (
        completed[("commit-before+MLT", 0.8)] / completed[("commit-before+MLT", 0.0)]
    )
    table += (
        f"\nrelative completion at 80% aborts: commit-after {degradation_after:.2f}, "
        f"commit-before+MLT {degradation_before:.2f} (paper: after handles intended aborts better)"
    )
    assert degradation_after > degradation_before
    return table


def test_t3_abort_sweep(benchmark):
    save_result("t3_abort_sweep", run_once(benchmark, run_experiment))
