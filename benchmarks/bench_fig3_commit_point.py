"""EXP-F3/F5/F7 -- Figures 3, 5 and 7: commit point vs. global decision.

The paper classifies the three protocols by where the local commit
point falls relative to the global decision:

* Figure 3 (2PC):        decision in the *middle* of local commitment
  (after ready, before committed);
* Figure 5 (commit-after):  decision *before* every local commit;
* Figure 7 (commit-before): decision *after* every local commit.

This benchmark measures the signed offsets (local event time minus
decision time) on an identical transfer and prints them side by side.
"""

from repro.bench import format_table
from repro.mlt.actions import increment

from benchmarks._common import build_fed, run_once, save_result, submit_and_run

TRANSFER = [increment("t0", "x", -10), increment("t1", "x", 10)]


def commit_offsets(protocol: str, granularity: str = "per_site"):
    fed = build_fed(protocol, granularity=granularity)
    submit_and_run(fed, TRANSFER)
    decision = fed.kernel.trace.first(category="gtxn_decision").time
    ready = [
        round(r.time - decision, 2)
        for r in fed.kernel.trace.select(category="txn_state")
        if r.details.get("state") == "ready"
    ]
    commits = [
        round(r.time - decision, 2)
        for r in fed.kernel.trace.select(category="txn_state")
        if r.details.get("state") == "committed" and r.details.get("gtxn")
    ]
    return ready, commits


def run_experiment() -> str:
    rows = []
    ready_2pc, commits_2pc = commit_offsets("2pc")
    rows.append(["2pc (Fig 3)", str(ready_2pc), str(commits_2pc), "ready < 0 < committed"])
    _, commits_after = commit_offsets("after")
    rows.append(["after (Fig 5)", "-", str(commits_after), "all > 0"])
    _, commits_before = commit_offsets("before", granularity="per_action")
    rows.append(["before (Fig 7)", "-", str(commits_before), "all <= 0"])

    table = format_table(
        ["protocol", "ready offsets", "local-commit offsets", "expected shape"],
        rows,
        title="EXP-F3/F5/F7: local commit points relative to the decision (time units)",
    )

    assert all(r < 0 for r in ready_2pc) and all(c > 0 for c in commits_2pc)
    assert all(c > 0 for c in commits_after)
    assert all(c <= 0 for c in commits_before)
    return table


def test_fig3_commit_point(benchmark):
    save_result("fig3_commit_point", run_once(benchmark, run_experiment))
