"""Wall-clock fast path: raw kernel and network throughput.

Unlike every other benchmark here, this one measures *host* time, not
simulated time: how many simulation events per wall-clock second the
kernel sustains, and how many messages per second the network moves.
The soak tests and the closed-loop experiments are bound by exactly
these two loops.

Measured on the pre-optimisation seed tree (same workload, same
machine class): ~610k events/s and ~228k messages/s.  The scheduler
rework (closure-free ``(fn, args)`` heap entries, ``__slots__``, the
inline delay fast path and lazy trace formatting) is expected to hold
>= 1.5x the events/s baseline; ``run_all.py`` records the measured
numbers in ``BENCH_perf.json``.
"""

import time

from repro.bench import format_table
from repro.net.message import Message
from repro.net.network import FixedLatency, Network
from repro.net.node import Node
from repro.sim.kernel import Kernel

from benchmarks._common import run_once, save_result

N_PROCS = 200
YIELDS_PER_PROC = 500
N_MESSAGES = 50_000

#: events/s of the unoptimised seed kernel on the same workload; kept
#: as a reference point for the speedup column.
SEED_EVENTS_PER_SEC = 610_000.0
SEED_MSGS_PER_SEC = 228_000.0


def measure_kernel() -> dict:
    """Pure scheduler loop: processes yielding bare delays."""
    kernel = Kernel(seed=1)
    kernel.trace.enabled = False

    def proc(offset: float):
        for _ in range(YIELDS_PER_PROC):
            yield offset

    for i in range(N_PROCS):
        kernel.spawn(proc(0.5 + (i % 7) * 0.25), name=f"p{i}")
    events = N_PROCS * YIELDS_PER_PROC
    start = time.perf_counter()
    kernel.run()
    elapsed = time.perf_counter() - start
    return {"events": events, "elapsed": elapsed, "rate": events / elapsed}


def measure_network() -> dict:
    """Send/deliver loop: unbatched star traffic, tracing off."""
    kernel = Kernel(seed=1)
    kernel.trace.enabled = False
    net = Network(kernel, latency=FixedLatency(1.0))
    net.add_node(Node(kernel, "central", is_central=True))
    net.add_node(Node(kernel, "site"))

    def sender():
        for i in range(N_MESSAGES):
            net.send(Message(kind="ping", sender="central", dest="site"))
            if i % 100 == 99:
                yield 1.0  # drain the heap periodically

    kernel.spawn(sender(), name="sender")
    start = time.perf_counter()
    kernel.run()
    elapsed = time.perf_counter() - start
    return {"events": N_MESSAGES, "elapsed": elapsed, "rate": N_MESSAGES / elapsed}


def run_experiment() -> str:
    # Warm up once, then keep the best of three: wall-clock measurements
    # on shared machines are noisy downwards, never upwards.
    measure_kernel()
    k = max((measure_kernel() for _ in range(3)), key=lambda m: m["rate"])
    n = max((measure_network() for _ in range(3)), key=lambda m: m["rate"])
    rows = [
        [
            "kernel events",
            k["events"],
            f"{k['elapsed']:.3f}s",
            f"{k['rate'] / 1e3:.0f}k/s",
            f"{k['rate'] / SEED_EVENTS_PER_SEC:.2f}x",
        ],
        [
            "network messages",
            n["events"],
            f"{n['elapsed']:.3f}s",
            f"{n['rate'] / 1e3:.0f}k/s",
            f"{n['rate'] / SEED_MSGS_PER_SEC:.2f}x",
        ],
    ]
    return format_table(
        ["loop", "count", "wall time", "throughput", "vs seed"],
        rows,
        title="Kernel/network wall-clock throughput (no trace sink)",
    )


def kernel_events_per_sec() -> float:
    """Best-of-three events/s for BENCH_perf.json (via run_all.py)."""
    measure_kernel()
    return max(measure_kernel()["rate"] for _ in range(3))


def test_kernel_wallclock(benchmark):
    save_result("kernel_wallclock", run_once(benchmark, run_experiment))
