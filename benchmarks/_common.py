"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one figure or derived table of the paper,
prints it, and stores it under ``benchmarks/results/`` so the numbers
quoted in EXPERIMENTS.md can be re-checked at any time.
"""

from __future__ import annotations

import pathlib

from repro.core.gtm import GTMConfig
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.core.protocols import preparable_protocols

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def build_fed(
    protocol: str,
    granularity: str = "per_site",
    seed: int = 7,
    n_sites: int = 2,
    log_placement: str = "indb",
    msg_timeout: float = 30.0,
    poll: float = 5.0,
    metrics: bool = False,
    spans: bool = False,
) -> Federation:
    """Two-site federation with one funded table per site.

    ``metrics=True`` attaches the observability registry (pull-based:
    the run itself is unaffected); ``spans=True`` additionally turns on
    log-force tracing so ``fed.obs.span_forest()`` yields full spans.
    """
    preparable = protocol in preparable_protocols()
    specs = [
        SiteSpec(f"s{i}", tables={f"t{i}": {"x": 100, "y": 50}}, preparable=preparable)
        for i in range(n_sites)
    ]
    return Federation(
        specs,
        FederationConfig(
            seed=seed,
            log_placement=log_placement,
            metrics=metrics,
            spans=spans,
            gtm=GTMConfig(
                protocol=protocol,
                granularity=granularity,
                msg_timeout=msg_timeout,
                status_poll_interval=poll,
            ),
        ),
    )


def submit_and_run(fed: Federation, operations, **kwargs):
    process = fed.submit(operations, **kwargs)
    fed.run()
    return process.value


def save_result(name: str, text: str) -> None:
    """Persist an experiment's rendered output."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def run_once(benchmark, fn):
    """Run a deterministic simulation experiment exactly once.

    Simulated time is independent of wall-clock time, so repeating the
    run only re-measures Python overhead; one round suffices.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
