"""EXP-F4 -- Figure 4: states and messages of local commitment after
the global decision, including the redo double-arrow.

An erroneous abort is injected into one site after its ready answer;
the regenerated event table must show: ready answer from the running
state, global commit decision, the local system abort, the redo
execution, and the committed valid final state.
"""

from repro.bench import format_table
from repro.faults import FaultInjector
from repro.mlt.actions import increment

from benchmarks._common import build_fed, run_once, save_result, submit_and_run


def run_experiment() -> str:
    fed = build_fed("after")
    FaultInjector(fed).erroneous_aborts_after_ready(1.0, sites=["s0"], delay=0.2)
    outcome = submit_and_run(fed, [increment("t0", "x", -10), increment("t1", "x", 10)])

    rows = []
    for record in fed.kernel.trace.records:
        if record.category == "gtxn_state":
            rows.append([f"{record.time:8.2f}", "global", record.details["state"]])
        elif record.category == "gtxn_decision":
            rows.append([f"{record.time:8.2f}", "global", f"DECISION={record.details['decision']}"])
        elif record.category == "message" and record.subject in ("prepare", "vote", "decide", "finished", "redo_subtxn", "redo_result"):
            rows.append([f"{record.time:8.2f}", "message", f"{record.subject}: {record.site} -> {record.details['dest']}"])
        elif record.category == "txn_state" and record.details.get("gtxn") and record.site == "s0":
            reason = record.details.get("reason")
            label = record.details["state"] + (f" ({reason})" if reason else "")
            rows.append([f"{record.time:8.2f}", "s0 local", label])
        elif record.category == "fault":
            rows.append([f"{record.time:8.2f}", "fault", record.details["kind"]])
        elif record.category == "redo":
            rows.append([f"{record.time:8.2f}", "redo", f"repeat subtxn at {record.details['at']}"])

    table = format_table(
        ["time", "actor", "event"], rows,
        title="EXP-F4 (Figure 4): commit-after with erroneous local abort and redo",
    )
    table += (
        f"\noutcome: committed={outcome.committed} "
        f"redo_executions={outcome.redo_executions} (paper: repetition until committed)"
    )
    assert outcome.committed and outcome.redo_executions == 1
    local_events = [r[2] for r in rows if r[1] == "s0 local"]
    assert "aborted (system)" in local_events
    assert local_events[-1] == "committed"
    return table


def test_fig4_commit_after(benchmark):
    save_result("fig4_commit_after", run_once(benchmark, run_experiment))
