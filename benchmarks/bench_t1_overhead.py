"""EXP-T1 -- derived table: per-protocol runtime overhead (§4.3).

Quantifies the paper's qualitative comparison on an identical, failure
free workload: messages, forced log writes, L1 lock operations, L0 lock
hold time and response time per committed global transaction.

Expected shape (§4.3): commit-after pays the most (extra concurrency
control *and* recovery components, locks to the global end); 2PC is
lean but needs modified TMs; commit-before + MLT adds no component
beyond the multi-level machinery and releases L0 locks earliest.
"""

import random

from repro.bench import format_table
from repro.mlt.actions import increment

from benchmarks._common import build_fed, run_once, save_result

N_TXNS = 10


def measure(protocol: str, granularity: str) -> dict:
    fed = build_fed(protocol, granularity=granularity, seed=11)
    rng = random.Random(5)
    outcomes = []
    for _ in range(N_TXNS):
        amount = rng.randint(1, 20)
        process = fed.submit(
            [increment("t0", "x", -amount), increment("t1", "x", amount)]
        )
        fed.run()  # strictly one transaction at a time: pure protocol cost
        outcomes.append(process.value)
    assert all(o.committed for o in outcomes)
    metrics = fed.metrics()
    per_txn = lambda v: v / N_TXNS  # noqa: E731 - local shorthand
    return {
        "messages": per_txn(metrics["network"]["sent"]),
        "log_forces": per_txn(metrics["totals"]["log_forces"]),
        "l1_grants": per_txn(fed.gtm.l1.grants if fed.gtm.l1 else 0),
        "l0_hold": per_txn(metrics["totals"]["lock_hold_time"]),
        "resp": sum(o.response_time for o in outcomes) / N_TXNS,
    }


def run_experiment() -> str:
    rows = []
    for protocol, granularity, label in [
        ("2pc", "per_site", "2PC (modified TMs)"),
        ("3pc", "per_site", "3PC (modified TMs)"),
        ("after", "per_site", "commit-after"),
        ("before", "per_site", "commit-before/site"),
        ("before", "per_action", "commit-before+MLT"),
        ("saga", "per_action", "saga (no global CC)"),
    ]:
        m = measure(protocol, granularity)
        rows.append([
            label, m["messages"], m["log_forces"], m["l1_grants"],
            m["l0_hold"], m["resp"],
        ])
    table = format_table(
        ["protocol", "msgs/txn", "log forces/txn", "L1 grants/txn",
         "L0 hold time/txn", "response time"],
        rows,
        title=f"EXP-T1 (§4.3): per-transaction overhead, {N_TXNS} sequential transfers, no failures",
    )
    by_label = {row[0]: row for row in rows}
    # Shape assertions from §4.3.
    assert by_label["2PC (modified TMs)"][1] <= by_label["commit-after"][1]      # fewer messages
    assert by_label["3PC (modified TMs)"][1] > by_label["2PC (modified TMs)"][1]  # extra round
    assert by_label["commit-before+MLT"][4] < by_label["commit-after"][4]        # early L0 release
    assert by_label["commit-before+MLT"][4] < by_label["2PC (modified TMs)"][4]
    return table


def test_t1_overhead(benchmark):
    save_result("t1_overhead", run_once(benchmark, run_experiment))
