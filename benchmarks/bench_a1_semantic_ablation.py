"""EXP-A1 -- ablation: semantic vs read/write L1 conflicts (§4.1, §6).

The VODAK motivation: "the usage of the commutativity of methods ...
gives us the ability to define less restrictive conflict relations
between operations than read/write conflicts."  Same commit-before+MLT
protocol, same hotspot increment workload -- only the L1 conflict table
changes.  Expected shape: the semantic table admits concurrent
increments on the hot objects; the read/write table serializes them.
"""

from repro.bench import closed_loop, format_table, protocol_federation
from repro.core.invariants import serializability_ok
from repro.integration.federation import SiteSpec
from repro.mlt.conflicts import READ_WRITE_TABLE, SEMANTIC_TABLE
from repro.workloads import WorkloadGenerator, WorkloadSpec

from benchmarks._common import run_once, save_result

HORIZON = 900


def measure(table):
    specs = [
        SiteSpec(f"s{i}", tables={f"t{i}": {f"k{j}": 100 for j in range(4)}})
        for i in range(2)
    ]
    fed = protocol_federation(
        "before", specs, granularity="per_action", seed=13, l1_table=table
    )
    workload = WorkloadSpec(
        ops_per_txn=3,
        read_fraction=0.0,
        increment_fraction=1.0,
        hotspot_fraction=0.9,
        hot_object_count=2,
    )
    generator = WorkloadGenerator(
        workload, [(f"t{i}", f"k{j}") for i in range(2) for j in range(4)]
    )
    stats = closed_loop(
        fed, generator.next_transaction, n_workers=6, horizon=HORIZON,
        label=table.name,
    )
    return stats, fed


def run_experiment() -> str:
    rows = []
    throughput = {}
    for table, label in [(SEMANTIC_TABLE, "semantic (commutativity)"),
                         (READ_WRITE_TABLE, "read/write (flat)")]:
        stats, fed = measure(table)
        throughput[label] = stats.throughput
        rows.append([
            label, stats.committed,
            round(stats.throughput * 1000, 2),
            round(stats.mean_response_time, 1),
            fed.gtm.l1.waits,
            round(fed.gtm.l1.total_wait_time, 1),
            "OK" if serializability_ok(fed) else "VIOLATED",
        ])
    table_text = format_table(
        ["L1 conflict table", "committed", "thr (txn/1k)", "mean resp",
         "L1 waits", "L1 wait time", "serializable"],
        rows,
        title="EXP-A1: commit-before+MLT with and without semantic conflicts",
    )
    gain = throughput["semantic (commutativity)"] / throughput["read/write (flat)"]
    table_text += f"\nsemantic-table gain: {gain:.2f}x on hotspot increments"
    assert gain > 1.2
    assert all(row[-1] == "OK" for row in rows)
    return table_text


def test_a1_semantic_ablation(benchmark):
    save_result("a1_semantic_ablation", run_once(benchmark, run_experiment))
