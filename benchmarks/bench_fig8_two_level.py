"""EXP-F8 -- Figure 8: two-level transactions on one site.

The paper's example: T1 and T2 increment objects x and y that share
page p.  Under the two-level scheme (L1 increment locks + short L0 page
transactions) the transactions overlap; under flat single-level
execution the page lock serializes them.  The benchmark runs N
concurrent increment transactions both ways and reports makespan, lock
waits and wait time.
"""

import random

from repro.bench import format_table
from repro.localdb.config import LocalDBConfig
from repro.mlt.manager import SingleLevelManager, TwoLevelManager
from repro.sim.kernel import Kernel
from repro.workloads.counters import build_counter_site, counter_transactions

from benchmarks._common import run_once, save_result

N_TXNS = 12
#: time between a transaction's actions (transaction logic, user
#: think time) -- held with page locks in the flat case, without any L0
#: locks in the two-level case.  This is where Figure 8's gain lives.
THINK_TIME = 4.0


def run_mode(two_level: bool) -> dict:
    kernel = Kernel(seed=8)
    engine, keys = build_counter_site(
        kernel, n_counters=2, same_page=True,
        config=LocalDBConfig(lock_timeout=None),
    )
    start = kernel.now
    txns = counter_transactions(random.Random(4), keys, N_TXNS, increments_per_txn=2)
    manager = (
        TwoLevelManager(kernel, engine)
        if two_level
        else SingleLevelManager(kernel, engine)
    )
    for index, operations in enumerate(txns):
        kernel.spawn(
            manager.run(f"T{index}", operations, think_time=THINK_TIME),
            name=f"T{index}",
        )
    kernel.run()
    makespan = kernel.now - start
    expected = {key: 0 for key in keys}
    for operations in txns:
        for op in operations:
            expected[op.key] += op.value

    def read_all():
        txn = engine.begin()
        values = {}
        for key in keys:
            values[key] = yield from engine.read(txn, "obj", key)
        yield from engine.commit(txn)
        return values

    proc = kernel.spawn(read_all())
    kernel.run()
    assert proc.value == expected, "increments lost!"
    return {
        "makespan": makespan,
        "lock_waits": engine.locks.waits,
        "wait_time": engine.locks.total_wait_time,
        "hold_time": engine.locks.total_hold_time,
    }


def run_experiment() -> str:
    flat = run_mode(two_level=False)
    multi = run_mode(two_level=True)
    rows = [
        ["single-level (flat)", flat["makespan"], flat["lock_waits"],
         flat["wait_time"], flat["hold_time"]],
        ["two-level (Figure 8)", multi["makespan"], multi["lock_waits"],
         multi["wait_time"], multi["hold_time"]],
    ]
    table = format_table(
        ["execution", "makespan", "L0 lock waits", "L0 wait time", "L0 hold time"],
        rows,
        title=f"EXP-F8 (Figure 8): {N_TXNS} concurrent increment txns, x and y on one page",
    )
    speedup = flat["makespan"] / multi["makespan"]
    table += f"\ntwo-level speedup: {speedup:.2f}x (paper: increased degree of concurrency)"
    assert multi["makespan"] < flat["makespan"]
    assert multi["wait_time"] < flat["wait_time"]
    return table


def test_fig8_two_level(benchmark):
    save_result("fig8_two_level", run_once(benchmark, run_experiment))
