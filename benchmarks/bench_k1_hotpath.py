"""EXP-K1 -- kernel hot path: calendar queue, pooling, trace fast path.

Wall-clock microbenchmarks for the event-loop rewrite, each aimed at
one mechanism:

* **same-slot frontier** -- hundreds of processes waking at identical
  timestamps.  The calendar queue drains a whole slot as one FIFO list
  (one heap pop per *distinct* timestamp); the seed kernel paid one
  heap sift per event.
* **timeout race** -- ``wait_with_timeout`` where the awaited future
  wins.  Exercises the pooled timeout timer: the losing timer is
  resolved early and its future recycled through the kernel free-list
  on the run loop's cancelled-skip path, so steady-state timeouts
  allocate nothing.
* **message ping** -- request/reply over the simulated network,
  tracing off: ``Message`` construction (handwritten ``__slots__``
  class), delivery scheduling and mailbox handoff.
* **federation 8-shard** -- the end-to-end hot path of
  ``bench_s1_sharded_gtm``: an 8-coordinator federation under the
  fixed-total-window open-loop load, trace off.

Run standalone for profiling::

    PYTHONPATH=src python benchmarks/bench_k1_hotpath.py --profile

``--profile`` reruns the federation scenario (the representative mix)
under ``cProfile``, prints the top functions by own-time, and saves
the raw stats to ``benchmarks/results/k1_hotpath.prof`` -- load it
with ``pstats``, ``snakeviz`` or ``flameprof`` for a flamegraph.
"""

from __future__ import annotations

import gc
import sys
import time

from repro.bench import format_table
from repro.net.message import Message
from repro.net.network import FixedLatency, Network
from repro.net.node import Node
from repro.sim.events import Future
from repro.sim.kernel import Kernel

from benchmarks._common import RESULTS_DIR, run_once, save_result

N_FRONTIER_PROCS = 400
#: Long enough (~0.25s) that one timed run amortises scheduler jitter;
#: the perf-smoke regression gate compares best-of-N runs of this.
FRONTIER_ROUNDS = 600
N_TIMEOUT_RACES = 30_000
N_PINGS = 25_000

#: Per-scenario repetitions; wall-clock noise is one-sided (slow
#: machine moments), so each scenario keeps its best run.
BEST_OF = 3

#: Headline numbers of the last ``run_experiment`` call (run_all.py).
METRICS: dict = {}


def measure_frontier() -> dict:
    """Many processes waking at the same instants: slot-drain dispatch."""
    kernel = Kernel(seed=1)
    kernel.trace.enabled = False

    def proc():
        for _ in range(FRONTIER_ROUNDS):
            yield 1.0  # every process lands in the same 1.0-spaced slot

    for i in range(N_FRONTIER_PROCS):
        kernel.spawn(proc(), name=f"f{i}")
    start = time.perf_counter()
    kernel.run()
    elapsed = time.perf_counter() - start
    events = kernel.events_dispatched
    return {"events": events, "elapsed": elapsed, "rate": events / elapsed}


def measure_timeout_race() -> dict:
    """wait_with_timeout won by the future: pooled-timer recycling."""
    kernel = Kernel(seed=1)
    kernel.trace.enabled = False

    def proc():
        for _ in range(N_TIMEOUT_RACES):
            future = Future(label="work")
            kernel.call_at(kernel.now + 1.0, future.resolve, None)
            ok, _value = yield from kernel.wait_with_timeout(future, timeout=10.0)
            assert ok

    kernel.spawn(proc(), name="racer")
    start = time.perf_counter()
    kernel.run()
    elapsed = time.perf_counter() - start
    events = kernel.events_dispatched
    return {"events": events, "elapsed": elapsed, "rate": events / elapsed}


def measure_message_ping() -> dict:
    """Request/reply over the network, trace off."""
    kernel = Kernel(seed=1)
    kernel.trace.enabled = False
    net = Network(kernel, latency=FixedLatency(1.0))
    central = Node(kernel, "central", is_central=True)
    site = Node(kernel, "site")
    net.add_node(central)
    net.add_node(site)

    def echo():
        while True:
            message = yield from site.recv()
            if message.kind == "stop":
                return
            net.send(message.reply("pong"))

    def pinger():
        for _ in range(N_PINGS):
            net.send(Message(kind="ping", sender="central", dest="site"))
            yield from central.recv()
        net.send(Message(kind="stop", sender="central", dest="site"))

    kernel.spawn(echo(), name="echo")
    kernel.spawn(pinger(), name="pinger")
    start = time.perf_counter()
    kernel.run()
    elapsed = time.perf_counter() - start
    events = kernel.events_dispatched
    return {"events": events, "elapsed": elapsed, "rate": events / elapsed}


def _federation_run():
    """One 8-coordinator fixed-window open-loop run (trace off)."""
    from benchmarks.bench_s1_sharded_gtm import (
        ARRIVAL_RATE,
        N_TXNS,
        TOTAL_WINDOW,
        build_sharded,
        traffic,
    )
    from repro.workloads.open_loop import OpenLoopDriver, OpenLoopSpec

    fed = build_sharded("2pc", "per_site", coordinators=8)
    fed.kernel.trace.enabled = False
    driver = OpenLoopDriver(
        fed,
        OpenLoopSpec(
            arrival_rate=ARRIVAL_RATE,
            n_txns=N_TXNS,
            window_per_coordinator=TOTAL_WINDOW // 8,
        ),
    )
    batches = traffic(N_TXNS)
    start = time.perf_counter()
    driver.run(batches)
    elapsed = time.perf_counter() - start
    return fed.kernel.events_dispatched, elapsed


def measure_federation() -> dict:
    events, elapsed = _federation_run()
    return {"events": events, "elapsed": elapsed, "rate": events / elapsed}


SCENARIOS = [
    ("same-slot frontier", measure_frontier),
    ("timeout race (pooled)", measure_timeout_race),
    ("message ping", measure_message_ping),
    ("federation 8-shard", measure_federation),
]


def _best_of(measure) -> dict:
    gc.collect()
    gc.disable()
    try:
        measure()  # warm-up
        return max((measure() for _ in range(BEST_OF)), key=lambda m: m["rate"])
    finally:
        gc.enable()


def run_experiment() -> str:
    METRICS.clear()
    rows = []
    for label, measure in SCENARIOS:
        best = _best_of(measure)
        METRICS[label.replace(" ", "_")] = round(best["rate"])
        rows.append([
            label,
            best["events"],
            f"{best['elapsed'] * 1000.0:.1f}ms",
            f"{best['rate'] / 1e3:.0f}k/s",
        ])
    return format_table(
        ["scenario", "events dispatched", "best wall", "events/s"],
        rows,
        title=f"EXP-K1: kernel hot-path throughput (trace off, best of {BEST_OF})",
    )


def profile_federation(top: int = 25) -> str:
    """cProfile the federation scenario; stats file + own-time table."""
    import cProfile
    import io
    import pstats

    gc.collect()
    gc.disable()
    profiler = cProfile.Profile()
    try:
        profiler.enable()
        _federation_run()
        profiler.disable()
    finally:
        gc.enable()
    RESULTS_DIR.mkdir(exist_ok=True)
    stats_path = RESULTS_DIR / "k1_hotpath.prof"
    profiler.dump_stats(stats_path)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("tottime").print_stats(top)
    return (
        f"profile written to {stats_path} "
        f"(pstats / snakeviz / flameprof compatible)\n\n" + buffer.getvalue()
    )


def hotpath_headline() -> dict:
    """The BENCH_perf.json "kernel_hotpath" section (runs if needed)."""
    if not METRICS:
        run_experiment()
    return dict(METRICS)


def test_k1_hotpath(benchmark):
    save_result("k1_hotpath", run_once(benchmark, run_experiment))


if __name__ == "__main__":
    print(run_experiment())
    if "--profile" in sys.argv:
        print()
        print(profile_federation())
