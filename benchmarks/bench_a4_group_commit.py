"""EXP-A4 -- extension: group commit at the local engines.

The commit-before + multi-level configuration pays one forced log write
per action (EXP-T1's honest nuance).  Group commit amortizes those
forces: concurrent short L0 transactions at a site share one disk
write.  The sweep varies the gathering window and reports forces per
committed action, throughput and response time of the federation.
"""

from repro.bench import closed_loop, format_table
from repro.core.gtm import GTMConfig
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.localdb.config import LocalDBConfig
from repro.storage.disk import StorageConfig
from repro.workloads import WorkloadGenerator, WorkloadSpec

from benchmarks._common import run_once, save_result

HORIZON = 700
WINDOWS = [0.0, 0.5, 1.0, 2.0]
#: a slow log device -- the regime group commit was invented for
SLOW_FORCE = 5.0


def measure(window: float, force_time: float = 1.0):
    config = LocalDBConfig(
        group_commit_window=window,
        storage=StorageConfig(log_force_time=force_time),
    )
    fed = Federation(
        [
            SiteSpec(f"s{i}", tables={f"t{i}": {f"k{j}": 100 for j in range(6)}},
                     config=config)
            for i in range(2)
        ],
        FederationConfig(
            seed=23,
            gtm=GTMConfig(protocol="before", granularity="per_action"),
        ),
    )
    workload = WorkloadSpec(
        ops_per_txn=3, read_fraction=0.0, increment_fraction=1.0,
        hotspot_fraction=0.0,
    )
    generator = WorkloadGenerator(
        workload, [(f"t{i}", f"k{j}") for i in range(2) for j in range(6)]
    )
    stats = closed_loop(
        fed, generator.next_transaction, n_workers=8, horizon=HORIZON,
        label=f"window={window}",
    )
    forces = sum(e.disk.log_forces for e in fed.engines.values())
    commits = sum(e.commits for e in fed.engines.values())
    return stats, forces, commits


def run_experiment() -> str:
    rows = []
    results = {}
    for force_time, device in [(1.0, "fast log"), (SLOW_FORCE, "slow log")]:
        for window in WINDOWS:
            stats, forces, commits = measure(window, force_time)
            per_commit = forces / max(1, commits)
            results[(device, window)] = {
                "per_commit": per_commit, "thr": stats.throughput,
            }
            rows.append([
                device, window, commits, forces,
                round(per_commit, 3),
                round(stats.throughput * 1000, 2),
                round(stats.mean_response_time, 1),
            ])
    table = format_table(
        ["log device", "window", "local commits", "log forces",
         "forces/local commit", "thr (txn/1k)", "mean resp"],
        rows,
        title="EXP-A4: group commit window sweep, commit-before+MLT, 8 workers",
    )
    # Group commit always cuts forces per commit...
    assert results[("fast log", 2.0)]["per_commit"] < results[("fast log", 0.0)]["per_commit"] * 0.75
    assert results[("slow log", 2.0)]["per_commit"] < results[("slow log", 0.0)]["per_commit"] * 0.75
    # ...but only pays in throughput when forces are expensive relative
    # to the window: on the slow device some window beats window=0.
    slow_base = results[("slow log", 0.0)]["thr"]
    best_slow = max(results[("slow log", w)]["thr"] for w in WINDOWS if w > 0)
    assert best_slow > slow_base
    table += (
        "\ngroup commit cuts forces everywhere but wins throughput only on the "
        "slow log device -- the classic latency-vs-force trade."
    )
    return table


def test_a4_group_commit(benchmark):
    save_result("a4_group_commit", run_once(benchmark, run_experiment))
