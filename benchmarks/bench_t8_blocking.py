"""EXP-T8 -- the blocking window ([Ske 81]'s motivation, §5).

Between voting ready and receiving the decision, a 2PC participant is
*blocked*: it holds all its locks and can do nothing about it.  If the
coordinator stalls (network hiccup, overload), local data stays locked
for the whole stall.  Commit-before has no such window: the locals are
already committed and their locks released, whatever the coordinator
does.

The experiment stalls the coordinator for ``STALL`` time units between
the vote and the decision (by delaying the decision message) and
measures how long a purely local transaction at the participant must
wait for a lock the global transaction holds.
"""

from repro.bench import format_table
from repro.errors import TransactionAborted
from repro.mlt.actions import increment

from benchmarks._common import build_fed, run_once, save_result

STALL = 60.0


def measure(protocol: str, granularity: str) -> dict:
    fed = build_fed(protocol, granularity=granularity)
    engine = fed.engines["s0"]
    engine.config.lock_timeout = None
    engine.locks.default_timeout = None

    # Stall the coordinator: every decide/finish leaves STALL late.
    original_send = fed.central_comm.send
    original_request = fed.central_comm.request

    def stalled_request(site, kind, gtxn_id=None, timeout=None, **payload):
        if kind in ("decide", "finish_subtxn", "prepare") and kind != "prepare":
            yield STALL
        reply = yield from original_request(
            site, kind, gtxn_id=gtxn_id, timeout=timeout, **payload
        )
        return reply

    fed.central_comm.request = stalled_request

    process = fed.submit([increment("t0", "x", 1), increment("t1", "x", 1)])

    waited = {}

    def local_probe():
        # A purely local transaction wanting the same object, arriving
        # right after the global transaction executed its s0 action.
        yield 5.0
        txn = engine.begin()
        start = fed.kernel.now
        try:
            yield from engine.increment(txn, "t0", "x", 1)
            yield from engine.commit(txn)
            waited["time"] = fed.kernel.now - start
        except TransactionAborted:
            waited["time"] = float("inf")

    fed.kernel.spawn(local_probe())
    fed.run()
    assert process.value.committed
    return {"local_wait": waited["time"], "gtxn_resp": process.value.response_time}


def run_experiment() -> str:
    rows = []
    results = {}
    for protocol, granularity, label in [
        ("2pc", "per_site", "2PC (blocked while coordinator stalls)"),
        ("after", "per_site", "commit-after (same window)"),
        ("before", "per_action", "commit-before+MLT (no window)"),
    ]:
        m = measure(protocol, granularity)
        results[label] = m
        rows.append([label, round(m["local_wait"], 1), round(m["gtxn_resp"], 1)])
    table = format_table(
        ["protocol", "local txn lock wait", "global txn response"],
        rows,
        title=f"EXP-T8 ([Ske 81]): coordinator stalled {STALL} units between vote and decision",
    )
    blocked = results["2PC (blocked while coordinator stalls)"]["local_wait"]
    free = results["commit-before+MLT (no window)"]["local_wait"]
    assert blocked > STALL * 0.8          # the local waits out the stall
    assert free < STALL * 0.2             # commit-before: no blocking window
    table += (
        f"\nblocking window: 2PC local wait {blocked:.1f} vs commit-before {free:.1f} "
        "(paper/[Ske 81]: participants block on a silent coordinator; "
        "commit-before locals are already committed)"
    )
    return table


def test_t8_blocking(benchmark):
    save_result("t8_blocking", run_once(benchmark, run_experiment))
