"""EXP-A3 -- extension: optimizing inverse transactions.

§4.1 ends with "Optimizing the execution of inverse actions is not
considered in this paper."  This extension implements the two safe
collapses (netting increments, dead-write elimination) and measures the
saving on aborting transactions that touch the same objects repeatedly.
"""

import random

from repro.bench import format_table
from repro.core.gtm import GTMConfig
from repro.core.invariants import atomicity_report
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment, write

from benchmarks._common import run_once, save_result

N_TXNS = 6
OPS_PER_TXN = 8


def build(optimize: bool) -> Federation:
    return Federation(
        [SiteSpec("s0", tables={"t0": {"x": 1000, "y": 1000}})],
        FederationConfig(
            seed=6,
            gtm=GTMConfig(
                protocol="before", granularity="per_site", optimize_undo=optimize
            ),
        ),
    )


def measure(optimize: bool) -> dict:
    fed = build(optimize)
    rng = random.Random(2)
    ops_before = None
    for index in range(N_TXNS):
        # Many repeated touches of the same two objects, then abort.
        operations = [
            increment("t0", rng.choice(["x", "y"]), rng.randint(1, 5))
            for _ in range(OPS_PER_TXN)
        ]
        process = fed.submit(operations, intends_abort=True)
        fed.run()
        assert not process.value.committed
    assert fed.peek("s0", "t0", "x") == 1000
    assert fed.peek("s0", "t0", "y") == 1000
    assert atomicity_report(fed).ok
    engine = fed.engines["s0"]
    # Inverse work = operations executed by the !undo transactions.
    undo_ops = sum(
        1
        for record in engine.op_history
        if record.gtxn_id and record.gtxn_id.endswith("!undo")
        and record.table == "t0"
    )
    return {
        "undo_ops": undo_ops,
        "total_ops": engine.ops,
        "log_records": engine.log.appended,
    }


def run_experiment() -> str:
    plain = measure(optimize=False)
    optimized = measure(optimize=True)
    rows = [
        ["reverse-order inverses (paper)", plain["undo_ops"],
         plain["total_ops"], plain["log_records"]],
        ["optimized inverses (extension)", optimized["undo_ops"],
         optimized["total_ops"], optimized["log_records"]],
    ]
    table = format_table(
        ["undo strategy", "inverse data ops", "total engine ops", "log records"],
        rows,
        title=(
            f"EXP-A3: {N_TXNS} aborting transactions x {OPS_PER_TXN} increments "
            "over two hot objects"
        ),
    )
    saving = 1 - optimized["undo_ops"] / plain["undo_ops"]
    table += f"\ninverse-work saving: {saving:.0%} (same restored state, audited)"
    assert optimized["undo_ops"] < plain["undo_ops"]
    return table


def test_a3_undo_optimizer(benchmark):
    save_result("a3_undo_optimizer", run_once(benchmark, run_experiment))
