"""EXP-S1 -- sharded commit coordination: throughput and failover.

Three claims, one per section:

**Scaling.**  Under an open-loop Poisson load with a bounded
per-coordinator admission window, committed-transaction throughput
rises monotonically with the number of coordinator shards (1 -> 8) and
the p99 arrival-to-commit response falls: the single central GTM of
the paper's Fig. 1 is the scalability wall, and sharding the
coordinator role removes it without touching the protocols.

**Failover.**  For every commit protocol, a run with ``coordinators=4``
that loses one coordinator mid-traffic ends with zero unresolved
in-doubt transactions and the invariants intact: the failover peer
resolves the crashed shard's in-flight transactions from the shared
decision/redo/undo logs (hardened-commit redrive, presumed abort, §3.2
redo, commit-before undo redrive).

**Kernel hot path.**  Holding the *total* offered concurrency fixed
(``TOTAL_WINDOW`` slots split evenly across shards), the simulator
dispatches events at a wall-clock rate that does not fall as the
coordinator pool widens.  The seed tree lost ~40% of its events/s
going 1 -> 8 shards (the "8-coordinator cliff"); the calendar-queue
kernel keeps the per-event cost flat.  Measurement discipline, because
wall-clock numbers on a shared machine are noisy:

* the *simulation* is deterministic, so the event count per config is
  exact; only the wall time is measured;
* the trace sink is off and ``gc`` is disabled around each timed run
  (collector pauses otherwise land on arbitrary configs);
* configs are timed in interleaved round-robin order and each config
  keeps its *best* wall time, so slow machine moments cannot
  systematically penalise one config;
* rounds are added (up to a cap) until the rate curve is
  non-decreasing, and the final assertion allows ``NOISE_TOLERANCE``
  slack -- the true curve is flat-to-rising, and residual run-to-run
  noise on this quantity is a few percent.
"""

import gc
import time

from repro.bench import format_table
from repro.core.gtm import GTMConfig
from repro.core.invariants import atomicity_report, serializability_ok
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import Operation
from repro.workloads.open_loop import OpenLoopDriver, OpenLoopSpec
from repro.core.protocols import preparable_protocols

from benchmarks._common import run_once, save_result

COORDINATOR_SWEEP = [1, 2, 4, 8]
N_SITES = 4
#: One key per transaction (and 64 hash buckets per table): the sweep
#: measures coordination capacity, not page-lock contention.
N_KEYS = 160
N_BUCKETS = 64
N_TXNS = 160
ARRIVAL_RATE = 1.5          # arrivals per time unit: saturates a 1-shard window
WINDOW_PER_COORDINATOR = 6

#: Fixed total admission window for the hot-path sweep: every config
#: runs the *same* offered load (48 slots split across shards), so
#: events/s compares like for like instead of rewarding wide pools
#: with more concurrent work.
TOTAL_WINDOW = 48
#: Interleaved measurement rounds: minimum before checking the curve,
#: and the cap when extending to ride out machine noise.
HOTPATH_MIN_ROUNDS = 4
HOTPATH_MAX_ROUNDS = 10
#: Relative slack allowed in the non-decreasing assertion; wall-clock
#: noise on the best-of-N rate is a few percent on a busy machine.
NOISE_TOLERANCE = 0.05
#: Acceptance floor for the 8-shard rate (seed tree: ~27k events/s).
MIN_EVENTS_PER_SEC_8 = 110_000.0

CRASH_PROTOCOLS = [
    ("2pc", "per_site"),
    ("2pc-pa", "per_site"),
    ("3pc", "per_site"),
    ("after", "per_site"),
    ("before", "per_action"),
]

#: Headline numbers of the last ``run_experiment`` call, recorded by
#: ``run_all.py`` in the per-bench JSON report.
METRICS: dict = {}

#: Hot-path sweep result, cached so ``headline()`` (called again by
#: ``run_all.headline_numbers``) does not redo ~20s of timing.
_HOTPATH_CACHE: list[dict] = []


def build_sharded(
    protocol: str, granularity: str, coordinators: int, seed: int = 7
) -> Federation:
    preparable = protocol in preparable_protocols()
    specs = [
        SiteSpec(
            f"s{i}",
            tables={f"t{i}": {f"k{k}": 100 for k in range(N_KEYS)}},
            preparable=preparable,
            buckets=N_BUCKETS,
        )
        for i in range(N_SITES)
    ]
    return Federation(
        specs,
        FederationConfig(
            seed=seed,
            coordinators=coordinators,
            gtm=GTMConfig(protocol=protocol, granularity=granularity),
        ),
    )


def traffic(n_txns: int) -> list[dict]:
    """Low-contention transfer mix: each txn touches two sites."""
    batches = []
    for n in range(n_txns):
        src = n % N_SITES
        dst = (n + 1) % N_SITES
        key = f"k{n % N_KEYS}"
        batches.append({
            "operations": [
                Operation("increment", f"t{src}", key, -1),
                Operation("increment", f"t{dst}", key, 1),
            ],
        })
    return batches


def measure_scaling(coordinators: int) -> dict:
    """One open-loop run at a given pool width (trace on, full audit)."""
    fed = build_sharded("2pc", "per_site", coordinators)
    driver = OpenLoopDriver(
        fed,
        OpenLoopSpec(
            arrival_rate=ARRIVAL_RATE,
            n_txns=N_TXNS,
            window_per_coordinator=WINDOW_PER_COORDINATOR,
        ),
    )
    result = driver.run(traffic(N_TXNS))
    assert result.committed + result.aborted == N_TXNS
    assert atomicity_report(fed).ok
    return {
        "coordinators": coordinators,
        "committed": result.committed,
        "throughput": result.throughput,
        "p50": result.p50,
        "p99": result.p99,
        "max_queue": result.max_queue_depth,
        "queue_wait": result.total_queue_wait,
        "makespan": result.makespan,
    }


def _hotpath_once(coordinators: int) -> tuple[int, float]:
    """One timed run at fixed total offered load; (events, wall seconds)."""
    fed = build_sharded("2pc", "per_site", coordinators)
    fed.kernel.trace.enabled = False
    driver = OpenLoopDriver(
        fed,
        OpenLoopSpec(
            arrival_rate=ARRIVAL_RATE,
            n_txns=N_TXNS,
            window_per_coordinator=TOTAL_WINDOW // coordinators,
        ),
    )
    batches = traffic(N_TXNS)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        result = driver.run(batches)
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    assert result.committed + result.aborted == N_TXNS
    return fed.kernel.events_dispatched, elapsed


def measure_hotpath() -> list[dict]:
    """Interleaved best-of-N events/s sweep at fixed offered load."""
    if _HOTPATH_CACHE:
        return _HOTPATH_CACHE
    events: dict[int, int] = {}
    best: dict[int, float] = {n: float("inf") for n in COORDINATOR_SWEEP}
    rounds = 0
    while rounds < HOTPATH_MAX_ROUNDS:
        for n in COORDINATOR_SWEEP:
            dispatched, wall = _hotpath_once(n)
            events[n] = dispatched  # deterministic: identical every round
            if wall < best[n]:
                best[n] = wall
        rounds += 1
        if rounds >= HOTPATH_MIN_ROUNDS:
            rates = [events[n] / best[n] for n in COORDINATOR_SWEEP]
            if all(b >= a for a, b in zip(rates, rates[1:])):
                break
    base_rate = events[COORDINATOR_SWEEP[0]] / best[COORDINATOR_SWEEP[0]]
    for n in COORDINATOR_SWEEP:
        rate = events[n] / best[n]
        _HOTPATH_CACHE.append({
            "coordinators": n,
            "window": TOTAL_WINDOW // n,
            "events": events[n],
            "best_wall_ms": best[n] * 1000.0,
            "events_per_sec": rate,
            "vs_1_shard": rate / base_rate,
            "rounds": rounds,
        })
    return _HOTPATH_CACHE


def measure_failover(protocol: str, granularity: str) -> dict:
    """Coordinator crash mid-traffic: everything must resolve."""
    fed = build_sharded(protocol, granularity, coordinators=4)
    driver = OpenLoopDriver(
        fed,
        OpenLoopSpec(
            arrival_rate=0.5,
            n_txns=60,
            window_per_coordinator=WINDOW_PER_COORDINATOR,
        ),
    )
    fed.crash_coordinator(1, at=40.0)
    fed.crash_coordinator(2, at=55.0)
    fed.restart_coordinator(1, at=320.0)
    fed.restart_coordinator(2, at=340.0)
    result = driver.run(traffic(60))
    fed.run()  # drain failover + recovery stragglers
    unresolved = fed.pool.unresolved_orphans()
    return {
        "protocol": f"{protocol}/{granularity}",
        "committed": result.committed,
        "aborted": result.aborted,
        "interrupted": result.interrupted,
        "failovers": fed.pool.failovers_started,
        "rerouted": fed.pool.metrics()["submissions_rerouted"],
        "unresolved_indoubt": len(unresolved),
        "atomicity_ok": atomicity_report(fed).ok,
        "serializable": serializability_ok(fed),
    }


def headline() -> dict:
    """Compact summary for BENCH_perf.json."""
    scaling = {}
    for n in COORDINATOR_SWEEP:
        row = measure_scaling(n)
        scaling[str(n)] = {
            "committed": row["committed"],
            "throughput": round(row["throughput"], 4),
            "p99_response": round(row["p99"], 1),
        }
    hotpath_rows = measure_hotpath()
    rates = [row["events_per_sec"] for row in hotpath_rows]
    hotpath = {
        "scenario": (
            f"fixed total window {TOTAL_WINDOW}, {N_TXNS} txns, trace off, "
            f"gc off, best of <= {HOTPATH_MAX_ROUNDS} interleaved rounds"
        ),
        "events_per_sec": {
            str(row["coordinators"]): round(row["events_per_sec"])
            for row in hotpath_rows
        },
        "events_per_sec_8": round(rates[-1]),
        "monotonic_nondecreasing": all(b >= a for a, b in zip(rates, rates[1:])),
        "within_noise_tolerance": all(
            b >= a * (1.0 - NOISE_TOLERANCE) for a, b in zip(rates, rates[1:])
        ),
    }
    crash = {}
    for protocol, granularity in CRASH_PROTOCOLS:
        row = measure_failover(protocol, granularity)
        crash[row["protocol"]] = {
            "unresolved_indoubt": row["unresolved_indoubt"],
            "failovers": row["failovers"],
            "invariants_ok": row["atomicity_ok"] and row["serializable"],
        }
    throughputs = [scaling[str(n)]["throughput"] for n in COORDINATOR_SWEEP]
    return {
        "scenario": (
            f"open-loop Poisson {ARRIVAL_RATE}/u, {N_TXNS} txns over "
            f"{N_SITES} sites, window {WINDOW_PER_COORDINATOR}/coordinator"
        ),
        "scaling": scaling,
        "throughput_monotonic_1_to_4": (
            throughputs[0] < throughputs[1] < throughputs[2]
        ),
        "hotpath": hotpath,
        "coordinator_crash": crash,
        "zero_unresolved_after_failover": all(
            entry["unresolved_indoubt"] == 0 for entry in crash.values()
        ),
    }


def run_experiment() -> str:
    METRICS.clear()
    _HOTPATH_CACHE.clear()
    scaling_rows = []
    sweep = []
    for n in COORDINATOR_SWEEP:
        row = measure_scaling(n)
        sweep.append(row)
        scaling_rows.append([
            n, row["committed"], round(row["throughput"], 4),
            round(row["p50"], 1), round(row["p99"], 1),
            row["max_queue"], round(row["makespan"], 0),
        ])
    table = format_table(
        ["coordinators", "committed", "txn/u (sim)", "p50 resp",
         "p99 resp", "max queue", "makespan"],
        scaling_rows,
        title="EXP-S1a: open-loop throughput vs coordinator shards",
    )

    hotpath_rows = measure_hotpath()
    table += "\n\n" + format_table(
        ["coordinators", "window", "events dispatched", "best wall ms",
         "k events/s (wall)", "vs 1 shard"],
        [
            [
                row["coordinators"], row["window"], row["events"],
                round(row["best_wall_ms"], 1),
                round(row["events_per_sec"] / 1000.0, 1),
                f"{row['vs_1_shard']:.2f}x",
            ]
            for row in hotpath_rows
        ],
        title=(
            f"EXP-S1c: kernel events/s at fixed offered load "
            f"(total window {TOTAL_WINDOW}, trace off, "
            f"best of {hotpath_rows[0]['rounds']} interleaved rounds)"
        ),
    )

    crash_rows = []
    for protocol, granularity in CRASH_PROTOCOLS:
        row = measure_failover(protocol, granularity)
        crash_rows.append([
            row["protocol"], row["committed"], row["aborted"],
            row["interrupted"], row["failovers"], row["rerouted"],
            row["unresolved_indoubt"],
            "OK" if row["atomicity_ok"] and row["serializable"] else "VIOLATED",
        ])
    table += "\n\n" + format_table(
        ["protocol", "committed", "aborted", "interrupted", "failovers",
         "rerouted", "unresolved", "invariants"],
        crash_rows,
        title="EXP-S1b: coordinator crash + failover, 4-shard pool",
    )

    # The tentpole claims, enforced.
    throughputs = [row["throughput"] for row in sweep]
    assert throughputs[0] < throughputs[1] < throughputs[2], (
        "throughput must rise monotonically from 1 to 4 coordinators: "
        f"{throughputs}"
    )
    p99s = [row["p99"] for row in sweep]
    assert p99s[2] < p99s[0], "p99 must improve with 4 shards over 1"
    assert all(row[-2] == 0 for row in crash_rows), "unresolved in-doubt txns"
    assert all(row[-1] == "OK" for row in crash_rows)

    # The hot-path claims: no 8-shard cliff.  The curve must clear the
    # absolute floor at 8 shards and stay non-decreasing up to
    # wall-clock noise (the sweep already extended itself toward a
    # strictly non-decreasing measurement; see module docstring).
    rates = [row["events_per_sec"] for row in hotpath_rows]
    assert rates[-1] >= MIN_EVENTS_PER_SEC_8, (
        f"8-coordinator hot path too slow: {rates[-1]:.0f} events/s "
        f"< {MIN_EVENTS_PER_SEC_8:.0f}"
    )
    for a, b in zip(rates, rates[1:]):
        assert b >= a * (1.0 - NOISE_TOLERANCE), (
            f"events/s fell beyond noise tolerance across the sweep: {rates}"
        )

    METRICS.update(
        scaling={str(row["coordinators"]): round(row["throughput"], 4) for row in sweep},
        p99={str(row["coordinators"]): round(row["p99"], 1) for row in sweep},
        events_per_sec={
            str(row["coordinators"]): round(row["events_per_sec"])
            for row in hotpath_rows
        },
        hotpath_wall_ms={
            str(row["coordinators"]): round(row["best_wall_ms"], 1)
            for row in hotpath_rows
        },
        hotpath_monotonic=all(b >= a for a, b in zip(rates, rates[1:])),
        crash_unresolved={row[0]: row[-2] for row in crash_rows},
    )
    return table


def test_s1_sharded_gtm(benchmark):
    save_result("s1_sharded_gtm", run_once(benchmark, run_experiment))
