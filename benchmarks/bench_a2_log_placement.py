"""EXP-A2 -- ablation: redo/undo-log placement vs the crash window.

§3.2/§3.3: committing a local transaction and propagating that commit
to the redo/undo mechanism must be atomic, "otherwise, if the system
crashes the following erroneous situations may occur: (1) ... the
recovery mechanism will assume that the local transaction has been
aborted and will erroneously repeat it.  (2) A crash after propagation
but before the commit will result in no repetition at all."

The paper's remedies: write the log *into the existing database* as
part of the transaction ([WV 90]), or make the operations idempotent.
This experiment crashes a site inside the decide window under
commit-after, across three configurations:

* in-DB marker + increments  -> always exactly-once;
* volatile memory + increments (non-idempotent) -> double execution
  whenever the commit landed before the crash;
* volatile memory + absolute writes (idempotent) -> the erroneous
  repetition happens but is harmless.
"""

from repro.bench import format_table, protocol_federation
from repro.faults import FaultInjector
from repro.integration.federation import SiteSpec
from repro.mlt.actions import increment, write

from benchmarks._common import run_once, save_result

# The propagation hazard in its pure form: the local commit lands
# (t ~ 8.2) but the "finished" reply -- the propagation to the redo
# mechanism -- is lost, and a site crash shortly after (t = 12) erases
# the communication manager's volatile memory before the coordinator's
# status inquiry arrives.  Several crash instants around the decide
# phase are included to cover the crash-before-commit cases as well.
SCENARIOS = [
    ("lost reply + crash", None, True),
    ("crash before decide", 5.5, False),
    ("crash during commit", 7.5, False),
    ("lost reply + crash (bis)", None, True),
]


def run_case(log_placement: str, idempotent: bool) -> dict:
    """Run the crash/lost-propagation scenarios; count the damage."""
    double, lost, clean = 0, 0, 0
    for index, (label, crash_at, lose_reply) in enumerate(SCENARIOS):
        specs = [SiteSpec("s0", tables={"t0": {"x": 100}})]
        fed = protocol_federation(
            "after", specs, granularity="per_site",
            seed=index + 1, log_placement=log_placement,
            msg_timeout=10,
        )
        fed.gtm.config.status_poll_interval = 5
        injector = FaultInjector(fed)
        if lose_reply:
            injector.lose_next_message("finished")
            injector.crash_site("s0", at=12.0, recover_after=30)
        else:
            injector.crash_site("s0", at=crash_at, recover_after=30)
        operations = (
            [write("t0", "x", 107)] if idempotent else [increment("t0", "x", 7)]
        )
        process = fed.submit(operations)
        fed.run()
        assert process.value.committed
        final = fed.peek("s0", "t0", "x")
        if final == 107:
            clean += 1
        elif final == 114:
            double += 1
        else:
            lost += 1
    return {"clean": clean, "double": double, "lost": lost}


def run_experiment() -> str:
    rows = []
    results = {}
    for placement, idempotent, label in [
        ("indb", False, "in-DB log + increments"),
        ("volatile", False, "volatile log + increments"),
        ("volatile", True, "volatile log + idempotent writes"),
    ]:
        outcome = run_case(placement, idempotent)
        results[label] = outcome
        rows.append([
            label, len(SCENARIOS), outcome["clean"], outcome["double"], outcome["lost"],
        ])
    table = format_table(
        ["configuration", "crash trials", "exactly-once", "double execution",
         "lost execution"],
        rows,
        title="EXP-A2 (§3.2): atomic commit+propagation vs crash inside the decide window",
    )
    assert results["in-DB log + increments"]["double"] == 0
    assert results["in-DB log + increments"]["lost"] == 0
    assert results["volatile log + increments"]["double"] > 0  # paper's case (1)
    assert results["volatile log + idempotent writes"]["double"] == 0
    assert results["volatile log + idempotent writes"]["lost"] == 0
    table += (
        "\npaper: both remedies (in-database log; idempotent redo operations) "
        "prevent the erroneous situations -- volatile non-idempotent does not"
    )
    return table


def test_a2_log_placement(benchmark):
    save_result("a2_log_placement", run_once(benchmark, run_experiment))
