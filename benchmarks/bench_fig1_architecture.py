"""EXP-F1 -- Figure 1: system architecture.

Regenerates the communication structure of Figure 1: a star in which
local systems talk only to the central system.  The table reports, per
site, how many messages it exchanged with every other node; all
off-central cells must be zero.
"""

from repro.bench import format_table
from repro.core.gtm import GTMConfig
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment, read

from benchmarks._common import run_once, save_result


def run_experiment() -> str:
    fed = Federation(
        [
            SiteSpec(f"s{i}", tables={f"t{i}": {"x": 100}})
            for i in range(4)
        ],
        FederationConfig(seed=1, gtm=GTMConfig(protocol="before")),
    )
    batches = [
        {"operations": [increment(f"t{i}", "x", 1), read(f"t{(i + 1) % 4}", "x")]}
        for i in range(4)
    ]
    fed.run_transactions(batches)

    nodes = ["central"] + [f"s{i}" for i in range(4)]
    counts = {src: {dst: 0 for dst in nodes} for src in nodes}
    for record in fed.kernel.trace.select(category="message"):
        counts[record.site][record.details["dest"]] += 1

    rows = [[src] + [counts[src][dst] for dst in nodes] for src in nodes]
    table = format_table(
        ["from \\ to"] + nodes, rows,
        title="EXP-F1 (Figure 1): messages exchanged -- star topology",
    )
    local_to_local = sum(
        counts[a][b]
        for a in nodes for b in nodes
        if a != "central" and b != "central"
    )
    table += f"\nlocal-to-local messages: {local_to_local} (paper: must be 0)"
    assert local_to_local == 0
    return table


def test_fig1_architecture(benchmark):
    save_result("fig1_architecture", run_once(benchmark, run_experiment))
