"""EXP-S2 -- data-plane sharding: placement scaling and replica failover.

Three claims, one per section:

**Scaling.**  With one partitioned global table placed across the data
sites (hash partitioner, one partition per site) and a fixed *per-site*
open-loop offered load, committed-transaction throughput rises
monotonically from 4 to 32 sites: namespace routing keeps every
sub-transaction local to its partition's member sites, so adding sites
adds capacity instead of coordination.  Keys are Zipf-skewed
(``s = 0.8``) *within per-site key blocks* -- the hot set scales with
the fabric, the way a sharded deployment's per-tenant hot keys do, so
the claim holds under a realistic skew profile without the degenerate
single-global-hot-key workload whose one per-key lock chain caps every
fabric size at the same serial rate.

**Replication cost.**  At a fixed site count, raising the replica-set
size 1 -> 2 -> 3 multiplies each write's participant set; the sweep
reports the throughput and messages-per-transaction price of partial
replication with the invariants audited (every replica is an ordinary
commit-protocol participant, so atomicity needs no new machinery).

**Failover.**  A run that loses a partition primary mid-traffic ends
with zero unresolved in-doubt transactions, a deterministic lease-based
promotion (epoch bump), a successful rejoin + resync of the returning
site, and byte-converged surviving replicas -- the open-loop workload
rides through the crash.
"""

from repro.bench import format_table
from repro.core.gtm import GTMConfig
from repro.core.invariants import (
    atomicity_report,
    check_invariants,
    replica_convergence_violations,
)
from repro.dataplane import PlacementSpec
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec
from repro.workloads.open_loop import OpenLoopDriver, OpenLoopSpec
from repro.core.protocols import preparable_protocols

from benchmarks._common import run_once, save_result

SITES_SWEEP = [4, 8, 16, 32]
#: Offered load and keyspace scale with the site count, so every sweep
#: point runs the *same* per-site pressure.  The rate keeps each
#: block's Zipf-hottest key subcritical (its lock chain drains faster
#: than it fills), so queues stay bounded at every fabric size.
PER_SITE_ARRIVAL = 0.05
TXNS_PER_SITE = 12
KEYS_PER_SITE = 16
ZIPF_S = 0.8
WINDOW_PER_COORDINATOR = 12

#: Replication sweep runs at this fixed fabric size.
REPL_SITES = 8
REPL_FACTORS = [1, 2, 3]

FAILOVER_PROTOCOLS = [
    ("2pc", "per_site"),
    ("before", "per_action"),
]

#: Headline numbers of the last ``run_experiment`` call, recorded by
#: ``run_all.py`` in the per-bench JSON report.
METRICS: dict = {}


def build_placed(
    sites: int,
    replication: int,
    protocol: str = "2pc",
    granularity: str = "per_site",
    seed: int = 13,
) -> Federation:
    """A federation with one hash-partitioned table across ``sites``."""
    preparable = protocol in preparable_protocols()
    specs = [SiteSpec(f"s{i}", preparable=preparable) for i in range(sites)]
    rows = {f"k{j}": 100 for j in range(KEYS_PER_SITE * sites)}
    return Federation(
        specs,
        FederationConfig(
            seed=seed,
            coordinators=max(1, sites // 4),
            placement=[
                PlacementSpec(
                    table="acct",
                    partitions=sites,
                    replication=replication,
                    rows=rows,
                    buckets=64,
                )
            ],
            gtm=GTMConfig(protocol=protocol, granularity=granularity),
        ),
    )


def _workload_spec() -> WorkloadSpec:
    return WorkloadSpec(
        ops_per_txn=2,
        read_fraction=0.4,
        increment_fraction=0.6,
        zipf_s=ZIPF_S,
    )


def zipf_generator(sites: int) -> WorkloadGenerator:
    """One global Zipf over the whole keyspace (fixed-size sections)."""
    objects = [("acct", f"k{j}") for j in range(KEYS_PER_SITE * sites)]
    return WorkloadGenerator(_workload_spec(), objects)


def block_zipf_batches(sites: int, federation: Federation) -> list[dict]:
    """Pre-sampled transactions, Zipf-skewed within per-site key blocks.

    One generator per ``KEYS_PER_SITE`` block, transactions cycling the
    blocks round-robin: every block sees the same skewed load, and the
    hot set grows with the fabric.  Draws come from a dedicated kernel
    RNG stream, so the sampled workload is a deterministic function of
    the federation seed alone.
    """
    generators = [
        WorkloadGenerator(
            _workload_spec(),
            [
                ("acct", f"k{j}")
                for j in range(block * KEYS_PER_SITE, (block + 1) * KEYS_PER_SITE)
            ],
        )
        for block in range(sites)
    ]
    rng = federation.kernel.rng.stream("block-zipf")
    batches = []
    for index in range(TXNS_PER_SITE * sites):
        operations, intends_abort = generators[index % sites].next_transaction(rng)
        batches.append({
            "operations": operations,
            "name": f"Z{index}",
            "intends_abort": intends_abort,
        })
    return batches


def open_loop_spec(sites: int) -> OpenLoopSpec:
    return OpenLoopSpec(
        arrival_rate=PER_SITE_ARRIVAL * sites,
        n_txns=TXNS_PER_SITE * sites,
        window_per_coordinator=WINDOW_PER_COORDINATOR,
    )


def measure_scaling(sites: int) -> dict:
    """Fixed per-site load at ``sites`` sites, replication 1."""
    fed = build_placed(sites, replication=1)
    driver = OpenLoopDriver(fed, open_loop_spec(sites))
    result = driver.run(block_zipf_batches(sites, fed))
    assert result.completed == result.submitted
    assert atomicity_report(fed).ok
    return {
        "sites": sites,
        "coordinators": max(1, sites // 4),
        "committed": result.committed,
        "aborted": result.aborted,
        "throughput": result.throughput,
        "p50": result.p50,
        "p99": result.p99,
        "makespan": result.makespan,
        "routed_writes": fed.dataplane.routed_writes,
        "messages": fed.network.sent,
    }


def measure_replication(replication: int) -> dict:
    """Replication sweep at the fixed fabric size (full audit)."""
    fed = build_placed(REPL_SITES, replication=replication)
    driver = OpenLoopDriver(fed, open_loop_spec(REPL_SITES))
    result = driver.run_generated(zipf_generator(REPL_SITES))
    fed.run()  # drain stragglers before auditing replica images
    committed = result.committed
    violations = check_invariants(fed)
    return {
        "replication": replication,
        "committed": committed,
        "aborted": result.aborted,
        "throughput": result.throughput,
        "p99": result.p99,
        "msgs_per_commit": fed.network.sent / max(1, committed),
        "routed_writes": fed.dataplane.routed_writes,
        "invariants_ok": not violations,
    }


def measure_failover(protocol: str, granularity: str) -> dict:
    """Primary crash mid-traffic: promotion, rejoin, zero unresolved."""
    fed = build_placed(
        REPL_SITES, replication=2, protocol=protocol, granularity=granularity
    )
    victim = fed.dataplane.map.partition(0).primary
    fed.crash_site(victim, at=60.0)
    fed.restart_site(victim, at=260.0)
    driver = OpenLoopDriver(fed, open_loop_spec(REPL_SITES))
    result = driver.run_generated(zipf_generator(REPL_SITES))
    fed.run()  # drain recovery + rejoin stragglers
    dp = fed.dataplane
    replica_violations = replica_convergence_violations(fed)
    return {
        "protocol": f"{protocol}/{granularity}",
        "victim": victim,
        "committed": result.committed,
        "aborted": result.aborted,
        "promotions": dp.promotions,
        "evictions": dp.evictions,
        "rejoins": dp.rejoins,
        "stale_rejections": dp.stale_rejections,
        "unresolved_indoubt": len(fed.pool.unresolved_orphans()),
        "atomicity_ok": atomicity_report(fed).ok,
        "replicas_converged": not replica_violations,
    }


def headline() -> dict:
    """Compact summary for BENCH_perf.json."""
    scaling = {}
    throughputs = []
    for sites in SITES_SWEEP:
        row = measure_scaling(sites)
        throughputs.append(row["throughput"])
        scaling[str(sites)] = {
            "committed": row["committed"],
            "throughput": round(row["throughput"], 4),
            "p99_response": round(row["p99"], 1),
        }
    replication = {}
    for factor in REPL_FACTORS:
        row = measure_replication(factor)
        replication[str(factor)] = {
            "throughput": round(row["throughput"], 4),
            "msgs_per_commit": round(row["msgs_per_commit"], 1),
            "invariants_ok": row["invariants_ok"],
        }
    failover = {}
    for protocol, granularity in FAILOVER_PROTOCOLS:
        row = measure_failover(protocol, granularity)
        failover[row["protocol"]] = {
            "promotions": row["promotions"],
            "rejoins": row["rejoins"],
            "unresolved_indoubt": row["unresolved_indoubt"],
            "replicas_converged": row["replicas_converged"],
            "invariants_ok": row["atomicity_ok"] and row["replicas_converged"],
        }
    return {
        "scenario": (
            f"hash-placed table, 1 partition/site, Zipf s={ZIPF_S}, "
            f"open-loop {PER_SITE_ARRIVAL}/u/site, {TXNS_PER_SITE} txns/site"
        ),
        "scaling": scaling,
        "throughput_monotonic_4_to_32": all(
            b > a for a, b in zip(throughputs, throughputs[1:])
        ),
        "replication": replication,
        "failover": failover,
        "zero_unresolved_after_failover": all(
            entry["unresolved_indoubt"] == 0 for entry in failover.values()
        ),
    }


def run_experiment() -> str:
    METRICS.clear()
    sweep = []
    scaling_rows = []
    for sites in SITES_SWEEP:
        row = measure_scaling(sites)
        sweep.append(row)
        scaling_rows.append([
            sites, row["coordinators"], row["committed"], row["aborted"],
            round(row["throughput"], 4), round(row["p50"], 1),
            round(row["p99"], 1), row["messages"],
        ])
    table = format_table(
        ["sites", "coordinators", "committed", "aborted", "txn/u (sim)",
         "p50 resp", "p99 resp", "messages"],
        scaling_rows,
        title=(
            f"EXP-S2a: open-loop throughput vs sites "
            f"(1 partition/site, Zipf s={ZIPF_S}, fixed per-site load)"
        ),
    )

    repl_rows = []
    repl_sweep = []
    for factor in REPL_FACTORS:
        row = measure_replication(factor)
        repl_sweep.append(row)
        repl_rows.append([
            factor, row["committed"], row["aborted"],
            round(row["throughput"], 4), round(row["p99"], 1),
            round(row["msgs_per_commit"], 1), row["routed_writes"],
            "OK" if row["invariants_ok"] else "VIOLATED",
        ])
    table += "\n\n" + format_table(
        ["replicas", "committed", "aborted", "txn/u (sim)", "p99 resp",
         "msgs/commit", "routed writes", "invariants"],
        repl_rows,
        title=f"EXP-S2b: partial replication cost at {REPL_SITES} sites",
    )

    failover_rows = []
    failover_sweep = []
    for protocol, granularity in FAILOVER_PROTOCOLS:
        row = measure_failover(protocol, granularity)
        failover_sweep.append(row)
        failover_rows.append([
            row["protocol"], row["victim"], row["committed"], row["aborted"],
            row["promotions"], row["rejoins"], row["stale_rejections"],
            row["unresolved_indoubt"],
            "OK" if row["atomicity_ok"] and row["replicas_converged"]
            else "VIOLATED",
        ])
    table += "\n\n" + format_table(
        ["protocol", "victim", "committed", "aborted", "promotions",
         "rejoins", "stale rejects", "unresolved", "invariants"],
        failover_rows,
        title=(
            f"EXP-S2c: primary crash + replica failover, "
            f"{REPL_SITES} sites, replication 2"
        ),
    )

    # The tentpole claims, enforced.
    throughputs = [row["throughput"] for row in sweep]
    for a, b in zip(throughputs, throughputs[1:]):
        assert b > a, (
            "throughput must rise monotonically with sites at fixed "
            f"per-site load: {throughputs}"
        )
    assert all(row["invariants_ok"] for row in repl_sweep)
    for row in failover_sweep:
        assert row["promotions"] >= 1, f"{row['protocol']}: no promotion fired"
        assert row["rejoins"] >= 1, f"{row['protocol']}: victim never rejoined"
        assert row["unresolved_indoubt"] == 0, (
            f"{row['protocol']}: unresolved in-doubt after failover"
        )
        assert row["atomicity_ok"], f"{row['protocol']}: atomicity violated"
        assert row["replicas_converged"], (
            f"{row['protocol']}: surviving replicas diverged"
        )

    METRICS.update(
        scaling={str(row["sites"]): round(row["throughput"], 4) for row in sweep},
        p99={str(row["sites"]): round(row["p99"], 1) for row in sweep},
        replication={
            str(row["replication"]): round(row["msgs_per_commit"], 1)
            for row in repl_sweep
        },
        failover_unresolved={
            row["protocol"]: row["unresolved_indoubt"] for row in failover_sweep
        },
        failover_promotions={
            row["protocol"]: row["promotions"] for row in failover_sweep
        },
    )
    return table


def test_s2_dataplane(benchmark):
    save_result("s2_dataplane", run_once(benchmark, run_experiment))
