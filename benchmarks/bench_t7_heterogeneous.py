"""EXP-T7 -- heterogeneity: optimistic schedulers as an abort source.

§3.2 lists the optimistic scheduler among the sources of erroneous
local aborts: the local transaction "did not survive the validation
phase" after its ready answer.  This experiment runs a federation whose
second site uses backward-validation OCC while purely local traffic
churns its commit sequence, and reports how each protocol absorbs the
validation aborts: commit-after through redo executions, commit-before
(multi-level) through L0 retries inside the communication manager.
"""

from repro.bench import closed_loop, format_table
from repro.core.gtm import GTMConfig
from repro.core.invariants import atomicity_report
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.localdb.config import LocalDBConfig
from repro.localdb.txn import LocalAbortReason
from repro.workloads import WorkloadGenerator, WorkloadSpec

from benchmarks._common import run_once, save_result

HORIZON = 800


def build(protocol: str, granularity: str) -> Federation:
    return Federation(
        [
            SiteSpec(
                "pess", tables={"tp": {f"k{j}": 100 for j in range(4)}},
                config=LocalDBConfig(scheduler="2pl"),
            ),
            SiteSpec(
                "opti", tables={"to": {f"k{j}": 100 for j in range(4)}},
                config=LocalDBConfig(scheduler="occ"),
            ),
        ],
        FederationConfig(
            seed=31, gtm=GTMConfig(protocol=protocol, granularity=granularity)
        ),
    )


def churn(fed: Federation):
    """Purely local OCC traffic that keeps invalidating global reads."""
    engine = fed.engines["opti"]
    rng = fed.kernel.rng.stream("churn")

    def local_writer():
        while fed.kernel.now < HORIZON:
            yield rng.uniform(3, 8)
            txn = engine.begin()
            try:
                yield from engine.write(txn, "to", f"k{rng.randrange(4)}", rng.random())
                yield from engine.commit(txn)
            except Exception:
                pass

    fed.kernel.spawn(local_writer(), name="churn")


def measure(protocol: str, granularity: str):
    fed = build(protocol, granularity)
    churn(fed)
    workload = WorkloadSpec(
        ops_per_txn=4, read_fraction=0.5, increment_fraction=0.0,
        hotspot_fraction=0.5, hot_object_count=2,
    )
    generator = WorkloadGenerator(
        workload, [(t, f"k{j}") for t in ("tp", "to") for j in range(4)]
    )
    stats = closed_loop(
        fed, generator.next_transaction, n_workers=3, horizon=HORIZON,
        label=protocol,
    )
    validation_aborts = fed.engines["opti"].aborts[LocalAbortReason.VALIDATION]
    return stats, validation_aborts, atomicity_report(fed).ok


def run_experiment() -> str:
    rows = []
    for protocol, granularity, label in [
        ("after", "per_site", "commit-after"),
        ("before", "per_site", "commit-before/site"),
        ("before", "per_action", "commit-before+MLT"),
    ]:
        stats, validation_aborts, atomic = measure(protocol, granularity)
        rows.append([
            label, stats.committed, stats.aborted, validation_aborts,
            stats.redo_executions, stats.l0_retries,
            "OK" if atomic else "VIOLATED",
        ])
    table = format_table(
        ["protocol", "committed", "aborted", "validation aborts",
         "redo txns", "CM-level L0 retries", "atomicity"],
        rows,
        title="EXP-T7 (§3.2): an optimistic local scheduler as erroneous-abort source",
    )
    # Every protocol must stay atomic despite validation aborts, and the
    # aborts must actually have occurred for the experiment to bite.
    assert all(row[-1] == "OK" for row in rows)
    assert sum(row[3] for row in rows) > 0
    table += ("\npaper: the ready answer does not protect against the validation "
              "phase; redo (after) / repetition (before) absorb the aborts")
    return table


def test_t7_heterogeneous(benchmark):
    save_result("t7_heterogeneous", run_once(benchmark, run_experiment))
