"""EXP-B1 -- related-work baselines: sagas and altruistic locking (§5).

Sagas "use compensating local transactions ... but global
serializability is not ensured"; altruistic locking provides it "by a
more complicated algorithm maintaining dependencies between
transactions".  The benchmark runs the same mixed workload under the
saga coordinator, altruistic locking and commit-before+MLT and reports
throughput together with the global-serializability verdict of the
checker.
"""

from repro.bench import closed_loop, format_table, protocol_federation
from repro.core.invariants import atomicity_report, serializability_ok
from repro.core.serializability import quasi_serializability
from repro.integration.federation import SiteSpec
from repro.workloads import WorkloadGenerator, WorkloadSpec

from benchmarks._common import run_once, save_result

HORIZON = 700


def measure(protocol: str):
    specs = [
        SiteSpec(f"s{i}", tables={f"t{i}": {f"k{j}": 100 for j in range(4)}})
        for i in range(2)
    ]
    fed = protocol_federation(protocol, specs, granularity="per_action", seed=21)
    workload = WorkloadSpec(
        ops_per_txn=4,
        read_fraction=0.4,          # reads make the anomalies observable
        increment_fraction=0.3,
        hotspot_fraction=0.8,
        hot_object_count=2,
    )
    generator = WorkloadGenerator(
        workload, [(f"t{i}", f"k{j}") for i in range(2) for j in range(4)]
    )
    stats = closed_loop(
        fed, generator.next_transaction, n_workers=6, horizon=HORIZON,
        label=protocol,
    )
    return stats, fed


def run_experiment() -> str:
    rows = []
    verdicts = {}
    for protocol, label in [
        ("saga", "saga [GS 87]"),
        ("altruistic", "altruistic [AGK 87]"),
        ("before", "commit-before+MLT"),
    ]:
        stats, fed = measure(protocol)
        serializable = serializability_ok(fed)
        committed_gtxns = {
            o.gtxn_id for o in fed.gtm.outcomes if o.committed
        }
        histories = {
            site: [op for op in ops if op.txn in committed_gtxns]
            for site, ops in fed.histories(by_gtxn=True).items()
        }
        qsr = bool(quasi_serializability(histories, committed_gtxns))
        verdicts[label] = (serializable, qsr)
        rows.append([
            label, stats.committed,
            round(stats.throughput * 1000, 2),
            round(stats.mean_response_time, 1),
            "yes" if serializable else "NO",
            "yes" if qsr else "NO",
            "OK" if atomicity_report(fed).ok else "VIOLATED",
        ])
    table = format_table(
        ["scheme", "committed", "thr (txn/1k)", "mean resp",
         "globally SR", "quasi-SR [DE 89]", "atomicity"],
        rows,
        title="EXP-B1 (§5): related-work baselines on a mixed read/increment hotspot",
    )
    assert verdicts["saga [GS 87]"][0] is False       # the paper's critique
    assert verdicts["altruistic [AGK 87]"][0] is True
    assert verdicts["commit-before+MLT"][0] is True
    table += (
        "\npaper: sagas sacrifice global serializability; the others preserve it. "
        "The quasi-serializability column applies the weaker [DE 89] criterion."
    )
    return table


def test_b1_sagas(benchmark):
    save_result("b1_sagas", run_once(benchmark, run_experiment))
