"""EXP-T6 -- §2: integrating more systems costs nothing per transaction.

"For each of the existing systems, only a single connection to the
central system is needed.  As a consequence, the integration of
additional systems ... does not cause further problems affecting the
already integrated existing database systems."

The benchmark grows the federation from 2 to 8 sites while every
transaction keeps touching exactly two of them; per-transaction message
counts and response times must stay flat.
"""

import random

from repro.bench import format_table
from repro.core.gtm import GTMConfig
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment

from benchmarks._common import run_once, save_result

N_TXNS = 8
SITE_COUNTS = [2, 4, 8]


def measure(n_sites: int) -> dict:
    fed = Federation(
        [
            SiteSpec(f"s{i}", tables={f"t{i}": {"x": 1000}})
            for i in range(n_sites)
        ],
        FederationConfig(
            seed=3,
            gtm=GTMConfig(protocol="before", granularity="per_action"),
        ),
    )
    rng = random.Random(n_sites)
    outcomes = []
    for _ in range(N_TXNS):
        src, dst = rng.sample(range(n_sites), 2)
        process = fed.submit(
            [increment(f"t{src}", "x", -5), increment(f"t{dst}", "x", 5)]
        )
        fed.run()
        outcomes.append(process.value)
    assert all(o.committed for o in outcomes)
    return {
        "msgs_per_txn": fed.network.sent / N_TXNS,
        "mean_resp": sum(o.response_time for o in outcomes) / N_TXNS,
    }


def run_experiment() -> str:
    rows = []
    results = {}
    for n_sites in SITE_COUNTS:
        m = measure(n_sites)
        results[n_sites] = m
        rows.append([n_sites, round(m["msgs_per_txn"], 2), round(m["mean_resp"], 2)])
    table = format_table(
        ["sites in federation", "msgs/txn", "mean response time"],
        rows,
        title="EXP-T6 (§2): scalability -- 2-site transfers in growing federations",
    )
    # Flatness: adding sites must not inflate per-transaction cost.
    base = results[SITE_COUNTS[0]]
    top = results[SITE_COUNTS[-1]]
    assert top["msgs_per_txn"] <= base["msgs_per_txn"] * 1.05
    assert top["mean_resp"] <= base["mean_resp"] * 1.10
    return table


def test_t6_scalability(benchmark):
    save_result("t6_scalability", run_once(benchmark, run_experiment))
