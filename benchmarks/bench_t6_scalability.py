"""EXP-T6 -- §2: integrating more systems costs nothing per transaction.

"For each of the existing systems, only a single connection to the
central system is needed.  As a consequence, the integration of
additional systems ... does not cause further problems affecting the
already integrated existing database systems."

The benchmark grows the federation from 2 to 8 sites while every
transaction keeps touching exactly two of them; per-transaction message
counts and response times must stay flat.  A batched column runs the
same transfers concurrently with ``batch_window = 1.0``: the physical
envelope count per transaction stays flat too (and lower), because
batching works per link and the star topology keeps the link count at
one per site regardless of federation size.
"""

import random

from repro.bench import format_table
from repro.core.gtm import GTMConfig
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment

from benchmarks._common import run_once, save_result

N_TXNS = 8
SITE_COUNTS = [2, 4, 8]


def measure(n_sites: int) -> dict:
    fed = Federation(
        [
            SiteSpec(f"s{i}", tables={f"t{i}": {"x": 1000}})
            for i in range(n_sites)
        ],
        FederationConfig(
            seed=3,
            gtm=GTMConfig(protocol="before", granularity="per_action"),
        ),
    )
    rng = random.Random(n_sites)
    outcomes = []
    for _ in range(N_TXNS):
        src, dst = rng.sample(range(n_sites), 2)
        process = fed.submit(
            [increment(f"t{src}", "x", -5), increment(f"t{dst}", "x", 5)]
        )
        fed.run()
        outcomes.append(process.value)
    assert all(o.committed for o in outcomes)
    return {
        "msgs_per_txn": fed.network.sent / N_TXNS,
        "mean_resp": sum(o.response_time for o in outcomes) / N_TXNS,
    }


def measure_batched(n_sites: int) -> dict:
    """The same transfers, concurrent, with batching turned on."""
    fed = Federation(
        [
            SiteSpec(f"s{i}", tables={f"t{i}": {"x": 1000}})
            for i in range(n_sites)
        ],
        FederationConfig(
            seed=3,
            batch_window=1.0,
            gtm=GTMConfig(protocol="before", granularity="per_action"),
        ),
    )
    rng = random.Random(n_sites)
    batches = []
    for _ in range(N_TXNS):
        src, dst = rng.sample(range(n_sites), 2)
        batches.append(
            {"operations": [increment(f"t{src}", "x", -5), increment(f"t{dst}", "x", 5)]}
        )
    outcomes = fed.run_transactions(batches)
    assert all(o.committed for o in outcomes)
    return {"envelopes_per_txn": fed.network.envelopes / N_TXNS}


def run_experiment() -> str:
    rows = []
    results = {}
    for n_sites in SITE_COUNTS:
        m = measure(n_sites)
        m.update(measure_batched(n_sites))
        results[n_sites] = m
        rows.append([
            n_sites,
            round(m["msgs_per_txn"], 2),
            round(m["mean_resp"], 2),
            round(m["envelopes_per_txn"], 2),
        ])
    table = format_table(
        [
            "sites in federation", "msgs/txn", "mean response time",
            "envelopes/txn (batched, concurrent)",
        ],
        rows,
        title="EXP-T6 (§2): scalability -- 2-site transfers in growing federations",
    )
    # Flatness: adding sites must not inflate per-transaction cost,
    # batched or not.
    base = results[SITE_COUNTS[0]]
    top = results[SITE_COUNTS[-1]]
    assert top["msgs_per_txn"] <= base["msgs_per_txn"] * 1.05
    assert top["mean_resp"] <= base["mean_resp"] * 1.10
    # Batched flatness gets the same 10% room as the response time: a
    # fixed transaction population spread over more links coalesces a
    # little less, but the per-transaction cost must not grow with the
    # federation.
    assert top["envelopes_per_txn"] <= base["envelopes_per_txn"] * 1.10
    assert top["envelopes_per_txn"] < top["msgs_per_txn"]
    return table


def test_t6_scalability(benchmark):
    save_result("t6_scalability", run_once(benchmark, run_experiment))
