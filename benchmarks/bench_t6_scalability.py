"""EXP-T6 -- §2: integrating more systems costs nothing per transaction.

"For each of the existing systems, only a single connection to the
central system is needed.  As a consequence, the integration of
additional systems ... does not cause further problems affecting the
already integrated existing database systems."

The benchmark grows the federation from 2 to 8 sites while every
transaction keeps touching exactly two of them; per-transaction message
counts and response times must stay flat.  A batched column runs the
same transfers concurrently with ``batch_window = 1.0``: the physical
envelope count per transaction stays flat too (and lower), because
batching works per link and the star topology keeps the link count at
one per site regardless of federation size.
"""

import random

from repro.bench import format_table
from repro.core.gtm import GTMConfig
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment

from benchmarks._common import run_once, save_result

N_TXNS = 8
SITE_COUNTS = [2, 4, 8]

#: Flatness is protocol-independent: the baseline §3.3 configuration
#: plus the two commit-phase variants added for the protocol family.
PROTOCOL_ROWS = [
    ("before", "per_action", "commit-before+MLT"),
    ("one_phase", "per_site", "one-phase (1PC)"),
    ("short_commit", "per_site", "Short-Commit"),
]


def _txn_keys() -> list[str]:
    """One page-disjoint private key per concurrent transaction.

    Locking is page-granular (8 hash buckets per table by default), so
    two "disjoint" keys sharing a bucket still conflict; keys are
    picked with pairwise-distinct buckets, as the checker's transfer
    workload does.
    """
    from repro.storage.heap import _stable_hash

    keys: list[str] = []
    used: set[int] = set()
    candidate = 0
    while len(keys) < N_TXNS:
        key = f"g{candidate}"
        candidate += 1
        bucket = _stable_hash(key) % 8
        if bucket in used and len(used) < 8:
            continue
        used.add(bucket)
        keys.append(key)
    return keys


def _build(n_sites: int, protocol: str, granularity: str, **config) -> Federation:
    from repro.core.protocols import preparable_protocols

    # "x" feeds the sequential measurements; the per-transaction keys
    # keep the concurrent batched run off one hot page (a per_site
    # prepared protocol would distributed-deadlock-livelock there).
    rows = {"x": 1000}
    rows.update({key: 1000 for key in _txn_keys()})
    return Federation(
        [
            SiteSpec(
                f"s{i}",
                tables={f"t{i}": dict(rows)},
                preparable=protocol in preparable_protocols(),
            )
            for i in range(n_sites)
        ],
        FederationConfig(
            seed=3,
            gtm=GTMConfig(protocol=protocol, granularity=granularity),
            **config,
        ),
    )


def measure(n_sites: int, protocol: str = "before", granularity: str = "per_action") -> dict:
    fed = _build(n_sites, protocol, granularity)
    # Bootstrap forces are a fixed per-engine cost; the per-transaction
    # accounting below must not scale them with the federation size.
    startup_forces = sum(e.disk.log_forces for e in fed.engines.values())
    rng = random.Random(n_sites)
    outcomes = []
    for _ in range(N_TXNS):
        src, dst = rng.sample(range(n_sites), 2)
        process = fed.submit(
            [increment(f"t{src}", "x", -5), increment(f"t{dst}", "x", 5)]
        )
        fed.run()
        outcomes.append(process.value)
    assert all(o.committed for o in outcomes)
    return {
        "msgs_per_txn": fed.network.sent / N_TXNS,
        "mean_resp": sum(o.response_time for o in outcomes) / N_TXNS,
        "forces_per_txn": (
            sum(e.disk.log_forces for e in fed.engines.values())
            - startup_forces
        ) / N_TXNS,
        "x_hold_per_txn": sum(
            e.locks.total_exclusive_hold_time for e in fed.engines.values()
        ) / N_TXNS,
    }


def measure_batched(
    n_sites: int, protocol: str = "before", granularity: str = "per_action"
) -> dict:
    """The same transfers, concurrent, with batching turned on."""
    fed = _build(n_sites, protocol, granularity, batch_window=1.0)
    rng = random.Random(n_sites)
    keys = _txn_keys()
    batches = []
    for t in range(N_TXNS):
        src, dst = rng.sample(range(n_sites), 2)
        batches.append(
            {
                "operations": [
                    increment(f"t{src}", keys[t], -5),
                    increment(f"t{dst}", keys[t], 5),
                ]
            }
        )
    outcomes = fed.run_transactions(batches)
    assert all(o.committed for o in outcomes)
    return {"envelopes_per_txn": fed.network.envelopes / N_TXNS}


def run_experiment() -> str:
    rows = []
    results = {}
    for protocol, granularity, label in PROTOCOL_ROWS:
        for n_sites in SITE_COUNTS:
            m = measure(n_sites, protocol, granularity)
            m.update(measure_batched(n_sites, protocol, granularity))
            results[(label, n_sites)] = m
            rows.append([
                label,
                n_sites,
                round(m["msgs_per_txn"], 2),
                round(m["mean_resp"], 2),
                round(m["forces_per_txn"], 2),
                round(m["x_hold_per_txn"], 2),
                round(m["envelopes_per_txn"], 2),
            ])
    table = format_table(
        [
            "protocol", "sites in federation", "msgs/txn",
            "mean response time", "forces/txn", "X-hold/txn",
            "envelopes/txn (batched, concurrent)",
        ],
        rows,
        title="EXP-T6 (§2): scalability -- 2-site transfers in growing federations",
    )
    # Flatness: adding sites must not inflate per-transaction cost,
    # batched or not, under any of the protocol variants.
    for _, _, label in PROTOCOL_ROWS:
        base = results[(label, SITE_COUNTS[0])]
        top = results[(label, SITE_COUNTS[-1])]
        assert top["msgs_per_txn"] <= base["msgs_per_txn"] * 1.05, label
        assert top["mean_resp"] <= base["mean_resp"] * 1.10, label
        assert top["forces_per_txn"] <= base["forces_per_txn"] * 1.05, label
        # Physical envelopes stay below the logical message count at
        # every size, but only the *logical* count is flat: a fixed
        # transaction population spread over more links coalesces
        # less, so envelopes/txn converge up toward msgs/txn.
        assert top["envelopes_per_txn"] < top["msgs_per_txn"], label
    # The baseline's protocol traffic is pure data, one link per
    # involved site: its envelope count is flat outright (the seed
    # behaviour this experiment pinned before the protocol family).
    base = results[("commit-before+MLT", SITE_COUNTS[0])]
    top = results[("commit-before+MLT", SITE_COUNTS[-1])]
    assert top["envelopes_per_txn"] <= base["envelopes_per_txn"] * 1.10
    # The commit-phase variants keep their EXP-T5 cost ordering at
    # every federation size: one-phase under Short-Commit on messages,
    # Short-Commit under one-phase on exclusive lock hold.
    for n_sites in SITE_COUNTS:
        one = results[("one-phase (1PC)", n_sites)]
        short = results[("Short-Commit", n_sites)]
        assert one["msgs_per_txn"] < short["msgs_per_txn"]
        assert short["x_hold_per_txn"] < one["x_hold_per_txn"]
    return table


def test_t6_scalability(benchmark):
    save_result("t6_scalability", run_once(benchmark, run_experiment))
