"""EXP-A5 -- per-site batching, decision piggybacking, grouped forces.

The paper's star topology (Figure 1) funnels every protocol message
through the central node, so concurrent global transactions constantly
have messages for the *same* site in flight.  This sweep measures what
the transport-level optimisations buy under that load:

* **batching** (``batch_window``): logical messages for one link within
  the window share a physical envelope;
* **decision pipelining** (``pipeline_window``): concurrent commit
  decisions for one site share a round-trip and a forced decision-log
  write at the central;
* **piggybacking** (``piggyback_decisions``): commit-before/per_site
  rides the local-commit request on the site's last data message and
  the outcome on its reply -- the dedicated finish round disappears.

Outcomes must be identical to the unbatched run at the same seed: these
are scheduling optimisations, not semantic changes.  The acceptance bar
is >= 30% fewer physical envelopes per committed transaction for
commit-after and commit-before/per_site at window 1.0 with >= 8
concurrent transactions per site.
"""

from repro.bench import format_table
from repro.bench.harness import protocol_federation
from repro.integration.federation import SiteSpec
from repro.mlt.actions import increment

from benchmarks._common import run_once, save_result

WINDOWS = [0.0, 0.5, 1.0, 2.0]
CONCURRENCY = [8, 16]
SITE_COUNTS = [2, 4]
PROTOCOLS = [
    ("after", "per_site", False),
    ("before", "per_site", True),  # piggyback rides on this path
    ("one_phase", "per_site", False),  # fewest logical messages to start
    ("short_commit", "per_site", False),  # 2PC volume, shorter X-locks
]


def measure(protocol, granularity, piggyback, *, window, n_txns, n_sites):
    specs = [
        SiteSpec(f"s{i}", tables={f"t{i}": {k: 0 for k in range(n_txns)}})
        for i in range(n_sites)
    ]
    fed = protocol_federation(
        protocol,
        specs,
        granularity=granularity,
        seed=11,
        batch_window=window,
        pipeline_window=window,
        piggyback_decisions=piggyback and window > 0,
    )
    batches = [
        {
            "operations": [
                increment(f"t{i}", t % n_txns, 1) for i in range(n_sites)
            ],
            "name": f"T{t}",
            "delay": 0.25 * (t % 4),
        }
        for t in range(n_txns)
    ]
    outcomes = fed.run_transactions(batches)
    committed = [o.gtxn_id.split("~")[0] for o in outcomes if o.committed]
    gtm = fed.gtm.metrics()
    return {
        "committed": committed,
        "logical_per_txn": fed.network.sent / n_txns,
        "envelopes_per_txn": fed.network.envelopes / n_txns,
        "decision_forces": gtm.get("decision_forces", 0),
        "mean_resp": sum(o.response_time for o in outcomes) / n_txns,
    }


def run_experiment() -> str:
    rows = []
    for protocol, granularity, piggyback in PROTOCOLS:
        label = f"{protocol}/{granularity}" + ("+piggyback" if piggyback else "")
        for n_sites in SITE_COUNTS:
            for n_txns in CONCURRENCY:
                baseline = None
                for window in WINDOWS:
                    m = measure(
                        protocol, granularity, piggyback,
                        window=window, n_txns=n_txns, n_sites=n_sites,
                    )
                    if window == 0.0:
                        baseline = m
                    # Transport optimisations must not change outcomes.
                    assert m["committed"] == baseline["committed"], (
                        f"{label} w={window}: outcome drift"
                    )
                    saved = 1.0 - m["envelopes_per_txn"] / baseline["envelopes_per_txn"]
                    rows.append([
                        label, n_sites, n_txns, window,
                        round(m["logical_per_txn"], 1),
                        round(m["envelopes_per_txn"], 1),
                        f"{100 * saved:.0f}%",
                        m["decision_forces"],
                        round(m["mean_resp"], 1),
                    ])
                    # Acceptance bar: >= 30% fewer envelopes at window
                    # 1.0 with >= 8 concurrent transactions per site.
                    if window == 1.0 and n_txns >= 8:
                        assert saved >= 0.30, (
                            f"{label} sites={n_sites} txns={n_txns}: "
                            f"only {100 * saved:.0f}% envelope reduction"
                        )
    return format_table(
        [
            "protocol", "sites", "txns", "window", "logical/txn",
            "envelopes/txn", "saved", "decision forces", "mean resp",
        ],
        rows,
        title="EXP-A5: batching window x concurrency x sites "
        "(identical outcomes at every point)",
    )


def test_a5_batching(benchmark):
    save_result("a5_batching", run_once(benchmark, run_experiment))
