"""EXP-A6 -- adaptive batching and SLO-driven admission.

Three questions, one per part:

* **A (recovery)** -- EXP-A5 bought its envelope reduction with mean
  response time (the batch window delays every message).  Does the
  size-or-deadline flush with the load-sensed window recover that
  latency while keeping the reduction?  Bar: at window 1.0 the
  adaptive policy recovers >= 50% of commit-after's mean-response
  regression and keeps >= 80% of the static envelope reduction, with
  byte-identical outcomes.
* **B (Pareto)** -- per protocol, where do the unbatched / static /
  adaptive configurations sit on the open-loop latency-throughput
  plane?  These points feed the Pareto non-domination gate in
  ``scripts/check_perf_regression.py``: a change may trade along the
  front, not fall behind it.
* **C (SLO)** -- under a flash crowd, does the p99-targeting admission
  controller hold the configured SLO with *bounded* shedding, against
  the survivorship-corrected accounting (every shed is charged)?

Latency figures in part B use the corrected quantile where it is
finite and report the shed count alongside -- a config that sheds its
way to a pretty p99 is visible, not rewarded.
"""

from repro.bench import format_table
from repro.bench.harness import protocol_federation
from repro.core.gtm import GTMConfig
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment
from repro.workloads.open_loop import OpenLoopDriver, OpenLoopSpec

from benchmarks._common import run_once, save_result

WINDOW = 1.0
SIZE_CAP = 8

#: (label, protocol, granularity) for the part-B Pareto sweep.
PARETO_PROTOCOLS = [
    ("2pc/per_site", "2pc", "per_site"),
    ("after/per_site", "after", "per_site"),
    ("before/per_site", "before", "per_site"),
]

#: Part-B batching configurations (batch + decision pipeline together).
CONFIGS = [
    ("unbatched", dict(batch_window=0.0, pipeline_window=0.0)),
    (
        "static",
        dict(batch_window=WINDOW, pipeline_window=WINDOW),
    ),
    (
        "adaptive",
        dict(
            batch_window=WINDOW, pipeline_window=WINDOW,
            batch_policy="adaptive", batch_max_msgs=SIZE_CAP,
            pipeline_policy="adaptive", pipeline_max_group=SIZE_CAP,
        ),
    ),
]

SLO_TARGET = 80.0
N_OPEN_LOOP = 120
N_FLASH = 160


# -- part A: closed-loop latency recovery ------------------------------


def measure_closed(protocol, *, window, policy="static", size_cap=0,
                   n_txns=16, n_sites=2):
    specs = [
        SiteSpec(f"s{i}", tables={f"t{i}": {k: 0 for k in range(n_txns)}})
        for i in range(n_sites)
    ]
    fed = protocol_federation(
        protocol,
        specs,
        granularity="per_site",
        seed=11,
        batch_window=window,
        pipeline_window=window,
        batch_policy=policy,
        batch_max_msgs=size_cap,
        pipeline_policy=policy,
        pipeline_max_group=size_cap,
    )
    batches = [
        {
            "operations": [
                increment(f"t{i}", t % n_txns, 1) for i in range(n_sites)
            ],
            "name": f"T{t}",
            "delay": 0.25 * (t % 4),
        }
        for t in range(n_txns)
    ]
    outcomes = fed.run_transactions(batches)
    return {
        "committed": [o.gtxn_id.split("~")[0] for o in outcomes if o.committed],
        "envelopes_per_txn": fed.network.envelopes / n_txns,
        "mean_resp": sum(o.response_time for o in outcomes) / n_txns,
    }


def recovery_numbers() -> dict:
    plain = measure_closed("after", window=0.0)
    static = measure_closed("after", window=WINDOW)
    adaptive = measure_closed(
        "after", window=WINDOW, policy="adaptive", size_cap=SIZE_CAP
    )
    static_reduction = 1.0 - (
        static["envelopes_per_txn"] / plain["envelopes_per_txn"]
    )
    adaptive_reduction = 1.0 - (
        adaptive["envelopes_per_txn"] / plain["envelopes_per_txn"]
    )
    regression = static["mean_resp"] - plain["mean_resp"]
    recovered = static["mean_resp"] - adaptive["mean_resp"]
    return {
        "mean_response": {
            "unbatched": round(plain["mean_resp"], 2),
            "static": round(static["mean_resp"], 2),
            "adaptive": round(adaptive["mean_resp"], 2),
        },
        "envelope_reduction": {
            "static": round(static_reduction, 3),
            "adaptive": round(adaptive_reduction, 3),
        },
        "recovered_fraction": round(recovered / regression, 3),
        "reduction_kept": round(adaptive_reduction / static_reduction, 3),
        "outcomes_identical": (
            adaptive["committed"] == plain["committed"]
            and static["committed"] == plain["committed"]
        ),
    }


# -- part B: open-loop latency-throughput Pareto points ----------------


def open_loop_federation(protocol, granularity, config) -> Federation:
    specs = [
        SiteSpec(
            f"s{i}",
            tables={f"t{i}": {f"k{j}": 100 for j in range(64)}},
            preparable=True,
            buckets=64,
        )
        for i in range(2)
    ]
    return Federation(
        specs,
        FederationConfig(
            seed=9,
            batch_window=config.get("batch_window", 0.0),
            batch_policy=config.get("batch_policy", "static"),
            batch_max_msgs=config.get("batch_max_msgs", 0),
            gtm=GTMConfig(
                protocol=protocol,
                granularity=granularity,
                pipeline_window=config.get("pipeline_window", 0.0),
                pipeline_policy=config.get("pipeline_policy", "static"),
                pipeline_max_group=config.get("pipeline_max_group", 0),
            ),
        ),
    )


def open_loop_traffic(n_txns):
    return [
        {
            "operations": [
                increment("t0", f"k{n % 64}", -1),
                increment("t1", f"k{n % 64}", 1),
            ]
        }
        for n in range(n_txns)
    ]


def measure_open(protocol, granularity, config, **spec_kwargs) -> dict:
    fed = open_loop_federation(protocol, granularity, config)
    spec = OpenLoopSpec(
        arrival_rate=spec_kwargs.pop("arrival_rate", 0.3),
        n_txns=spec_kwargs.pop("n_txns", N_OPEN_LOOP),
        window_per_coordinator=6,
        **spec_kwargs,
    )
    result = OpenLoopDriver(fed, spec).run(open_loop_traffic(spec.n_txns))
    return {
        "throughput": round(result.throughput, 4),
        "p99": round(result.p99, 2),
        "p99_corrected": result.as_dict()["p99_admitted_or_shed"],
        "shed": result.shed,
        "committed": result.committed,
    }


def pareto_points() -> dict:
    points = {}
    for label, protocol, granularity in PARETO_PROTOCOLS:
        points[label] = {
            name: measure_open(protocol, granularity, config)
            for name, config in CONFIGS
        }
    return points


# -- part C: SLO under a flash crowd -----------------------------------


def flash_crowd(slo_p99: float) -> dict:
    fed = open_loop_federation("2pc", "per_site", CONFIGS[0][1])
    spec = OpenLoopSpec(
        arrival_rate=0.35,
        n_txns=N_FLASH,
        window_per_coordinator=6,
        arrival="flash_crowd",
        arrival_params={"at": 60.0, "spike_factor": 10.0, "decay": 60.0},
        slo_p99=slo_p99,
    )
    result = OpenLoopDriver(fed, spec).run(open_loop_traffic(N_FLASH))
    served = sorted(result.served_latencies)
    served_p99 = (
        served[min(len(served) - 1, int(0.99 * len(served)))] if served else 0.0
    )
    return {
        "served_p99": round(served_p99, 2),
        "shed": result.shed,
        "slo_sheds": result.slo_sheds,
        "shed_fraction": round(
            result.shed / max(1, result.shed + result.completed), 3
        ),
        "committed": result.committed,
        "completed": result.completed,
    }


def slo_numbers() -> dict:
    uncontrolled = flash_crowd(0.0)
    controlled = flash_crowd(SLO_TARGET)
    return {
        "target_p99": SLO_TARGET,
        "uncontrolled": uncontrolled,
        "controlled": controlled,
        "held": controlled["served_p99"] <= SLO_TARGET * 1.1,
    }


def headline() -> dict:
    """The BENCH_perf.json ``adaptive`` section."""
    return {
        "recovery": recovery_numbers(),
        "pareto": pareto_points(),
        "slo": slo_numbers(),
    }


def run_experiment() -> str:
    recovery = recovery_numbers()
    assert recovery["outcomes_identical"], "adaptive batching changed outcomes"
    assert recovery["recovered_fraction"] >= 0.5, (
        f"adaptive recovered only {recovery['recovered_fraction']:.0%} of the "
        "static batching latency regression"
    )
    assert recovery["reduction_kept"] >= 0.8, (
        f"adaptive kept only {recovery['reduction_kept']:.0%} of the static "
        "envelope reduction"
    )

    rows = []
    points = pareto_points()
    for label, configs in points.items():
        for name, point in configs.items():
            rows.append([
                label, name, point["throughput"], point["p99"],
                point["p99_corrected"] if point["p99_corrected"] is not None
                else "inf", point["shed"],
            ])
    pareto_table = format_table(
        ["protocol", "config", "throughput", "p99", "p99 corrected", "shed"],
        rows,
        title="EXP-A6 part B: open-loop latency-throughput points "
        f"(window {WINDOW}, size cap {SIZE_CAP})",
    )

    slo = slo_numbers()
    assert slo["uncontrolled"]["served_p99"] > 2 * SLO_TARGET, (
        "flash crowd too mild to exercise the SLO controller"
    )
    assert slo["held"], (
        f"SLO controller missed the target: served p99 "
        f"{slo['controlled']['served_p99']} vs {SLO_TARGET}"
    )
    assert slo["controlled"]["shed_fraction"] < 0.6, (
        "SLO controller collapsed into shedding most of the traffic"
    )
    assert slo["controlled"]["committed"] > 0.4 * slo["controlled"]["completed"]

    recovery_table = format_table(
        ["config", "mean resp", "envelope reduction"],
        [
            ["unbatched", recovery["mean_response"]["unbatched"], "-"],
            [
                "static w=1.0", recovery["mean_response"]["static"],
                f"{recovery['envelope_reduction']['static']:.1%}",
            ],
            [
                "adaptive w=1.0", recovery["mean_response"]["adaptive"],
                f"{recovery['envelope_reduction']['adaptive']:.1%}",
            ],
        ],
        title="EXP-A6 part A: commit-after latency recovery "
        f"(recovered {recovery['recovered_fraction']:.0%}, "
        f"kept {recovery['reduction_kept']:.0%} of reduction)",
    )

    slo_table = format_table(
        ["run", "served p99", "shed", "shed fraction", "committed"],
        [
            [
                "uncontrolled", slo["uncontrolled"]["served_p99"],
                slo["uncontrolled"]["shed"],
                slo["uncontrolled"]["shed_fraction"],
                slo["uncontrolled"]["committed"],
            ],
            [
                f"slo_p99={SLO_TARGET:g}", slo["controlled"]["served_p99"],
                slo["controlled"]["shed"],
                slo["controlled"]["shed_fraction"],
                slo["controlled"]["committed"],
            ],
        ],
        title="EXP-A6 part C: flash crowd, p99 SLO admission "
        f"(held={slo['held']})",
    )

    return "\n\n".join([recovery_table, pareto_table, slo_table])


def test_a6_adaptive(benchmark):
    save_result("a6_adaptive", run_once(benchmark, run_experiment))
