"""EXP-R1 -- chaos matrix: robustness and its performance price.

Sweep the intensity of a seeded randomized fault schedule -- message
loss, duplication, reordering, link partitions, crash/recover cycles
and erroneous local aborts -- over the reliable transport and measure
what the §3 fault-tolerance machinery costs: committed throughput and
mean response degrade with the fault level, and the time between the
last fault and the last transaction reaching a terminal state
(*time-to-resolution*) grows, but every run stays atomic, serializable,
conserved and convergent.

Level 0.0 is the clean-network baseline (reliable delivery on, zero
faults); level 1.0 matches the chaos test suite's defaults; level 2.0
doubles every fault rate.  Each level aggregates several seeds for the
two protocols whose recovery paths differ most: 2PC (prepared in-doubt
locals, hardened decisions) and commit-after (§3.2 redo obligations).
"""

from repro.bench import format_table
from repro.faults.chaos import ChaosSpec, run_chaos

from benchmarks._common import run_once, save_result

SEEDS = [1, 2, 3]
FAULT_LEVELS = [0.0, 0.5, 1.0, 2.0]
PROTOCOLS = [("2pc", "per_site"), ("after", "per_site")]

#: Fault-injection and reliability counters aggregated over the last
#: ``run_experiment`` call; ``run_all.py`` records them in the
#: per-bench JSON report.
FAULT_COUNTERS: dict[str, int] = {}

_COUNTER_KEYS = (
    "injected_aborts", "injected_crashes", "injected_partitions",
    "retransmissions", "duplicates_suppressed", "abandoned_messages",
    "duplicate_requests", "recovery_passes", "recovery_resolved_indoubt",
    "recovery_redriven_redos", "recovery_orphans_terminated",
)


def chaos_spec(protocol: str, granularity: str, seed: int, level: float) -> ChaosSpec:
    base = ChaosSpec(protocol=protocol, granularity=granularity, seed=seed)
    return ChaosSpec(
        protocol=protocol,
        granularity=granularity,
        seed=seed,
        loss_rate=base.loss_rate * level,
        dup_rate=base.dup_rate * level,
        reorder_rate=base.reorder_rate * level,
        crash_rate=base.crash_rate * level,
        partition_count=int(round(base.partition_count * level)),
        erroneous_abort_rate=base.erroneous_abort_rate * level,
    )


def measure_level(level: float) -> dict:
    """Aggregate one fault level across ``SEEDS`` x ``PROTOCOLS``."""
    committed = aborted = 0
    resp_sum = resp_n = 0
    ttr_sum = runs = 0
    all_ok = True
    counters = dict.fromkeys(_COUNTER_KEYS, 0)
    for protocol, granularity in PROTOCOLS:
        for seed in SEEDS:
            result = run_chaos(chaos_spec(protocol, granularity, seed, level))
            runs += 1
            all_ok = all_ok and result.ok
            committed += result.committed
            aborted += result.aborted
            ttr_sum += result.time_to_resolution
            metrics = result.federation.gtm.metrics()
            if result.committed:
                resp_sum += metrics["mean_response_time"] * result.committed
                resp_n += result.committed
            for key in _COUNTER_KEYS:
                counters[key] += result.counters.get(key, 0)
    return {
        "level": level,
        "runs": runs,
        "all_ok": all_ok,
        "committed": committed,
        "aborted": aborted,
        "mean_resp": resp_sum / max(1, resp_n),
        "mean_ttr": ttr_sum / max(1, runs),
        "counters": counters,
    }


def headline() -> dict:
    """Compact chaos summary for BENCH_perf.json."""
    levels = {}
    for level in (0.0, 1.0, 2.0):
        row = measure_level(level)
        levels[f"{level:g}x"] = {
            "all_ok": row["all_ok"],
            "committed": row["committed"],
            "aborted": row["aborted"],
            "mean_response": round(row["mean_resp"], 1),
            "mean_time_to_resolution": round(row["mean_ttr"], 1),
            "retransmissions": row["counters"]["retransmissions"],
            "duplicates_suppressed": row["counters"]["duplicates_suppressed"],
            "injected_crashes": row["counters"]["injected_crashes"],
        }
    return {
        "scenario": (
            f"{len(SEEDS)} seeds x {len(PROTOCOLS)} protocols per level, "
            "12 txns over 3 sites, reliable transport"
        ),
        "invariants_held_at_every_level": all(
            row["all_ok"] for row in levels.values()
        ),
        "fault_levels": levels,
    }


def run_experiment() -> str:
    rows = []
    by_level = {}
    FAULT_COUNTERS.clear()
    for level in FAULT_LEVELS:
        row = measure_level(level)
        by_level[level] = row
        for key, value in row["counters"].items():
            FAULT_COUNTERS[key] = FAULT_COUNTERS.get(key, 0) + value
        rows.append([
            level, row["runs"], row["committed"], row["aborted"],
            round(row["mean_resp"], 1), round(row["mean_ttr"], 1),
            row["counters"]["retransmissions"],
            row["counters"]["duplicates_suppressed"],
            row["counters"]["injected_crashes"],
            row["counters"]["recovery_passes"],
            "OK" if row["all_ok"] else "VIOLATED",
        ])
    table = format_table(
        ["fault level", "runs", "committed", "aborted", "mean resp",
         "time-to-res", "retransmits", "dups supp", "crashes",
         "recov passes", "invariants"],
        rows,
        title="EXP-R1: chaos sweep -- fault level vs throughput/latency/resolution",
    )
    # Correctness never degrades, whatever the fault level.
    assert all(row[-1] == "OK" for row in rows)
    # The clean baseline needs no fault machinery at all ...
    assert by_level[0.0]["counters"]["injected_crashes"] == 0
    assert by_level[0.0]["mean_ttr"] == 0.0
    # ... while the full-chaos levels exercise every counter we claim.
    assert by_level[1.0]["counters"]["retransmissions"] > 0
    assert by_level[1.0]["counters"]["injected_crashes"] > 0
    # Faults cost performance: latency and resolution time degrade.
    assert by_level[2.0]["mean_resp"] > by_level[0.0]["mean_resp"]
    assert by_level[2.0]["mean_ttr"] > by_level[0.0]["mean_ttr"]
    return table


def test_r1_chaos(benchmark):
    save_result("r1_chaos", run_once(benchmark, run_experiment))
