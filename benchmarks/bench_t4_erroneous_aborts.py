"""EXP-T4 -- §3.2: "If local transactions have to be repeated
frequently, performance decreases."

Sweep the probability that a local system erroneously aborts a
subtransaction after its ready answer (commit-after protocol).  The
table reports redo executions and throughput; the paper's remark is the
expected downward slope, with correctness (money conservation) intact
throughout.
"""

from repro.bench import closed_loop, format_table, protocol_federation
from repro.core.invariants import atomicity_report
from repro.faults import FaultInjector
from repro.integration.federation import SiteSpec
from repro.workloads import WorkloadGenerator, WorkloadSpec

from benchmarks._common import run_once, save_result

HORIZON = 900
FAULT_RATES = [0.0, 0.2, 0.5, 0.8]

#: Injected-fault accounting over the last ``run_experiment`` call,
#: recorded by ``run_all.py`` in the per-bench JSON report.
FAULT_COUNTERS: dict[str, int] = {}


def measure(rate: float):
    specs = [
        SiteSpec(f"s{i}", tables={f"t{i}": {f"k{j}": 100 for j in range(8)}})
        for i in range(2)
    ]
    fed = protocol_federation("after", specs, granularity="per_site", seed=29)
    injector = FaultInjector(fed)
    if rate:
        injector.erroneous_aborts_after_ready(rate, delay=0.3)
    workload = WorkloadSpec(
        ops_per_txn=4, read_fraction=0.0, increment_fraction=1.0,
        hotspot_fraction=0.0,
    )
    generator = WorkloadGenerator(
        workload, [(f"t{i}", f"k{j}") for i in range(2) for j in range(8)]
    )
    stats = closed_loop(
        fed, generator.next_transaction, n_workers=4, horizon=HORIZON,
        label=f"after@{rate}",
    )
    report = atomicity_report(fed)
    return stats, report, injector.counters()


def run_experiment() -> str:
    rows = []
    throughputs = {}
    FAULT_COUNTERS.clear()
    for rate in FAULT_RATES:
        stats, report, counters = measure(rate)
        for key, value in counters.items():
            FAULT_COUNTERS[key] = FAULT_COUNTERS.get(key, 0) + value
        throughputs[rate] = stats.throughput
        rows.append([
            rate, stats.committed, stats.redo_executions,
            round(stats.redo_executions / max(1, stats.committed), 2),
            round(stats.throughput * 1000, 2),
            round(stats.mean_response_time, 1),
            "OK" if report.ok else "VIOLATED",
        ])
    table = format_table(
        ["erroneous abort rate", "committed", "redo txns", "redos/commit",
         "thr (txn/1k)", "mean resp", "atomicity"],
        rows,
        title="EXP-T4 (§3.2): erroneous-abort sweep under commit-after",
    )
    assert all(row[-1] == "OK" for row in rows)   # atomicity never lost
    assert throughputs[0.8] < throughputs[0.0]     # performance decreases
    assert rows[-1][2] > rows[0][2]                # redo work grows
    return table


def test_t4_erroneous_aborts(benchmark):
    save_result("t4_erroneous_aborts", run_once(benchmark, run_experiment))
