"""EXP-P1 -- Paxos Commit: replicated decisions at 2PC's F=0 price.

Three claims, one per section:

**Cost (the §4-style table).**  Per committed transaction, Paxos
Commit with ``F = 0`` forces exactly as many decision-log writes as
2PC -- one ballot-0 acceptance on a single acceptor versus one
hardened decision record.  Fault tolerance is bought per replica:
``F = 1`` forces ``2F + 1 = 3`` writes per commit and adds the
Phase 2a/2b message round to each acceptor.

**Coordinator kill.**  With a single central GTM, 2PC leaves every
in-flight prepared local blocked in doubt when the coordinator dies
and never recovers it -- the blocking window the paper motivates.  A
sharded 2PC pool resolves the same kill through failover from the
shared decision log after a bounded pause.  Paxos Commit resolves it
through leader takeover at a higher ballot -- and keeps doing so when
``F`` acceptors are killed *together with* the coordinator, a failure
the classic protocols cannot even express (their central log is
assumed immortal).

**Zero blocked transactions.**  Every paxos configuration ends with no
unresolved in-doubt transaction and the invariant battery intact; the
systematic version of this claim is ``python -m repro check --protocol
paxos --coordinators 2 --coordinator-crash-points --acceptor-crashes 1``.
"""

from repro.bench import format_table
from repro.core.gtm import GTMConfig
from repro.core.pool import AllCoordinatorsDown
from repro.core.invariants import atomicity_report, serializability_ok
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import Operation
from repro.core.protocols import preparable_protocols

from benchmarks._common import save_result

N_SITES = 3
N_KEYS = 16
COST_TXNS = 8
#: Wide spacing for the cost section: no decision-group batching, so
#: per-transaction force counts compare one to one.
COST_SPACING = 40.0
KILL_TXNS = 8
#: Early enough that shard 1's transactions (G0..G3 by crc32 routing)
#: are still in flight when their coordinator dies.
KILL_AT = 10.0
HORIZON = 6000.0

#: Headline numbers of the last ``run_experiment`` call (run_all.py).
METRICS: dict = {}
#: Fault accounting of the kill runs, including the per-destination
#: retransmit give-up counter (``retransmit_budget_exhausted``).
FAULT_COUNTERS: dict = {}


def build(protocol: str, coordinators: int = 1, paxos_f: int = 1,
          seed: int = 7) -> Federation:
    preparable = protocol in preparable_protocols()
    specs = [
        SiteSpec(
            f"s{i}",
            tables={f"t{i}": {f"k{j}": 100 for j in range(N_KEYS)}},
            preparable=preparable,
        )
        for i in range(N_SITES)
    ]
    return Federation(
        specs,
        FederationConfig(
            seed=seed,
            latency=1.0,
            coordinators=coordinators,
            paxos_f=paxos_f,
            gtm=GTMConfig(protocol=protocol, granularity="per_site"),
        ),
    )


def transfers(n: int, spacing: float) -> list[dict]:
    return [
        {
            "operations": [
                Operation("increment", f"t{i % N_SITES}", f"k{i % N_KEYS}", -1),
                Operation("increment", f"t{(i + 1) % N_SITES}", f"k{i % N_KEYS}", 1),
            ],
            "name": f"G{i}",
            "delay": i * spacing,
        }
        for i in range(n)
    ]


# ---------------------------------------------------------------------------
# Section 1: the §4-style cost table
# ---------------------------------------------------------------------------


def measure_cost(protocol: str, paxos_f: int = 0) -> dict:
    fed = build(protocol, paxos_f=paxos_f)
    outcomes = fed.run_transactions(transfers(COST_TXNS, COST_SPACING))
    assert all(outcome.committed for outcome in outcomes)
    assert atomicity_report(fed).ok
    committed = len(outcomes)
    if protocol == "paxos":
        decision_forces = fed.acceptors.total_forces()
        label = f"paxos F={paxos_f}"
    else:
        decision_forces = fed.gtm.decision_log.forces
        label = protocol
    return {
        "label": label,
        "committed": committed,
        "decision_forces": decision_forces,
        "forces_per_commit": decision_forces / committed,
        "messages_per_commit": fed.network.sent / committed,
        "mean_response": (
            sum(o.response_time for o in outcomes) / committed
        ),
    }


# ---------------------------------------------------------------------------
# Section 2: coordinator kill -- blocked, paused, or taken over
# ---------------------------------------------------------------------------


def measure_kill(
    protocol: str,
    coordinators: int,
    kill_index: int = 0,
    paxos_f: int = 1,
    acceptor_crashes: int = 0,
) -> dict:
    """Kill a coordinator mid-traffic (never restarted) and audit."""
    fed = build(protocol, coordinators=coordinators, paxos_f=paxos_f)
    if acceptor_crashes:
        for i in range(acceptor_crashes):
            fed.crash_acceptor(i, at=KILL_AT)

    def submitter(index: int, batch: dict):
        yield batch["delay"]
        try:
            outcome = yield fed.submit(batch["operations"], name=batch["name"])
        except AllCoordinatorsDown:
            return None  # single-GTM config after the kill: rejected
        return outcome

    processes = [
        fed.kernel.spawn(submitter(i, batch), name=f"client:{i}")
        for i, batch in enumerate(transfers(KILL_TXNS, spacing=4.0))
    ]
    fed.crash_coordinator(kill_index, at=KILL_AT)
    fed.run(until=HORIZON)
    unresolved = fed.pool.unresolved_orphans()
    finish_times = [
        outcome.finish_time
        for gtm in fed.coordinators
        for outcome in gtm.outcomes
        if outcome.finish_time is not None
    ]
    # How long past the kill the system still needed to settle
    # everything it could settle -- the failover/takeover pause.  A
    # blocked configuration shows unresolved > 0 instead: its pause is
    # unbounded.
    pause = max((t - KILL_AT for t in finish_times if t > KILL_AT), default=0.0)
    return {
        "config": (
            f"{protocol} x{coordinators}"
            + (f" F={paxos_f}" if protocol == "paxos" else "")
            + (f" +{acceptor_crashes} acceptor kill" if acceptor_crashes else "")
        ),
        "submitted": KILL_TXNS,
        "clients_done": sum(1 for p in processes if p.done),
        "unresolved_indoubt": len(unresolved),
        "resolution_pause": pause,
        "takeovers": fed.pool.takeovers_started,
        "failovers": fed.pool.failovers_started,
        "atomicity_ok": atomicity_report(fed).ok,
        "serializable": serializability_ok(fed),
        "counters": {
            **fed.network.reliability_counts(),
            "paxos_concluded": sum(
                g.recovery.paxos_concluded for g in fed.coordinators
            ),
        },
    }


# ---------------------------------------------------------------------------


def headline() -> dict:
    """Compact summary for BENCH_perf.json."""
    costs = [
        measure_cost("2pc"),
        measure_cost("paxos", paxos_f=0),
        measure_cost("paxos", paxos_f=1),
    ]
    blocked = measure_kill("2pc", coordinators=1)
    paused = measure_kill("2pc", coordinators=2, kill_index=1)
    paxos = measure_kill(
        "paxos", coordinators=2, kill_index=1, paxos_f=1, acceptor_crashes=1
    )
    return {
        "scenario": (
            f"{COST_TXNS} spaced transfers over {N_SITES} sites (cost); "
            f"{KILL_TXNS} transfers with a coordinator kill at t={KILL_AT} "
            "never restarted (kill)"
        ),
        "cost_per_commit": {
            row["label"]: {
                "decision_forces": round(row["forces_per_commit"], 2),
                "messages": round(row["messages_per_commit"], 2),
                "mean_response": round(row["mean_response"], 2),
            }
            for row in costs
        },
        "f0_force_parity_with_2pc": (
            costs[1]["decision_forces"] == costs[0]["decision_forces"]
        ),
        "coordinator_kill": {
            row["config"]: {
                "unresolved_indoubt": row["unresolved_indoubt"],
                "resolution_pause": round(row["resolution_pause"], 1),
                "takeovers": row["takeovers"],
                "failovers": row["failovers"],
                "invariants_ok": row["atomicity_ok"] and row["serializable"],
            }
            for row in (blocked, paused, paxos)
        },
        "classic_single_gtm_blocks": blocked["unresolved_indoubt"] > 0,
        "paxos_nonblocking_with_f_acceptor_kill": (
            paxos["unresolved_indoubt"] == 0
        ),
    }


def run_experiment() -> str:
    METRICS.clear()
    FAULT_COUNTERS.clear()

    costs = [
        measure_cost("2pc"),
        measure_cost("paxos", paxos_f=0),
        measure_cost("paxos", paxos_f=1),
        measure_cost("paxos", paxos_f=2),
    ]
    table = format_table(
        ["config", "committed", "decision forces/txn", "msgs/txn",
         "resp(mean)"],
        [
            [
                row["label"], row["committed"],
                round(row["forces_per_commit"], 2),
                round(row["messages_per_commit"], 2),
                round(row["mean_response"], 2),
            ]
            for row in costs
        ],
        title="EXP-P1a: decision durability cost per committed transaction",
    )

    kills = [
        measure_kill("2pc", coordinators=1),
        measure_kill("2pc", coordinators=2, kill_index=1),
        measure_kill("paxos", coordinators=2, kill_index=1, paxos_f=1),
        measure_kill(
            "paxos", coordinators=2, kill_index=1, paxos_f=1,
            acceptor_crashes=1,
        ),
    ]
    table += "\n\n" + format_table(
        ["config", "submitted", "unresolved", "pause", "takeovers",
         "failovers", "invariants"],
        [
            [
                row["config"], row["submitted"], row["unresolved_indoubt"],
                "blocked" if row["unresolved_indoubt"]
                else round(row["resolution_pause"], 1),
                row["takeovers"], row["failovers"],
                "OK" if row["atomicity_ok"] and row["serializable"]
                else "VIOLATED",
            ]
            for row in kills
        ],
        title=(
            f"EXP-P1b: coordinator killed at t={KILL_AT}, never restarted"
        ),
    )

    # The tentpole claims, enforced.
    assert costs[1]["decision_forces"] == costs[0]["decision_forces"], (
        "F=0 Paxos Commit must force exactly like 2PC: "
        f"{costs[1]['decision_forces']} vs {costs[0]['decision_forces']}"
    )
    assert costs[2]["decision_forces"] == 3 * costs[2]["committed"]
    assert costs[3]["decision_forces"] == 5 * costs[3]["committed"]
    assert kills[0]["unresolved_indoubt"] > 0, (
        "a single central 2PC GTM kill must exhibit the blocking window"
    )
    for row in kills[1:]:
        assert row["unresolved_indoubt"] == 0, row
        assert row["atomicity_ok"] and row["serializable"], row
        assert row["clients_done"] == KILL_TXNS, row
    assert kills[2]["takeovers"] >= 1 and kills[3]["takeovers"] >= 1

    METRICS.update(
        forces_per_commit={
            row["label"]: round(row["forces_per_commit"], 2) for row in costs
        },
        messages_per_commit={
            row["label"]: round(row["messages_per_commit"], 2) for row in costs
        },
        kill_unresolved={
            row["config"]: row["unresolved_indoubt"] for row in kills
        },
        kill_pause={
            row["config"]: round(row["resolution_pause"], 1) for row in kills
        },
    )
    FAULT_COUNTERS.update({
        row["config"]: row["counters"] for row in kills
    })
    return table


def test_p1_paxos(benchmark):
    from benchmarks._common import run_once

    save_result("p1_paxos", run_once(benchmark, run_experiment))
