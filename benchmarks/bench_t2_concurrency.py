"""EXP-T2 -- §4.3 claim 2: degree of concurrency under contention.

Closed-loop throughput and mean response time as the multiprogramming
level grows, on a hotspot increment workload.  Expected shape: the
commit-before + multi-level configuration dominates every serializable
alternative because L0 locks are released at the end of each action and
commuting increments do not conflict at L1; commit-after trails even
2PC (its extra read/write L1 layer serializes the commuting work).
"""

from repro.bench import closed_loop, format_table, protocol_federation
from repro.integration.federation import SiteSpec
from repro.workloads import WorkloadGenerator, WorkloadSpec

from benchmarks._common import run_once, save_result

HORIZON = 1200
MPLS = [1, 4, 8]

WORKLOAD = WorkloadSpec(
    ops_per_txn=4,
    read_fraction=0.2,
    increment_fraction=0.7,
    hotspot_fraction=0.7,
    hot_object_count=3,
)


def site_specs():
    return [
        SiteSpec(f"s{i}", tables={f"t{i}": {f"k{j}": 100 for j in range(6)}})
        for i in range(3)
    ]


def objects():
    return [(f"t{i}", f"k{j}") for i in range(3) for j in range(6)]


def measure(protocol: str, granularity: str, mpl: int):
    fed = protocol_federation(protocol, site_specs(), granularity=granularity, seed=42)
    generator = WorkloadGenerator(WORKLOAD, objects())
    return closed_loop(
        fed, generator.next_transaction, n_workers=mpl, horizon=HORIZON,
        label=f"{protocol}@{mpl}",
    )


def run_experiment() -> str:
    configs = [
        ("before", "per_action", "commit-before+MLT"),
        ("2pc", "per_site", "2PC"),
        ("after", "per_site", "commit-after"),
    ]
    rows = []
    results: dict[tuple[str, int], float] = {}
    for protocol, granularity, label in configs:
        for mpl in MPLS:
            stats = measure(protocol, granularity, mpl)
            results[(label, mpl)] = stats.throughput
            rows.append([
                label, mpl, stats.committed, stats.aborted,
                round(stats.throughput * 1000, 2),
                round(stats.mean_response_time, 1),
                round(stats.p95_response_time, 1),
            ])
    table = format_table(
        ["protocol", "MPL", "committed", "aborted", "thr (txn/1k time)",
         "mean resp", "p95 resp"],
        rows,
        title="EXP-T2 (§4.3): throughput vs multiprogramming level, hotspot increments",
    )
    # The paper's ordering at high contention.
    top_mpl = MPLS[-1]
    assert results[("commit-before+MLT", top_mpl)] > results[("2PC", top_mpl)]
    assert results[("2PC", top_mpl)] > results[("commit-after", top_mpl)]
    ratio = results[("commit-before+MLT", top_mpl)] / results[("2PC", top_mpl)]
    table += f"\nbefore+MLT vs 2PC at MPL={top_mpl}: {ratio:.2f}x"
    return table


def test_t2_concurrency(benchmark):
    save_result("t2_concurrency", run_once(benchmark, run_experiment))
