"""EXP-O1: observability overhead on the simulation hot path.

Runs the same deterministic transfer workload three times -- metrics
off, metrics on, metrics + spans on -- and measures *host* wall-clock
throughput.  Metrics are pull-based, so the "on" run must stay within
noise of "off"; span mode adds the opt-in ``log_force`` trace records
and pays their emission cost.

The throughput numerator is the kernel's *dispatched event* count,
which is identical in all three modes (asserted): observability never
schedules events, it only observes them.  Dividing by the per-mode
trace-record count instead (as an earlier revision did) is wrong --
span mode emits *extra* trace records for the same simulated work, so
the heavier mode showed a higher "rate" than baseline.  The simulated
outcome is identical in all three modes (the golden no-interference
test locks this down byte-for-byte); only Python-side cost may
differ.  ``run_all.py`` records the measured rates in
``BENCH_perf.json`` under ``"obs"``.
"""

import gc
import time

from repro.bench import format_table
from repro.core.gtm import GTMConfig
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment
from repro.net.message import reset_message_ids

from benchmarks._common import run_once, save_result

N_TXNS = 120
N_SITES = 3

#: Refreshed by run_experiment(); recorded in the per-bench JSON and
#: distilled into BENCH_perf.json by run_all.headline_numbers().
METRICS: dict = {}


def _workload() -> list[dict]:
    batches = []
    for index in range(N_TXNS):
        src = index % N_SITES
        dst = (index + 1) % N_SITES
        batches.append({
            "operations": [
                increment(f"t{src}", f"k{index % 4}", -1),
                increment(f"t{dst}", f"k{index % 4}", 1),
            ],
            "name": f"X{index}",
            "delay": index * 20.0,  # staggered: measure cost, not contention
        })
    return batches


def measure(metrics: bool, spans: bool) -> dict:
    """One full-federation run; returns trace events/s and run facts."""
    reset_message_ids()
    specs = [
        SiteSpec(
            f"s{i}",
            tables={f"t{i}": {f"k{j}": 1000 for j in range(4)}},
        )
        for i in range(N_SITES)
    ]
    fed = Federation(
        specs,
        FederationConfig(
            seed=17, metrics=metrics, spans=spans,
            gtm=GTMConfig(protocol="after", granularity="per_site"),
        ),
    )
    batches = _workload()
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        outcomes = fed.run_transactions(batches)
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    if metrics:
        fed.obs.collect()
    # The numerator is mode-independent: every mode dispatches the
    # same kernel events for the same simulated run.  Trace records
    # are reported separately (span mode emits more of them).
    events = fed.kernel.events_dispatched
    return {
        "events": events,
        "trace_records": len(fed.kernel.trace.records),
        "elapsed": elapsed,
        "rate": events / elapsed,
        "committed": sum(1 for o in outcomes if o.committed),
        "end_time": fed.kernel.now,
    }


def measure_modes() -> dict[str, dict]:
    """Best-of-three per mode (wall clock is noisy downwards only)."""
    modes = {
        "off": (False, False),
        "metrics": (True, False),
        "metrics+spans": (True, True),
    }
    measure(False, False)  # warm-up
    results = {}
    for label, (metrics, spans) in modes.items():
        results[label] = max(
            (measure(metrics, spans) for _ in range(3)),
            key=lambda m: m["rate"],
        )
    return results


def run_experiment() -> str:
    results = measure_modes()
    baseline = results["off"]["rate"]
    METRICS.clear()
    rows = []
    for label, result in results.items():
        relative = result["rate"] / baseline
        METRICS[label] = {
            "events": result["events"],
            "trace_records": result["trace_records"],
            "events_per_sec": round(result["rate"]),
            "relative_to_off": round(relative, 3),
            "committed": result["committed"],
        }
        rows.append([
            label,
            result["events"],
            result["trace_records"],
            f"{result['elapsed'] * 1e3:.1f}ms",
            f"{result['rate'] / 1e3:.0f}k/s",
            f"{relative:.2f}x",
            result["committed"],
        ])
    # Normalisation guarantee: observability must not change what the
    # simulation *does* -- same dispatched events, same commits.
    assert len({r["events"] for r in results.values()}) == 1, (
        "modes dispatched different event counts: "
        f"{ {label: r['events'] for label, r in results.items()} }"
    )
    assert len({r["committed"] for r in results.values()}) == 1, (
        "observability changed the simulated outcome"
    )
    assert len({r["end_time"] for r in results.values()}) == 1
    return format_table(
        ["observability", "kernel events", "trace records", "wall time",
         "events/s", "vs off", "committed"],
        rows,
        title=(
            f"EXP-O1: observability overhead "
            f"({N_TXNS} transfers over {N_SITES} sites, commit-after)"
        ),
    )


def obs_headline() -> dict:
    """The BENCH_perf.json "obs" section (runs the sweep if needed)."""
    if not METRICS:
        run_experiment()
    return dict(METRICS)


def test_obs_overhead(benchmark):
    save_result("o1_obs_overhead", run_once(benchmark, run_experiment))
