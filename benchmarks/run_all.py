"""Run every benchmark and publish machine-readable results.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/run_all.py [--only PREFIX]

Each ``bench_*.py`` module exposes ``run_experiment() -> str``; this
driver imports them all, runs each experiment once (they are
deterministic simulations -- one round is exact), writes the rendered
table next to the ``.txt`` snapshots as ``benchmarks/results/<name>.json``
and finally distils the headline performance numbers into
``BENCH_perf.json`` at the repo root:

* physical envelopes and logical messages per transaction, batched vs
  unbatched, for commit-after and commit-before/per_site;
* forced decision-log writes per committed transaction;
* mean response times at both settings;
* wall-clock kernel throughput (events/s, no trace sink) and its
  speedup over the seed tree;
* the EXP-R1 chaos sweep: invariants held, throughput/latency and
  time-to-resolution per fault level;
* the EXP-A6 adaptive section: latency recovery vs static batching,
  per-protocol open-loop latency-throughput Pareto points, and the
  flash-crowd SLO hold.

Benchmarks that inject faults additionally publish a module-level
``FAULT_COUNTERS`` dict (injected aborts/crashes, retransmissions,
duplicates suppressed, recovery passes...), recorded verbatim in the
per-bench JSON report.
"""

from __future__ import annotations

import importlib
import json
import pathlib
import platform
import sys
import time
import traceback

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))


def bench_modules() -> list[str]:
    return sorted(
        path.stem
        for path in (REPO_ROOT / "benchmarks").glob("bench_*.py")
    )


def run_benchmarks(only: str | None = None) -> list[dict]:
    reports = []
    for name in bench_modules():
        if only and not name.startswith(only):
            continue
        module = importlib.import_module(f"benchmarks.{name}")
        started = time.perf_counter()
        try:
            output = module.run_experiment()
            ok, error = True, None
        except Exception:
            output, ok, error = "", False, traceback.format_exc()
        report = {
            "bench": name,
            "ok": ok,
            "seconds": round(time.perf_counter() - started, 3),
            "output": output,
            "error": error,
            # Fault-injection accounting: benchmarks that inject faults
            # publish a module-level FAULT_COUNTERS dict (injected
            # aborts/crashes, retransmissions, duplicates suppressed...)
            # refreshed by run_experiment().
            "fault_counters": dict(getattr(module, "FAULT_COUNTERS", None) or {}),
            # Observability accounting: benchmarks that measure through
            # the metrics registry publish a module-level METRICS dict
            # refreshed by run_experiment().
            "metrics": dict(getattr(module, "METRICS", None) or {}),
        }
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.json").write_text(json.dumps(report, indent=2) + "\n")
        if output:
            (RESULTS_DIR / f"{name.removeprefix('bench_')}.txt").write_text(
                output + "\n"
            )
        status = "ok" if ok else "FAILED"
        print(f"{name:<40} {status:>6}  {report['seconds']:>7.2f}s")
        if error:
            print(error)
        reports.append(report)
    return reports


def environment_stamp(started_at: float) -> dict:
    """Provenance for BENCH_perf.json: wall-clock numbers only make
    sense relative to the interpreter and machine that produced them."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "total_wall_seconds": round(time.perf_counter() - started_at, 3),
    }


def headline_numbers() -> dict:
    """The distilled perf summary for BENCH_perf.json."""
    from benchmarks.bench_a5_batching import measure
    from benchmarks.bench_a6_adaptive import headline as adaptive_headline
    from benchmarks.bench_c1_check_throughput import headline as check_headline
    from benchmarks.bench_k1_hotpath import hotpath_headline
    from benchmarks.bench_kernel_wallclock import (
        SEED_EVENTS_PER_SEC,
        kernel_events_per_sec,
    )
    from benchmarks.bench_o1_obs_overhead import obs_headline
    from benchmarks.bench_p1_paxos import headline as paxos_headline
    from benchmarks.bench_r1_chaos import headline as chaos_headline
    from benchmarks.bench_s1_sharded_gtm import headline as sharded_headline
    from benchmarks.bench_s2_dataplane import headline as dataplane_headline

    protocols = {}
    for protocol, granularity, piggyback in [
        ("after", "per_site", False),
        ("before", "per_site", True),
    ]:
        plain = measure(
            protocol, granularity, piggyback, window=0.0, n_txns=16, n_sites=2
        )
        batched = measure(
            protocol, granularity, piggyback, window=1.0, n_txns=16, n_sites=2
        )
        label = f"{protocol}/{granularity}"
        protocols[label] = {
            "committed": len(batched["committed"]),
            "outcomes_identical": batched["committed"] == plain["committed"],
            "logical_msgs_per_txn": {
                "unbatched": round(plain["logical_per_txn"], 2),
                "batched": round(batched["logical_per_txn"], 2),
            },
            "envelopes_per_txn": {
                "unbatched": round(plain["envelopes_per_txn"], 2),
                "batched": round(batched["envelopes_per_txn"], 2),
            },
            "envelope_reduction": round(
                1.0 - batched["envelopes_per_txn"] / plain["envelopes_per_txn"], 3
            ),
            "decision_forces": {
                "unbatched": plain["decision_forces"],
                "batched": batched["decision_forces"],
            },
            "mean_response": {
                "unbatched": round(plain["mean_resp"], 2),
                "batched": round(batched["mean_resp"], 2),
            },
        }

    events_per_sec = kernel_events_per_sec()
    return {
        "scenario": "16 concurrent 2-site transactions, batch/pipeline window 1.0",
        "protocols": protocols,
        "kernel": {
            "events_per_sec": round(events_per_sec),
            "seed_events_per_sec": round(SEED_EVENTS_PER_SEC),
            "speedup_vs_seed": round(events_per_sec / SEED_EVENTS_PER_SEC, 2),
        },
        "kernel_hotpath": hotpath_headline(),
        "chaos": chaos_headline(),
        "obs": obs_headline(),
        "sharded": sharded_headline(),
        "dataplane": dataplane_headline(),
        "paxos": paxos_headline(),
        "check": check_headline(),
        "adaptive": adaptive_headline(),
    }


def main(argv: list[str]) -> int:
    only = None
    if "--only" in argv:
        index = argv.index("--only") + 1
        if index >= len(argv):
            print("error: --only requires a benchmark-name prefix", file=sys.stderr)
            return 2
        only = argv[index]
        if not any(name.startswith(only) for name in bench_modules()):
            print(f"error: no benchmark matches prefix {only!r}", file=sys.stderr)
            return 2
    started_at = time.perf_counter()
    reports = run_benchmarks(only=only)
    if only:
        # A partial run must not clobber the full BENCH_perf.json
        # inventory; the per-bench JSONs above are the result.
        print(f"\npartial run ({len(reports)} benchmark(s)); BENCH_perf.json untouched")
    else:
        summary = headline_numbers()
        summary["environment"] = environment_stamp(started_at)
        summary["benchmarks"] = [
            {"bench": r["bench"], "ok": r["ok"], "seconds": r["seconds"]}
            for r in reports
        ]
        out = REPO_ROOT / "BENCH_perf.json"
        out.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"\nwrote {out}")
    failures = [r["bench"] for r in reports if not r["ok"]]
    if failures:
        print(f"FAILED: {', '.join(failures)}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
