"""EXP-F2 -- Figure 2: states and messages of two phase commit.

Regenerates the figure's choreography as a time-ordered event table:
global states on the left, messages in the middle, local states on the
right -- and asserts the defining order (prepare -> ready -> decision ->
commit -> finished).
"""

from repro.bench import format_table
from repro.mlt.actions import increment

from benchmarks._common import build_fed, run_once, save_result, submit_and_run


def run_experiment() -> str:
    fed = build_fed("2pc")
    submit_and_run(fed, [increment("t0", "x", -10), increment("t1", "x", 10)])

    rows = []
    for record in fed.kernel.trace.records:
        if record.category == "gtxn_state":
            rows.append([f"{record.time:8.2f}", "global", record.details["state"], ""])
        elif record.category == "gtxn_decision":
            rows.append([f"{record.time:8.2f}", "global", f"DECISION={record.details['decision']}", ""])
        elif record.category == "message" and record.subject in ("prepare", "vote", "decide", "finished"):
            rows.append([
                f"{record.time:8.2f}", "message",
                record.subject, f"{record.site} -> {record.details['dest']}",
            ])
        elif record.category == "txn_state" and record.details.get("gtxn"):
            rows.append([f"{record.time:8.2f}", record.site, record.details["state"], ""])

    table = format_table(
        ["time", "actor", "event", "route"], rows,
        title="EXP-F2 (Figure 2): two-phase commit choreography",
    )

    # Conformance assertions (the figure's arrows).
    events = [(r[1], r[2]) for r in rows]
    assert events.index(("message", "prepare")) < events.index(("s0", "ready"))
    assert events.index(("s0", "ready")) < events.index(("global", "DECISION=commit"))
    assert events.index(("global", "DECISION=commit")) < events.index(("s0", "committed"))
    return table


def test_fig2_two_phase(benchmark):
    save_result("fig2_two_phase", run_once(benchmark, run_experiment))
