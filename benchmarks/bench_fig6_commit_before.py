"""EXP-F6 -- Figure 6: states and messages of local commitment before
the global decision, including undo by inverse transactions.

A global transaction that intends to abort: its locals commit
independently first, the inquiry reports committed final states, and
inverse transactions put every local transaction into its aborted valid
final state ("committing the undo means aborting the local
transaction").
"""

from repro.bench import format_table
from repro.mlt.actions import increment

from benchmarks._common import build_fed, run_once, save_result, submit_and_run


def run_experiment() -> str:
    fed = build_fed("before", granularity="per_action")
    outcome = submit_and_run(
        fed,
        [increment("t0", "x", -10), increment("t1", "x", 10)],
        intends_abort=True,
    )

    rows = []
    for record in fed.kernel.trace.records:
        if record.category == "gtxn_state":
            rows.append([f"{record.time:8.2f}", "global", record.details["state"]])
        elif record.category == "gtxn_decision":
            rows.append([f"{record.time:8.2f}", "global", f"DECISION={record.details['decision']}"])
        elif record.category == "txn_state" and record.details.get("gtxn"):
            gtxn = str(record.details["gtxn"])
            actor = f"{record.site} {'inverse' if gtxn.endswith('!undo') else 'local'}"
            rows.append([f"{record.time:8.2f}", actor, record.details["state"]])
        elif record.category == "undo":
            rows.append([f"{record.time:8.2f}", "undo", f"inverse at {record.details['at']}: {record.details.get('op', '')}"])

    table = format_table(
        ["time", "actor", "event"], rows,
        title="EXP-F6 (Figure 6): commit-before with global abort and inverse transactions",
    )
    table += (
        f"\noutcome: committed={outcome.committed} undo_executions={outcome.undo_executions}; "
        f"x restored: s0={fed.peek('s0', 't0', 'x')}, s1={fed.peek('s1', 't1', 'x')}"
    )

    decision_time = fed.kernel.trace.first(category="gtxn_decision").time
    local_commits = [
        r.time
        for r in fed.kernel.trace.select(category="txn_state")
        if r.details.get("state") == "committed"
        and r.details.get("gtxn")
        and not str(r.details["gtxn"]).endswith("!undo")
    ]
    inverse_commits = [
        r.time
        for r in fed.kernel.trace.select(category="txn_state")
        if r.details.get("state") == "committed"
        and str(r.details.get("gtxn", "")).endswith("!undo")
    ]
    assert all(t <= decision_time for t in local_commits)   # Figure 7 order
    assert all(t > decision_time for t in inverse_commits)  # undo after decision
    assert not outcome.committed and outcome.undo_executions == 2
    assert fed.peek("s0", "t0", "x") == 100
    assert fed.peek("s1", "t1", "x") == 100
    return table


def test_fig6_commit_before(benchmark):
    save_result("fig6_commit_before", run_once(benchmark, run_experiment))
