"""EXP-T5 -- message and forced-log-write complexity per protocol.

The §5 discussion cites [ML 83] (log-write complexity) and [DS 83]
(communication complexity of nonblocking commit).  For one n-site
transaction the analytic counts are:

* 2PC:  4n messages (prepare, ready, decision, finished) + 2 forced
  writes per site (prepare, commit);
* 3PC:  6n messages (adds pre-commit + ack);
* commit-after:  4n protocol messages, 1 forced write per site (commit
  only -- no ready state to harden) but the redo-log at the central;
* commit-before+MLT:  no separate protocol round at all -- each action
  reply doubles as the vote (0 extra messages per site beyond the data
  traffic), 1 forced write per action.

This benchmark measures the protocol-message counts (excluding data
traffic) and compares them with n * the analytic factor.  A second
table re-measures under concurrency with the transport optimisations
on (batching, decision pipelining, piggybacking): the *logical*
complexity per transaction is unchanged, but the *physical* envelopes
per transaction drop well below the analytic counts -- the EXP-A5
effect viewed through the EXP-T5 accounting.
"""

from repro.bench import format_table
from repro.bench.harness import protocol_federation
from repro.core.gtm import GTMConfig
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment
from repro.core.protocols import preparable_protocols

from benchmarks._common import run_once, save_result

N_SITES = 3
PROTOCOL_MESSAGES = (
    "prepare", "vote", "decide", "finished", "pre_commit", "pre_commit_ack",
    "decide_group", "finished_group",
    "finish_subtxn", "local_outcome", "redo_subtxn", "redo_result",
    "undo_subtxn", "undo_result", "status_query", "status_report",
)


def measure(protocol: str, granularity: str, readonly_tail: bool = False) -> dict:
    preparable = protocol in preparable_protocols()
    fed = Federation(
        [
            SiteSpec(f"s{i}", tables={f"t{i}": {"x": 100}}, preparable=preparable)
            for i in range(N_SITES)
        ],
        FederationConfig(
            seed=2, gtm=GTMConfig(protocol=protocol, granularity=granularity)
        ),
    )
    if readonly_tail:
        # One updater, the rest read-only ([ML 83]'s favourite case).
        from repro.mlt.actions import read

        operations = [increment("t0", "x", 1)] + [
            read(f"t{i}", "x") for i in range(1, N_SITES)
        ]
    else:
        operations = [increment(f"t{i}", "x", 1) for i in range(N_SITES)]
    process = fed.submit(operations)
    fed.run()
    assert process.value.committed
    counts = fed.network.message_counts()
    protocol_msgs = sum(counts.get(kind, 0) for kind in PROTOCOL_MESSAGES)
    return {
        "total": fed.network.sent,
        "protocol": protocol_msgs,
        "forces": sum(e.disk.log_forces for e in fed.engines.values()),
        "x_hold": sum(
            e.locks.total_exclusive_hold_time for e in fed.engines.values()
        ),
        "by_kind": counts,
    }


def measure_batched(protocol, granularity, piggyback, *, window, n_txns=8) -> dict:
    """``n_txns`` concurrent N_SITES-site transactions, optional batching."""
    specs = [
        SiteSpec(f"s{i}", tables={f"t{i}": {k: 100 for k in range(n_txns)}})
        for i in range(N_SITES)
    ]
    fed = protocol_federation(
        protocol,
        specs,
        granularity=granularity,
        seed=2,
        batch_window=window,
        pipeline_window=window,
        piggyback_decisions=piggyback and window > 0,
    )
    outcomes = fed.run_transactions(
        [
            {
                "operations": [
                    increment(f"t{i}", t % n_txns, 1) for i in range(N_SITES)
                ],
            }
            for t in range(n_txns)
        ]
    )
    assert all(o.committed for o in outcomes)
    counts = fed.network.message_counts()
    protocol_msgs = sum(counts.get(kind, 0) for kind in PROTOCOL_MESSAGES)
    return {
        "protocol_per_txn": protocol_msgs / n_txns,
        "logical_per_txn": fed.network.sent / n_txns,
        "envelopes_per_txn": fed.network.envelopes / n_txns,
    }


def run_experiment() -> str:
    rows = []
    measured = {}
    for protocol, granularity, label, analytic, readonly in [
        ("2pc", "per_site", "2PC", f"4n = {4 * N_SITES}", False),
        ("2pc-pa", "per_site", "2PC-PA [ML 83]", f"4n = {4 * N_SITES}", False),
        ("2pc", "per_site", "2PC, n-1 readonly", f"4n = {4 * N_SITES}", True),
        ("2pc-pa", "per_site", "2PC-PA, n-1 readonly", "4 + 2(n-1)", True),
        ("3pc", "per_site", "3PC", f"6n = {6 * N_SITES}", False),
        ("after", "per_site", "commit-after", f"4n = {4 * N_SITES}", False),
        ("before", "per_site", "commit-before/site", f"4n = {4 * N_SITES}", False),
        ("before", "per_action", "commit-before+MLT", "0 (votes ride on data)", False),
        ("one_phase", "per_site", "one-phase (1PC)", f"2n = {2 * N_SITES}", False),
        ("short_commit", "per_site", "Short-Commit", f"4n = {4 * N_SITES}", False),
    ]:
        m = measure(protocol, granularity, readonly_tail=readonly)
        measured[label] = m
        rows.append([
            label, m["protocol"], analytic, m["total"], m["forces"],
            round(m["x_hold"], 1),
        ])
    table = format_table(
        [
            "protocol", "protocol msgs", "analytic", "all msgs",
            "forced log writes", "X-lock hold",
        ],
        rows,
        title=f"EXP-T5: message/log complexity, one committed {N_SITES}-site transaction",
    )
    assert measured["2PC"]["protocol"] == 4 * N_SITES
    assert measured["3PC"]["protocol"] == 6 * N_SITES
    assert measured["commit-before+MLT"]["protocol"] == 0
    assert measured["3PC"]["total"] > measured["2PC"]["total"]
    # One-phase drops the whole voting round: 2n protocol messages and
    # no participant prepare force (the vote rode on the data reply).
    assert measured["one-phase (1PC)"]["protocol"] == 2 * N_SITES
    assert measured["one-phase (1PC)"]["forces"] < measured["2PC"]["forces"]
    # Short-Commit pays 2PC's messages and forces; its gain is the
    # shorter exclusive lock hold (downgraded at commit-phase start).
    assert measured["Short-Commit"]["protocol"] == 4 * N_SITES
    assert measured["Short-Commit"]["forces"] == measured["2PC"]["forces"]
    assert measured["Short-Commit"]["x_hold"] < measured["2PC"]["x_hold"]
    # The read-only optimization saves the whole second phase for n-1
    # participants: 4 + 2(n-1) protocol messages instead of 4n.
    assert (
        measured["2PC-PA, n-1 readonly"]["protocol"]
        == 4 + 2 * (N_SITES - 1)
        < measured["2PC, n-1 readonly"]["protocol"]
    )

    batched_rows = []
    for protocol, granularity, piggyback, label in [
        ("2pc", "per_site", False, "2PC"),
        ("after", "per_site", False, "commit-after"),
        ("before", "per_site", True, "commit-before/site+piggyback"),
        ("one_phase", "per_site", False, "one-phase (1PC)"),
        ("short_commit", "per_site", False, "Short-Commit"),
    ]:
        plain = measure_batched(protocol, granularity, piggyback, window=0.0)
        batched = measure_batched(protocol, granularity, piggyback, window=1.0)
        saved = 1.0 - batched["envelopes_per_txn"] / plain["envelopes_per_txn"]
        batched_rows.append([
            label,
            round(plain["protocol_per_txn"], 1),
            round(batched["protocol_per_txn"], 1),
            round(plain["envelopes_per_txn"], 1),
            round(batched["envelopes_per_txn"], 1),
            f"{100 * saved:.0f}%",
        ])
    batched_table = format_table(
        [
            "protocol", "proto msgs/txn", "proto msgs/txn (batched)",
            "envelopes/txn", "envelopes/txn (batched)", "envelopes saved",
        ],
        batched_rows,
        title=f"EXP-T5b: 8 concurrent {N_SITES}-site transactions, "
        "batch/pipeline window 1.0",
    )
    return table + "\n\n" + batched_table


def test_t5_message_complexity(benchmark):
    save_result("t5_message_complexity", run_once(benchmark, run_experiment))
