"""Open-loop driver: Poisson arrivals, admission window, backpressure."""

import pytest

from repro.core.gtm import GTMConfig
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment
from repro.workloads.open_loop import OpenLoopDriver, OpenLoopSpec

N_SITES = 2


def build(coordinators: int = 1, seed: int = 9) -> Federation:
    specs = [
        SiteSpec(
            f"s{i}",
            tables={f"t{i}": {f"k{j}": 100 for j in range(64)}},
            preparable=True,
            buckets=64,
        )
        for i in range(N_SITES)
    ]
    return Federation(
        specs,
        FederationConfig(
            seed=seed,
            coordinators=coordinators,
            gtm=GTMConfig(protocol="2pc", granularity="per_site"),
        ),
    )


def traffic(n_txns: int) -> list[dict]:
    return [
        {
            "operations": [
                increment("t0", f"k{n % 64}", -1),
                increment("t1", f"k{n % 64}", 1),
            ]
        }
        for n in range(n_txns)
    ]


def test_spec_validation():
    with pytest.raises(ValueError):
        OpenLoopSpec(arrival_rate=0.0)
    with pytest.raises(ValueError):
        OpenLoopSpec(window_per_coordinator=0)


def test_accounting_balances():
    fed = build()
    driver = OpenLoopDriver(
        fed, OpenLoopSpec(arrival_rate=0.5, n_txns=20, window_per_coordinator=4)
    )
    result = driver.run(traffic(20))
    assert result.submitted == result.admitted == 20
    assert result.completed == 20
    assert result.committed + result.aborted == 20
    assert result.interrupted == 0
    assert result.shed == 0
    assert len(result.response_times) == result.committed
    assert result.makespan > 0
    assert result.throughput > 0


def test_window_is_enforced():
    fed = build()
    driver = OpenLoopDriver(
        fed,
        OpenLoopSpec(arrival_rate=5.0, n_txns=30, window_per_coordinator=2),
    )
    result = driver.run(traffic(30))
    assert result.max_in_flight <= 2
    assert result.queued > 0  # the overload actually queued arrivals
    assert result.total_queue_wait > 0
    assert result.committed + result.aborted == 30


def test_queue_limit_sheds_overflow():
    fed = build()
    driver = OpenLoopDriver(
        fed,
        OpenLoopSpec(
            arrival_rate=5.0,
            n_txns=30,
            window_per_coordinator=1,
            queue_limit=2,
        ),
    )
    result = driver.run(traffic(30))
    assert result.shed > 0
    assert result.max_queue_depth <= 2
    # Shed arrivals never ran; everything admitted still completed.
    assert result.completed == 30 - result.shed
    assert result.committed + result.aborted == result.completed


def test_window_scales_with_live_coordinators():
    wide = OpenLoopSpec(arrival_rate=5.0, n_txns=30, window_per_coordinator=2)
    narrow_run = OpenLoopDriver(build(coordinators=1), wide).run(traffic(30))
    wide_run = OpenLoopDriver(build(coordinators=3), wide).run(traffic(30))
    assert narrow_run.max_in_flight <= 2
    assert wide_run.max_in_flight <= 6
    assert wide_run.max_in_flight > narrow_run.max_in_flight


def test_deterministic_replay():
    runs = []
    for _ in range(2):
        fed = build(seed=21)
        driver = OpenLoopDriver(
            fed,
            OpenLoopSpec(arrival_rate=2.0, n_txns=25, window_per_coordinator=3),
        )
        runs.append(driver.run(traffic(25)).as_dict())
    assert runs[0] == runs[1]


def test_coordinator_crash_counts_interrupted():
    fed = build(coordinators=2)
    driver = OpenLoopDriver(
        fed,
        OpenLoopSpec(arrival_rate=1.0, n_txns=24, window_per_coordinator=4),
    )
    fed.crash_coordinator(1, at=6.0)
    result = driver.run(traffic(24))
    fed.run()  # drain failover
    # Interrupted in-flight txns are classified, not miscounted as
    # aborts; every arrival still reaches a terminal driver state.
    assert result.completed == 24
    assert result.committed + result.aborted + result.interrupted == 24
    assert result.interrupted >= 1
    assert fed.pool.unresolved_orphans() == []


def test_run_generated_feeds_generator_transactions():
    from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

    fed = build(seed=33)
    objects = [(f"t{i}", f"k{j}") for i in range(N_SITES) for j in range(64)]
    generator = WorkloadGenerator(
        WorkloadSpec(
            ops_per_txn=2, read_fraction=0.5, increment_fraction=0.5,
            zipf_s=0.7,
        ),
        objects,
    )
    driver = OpenLoopDriver(
        fed, OpenLoopSpec(arrival_rate=0.5, n_txns=20, window_per_coordinator=4)
    )
    result = driver.run_generated(generator)
    assert result.submitted == result.admitted == 20
    assert result.committed + result.aborted == result.completed == 20


def test_run_generated_deterministic():
    from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

    runs = []
    for _ in range(2):
        fed = build(seed=34)
        objects = [(f"t{i}", f"k{j}") for i in range(N_SITES) for j in range(64)]
        generator = WorkloadGenerator(WorkloadSpec(ops_per_txn=2, zipf_s=0.9), objects)
        driver = OpenLoopDriver(
            fed,
            OpenLoopSpec(arrival_rate=1.0, n_txns=15, window_per_coordinator=3),
        )
        runs.append(driver.run_generated(generator).as_dict())
    assert runs[0] == runs[1]
