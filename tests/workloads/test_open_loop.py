"""Open-loop driver: Poisson arrivals, admission window, backpressure."""

import math

import pytest

from repro.core.gtm import GTMConfig
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment
from repro.workloads.open_loop import OpenLoopDriver, OpenLoopSpec

N_SITES = 2


def build(coordinators: int = 1, seed: int = 9) -> Federation:
    specs = [
        SiteSpec(
            f"s{i}",
            tables={f"t{i}": {f"k{j}": 100 for j in range(64)}},
            preparable=True,
            buckets=64,
        )
        for i in range(N_SITES)
    ]
    return Federation(
        specs,
        FederationConfig(
            seed=seed,
            coordinators=coordinators,
            gtm=GTMConfig(protocol="2pc", granularity="per_site"),
        ),
    )


def traffic(n_txns: int) -> list[dict]:
    return [
        {
            "operations": [
                increment("t0", f"k{n % 64}", -1),
                increment("t1", f"k{n % 64}", 1),
            ]
        }
        for n in range(n_txns)
    ]


def test_spec_validation():
    with pytest.raises(ValueError):
        OpenLoopSpec(arrival_rate=0.0)
    with pytest.raises(ValueError):
        OpenLoopSpec(window_per_coordinator=0)
    with pytest.raises(ValueError):
        OpenLoopSpec(slo_p99=-1.0)
    with pytest.raises(ValueError):
        OpenLoopSpec(slo_window=2)
    with pytest.raises(ValueError):
        OpenLoopSpec(slo_min_scale=0.0)


def test_accounting_balances():
    fed = build()
    driver = OpenLoopDriver(
        fed, OpenLoopSpec(arrival_rate=0.5, n_txns=20, window_per_coordinator=4)
    )
    result = driver.run(traffic(20))
    assert result.submitted == result.admitted == 20
    assert result.completed == 20
    assert result.committed + result.aborted == 20
    assert result.interrupted == 0
    assert result.shed == 0
    assert len(result.response_times) == result.committed
    assert result.makespan > 0
    assert result.throughput > 0


def test_window_is_enforced():
    fed = build()
    driver = OpenLoopDriver(
        fed,
        OpenLoopSpec(arrival_rate=5.0, n_txns=30, window_per_coordinator=2),
    )
    result = driver.run(traffic(30))
    assert result.max_in_flight <= 2
    assert result.queued > 0  # the overload actually queued arrivals
    assert result.total_queue_wait > 0
    assert result.committed + result.aborted == 30


def test_queue_limit_sheds_overflow():
    fed = build()
    driver = OpenLoopDriver(
        fed,
        OpenLoopSpec(
            arrival_rate=5.0,
            n_txns=30,
            window_per_coordinator=1,
            queue_limit=2,
        ),
    )
    result = driver.run(traffic(30))
    assert result.shed > 0
    assert result.max_queue_depth <= 2
    # Shed arrivals never ran; everything admitted still completed.
    assert result.completed == 30 - result.shed
    assert result.committed + result.aborted == result.completed


def test_window_scales_with_live_coordinators():
    wide = OpenLoopSpec(arrival_rate=5.0, n_txns=30, window_per_coordinator=2)
    narrow_run = OpenLoopDriver(build(coordinators=1), wide).run(traffic(30))
    wide_run = OpenLoopDriver(build(coordinators=3), wide).run(traffic(30))
    assert narrow_run.max_in_flight <= 2
    assert wide_run.max_in_flight <= 6
    assert wide_run.max_in_flight > narrow_run.max_in_flight


def test_deterministic_replay():
    runs = []
    for _ in range(2):
        fed = build(seed=21)
        driver = OpenLoopDriver(
            fed,
            OpenLoopSpec(arrival_rate=2.0, n_txns=25, window_per_coordinator=3),
        )
        runs.append(driver.run(traffic(25)).as_dict())
    assert runs[0] == runs[1]


def test_coordinator_crash_counts_interrupted():
    fed = build(coordinators=2)
    driver = OpenLoopDriver(
        fed,
        OpenLoopSpec(arrival_rate=1.0, n_txns=24, window_per_coordinator=4),
    )
    fed.crash_coordinator(1, at=6.0)
    result = driver.run(traffic(24))
    fed.run()  # drain failover
    # Interrupted in-flight txns are classified, not miscounted as
    # aborts; every arrival still reaches a terminal driver state.
    assert result.completed == 24
    assert result.committed + result.aborted + result.interrupted == 24
    assert result.interrupted >= 1
    assert fed.pool.unresolved_orphans() == []


def test_run_generated_feeds_generator_transactions():
    from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

    fed = build(seed=33)
    objects = [(f"t{i}", f"k{j}") for i in range(N_SITES) for j in range(64)]
    generator = WorkloadGenerator(
        WorkloadSpec(
            ops_per_txn=2, read_fraction=0.5, increment_fraction=0.5,
            zipf_s=0.7,
        ),
        objects,
    )
    driver = OpenLoopDriver(
        fed, OpenLoopSpec(arrival_rate=0.5, n_txns=20, window_per_coordinator=4)
    )
    result = driver.run_generated(generator)
    assert result.submitted == result.admitted == 20
    assert result.committed + result.aborted == result.completed == 20


def test_corrected_quantile_censors_shed_arrivals():
    from repro.workloads.open_loop import OpenLoopResult

    result = OpenLoopResult()
    result.served_latencies = [float(i) for i in range(1, 100)]  # 99 served
    assert result.quantile_admitted_or_shed(0.99) == 99.0
    # One shed arrival: exactly 1% of traffic censored above every
    # served latency, so the p99 lands in the shed tail.
    result.shed = 1
    assert math.isinf(result.quantile_admitted_or_shed(0.99))
    assert result.quantile_admitted_or_shed(0.50) == 51.0
    assert result.as_dict()["p99_admitted_or_shed"] is None
    # No traffic at all reports 0, not a crash.
    assert OpenLoopResult().quantile_admitted_or_shed(0.99) == 0.0


def test_corrected_quantile_counts_aborts_as_served():
    from repro.workloads.open_loop import OpenLoopResult

    result = OpenLoopResult()
    result.response_times = [1.0]  # one commit...
    result.served_latencies = [1.0, 50.0]  # ...and one slow abort
    # The committed-only p99 hides the abort; the corrected one serves
    # every admitted arrival's latency.
    assert result.p99 == 1.0
    assert result.p99_admitted_or_shed == 50.0


def test_shedding_cannot_flatter_the_corrected_p99():
    """Regression for the survivorship bias in the latency report.

    The seed's p99 covered committed transactions only, so a driver
    that shed 90% of its traffic reported a *better* p99 than one that
    served everything.  The corrected figure censors every shed above
    every served latency: shedding can only push it up.
    """
    fed = build()
    driver = OpenLoopDriver(
        fed,
        OpenLoopSpec(
            arrival_rate=5.0, n_txns=30, window_per_coordinator=1,
            queue_limit=2,
        ),
    )
    result = driver.run(traffic(30))
    assert result.shed > 0
    assert result.p99 < math.inf  # the flattering figure
    # > 1% of arrivals shed: no finite latency describes the p99.
    assert result.shed / (result.shed + result.completed) > 0.01
    assert math.isinf(result.p99_admitted_or_shed)
    assert result.as_dict()["p99_admitted_or_shed"] is None


def flash_crowd_run(slo_p99: float, n_txns: int = 160):
    fed = build(seed=9)
    spec = OpenLoopSpec(
        arrival_rate=0.35,
        n_txns=n_txns,
        window_per_coordinator=6,
        arrival="flash_crowd",
        arrival_params={"at": 60.0, "spike_factor": 10.0, "decay": 60.0},
        slo_p99=slo_p99,
    )
    return OpenLoopDriver(fed, spec).run(traffic(n_txns))


def served_p99(result) -> float:
    ordered = sorted(result.served_latencies)
    return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]


def test_slo_controller_holds_p99_under_flash_crowd():
    uncontrolled = flash_crowd_run(slo_p99=0.0)
    controlled = flash_crowd_run(slo_p99=80.0)
    # The spike buries the uncontrolled run; the controller sheds its
    # way to the target instead of serving everyone late.
    assert served_p99(uncontrolled) > 3 * 80.0
    assert served_p99(controlled) <= 80.0 * 1.1
    assert controlled.slo_sheds > 0
    assert controlled.shed == controlled.slo_sheds
    # Shedding is bounded: the controller rides the spike out, it does
    # not collapse into dropping everything.
    shed_fraction = controlled.shed / (controlled.shed + controlled.completed)
    assert shed_fraction < 0.6
    assert controlled.committed > 0.4 * controlled.completed
    # Every arrival is accounted for -- served, shed, or interrupted.
    assert (
        controlled.completed + controlled.interrupted + controlled.shed
        == 160
    )


def test_slo_controller_is_deterministic():
    runs = [flash_crowd_run(slo_p99=80.0, n_txns=80).as_dict() for _ in range(2)]
    assert runs[0] == runs[1]
    assert runs[0]["slo_sheds"] > 0


def test_slo_disabled_leaves_driver_inert():
    fed = build()
    driver = OpenLoopDriver(
        fed,
        OpenLoopSpec(arrival_rate=5.0, n_txns=30, window_per_coordinator=2),
    )
    result = driver.run(traffic(30))
    assert result.slo_sheds == 0
    assert result.slo_throttles == 0
    assert result.min_admission_scale == 1.0
    assert result.completed == 30


def test_run_generated_deterministic():
    from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

    runs = []
    for _ in range(2):
        fed = build(seed=34)
        objects = [(f"t{i}", f"k{j}") for i in range(N_SITES) for j in range(64)]
        generator = WorkloadGenerator(WorkloadSpec(ops_per_txn=2, zipf_s=0.9), objects)
        driver = OpenLoopDriver(
            fed,
            OpenLoopSpec(arrival_rate=1.0, n_txns=15, window_per_coordinator=3),
        )
        runs.append(driver.run_generated(generator).as_dict())
    assert runs[0] == runs[1]
