"""Workload generators."""

import random

import pytest

from repro.workloads import (
    WorkloadGenerator,
    WorkloadSpec,
    balance_audit,
    build_banking_federation,
    total_balance,
    transfer,
)
from repro.workloads.counters import build_counter_site, counter_transactions


def test_spec_validates_fractions():
    with pytest.raises(ValueError):
        WorkloadSpec(read_fraction=0.7, increment_fraction=0.5)
    with pytest.raises(ValueError):
        WorkloadSpec(hotspot_fraction=1.5)


def test_generator_requires_objects():
    with pytest.raises(ValueError):
        WorkloadGenerator(WorkloadSpec(), [])


def test_generator_respects_ops_per_txn():
    gen = WorkloadGenerator(WorkloadSpec(ops_per_txn=7), [("t", "k")])
    ops, _ = gen.next_transaction(random.Random(1))
    assert len(ops) == 7


def test_generator_mix_matches_fractions():
    spec = WorkloadSpec(ops_per_txn=1, read_fraction=1.0, increment_fraction=0.0)
    gen = WorkloadGenerator(spec, [("t", "k")])
    rng = random.Random(2)
    kinds = {gen.next_transaction(rng)[0][0].kind for _ in range(20)}
    assert kinds == {"read"}


def test_generator_hotspot_concentration():
    spec = WorkloadSpec(
        ops_per_txn=1, read_fraction=0.0, increment_fraction=1.0,
        hotspot_fraction=1.0, hot_object_count=1,
    )
    objects = [("t", f"k{i}") for i in range(10)]
    gen = WorkloadGenerator(spec, objects)
    rng = random.Random(3)
    keys = {gen.next_transaction(rng)[0][0].key for _ in range(30)}
    assert keys == {"k0"}


def test_generator_abort_rate():
    spec = WorkloadSpec(intended_abort_rate=1.0)
    gen = WorkloadGenerator(spec, [("t", "k")])
    assert gen.next_transaction(random.Random(4))[1] is True


def test_generator_deterministic_per_rng_seed():
    spec = WorkloadSpec()
    objects = [("t", f"k{i}") for i in range(5)]
    a = WorkloadGenerator(spec, objects).next_transaction(random.Random(9))
    b = WorkloadGenerator(spec, objects).next_transaction(random.Random(9))
    assert a == b


def test_transfer_moves_between_sites():
    rng = random.Random(5)
    for _ in range(10):
        ops = transfer(rng, n_sites=3, accounts_per_site=4)
        assert len(ops) == 2
        assert ops[0].value == -ops[1].value
        assert ops[0].table != ops[1].table  # cross-site by default


def test_transfer_same_site_never_same_account():
    rng = random.Random(6)
    for _ in range(20):
        ops = transfer(rng, n_sites=1, accounts_per_site=3, cross_site=False)
        assert (ops[0].table, ops[0].key) != (ops[1].table, ops[1].key)


def test_balance_audit_reads_only():
    ops = balance_audit(2, 4, sample=3, rng=random.Random(7))
    assert len(ops) == 3
    assert all(op.kind == "read" for op in ops)


def test_banking_federation_conserves_money():
    fed = build_banking_federation(n_sites=2, accounts_per_site=3, initial_balance=100)
    initial = total_balance(fed, 2, 3)
    assert initial == 600
    rng = random.Random(8)
    batches = [{"operations": transfer(rng, 2, 3)} for _ in range(5)]
    outcomes = fed.run_transactions(batches)
    assert all(o.committed for o in outcomes)
    assert total_balance(fed, 2, 3) == 600


def test_counter_site_figure8_layout(kernel):
    engine, keys = build_counter_site(kernel, n_counters=2, same_page=True)
    assert keys == ["x", "y"]
    heap = engine.catalog.heap("obj")
    assert heap.page_of("x") == heap.page_of("y")


def test_counter_site_spread_layout(kernel):
    engine, keys = build_counter_site(kernel, n_counters=4, same_page=False)
    heap = engine.catalog.heap("obj")
    assert len({heap.page_of(k) for k in keys}) > 1


def test_counter_transactions_shape():
    txns = counter_transactions(random.Random(1), ["x", "y"], n_txns=5, increments_per_txn=3)
    assert len(txns) == 5
    assert all(len(ops) == 3 for ops in txns)
    assert all(op.kind == "increment" for ops in txns for op in ops)


def test_spec_rejects_negative_zipf():
    with pytest.raises(ValueError):
        WorkloadSpec(zipf_s=-0.1)


def test_zipf_zero_keeps_legacy_hot_cold_path():
    spec_legacy = WorkloadSpec(ops_per_txn=3)
    spec_zipf0 = WorkloadSpec(ops_per_txn=3, zipf_s=0.0)
    objects = [("t", f"k{i}") for i in range(12)]
    a = WorkloadGenerator(spec_legacy, objects)
    b = WorkloadGenerator(spec_zipf0, objects)
    for seed in range(5):
        assert a.next_transaction(random.Random(seed)) == \
            b.next_transaction(random.Random(seed))


def test_zipf_skews_toward_low_ranks():
    spec = WorkloadSpec(
        ops_per_txn=1, read_fraction=0.0, increment_fraction=1.0, zipf_s=1.2
    )
    objects = [("t", f"k{i}") for i in range(64)]
    gen = WorkloadGenerator(spec, objects)
    rng = random.Random(11)
    counts = {}
    for _ in range(2000):
        key = gen.next_transaction(rng)[0][0].key
        counts[key] = counts.get(key, 0) + 1
    ranked = sorted(counts.items(), key=lambda kv: -kv[1])
    assert ranked[0][0] == "k0"  # rank 0 is the hottest object
    assert counts["k0"] > 2000 / 64 * 4  # far above the uniform share
    assert counts["k0"] > counts.get("k10", 0) > counts.get("k60", 0)


def test_zipf_deterministic_per_rng_seed():
    spec = WorkloadSpec(zipf_s=0.9)
    objects = [("t", f"k{i}") for i in range(8)]
    a = WorkloadGenerator(spec, objects).next_transaction(random.Random(13))
    b = WorkloadGenerator(spec, objects).next_transaction(random.Random(13))
    assert a == b
