"""Arrival patterns: rate shapes, registry, and driver integration."""

import math

import pytest

from repro.core.gtm import GTMConfig
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.workloads.arrivals import (
    ARRIVAL_PATTERNS,
    ArrivalPattern,
    BurstyPattern,
    DiurnalPattern,
    FlashCrowdPattern,
    make_pattern,
)
from repro.workloads.open_loop import OpenLoopDriver, OpenLoopSpec

from tests.workloads.test_open_loop import build, traffic


class TestRateShapes:
    def test_poisson_is_flat(self):
        pattern = ArrivalPattern(0.5)
        assert pattern.rate(0.0) == pattern.rate(123.4) == 0.5

    def test_diurnal_swings_and_floors(self):
        pattern = DiurnalPattern(1.0, period=100.0, amplitude=0.6)
        assert pattern.rate(25.0) == pytest.approx(1.6)  # peak of the sine
        assert pattern.rate(75.0) == pytest.approx(0.4)  # trough
        assert pattern.rate(0.0) == pytest.approx(1.0)
        # Full amplitude would cross zero at the trough; the floor holds.
        floored = DiurnalPattern(1.0, period=100.0, amplitude=1.0)
        assert floored.rate(75.0) == pytest.approx(0.1)

    def test_bursty_square_wave(self):
        pattern = BurstyPattern(1.0, period=50.0, duty=0.2)
        assert pattern.rate(5.0) == pytest.approx(4.0)  # in the burst
        assert pattern.rate(30.0) == pytest.approx(0.25)  # idling
        assert pattern.rate(55.0) == pytest.approx(4.0)  # next period

    def test_flash_crowd_spikes_then_decays(self):
        pattern = FlashCrowdPattern(1.0, at=50.0, spike_factor=8.0, decay=40.0)
        assert pattern.rate(49.9) == pytest.approx(1.0)
        assert pattern.rate(50.0) == pytest.approx(8.0)
        assert pattern.rate(50.0 + 40.0 * math.log(7.0)) == pytest.approx(2.0)
        assert pattern.rate(1e6) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalPattern(0.0)
        with pytest.raises(ValueError):
            DiurnalPattern(1.0, amplitude=1.5)
        with pytest.raises(ValueError):
            BurstyPattern(1.0, duty=1.0)
        with pytest.raises(ValueError):
            FlashCrowdPattern(1.0, spike_factor=0.5)
        with pytest.raises(ValueError):
            FlashCrowdPattern(1.0, decay=0.0)


class TestRegistry:
    def test_all_patterns_registered_by_name(self):
        assert set(ARRIVAL_PATTERNS) == {
            "poisson", "diurnal", "bursty", "flash_crowd",
        }

    def test_make_pattern_passes_params(self):
        pattern = make_pattern("flash_crowd", 0.5, at=10.0, spike_factor=4.0)
        assert isinstance(pattern, FlashCrowdPattern)
        assert pattern.rate(10.0) == pytest.approx(2.0)

    def test_make_pattern_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="unknown arrival pattern"):
            make_pattern("lunar", 1.0)


class TestDriverIntegration:
    def _run(self, seed, **spec_kwargs):
        fed = build(seed=seed)
        spec = OpenLoopSpec(
            arrival_rate=1.0, n_txns=24, window_per_coordinator=4,
            **spec_kwargs,
        )
        return OpenLoopDriver(fed, spec).run(traffic(24))

    def test_degenerate_patterns_match_poisson_exactly(self):
        """A flat pattern must reproduce the seed draw sequence.

        ``diurnal`` with zero amplitude and ``flash_crowd`` with a 1x
        spike are constant-rate: the whole run (arrival times included)
        must be byte-identical to ``poisson`` at the same seed.
        """
        poisson = self._run(41).as_dict()
        flat_diurnal = self._run(
            41, arrival="diurnal", arrival_params={"amplitude": 0.0}
        ).as_dict()
        flat_flash = self._run(
            41, arrival="flash_crowd", arrival_params={"spike_factor": 1.0}
        ).as_dict()
        assert flat_diurnal == poisson
        assert flat_flash == poisson

    @pytest.mark.parametrize("arrival", ["diurnal", "bursty", "flash_crowd"])
    def test_patterned_runs_are_deterministic(self, arrival):
        runs = [self._run(42, arrival=arrival).as_dict() for _ in range(2)]
        assert runs[0] == runs[1]
        assert runs[0]["completed"] == 24

    def test_flash_crowd_compresses_arrivals(self):
        """The spike packs arrivals tighter than the flat process."""
        fed_flat = build(seed=43)
        fed_spike = build(seed=43)
        spec_flat = OpenLoopSpec(
            arrival_rate=0.2, n_txns=24, window_per_coordinator=4,
        )
        spec_spike = OpenLoopSpec(
            arrival_rate=0.2, n_txns=24, window_per_coordinator=4,
            arrival="flash_crowd",
            arrival_params={"at": 10.0, "spike_factor": 10.0, "decay": 50.0},
        )
        flat = OpenLoopDriver(fed_flat, spec_flat).run(traffic(24))
        spike = OpenLoopDriver(fed_spike, spec_spike).run(traffic(24))
        # Same number of arrivals squeezed into a shorter horizon, and
        # the squeeze shows up as queueing the flat run never sees.
        assert spike.makespan < flat.makespan
        assert spike.max_queue_depth >= flat.max_queue_depth
