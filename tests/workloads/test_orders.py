"""Order-processing workload: full operation vocabulary under undo."""

import pytest

from repro.core.gtm import GTMConfig
from repro.core.invariants import atomicity_report
from repro.integration.federation import FederationConfig
from repro.workloads.orders import (
    audit_consistency,
    build_orders_federation,
    cancel_order,
    place_order,
    random_order,
)


def build(protocol="before", granularity="per_action", seed=33):
    return build_orders_federation(
        config=FederationConfig(
            seed=seed, gtm=GTMConfig(protocol=protocol, granularity=granularity)
        )
    )


def test_place_order_commits_across_sites():
    fed = build()
    process = fed.submit(place_order("o1", "p0", 3, 10))
    fed.run()
    assert process.value.committed
    assert fed.peek("orders_db", "orders", "o1") == {"product": "p0", "qty": 3}
    assert fed.peek("warehouse", "stock", "p0") == 97
    assert fed.peek("warehouse", "revenue", "total") == 30


def test_aborted_order_leaves_no_trace():
    """The inverse of an insert is a delete; of increments, decrements."""
    fed = build()
    process = fed.submit(place_order("o1", "p0", 3, 10), intends_abort=True)
    fed.run()
    assert not process.value.committed
    assert fed.peek("orders_db", "orders", "o1") is None
    assert fed.peek("warehouse", "stock", "p0") == 100
    assert fed.peek("warehouse", "revenue", "total") == 0
    assert atomicity_report(fed).ok


def test_cancel_order_business_action():
    fed = build()
    fed.run_transactions([
        {"operations": place_order("o1", "p0", 3, 10)},
        {"operations": cancel_order("o1", "p0", 3, 10), "delay": 50},
    ])
    assert fed.peek("orders_db", "orders", "o1") is None
    assert fed.peek("warehouse", "stock", "p0") == 100
    assert fed.peek("warehouse", "revenue", "total") == 0


def test_aborted_cancel_restores_the_order():
    """Undoing a delete re-inserts the before-image row."""
    fed = build()
    fed.run_transactions([{"operations": place_order("o1", "p0", 3, 10)}])
    process = fed.submit(cancel_order("o1", "p0", 3, 10), intends_abort=True)
    fed.run()
    assert not process.value.committed
    assert fed.peek("orders_db", "orders", "o1") == {"product": "p0", "qty": 3}
    assert fed.peek("warehouse", "stock", "p0") == 97


def test_duplicate_order_id_aborts_globally():
    fed = build()
    fed.run_transactions([{"operations": place_order("o1", "p0", 1, 10)}])
    process = fed.submit(place_order("o1", "p1", 2, 10))
    fed.run()
    assert not process.value.committed
    # The stock/revenue legs of the failed order were never applied or
    # were undone; only the first order's effects remain.
    assert fed.peek("warehouse", "stock", "p1") == 100
    assert fed.peek("warehouse", "stock", "p0") == 99


@pytest.mark.parametrize("protocol,granularity", [
    ("before", "per_action"), ("after", "per_site"), ("2pc", "per_site"),
])
def test_random_order_mix_stays_consistent(protocol, granularity):
    fed = build(protocol, granularity)
    if protocol in ("2pc",):
        from repro.localdb.interface import PreparableTMInterface

        for site, comm in fed.comms.items():
            comm.interface = PreparableTMInterface(fed.engines[site])
            fed.interfaces[site] = comm.interface
    rng = fed.kernel.rng.stream("orders")
    price_of = {}
    batches = []
    for seq in range(10):
        order_id, operations, meta = random_order(rng, 4, seq)
        price_of[order_id] = meta["price"]
        batches.append({
            "operations": operations,
            "intends_abort": rng.random() < 0.3,
            "delay": rng.uniform(0, 40),
        })
    fed.run_transactions(batches)
    audit = audit_consistency(fed, 4, 100, price_of)
    assert audit["consistent"], audit
    assert atomicity_report(fed).ok
