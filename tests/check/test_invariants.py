"""Unit tests of the shared invariant predicates.

The positive direction (clean runs have no violations) is covered by
the exploration suite and the property tests; here each predicate is
shown to actually *fire* on a broken state, using minimal fakes where
breaking a real federation is impractical.
"""

from types import SimpleNamespace

from repro.core.invariants import (
    convergence_violations,
    inverse_order_violations,
    lock_release_violations,
    redo_drain_violations,
    undo_drain_violations,
)
from repro.core.redo import RedoLog
from repro.core.undo import UndoLog
from repro.localdb.engine import OpRecord
from repro.mlt.actions import increment


def _op(seq, txn_id, gtxn_id, table, key, kind="increment"):
    return OpRecord(seq=seq, txn_id=txn_id, gtxn_id=gtxn_id, kind=kind,
                    table=table, key=key)


def _fake_federation(**overrides):
    gtm = SimpleNamespace(
        name="central",
        active={},
        l1=None,
        redo_log=RedoLog(),
        undo_log=UndoLog(),
        config=SimpleNamespace(optimize_undo=False),
        is_active=lambda gtxn_id: False,
    )
    federation = SimpleNamespace(gtm=gtm, engines={}, pool=None)
    for key, value in overrides.items():
        setattr(federation, key, value)
    return federation


def test_redo_drain_flags_unconfirmed_entries():
    federation = _fake_federation()
    federation.gtm.redo_log.record("G1", "s0", [increment("t0", "a", 1)])
    violations = redo_drain_violations(federation)
    assert len(violations) == 1
    assert violations[0].invariant == "redo_drain"
    assert "G1" in violations[0].detail


def test_redo_drain_ignores_still_active_transactions():
    federation = _fake_federation()
    federation.gtm.is_active = lambda gtxn_id: True
    federation.gtm.redo_log.record("G1", "s0", [increment("t0", "a", 1)])
    assert redo_drain_violations(federation) == []


def test_undo_drain_flags_unexecuted_inverses():
    federation = _fake_federation()
    operation = increment("t0", "a", 1)
    federation.gtm.undo_log.record("G2", "s1", operation, increment("t0", "a", -1))
    violations = undo_drain_violations(federation)
    assert len(violations) == 1
    assert violations[0].invariant == "undo_drain"
    assert "G2" in violations[0].detail


def test_lock_release_flags_held_locks():
    engine = SimpleNamespace(
        locks=SimpleNamespace(
            _resources={("t0", 3): SimpleNamespace(holders={"s0:t9": object()})}
        )
    )
    federation = _fake_federation(engines={"s0": engine})
    violations = lock_release_violations(federation)
    assert len(violations) == 1
    assert "s0:t9" in violations[0].detail


def test_convergence_flags_active_gtxns_and_unfinished_processes():
    federation = _fake_federation()
    federation.gtm.active = {"G3": object()}
    process = SimpleNamespace(done=False, name="submit:G3")
    violations = convergence_violations(federation, processes=[process])
    kinds = [violation.detail for violation in violations]
    assert any("G3" in detail for detail in kinds)
    assert any("submit:G3" in detail for detail in kinds)


def _engine_with_history(records, committed):
    return SimpleNamespace(op_history=records, committed_txn_ids=set(committed))


def test_inverse_order_accepts_reverse_undo():
    records = [
        _op(1, "s0:t1", "G1", "t0", "a"),
        _op(2, "s0:t2", "G1", "t0", "b"),
        _op(3, "s0:t3", "G1!undo", "t0", "b"),
        _op(4, "s0:t4", "G1!undo", "t0", "a"),
    ]
    federation = _fake_federation(
        engines={"s0": _engine_with_history(records, ["s0:t1", "s0:t2", "s0:t3", "s0:t4"])}
    )
    assert inverse_order_violations(federation) == []


def test_inverse_order_flags_forward_order_undo():
    records = [
        _op(1, "s0:t1", "G1", "t0", "a"),
        _op(2, "s0:t2", "G1", "t0", "b"),
        # Undo in FORWARD order: only sound for commuting actions,
        # which the audit does not assume.
        _op(3, "s0:t3", "G1!undo", "t0", "a"),
        _op(4, "s0:t4", "G1!undo", "t0", "b"),
    ]
    federation = _fake_federation(
        engines={"s0": _engine_with_history(records, ["s0:t1", "s0:t2", "s0:t3", "s0:t4"])}
    )
    violations = inverse_order_violations(federation)
    assert len(violations) == 1
    assert violations[0].invariant == "inverse_order"


def test_inverse_order_skips_multi_attempt_transactions():
    records = [
        _op(1, "s0:t1", "G1", "t0", "a"),
        _op(2, "s0:t2", "G1~r1", "t0", "b"),
        _op(3, "s0:t3", "G1!undo", "t0", "a"),
    ]
    federation = _fake_federation(
        engines={"s0": _engine_with_history(records, ["s0:t1", "s0:t2", "s0:t3"])}
    )
    assert inverse_order_violations(federation) == []


def test_inverse_order_skips_when_optimizer_collapses_inverses():
    records = [
        _op(1, "s0:t1", "G1", "t0", "a"),
        _op(2, "s0:t2", "G1!undo", "t0", "a"),
    ]
    federation = _fake_federation(
        engines={"s0": _engine_with_history(records, ["s0:t1", "s0:t2"])}
    )
    federation.gtm.config.optimize_undo = True
    assert inverse_order_violations(federation) == []
