"""Exploration is deterministic: same seed, same everything.

The whole checker rests on executions being pure functions of
``(spec, strategy, choices)`` -- shrinking and ``.repro.json`` replay
are meaningless otherwise.  The sweep here runs the same PCT strategy
twice for 20 seeds and demands identical schedules, identical explored
state counts and byte-identical trace serializations.
"""

from repro.check import CheckSpec, DfsStrategy, ReproTrace, explore, run_execution, run_pct

SPEC = CheckSpec(protocol="2pc", granularity="per_site")
SEEDS = list(range(20))


def test_pct_seed_sweep_is_deterministic():
    for seed in SEEDS:
        first = run_pct(SPEC, seed)
        second = run_pct(SPEC, seed)
        assert first.choices == second.choices, f"seed {seed}: schedules differ"
        assert first.arities == second.arities, f"seed {seed}: choice arities differ"
        assert first.steps == second.steps, f"seed {seed}: state counts differ"
        assert first.pruned == second.pruned, f"seed {seed}: POR counts differ"
        assert first.violations == second.violations
        first_bytes = ReproTrace.from_result(SPEC, first).to_json_bytes()
        second_bytes = ReproTrace.from_result(SPEC, second).to_json_bytes()
        assert first_bytes == second_bytes, f"seed {seed}: trace bytes differ"


def test_different_seeds_explore_different_schedules():
    schedules = {tuple(run_pct(SPEC, seed).choices) for seed in SEEDS}
    # Not all 20 need to differ (small scenario), but a sweep that
    # collapses to one schedule is not exploring anything.
    assert len(schedules) > 1


def test_dfs_exploration_is_deterministic():
    first = explore(SPEC, depth=4, budget=50)
    second = explore(SPEC, depth=4, budget=50)
    assert first.executions == second.executions
    assert first.choice_points == second.choice_points
    assert first.pruned == second.pruned
    assert first.exhausted == second.exhausted


def test_identical_prefixes_reproduce_identical_runs():
    probe = DfsStrategy([], depth=6)
    run_execution(SPEC, probe)
    prefix = probe.choices
    first = run_execution(SPEC, DfsStrategy(prefix, depth=6))
    second = run_execution(SPEC, DfsStrategy(prefix, depth=6))
    assert first.choices == second.choices
    assert first.end_time == second.end_time
    assert first.committed == second.committed
