"""Exploration with the group-decision pipeline enabled.

The pipeline reorders and coalesces decision traffic; the checker must
still find no schedule that breaks atomicity or lets a participant ack
outrun the durable decision record.  For paxos this exercises the
``DurabilityOrderViolation`` guard in ``_send_group`` on every explored
interleaving: if pipelined forcing ever raced ahead of acceptor
choice, the exploration itself would crash.
"""

import pytest

from repro.check import CheckSpec, explore, run_execution


@pytest.mark.parametrize(
    "protocol,granularity",
    [("2pc", "per_site"), ("after", "per_site"), ("paxos", "per_site")],
)
def test_pipelined_exploration_keeps_invariants(protocol, granularity):
    spec = CheckSpec(
        protocol=protocol, granularity=granularity, pipeline_window=2.0
    )
    report = explore(spec, depth=4, budget=200)
    assert report.violation_count == 0, report.counterexample.violations
    assert report.exhausted
    assert report.executions >= 1


def test_pipelined_default_schedule_commits():
    result = run_execution(
        CheckSpec(protocol="2pc", granularity="per_site", pipeline_window=2.0)
    )
    assert result.committed == 2 and result.aborted == 0
    assert result.ok


def test_spec_roundtrips_pipeline_window():
    spec = CheckSpec(protocol="2pc", granularity="per_site", pipeline_window=1.5)
    assert CheckSpec.from_dict(spec.to_dict()) == spec
