"""The greedy shrinker: minimal schedules, bounded budget."""

from repro.check import shrink_schedule


def test_shrinks_to_shortest_violating_prefix():
    # Violation depends only on the first choice being 1.
    def violates(schedule):
        return len(schedule) >= 1 and schedule[0] == 1

    assert shrink_schedule(violates, [1, 2, 0, 3, 1]) == [1]


def test_zeroes_incidental_choices():
    # Violation needs choice 2 at position 1; everything else is noise.
    def violates(schedule):
        return len(schedule) >= 2 and schedule[1] == 2

    assert shrink_schedule(violates, [3, 2, 1, 1]) == [0, 2]


def test_always_violating_schedule_shrinks_to_empty():
    assert shrink_schedule(lambda schedule: True, [4, 3, 2, 1]) == []


def test_strips_trailing_defaults():
    def violates(schedule):
        return len(schedule) >= 1 and schedule[0] == 1

    assert shrink_schedule(violates, [1, 0, 0, 0]) == [1]


def test_attempt_budget_is_respected():
    calls = []

    def violates(schedule):
        calls.append(list(schedule))
        return True

    shrink_schedule(violates, list(range(1, 30)), max_attempts=10)
    assert len(calls) <= 10


def test_result_always_violates():
    # Non-monotone predicate: greedy descent must still end on a
    # violating schedule (it only ever *keeps* violating candidates).
    def violates(schedule):
        return sum(schedule) % 3 == 1

    start = [2, 2, 0, 3]  # sum 7 -> violates
    result = shrink_schedule(violates, start)
    assert violates(result)
    assert len(result) <= len(start)
