"""Coordinator-crash-point exploration: Paxos is non-blocking, 2PC is not.

The acceptance exhibit of the Paxos Commit work, as checker runs: kill
the coordinator at *every* durable log-force boundary of the traced
baseline (plus F acceptors, for paxos) and audit the aftermath.  Paxos
Commit must leave zero blocked transactions in every execution; classic
2PC with a single central GTM must exhibit the blocking window the
paper motivates -- an orphaned in-doubt local holding its locks.
"""

import pytest

from repro.check import (
    CheckSpec,
    enumerate_decision_boundaries,
    explore_coordinator_crash_points,
)
from repro.check.cli import main as check_main


def paxos_spec(coordinators: int = 2) -> CheckSpec:
    return CheckSpec(
        protocol="paxos", granularity="per_site", coordinators=coordinators
    )


def test_decision_boundaries_cover_acceptor_forces():
    boundaries = enumerate_decision_boundaries(paxos_spec())
    assert boundaries, "a committing paxos run must force acceptor logs"
    assert boundaries == sorted(boundaries)
    # More boundaries than 2PC's: every acceptor of the 2F+1 group
    # forces one acceptance per commit, versus one decision force.
    reference = enumerate_decision_boundaries(
        CheckSpec(protocol="2pc", granularity="per_site")
    )
    assert len(boundaries) > len(reference) > 0


def test_paxos_coordinator_kill_at_every_boundary_never_blocks():
    report = explore_coordinator_crash_points(
        paxos_spec(), coordinator=0, acceptor_crashes=1
    )
    assert report.crash_points > 0
    assert report.executions == report.crash_points
    assert report.violation_count == 0, report.counterexample.violations
    assert report.counterexample is None


def test_paxos_survives_kill_of_either_shard():
    # The crashed shard's in-flight work lands on its peer regardless
    # of which shard the workload hashed to.
    for coordinator in (0, 1):
        report = explore_coordinator_crash_points(
            paxos_spec(), coordinator=coordinator
        )
        assert report.violation_count == 0


def test_2pc_single_coordinator_kill_exhibits_blocking_window():
    spec = CheckSpec(protocol="2pc", granularity="per_site", coordinators=1)
    report = explore_coordinator_crash_points(spec)
    assert report.violation_count > 0
    counterexample = report.counterexample
    assert counterexample is not None
    assert counterexample.crashes, "the counterexample must name the kill"
    text = " ".join(counterexample.violations)
    assert "in-doubt" in text or "non-terminal" in text


def test_cli_paxos_crash_points_exits_zero(capsys):
    status = check_main([
        "--protocol", "paxos", "--coordinators", "2",
        "--coordinator-crash-points", "--acceptor-crashes", "1",
    ])
    assert status == 0
    out = capsys.readouterr().out
    assert "0 with blocked transactions" in out
    assert "no execution blocked" in out


def test_cli_2pc_crash_points_exits_one(capsys):
    status = check_main([
        "--protocol", "2pc", "--coordinators", "1",
        "--coordinator-crash-points",
    ])
    assert status == 1
    out = capsys.readouterr().out
    assert "first blocking window" in out


def test_cli_rejects_acceptor_crashes_off_paxos():
    with pytest.raises(SystemExit):
        check_main([
            "--protocol", "2pc", "--coordinator-crash-points",
            "--acceptor-crashes", "1",
        ])
