"""The guard-disabled mutant must be caught, shrunk and replayed.

The paper's §3.3 counterexample: local systems that commit *before*
the global decision need a global concurrency-control layer (the L1
table); without it, two transactions writing the same two keys on two
sites in opposite orders commit a globally non-serializable history.
The ``no_l1_guard`` mutant disables exactly that layer, and the checker
must (1) find the violation, (2) shrink the schedule to a handful of
choices, and (3) replay the written ``.repro.json`` byte-for-byte
deterministically.
"""

from repro.check import (
    CheckSpec,
    ReproTrace,
    explore,
    replay_execution,
    shrink_counterexample,
    write_counterexample,
)

MUTANT_SPEC = CheckSpec(
    protocol="before",
    granularity="per_action",
    workload="rw_cross",
    mutant="no_l1_guard",
)


def test_mutant_violates_serializability():
    report = explore(MUTANT_SPEC, depth=6, budget=100)
    assert report.violation_count >= 1
    assert report.counterexample is not None
    assert any(
        "serializability" in violation
        for violation in report.counterexample.violations
    )


def test_counterexample_shrinks_to_few_choices():
    report = explore(MUTANT_SPEC, depth=6, budget=100)
    shrunk = shrink_counterexample(MUTANT_SPEC, report.counterexample.choices)
    assert shrunk is not None, "violation did not reproduce on replay"
    assert len(shrunk) <= 12
    # The shrunk schedule still violates.
    assert replay_execution(MUTANT_SPEC, shrunk).violations


def test_repro_trace_replays_byte_for_byte(tmp_path):
    report = explore(MUTANT_SPEC, depth=6, budget=100)
    shrunk = shrink_counterexample(MUTANT_SPEC, report.counterexample.choices)
    result = replay_execution(MUTANT_SPEC, shrunk)
    result.choices = shrunk

    path = tmp_path / "mutant.repro.json"
    written = write_counterexample(str(path), MUTANT_SPEC, result)

    # Round-trip: parse the file, replay the execution, re-serialize --
    # every byte must survive.
    loaded = ReproTrace.read(str(path))
    assert loaded.to_json_bytes() == written.to_json_bytes()
    replayed = loaded.replay()
    assert replayed.violations == loaded.violations
    again = ReproTrace.from_result(loaded.spec, replayed)
    again.schedule = loaded.schedule
    assert again.to_json_bytes() == written.to_json_bytes()


def test_intact_guard_passes_same_exploration():
    # Control: identical scenario with the guard intact is clean, so
    # the mutant test fails for the right reason.
    clean = CheckSpec(
        protocol="before", granularity="per_action", workload="rw_cross"
    )
    report = explore(clean, depth=6, budget=100)
    assert report.violation_count == 0
