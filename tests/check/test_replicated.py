"""The replicated workload: clean under crash points, mutant caught.

The ``replicated`` scenario routes staggered transfers through a
partitioned, replicated placement; crash-point enumeration kills a
site at every durable log-force boundary, driving eviction, promotion
and rejoin.  With the data plane intact every execution must keep all
invariants (including replica convergence).  The ``stale_epoch``
mutant -- fencing and rejoin-time drain/resync disabled -- must be
caught with a replica-divergence violation and replay deterministically.
"""

import pytest

from repro.check import CheckSpec, explore, explore_crash_points
from repro.check.engine import replay_execution
from repro.check.scenarios import build_scenario

CLEAN_SPEC = CheckSpec(workload="replicated", partitions=2, replication=2)
MUTANT_SPEC = CheckSpec(
    workload="replicated", partitions=2, replication=2, mutant="stale_epoch"
)


def test_spec_validation():
    with pytest.raises(ValueError):
        CheckSpec(workload="replicated")  # needs partitions
    with pytest.raises(ValueError):
        CheckSpec(mutant="stale_epoch")  # likewise


def test_scenario_builds_placement_and_mutant_knobs():
    scenario = build_scenario(CLEAN_SPEC)
    dataplane = scenario.federation.dataplane
    assert dataplane is not None
    assert len(dataplane.map.partitions) == 2
    assert all(len(p.members) == 2 for p in dataplane.map.partitions)
    assert dataplane.fencing and dataplane.drain_on_rejoin

    mutant = build_scenario(MUTANT_SPEC)
    dataplane = mutant.federation.dataplane
    assert not dataplane.fencing
    assert not dataplane.drain_on_rejoin
    assert not dataplane.resync_on_rejoin


def test_clean_replicated_schedules_keep_invariants():
    report = explore(CLEAN_SPEC, depth=4, budget=50)
    assert report.violation_count == 0
    assert report.counterexample is None


def test_clean_replicated_crash_points_keep_invariants():
    report = explore_crash_points(CLEAN_SPEC)
    assert report.crash_points > 0
    assert report.violation_count == 0, (
        report.counterexample and report.counterexample.violations
    )


def test_stale_epoch_mutant_caught_at_crash_points():
    report = explore_crash_points(MUTANT_SPEC)
    assert report.violation_count >= 1
    result = report.counterexample
    assert result is not None
    assert any("replica_convergence" in v for v in result.violations)

    # The counterexample replays deterministically: same crash point,
    # same divergence.
    replayed = replay_execution(
        MUTANT_SPEC, result.choices, crashes=tuple(result.crashes)
    )
    assert replayed.violations == result.violations
