"""The ``python -m repro check`` command-line contract."""

import json

import pytest

from repro.check.cli import main as check_main


def test_clean_exploration_exits_zero(capsys):
    status = check_main(["--protocol", "2pc", "--depth", "4", "--budget", "50"])
    assert status == 0
    out = capsys.readouterr().out
    assert "kept every invariant" in out
    assert "pruned by POR" in out


def test_mutant_writes_shrunk_counterexample(tmp_path, capsys):
    out_path = tmp_path / "ce.repro.json"
    status = check_main([
        "--protocol", "before", "--workload", "rw_cross",
        "--mutant", "no_l1_guard", "--out", str(out_path),
    ])
    assert status == 1
    assert out_path.exists()
    document = json.loads(out_path.read_text())
    assert document["spec"]["mutant"] == "no_l1_guard"
    assert len(document["schedule"]) <= 12
    assert document["violations"]
    assert "violation found" in capsys.readouterr().out


def test_replay_reproduces_violation(tmp_path, capsys):
    out_path = tmp_path / "ce.repro.json"
    check_main([
        "--protocol", "before", "--workload", "rw_cross",
        "--mutant", "no_l1_guard", "--out", str(out_path),
    ])
    capsys.readouterr()
    status = check_main(["--replay", str(out_path)])
    assert status == 1
    assert "VIOLATES" in capsys.readouterr().out


def test_crash_points_flag_runs_crash_enumeration(capsys):
    status = check_main([
        "--protocol", "2pc", "--depth", "2", "--budget", "20", "--crash-points",
    ])
    assert status == 0
    out = capsys.readouterr().out
    assert "crash points:" in out
    assert "boundaries" in out


def test_pct_strategy_sweeps_seeds(capsys):
    status = check_main([
        "--protocol", "2pc", "--strategy", "pct", "--budget", "5", "--seed", "3",
    ])
    assert status == 0
    assert "5 executions" in capsys.readouterr().out


def test_module_entry_point_dispatches_check():
    from repro.__main__ import main as repro_main

    with pytest.raises(SystemExit) as excinfo:
        repro_main(["check", "--protocol", "2pc", "--depth", "2", "--budget", "5"])
    assert excinfo.value.code == 0
