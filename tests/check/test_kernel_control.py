"""The controlled scheduler must not disturb uncontrolled runs.

Three guarantees:

* With no scheduler installed (the default), the kernel takes the
  historic fast run loop -- traces of non-checker runs stay
  byte-identical.
* A controlled run that always takes choice 0 fires events in exactly
  the default loop's order, so its trace is byte-identical too (the
  checker's "default schedule" really is the production schedule).
* The satellite fixes underneath the checker hold: effect comparison
  is total (creation-ordered), and forked RNG families cannot collide
  with the root streams or with each other.
"""

import hashlib
import random

from repro.check import CheckSpec, ReplayStrategy, build_scenario
from repro.sim.events import Delay, Future
from repro.sim.kernel import Kernel
from repro.sim.rng import RandomStreams

SPEC = CheckSpec(protocol="2pc", granularity="per_site")


def _trace_text(scenario) -> str:
    return scenario.federation.kernel.trace.dump()


def test_uncontrolled_runs_are_byte_identical():
    first = build_scenario(SPEC)
    first.federation.run(until=SPEC.horizon)
    second = build_scenario(SPEC)
    second.federation.run(until=SPEC.horizon)
    assert _trace_text(first) == _trace_text(second)


def test_choice_zero_controlled_run_matches_default_loop():
    plain = build_scenario(SPEC)
    plain.federation.run(until=SPEC.horizon)

    controlled = build_scenario(SPEC)
    controlled.federation.kernel.scheduler = ReplayStrategy([])
    controlled.federation.run(until=SPEC.horizon)

    assert _trace_text(controlled) == _trace_text(plain)


def test_scheduler_defaults_to_none():
    assert Kernel(seed=0).scheduler is None


# -- satellite: total event ordering ----------------------------------------


def test_effect_comparison_is_total_and_creation_ordered():
    effects = [Future(label="a"), Delay(1.0), Future(label="b"), Delay(0.5)]
    assert sorted(effects) == effects  # uids are monotonic
    # Mixed comparisons neither raise nor depend on identity.
    assert effects[0] < effects[1] < effects[2] < effects[3]
    assert not (effects[2] < effects[1])


def test_heap_entries_with_equal_time_and_seq_break_ties_by_effect():
    # Tuples comparing (time, seq, fn, args) can reach the args when fn
    # objects compare equal; Future/Delay __lt__ keeps that total
    # instead of raising TypeError.
    a, b = Future(label="x"), Future(label="y")
    assert (a < b) != (b < a)


# -- satellite: fork-path RNG derivation ------------------------------------


def test_root_stream_derivation_is_byte_compatible():
    # The historic scheme: sha256(f"{seed}:{name}")[:8].  Golden traces
    # bake these exact draws in; the fork feature must not move them.
    streams = RandomStreams(5)
    digest = hashlib.sha256(b"5:x").digest()
    expected = random.Random(int.from_bytes(digest[:8], "big")).random()
    assert streams.stream("x").random() == expected


def test_fork_paths_cannot_collide():
    root = RandomStreams(1)
    draws = {
        "root b:c": root.stream("b:c").random(),
        "fork(a) b:c": root.fork("a").stream("b:c").random(),
        "fork(a:b) c": root.fork("a:b").stream("c").random(),
        "fork(a) fork(b) c": root.fork("a").fork("b").stream("c").random(),
        "fork(a) b|c": root.fork("a").stream("b|c").random(),
    }
    assert len(set(draws.values())) == len(draws), draws


def test_fork_is_reproducible_from_seed_and_path():
    first = RandomStreams(9).fork("exec-3").stream("latency").random()
    second = RandomStreams(9).fork("exec-3").stream("latency").random()
    assert first == second
