"""The seeded one-phase / Short-Commit mutants must be caught.

Each new protocol ships with a protocol-specific bug behind a flag
(see the registry's ``mutants``), wired into ``repro.check --mutant``
and run as a CI canary.  These tests prove the checker actually
catches them -- and that the identical scenario with the guard intact
is clean, so the canaries fail for the right reason.

``presume_commit``
    One-phase treats a participant that died before its piggybacked
    vote as a yes and skips the redo obligation.  The crash-point
    sweep over the ``exposure`` workload kills a site mid-execution of
    a staggered transaction: the mutant commits the global anyway and
    the dead site's effect is lost (atomicity violation).

``short_release_all``
    Short-Commit releases write locks outright instead of downgrading
    them.  The same sweep's vote-swallowing crash turns the exposer's
    decision into an abort after a concurrent writer overwrote the
    released value: the rollback clobbers the writer's committed
    effect (``dirty_undo`` violation).
"""

from repro.check import CheckSpec, ReproTrace, explore_crash_points, write_counterexample

PRESUME_SPEC = CheckSpec(
    protocol="one_phase",
    granularity="per_site",
    workload="exposure",
    mutant="presume_commit",
)
SHORT_SPEC = CheckSpec(
    protocol="short_commit",
    granularity="per_site",
    workload="exposure",
    mutant="short_release_all",
)


def test_presume_commit_loses_an_effect():
    report = explore_crash_points(PRESUME_SPEC)
    assert report.crash_points > 0
    assert report.violation_count >= 1
    assert any(
        "lost_execution" in violation
        for violation in report.counterexample.violations
    )


def test_presume_commit_control_is_clean():
    clean = CheckSpec(
        protocol="one_phase", granularity="per_site", workload="exposure"
    )
    report = explore_crash_points(clean)
    assert report.crash_points > 0
    assert report.violation_count == 0


def test_short_release_all_clobbers_a_committed_write():
    report = explore_crash_points(SHORT_SPEC)
    assert report.crash_points > 0
    assert report.violation_count >= 1
    assert any(
        "dirty_undo" in violation
        for violation in report.counterexample.violations
    )


def test_short_release_all_control_is_clean():
    clean = CheckSpec(
        protocol="short_commit", granularity="per_site", workload="exposure"
    )
    report = explore_crash_points(clean)
    assert report.crash_points > 0
    assert report.violation_count == 0


def test_counterexamples_replay_deterministically(tmp_path):
    for name, spec in (("presume", PRESUME_SPEC), ("short", SHORT_SPEC)):
        report = explore_crash_points(spec)
        result = report.counterexample
        path = tmp_path / f"{name}.repro.json"
        write_counterexample(str(path), spec, result)
        replayed = ReproTrace.read(str(path)).replay()
        assert replayed.violations == result.violations


def test_cli_canaries_catch_and_write_artifacts(tmp_path):
    from repro.check.cli import main

    for spec in (PRESUME_SPEC, SHORT_SPEC):
        out = tmp_path / f"{spec.mutant}.repro.json"
        code = main([
            "--protocol", spec.protocol,
            "--workload", spec.workload,
            "--mutant", spec.mutant,
            "--depth", "2", "--budget", "2",
            "--crash-points",
            "--out", str(out),
        ])
        assert code == 1, f"canary {spec.mutant} did not trip"
        assert out.exists()
