"""Crash-point enumeration at durable log-force boundaries.

The crash dimension of the checker: one execution per completed log
force of the traced baseline, each crashing the forcing site right
after the boundary and restarting it later.  Recovery (§3 machinery)
must restore every invariant in every one of them.
"""

import pytest

from repro.check import (
    CheckSpec,
    CrashPoint,
    ReproTrace,
    enumerate_crash_points,
    explore_crash_points,
    run_execution,
)


def test_boundaries_discovered_from_traced_baseline():
    points = enumerate_crash_points(CheckSpec(protocol="2pc", granularity="per_site"))
    assert points, "a committing 2PC run must force site logs"
    sites = {point.site for point in points}
    assert sites <= {"s0", "s1"}
    assert all(point.at > 0 for point in points)


@pytest.mark.parametrize("protocol,granularity", [
    ("2pc", "per_site"),
    ("after", "per_site"),
    ("before", "per_action"),
])
def test_crash_at_every_boundary_keeps_invariants(protocol, granularity):
    spec = CheckSpec(protocol=protocol, granularity=granularity)
    report = explore_crash_points(spec)
    assert report.crash_points > 0
    assert report.executions == report.crash_points
    assert report.violation_count == 0, report.counterexample.violations


def test_crash_execution_is_deterministic():
    spec = CheckSpec(protocol="2pc", granularity="per_site")
    point = enumerate_crash_points(spec)[0]
    first = run_execution(spec, crashes=(point,))
    second = run_execution(spec, crashes=(point,))
    assert first.violations == second.violations
    assert first.end_time == second.end_time
    assert first.committed == second.committed


def test_crash_points_round_trip_through_trace(tmp_path):
    spec = CheckSpec(protocol="2pc", granularity="per_site")
    point = enumerate_crash_points(spec)[0]
    result = run_execution(spec, crashes=(point,))
    trace = ReproTrace.from_result(spec, result)
    path = tmp_path / "crash.repro.json"
    trace.write(str(path))
    loaded = ReproTrace.read(str(path))
    assert loaded.crashes == [point]
    assert loaded.to_json_bytes() == trace.to_json_bytes()
    replayed = loaded.replay()
    assert replayed.violations == result.violations


def test_crash_point_serialization():
    point = CrashPoint(site="s1", at=8.2, restart_after=60.0)
    assert CrashPoint.from_dict(point.to_dict()) == point
