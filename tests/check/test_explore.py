"""Bounded exhaustive exploration: clean protocols have no bad schedule.

The checker's core regression: for every commit protocol (at its
natural granularity) and for both a single central GTM and a 2-shard
coordinator pool, *every* schedule in the depth-6 bounded interleaving
space keeps the full invariant battery -- atomicity, serializability,
convergence, lock release, redo/undo drain, inverse ordering.
"""

import pytest

from repro.check import CHECK_PROTOCOLS, CheckSpec, explore, run_execution


@pytest.mark.parametrize("protocol,granularity", CHECK_PROTOCOLS)
@pytest.mark.parametrize("coordinators", [1, 2])
def test_clean_exploration_has_no_violations(protocol, granularity, coordinators):
    spec = CheckSpec(
        protocol=protocol, granularity=granularity, coordinators=coordinators
    )
    report = explore(spec, depth=6, budget=400)
    assert report.violation_count == 0, report.counterexample.violations
    assert report.counterexample is None
    assert report.exhausted, "budget too small to exhaust the bounded space"
    assert report.executions >= 1


@pytest.mark.parametrize("protocol,granularity", CHECK_PROTOCOLS)
def test_transfers_commit_on_default_schedule(protocol, granularity):
    result = run_execution(CheckSpec(protocol=protocol, granularity=granularity))
    assert result.committed == 2 and result.aborted == 0
    assert result.ok


def test_partial_order_reduction_prunes_commuting_deliveries():
    report = explore(CheckSpec(protocol="2pc", granularity="per_site"), depth=6)
    # Two simultaneous transactions over two sites produce plenty of
    # same-instant deliveries to *different* destinations; POR must
    # prune those orders instead of branching on them.
    assert report.pruned > 0
    assert report.exhausted


def test_guarded_rw_cross_stays_serializable():
    # The §3.3 cross-writing pair under the *intact* commit-before
    # guard: the L1 table serializes every explored interleaving.
    spec = CheckSpec(protocol="before", granularity="per_action", workload="rw_cross")
    report = explore(spec, depth=6, budget=100)
    assert report.violation_count == 0
    assert report.exhausted


def test_depth_bound_limits_backtracking():
    spec = CheckSpec(protocol="2pc", granularity="per_site")
    shallow = explore(spec, depth=2, budget=400)
    deep = explore(spec, depth=6, budget=400)
    assert shallow.exhausted and deep.exhausted
    assert shallow.executions < deep.executions


def test_budget_caps_executions():
    spec = CheckSpec(protocol="2pc", granularity="per_site")
    report = explore(spec, depth=6, budget=5)
    assert report.executions == 5
    assert not report.exhausted
