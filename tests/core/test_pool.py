"""CoordinatorPool: routing, rerouting, crash/failover bookkeeping."""

import zlib

import pytest

from repro.core.gtm import GTMConfig
from repro.core.invariants import atomicity_report, serializability_ok
from repro.core.pool import AllCoordinatorsDown
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment

N_SITES = 3


def build(
    coordinators: int = 4,
    protocol: str = "2pc",
    granularity: str = "per_site",
    routing: str = "hash",
    seed: int = 5,
) -> Federation:
    preparable = protocol in ("2pc", "2pc-pa", "3pc")
    specs = [
        SiteSpec(
            f"s{i}",
            tables={f"t{i}": {f"k{j}": 100 for j in range(16)}},
            preparable=preparable,
        )
        for i in range(N_SITES)
    ]
    return Federation(
        specs,
        FederationConfig(
            seed=seed,
            coordinators=coordinators,
            coordinator_routing=routing,
            gtm=GTMConfig(protocol=protocol, granularity=granularity),
        ),
    )


def transfer(n: int) -> list:
    """Two-site transfer; distinct keys per ``n`` (no lock conflicts)."""
    src, dst = n % N_SITES, (n + 1) % N_SITES
    return [
        increment(f"t{src}", f"k{n % 16}", -1),
        increment(f"t{dst}", f"k{n % 16}", 1),
    ]


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------


def test_hash_routing_is_crc32_of_gtxn_id():
    fed = build(coordinators=4)
    for name in ("G1", "alpha", "payment-77"):
        expected = zlib.crc32(name.encode()) % 4
        assert fed.pool.shard_of(name, transfer(0)) == expected
        # Deterministic: repeated calls agree.
        assert fed.pool.shard_of(name, transfer(1)) == expected


def test_affinity_routing_groups_by_first_site():
    fed = build(coordinators=4, routing="affinity")
    # Both transactions open at t0 -> s0: same shard regardless of id.
    a = fed.pool.shard_of("G1", transfer(0))
    b = fed.pool.shard_of("G999", transfer(0))
    assert a == b == zlib.crc32(b"s0") % 4
    # A transaction opening at t1 -> s1 may (and here does) differ.
    assert fed.pool.shard_of("G1", transfer(1)) == zlib.crc32(b"s1") % 4


def test_unknown_routing_rejected():
    with pytest.raises(ValueError):
        build(coordinators=2, routing="bogus")


def test_single_coordinator_is_passthrough():
    fed = build(coordinators=1)
    assert len(fed.coordinators) == 1
    assert "central1" not in fed.nodes  # no extra nodes were created
    process = fed.submit(transfer(0))
    fed.run()
    assert process.value.committed
    # The seed's GTM naming, not the pool's routing namespace.
    assert process.value.gtxn_id == "G1"
    assert fed.pool.metrics() == fed.gtm.metrics()


def test_shards_spread_transactions():
    fed = build(coordinators=4)
    processes = [fed.submit(transfer(n)) for n in range(12)]
    fed.run()
    assert all(p.value.committed for p in processes)
    per_shard = [gtm.committed for gtm in fed.coordinators]
    assert sum(per_shard) == 12
    assert sum(1 for c in per_shard if c > 0) >= 2  # actually sharded
    assert atomicity_report(fed).ok
    assert serializability_ok(fed)


# ---------------------------------------------------------------------------
# Rerouting and total outage
# ---------------------------------------------------------------------------


def test_crashed_home_shard_reroutes_submission():
    fed = build(coordinators=2)
    name = "G1"
    home = fed.pool.shard_of(name, transfer(0))
    fed.pool.crash(home)
    process = fed.pool.submit(transfer(0), name=name)
    fed.run()
    assert process.value.committed
    assert fed.pool.submissions_rerouted == 1
    peer = fed.coordinators[(home + 1) % 2]
    assert peer.committed == 1


def test_all_coordinators_down_raises():
    fed = build(coordinators=2)
    fed.pool.crash(0)
    fed.pool.crash(1)
    with pytest.raises(AllCoordinatorsDown):
        fed.pool.submit(transfer(0))
    with pytest.raises(AllCoordinatorsDown):
        fed.pool.live_coordinator()


def test_crash_is_idempotent():
    fed = build(coordinators=3)
    fed.pool.crash(1)
    fed.pool.crash(1)
    assert fed.pool.crashes == 1


# ---------------------------------------------------------------------------
# Crash + failover
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "protocol,granularity",
    [
        ("2pc", "per_site"),
        ("2pc-pa", "per_site"),
        ("3pc", "per_site"),
        ("after", "per_site"),
        ("before", "per_site"),
        ("before", "per_action"),
    ],
)
def test_mid_flight_crash_leaves_no_orphans(protocol, granularity):
    fed = build(coordinators=3, protocol=protocol, granularity=granularity)
    fed.crash_coordinator(1, at=6.0)
    batches = [
        {"operations": transfer(n), "delay": float(n)} for n in range(12)
    ]
    fed.run_transactions(batches)
    fed.run()  # drain failover stragglers
    assert fed.pool.crashes == 1
    assert fed.pool.unresolved_orphans() == []
    assert atomicity_report(fed).ok
    assert serializability_ok(fed)


def test_failover_redrives_hardened_commit():
    """A commit hardened before the crash must commit everywhere.

    With seed 5 / latency 1 the 2pc decision for ``T0`` hardens at
    t=9.2 (see the kernel trace); crashing its shard at t=9.7 leaves a
    hardened commit with unacknowledged sites.  The failover peer must
    read that decision from the shared log and redrive *commit* --
    presuming abort here would wrongly erase a durable decision.
    """
    fed = build(coordinators=2)
    name = shard1_name = None
    for i in range(100):
        candidate = f"T{i}"
        if fed.pool.shard_of(candidate, transfer(0)) == 1:
            name = shard1_name = candidate
            break
    assert shard1_name is not None
    fed.pool.submit(transfer(0), name=name)
    fed.crash_coordinator(1, at=9.7)
    fed.run()
    assert fed.coordinators[1].decision_log.decision_for(name) == "commit"
    # Both sites applied the transfer: nothing was presumed aborted.
    assert fed.peek("s0", "t0", "k0") == 99
    assert fed.peek("s1", "t1", "k0") == 101
    assert fed.pool.unresolved_orphans() == []
    assert atomicity_report(fed).ok


def test_double_crash_merges_into_running_adoption():
    """A re-crash mid-adoption merges orphans; no duplicate adopter.

    Unit-level check of the ``_start_failover`` guard: while shard 0's
    adoption process is draining its batch, a second crash of the same
    shard must fold the new orphans into that very batch -- spawning a
    second adoption would redrive transactions the running one is
    still settling.
    """
    fed = build(coordinators=3)
    pool = fed.pool
    first, second = object(), object()
    pool._adoption_running.add(0)  # an adoption is (notionally) running
    pool._adoptions[0] = {"X1": first}
    pool._pending_orphans.update({"X2": second})
    queued_before = fed.kernel.queued
    started_before = pool.failovers_started
    pool._start_failover()
    # Merged into the running batch, counted, and *no* process spawned.
    assert pool._adoptions[0] == {"X1": first, "X2": second}
    assert pool.failovers_started == started_before + 1
    assert pool._adoption_running == {0}
    assert fed.kernel.queued == queued_before
    assert pool._pending_orphans == {}


def test_double_crash_of_same_shard_converges():
    """Crash, restart, re-crash: adoption stays idempotent end to end.

    Shard 1 crashes with transactions in flight, its peer starts
    adopting, shard 1 restarts, accepts fresh work, and crashes again
    while the first adoption is still draining.  The second batch
    merges into the first; afterwards nothing may be double-driven,
    orphaned, or left in the adoption bookkeeping.
    """
    fed = build(coordinators=2)
    shard1 = [f"T{i}" for i in range(40)
              if fed.pool.shard_of(f"T{i}", transfer(0)) == 1][:6]
    assert len(shard1) == 6

    def submitter(name: str, delay: float, n: int):
        yield delay
        outcome = yield fed.submit(transfer(n), name=name)
        return outcome

    # Four transactions in flight at the first crash; two more begin
    # at the reborn shard and are caught by the second crash.
    delays = [0.5, 2.0, 3.5, 4.5, 9.5, 10.0]
    processes = [
        fed.kernel.spawn(
            submitter(name, delays[i], i), name=f"client:{name}"
        )
        for i, name in enumerate(shard1)
    ]
    fed.crash_coordinator(1, at=5.0)
    fed.restart_coordinator(1, at=9.0)
    fed.crash_coordinator(1, at=11.0)  # again, mid-adoption of batch 1
    fed.run()
    assert fed.pool.crashes == 2
    assert fed.pool.failovers_started == 2
    assert all(process.done for process in processes)
    assert fed.pool.unresolved_orphans() == []
    assert fed.pool._adoptions == {}
    assert fed.pool._adoption_running == set()
    assert atomicity_report(fed).ok
    assert serializability_ok(fed)


def test_restart_rejoins_the_pool():
    fed = build(coordinators=2)
    fed.crash_coordinator(0, at=5.0)
    fed.restart_coordinator(0, at=50.0)
    batches = [
        {"operations": transfer(n), "delay": 60.0 + n} for n in range(4)
    ]
    fed.run_transactions(batches)
    # Post-restart traffic reaches the reborn shard again.
    assert not fed.coordinators[0].crashed
    assert fed.coordinators[0].committed > 0
    assert fed.pool.unresolved_orphans() == []
    assert atomicity_report(fed).ok


def test_pool_metrics_aggregate_across_shards():
    fed = build(coordinators=2)
    for n in range(6):
        fed.submit(transfer(n))
    fed.run()
    merged = fed.pool.metrics()
    per_shard = [gtm.metrics() for gtm in fed.coordinators]
    assert merged["global_committed"] == sum(
        m["global_committed"] for m in per_shard
    )
    # Shared components are reported once (shard 0), not double-counted.
    assert merged["decision_forces"] == per_shard[0]["decision_forces"]
    for key in (
        "coordinator_crashes",
        "failovers_started",
        "submissions_rerouted",
        "unresolved_orphans",
    ):
        assert key in merged
    assert merged["unresolved_orphans"] == 0


def test_is_active_spans_shards_and_adoptions():
    fed = build(coordinators=2)
    name = "G1"
    shard = fed.pool.shard_of(name, transfer(0))
    fed.pool.submit(transfer(0), name=name)
    fed.kernel.run(until=2.0)  # mid-flight
    assert fed.pool.is_active(name)
    fed.pool.crash(shard)
    # Now in-doubt: either pending or already adopted by the peer.
    assert fed.pool.is_active(name)
    fed.run()
    assert not fed.pool.is_active(name)
    assert fed.pool.unresolved_orphans() == []
