"""Inverse-action optimization (the §4.1 deferred optimization)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.undo import UndoLog, optimize_inverses
from repro.mlt.actions import Operation, inverse_of


def make_records(ops_with_before):
    """Build an UndoLog's records from (operation, before) pairs."""
    log = UndoLog()
    for operation, before in ops_with_before:
        log.record("G1", "s0", operation, inverse_of(operation, before))
    return log.records


def test_increments_net_out():
    records = make_records([
        (Operation("increment", "t", "x", 5), None),
        (Operation("increment", "t", "x", 3), None),
        (Operation("increment", "t", "x", -2), None),
    ])
    optimized = optimize_inverses(records)
    assert len(optimized) == 1
    assert optimized[0].kind == "increment"
    assert optimized[0].value == -6


def test_zero_net_increments_vanish():
    records = make_records([
        (Operation("increment", "t", "x", 5), None),
        (Operation("increment", "t", "x", -5), None),
    ])
    assert optimize_inverses(records) == []


def test_repeated_writes_restore_oldest_before():
    records = make_records([
        (Operation("write", "t", "x", 10), 1),   # before txn: x = 1
        (Operation("write", "t", "x", 20), 10),
        (Operation("write", "t", "x", 30), 20),
    ])
    optimized = optimize_inverses(records)
    assert len(optimized) == 1
    assert optimized[0].kind == "write"
    assert optimized[0].value == 1


def test_insert_then_writes_collapse_to_delete():
    records = make_records([
        (Operation("insert", "t", "x", 10), None),
        (Operation("write", "t", "x", 20), 10),
    ])
    optimized = optimize_inverses(records)
    assert len(optimized) == 1
    assert optimized[0].kind == "delete"


def test_mixed_kinds_keep_full_sequence():
    records = make_records([
        (Operation("write", "t", "x", 10), 1),
        (Operation("increment", "t", "x", 5), None),
    ])
    optimized = optimize_inverses(records)
    assert len(optimized) == 2  # cannot safely collapse across the mix


def test_objects_undone_in_reverse_touch_order():
    records = make_records([
        (Operation("increment", "t", "a", 1), None),
        (Operation("increment", "t", "b", 1), None),
        (Operation("increment", "t", "a", 1), None),
    ])
    optimized = optimize_inverses(records)
    # a was touched last -> undone first.
    assert [op.key for op in optimized] == ["a", "b"]


def test_reads_never_produce_inverses():
    records = make_records([(Operation("read", "t", "x"), 5)])
    assert optimize_inverses(records) == []


# -- the correctness property: optimized == unoptimized ---------------------


def apply_op(state: dict, op: Operation) -> dict:
    state = dict(state)
    if op.kind in ("write", "insert"):
        state[op.key] = op.value
    elif op.kind == "delete":
        state.pop(op.key, None)
    elif op.kind == "increment":
        state[op.key] = state.get(op.key, 0) + op.value
    return state


@st.composite
def txn_scripts(draw):
    keys = ["x", "y"]
    n = draw(st.integers(min_value=1, max_value=6))
    script = []
    for _ in range(n):
        kind = draw(st.sampled_from(["write", "increment"]))
        key = draw(st.sampled_from(keys))
        value = draw(st.integers(min_value=-9, max_value=9))
        script.append((kind, key, value))
    return script


@given(script=txn_scripts())
@settings(max_examples=150)
def test_optimized_undo_equals_unoptimized(script):
    state = {"x": 100, "y": 200}
    log = UndoLog()
    current = dict(state)
    for kind, key, value in script:
        operation = Operation(kind, "t", key, value)
        before = current.get(key)
        log.record("G1", "s0", operation, inverse_of(operation, before))
        current = apply_op(current, operation)

    # Unoptimized undo: every inverse in reverse order.
    plain = dict(current)
    for record in log.inverses_for("G1"):
        plain = apply_op(plain, record.inverse)

    # Optimized undo.
    optimized_state = dict(current)
    for op in optimize_inverses(log.records):
        optimized_state = apply_op(optimized_state, op)

    assert plain == optimized_state == state
