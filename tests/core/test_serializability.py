"""Serialization-graph checkers."""

from repro.core.serializability import (
    HistoryOp,
    build_graph,
    check,
    committed_projection,
    global_serializability,
    quasi_serializability,
    rw_conflict,
)
from repro.mlt.conflicts import SEMANTIC_TABLE


def op(seq, txn, kind, key="x", table="t"):
    return HistoryOp(seq, txn, kind, table, key)


def test_rw_conflict_predicate():
    assert not rw_conflict("read", "read")
    assert rw_conflict("read", "write")
    assert rw_conflict("write", "read")
    assert rw_conflict("write", "write")
    assert rw_conflict("increment", "increment")  # rw view: both write


def test_serial_history_is_serializable():
    history = [op(1, "T1", "write"), op(2, "T1", "read"), op(3, "T2", "write")]
    report = check(history)
    assert report.serializable
    assert report.serial_order == ["T1", "T2"]


def test_classic_cycle_detected():
    history = [
        op(1, "T1", "read", key="x"),
        op(2, "T2", "write", key="x"),
        op(3, "T2", "read", key="y"),
        op(4, "T1", "write", key="y"),
    ]
    report = check(history)
    assert not report.serializable
    assert set(report.cycle) >= {"T1", "T2"}


def test_reads_do_not_conflict():
    history = [op(1, "T1", "read"), op(2, "T2", "read"), op(3, "T1", "read")]
    report = check(history)
    assert report.serializable
    assert report.edges == []


def test_semantic_conflicts_let_increments_commute():
    history = [
        op(1, "T1", "increment"),
        op(2, "T2", "increment"),
        op(3, "T1", "increment"),
    ]
    assert not check(history).serializable  # rw view: cycle
    assert check(history, SEMANTIC_TABLE.conflicts).serializable


def test_different_objects_never_conflict():
    history = [op(1, "T1", "write", key="x"), op(2, "T2", "write", key="y")]
    assert check(history).edges == []


def test_committed_projection_filters():
    history = [op(1, "T1", "write"), op(2, "T2", "write")]
    assert [o.txn for o in committed_projection(history, {"T1"})] == ["T1"]


def test_global_cycle_across_sites():
    """Serializable at each site, cyclic globally -- the saga anomaly."""
    site_a = [op(1, "T1", "write", key="x"), op(2, "T2", "write", key="x")]
    site_b = [op(1, "T2", "write", key="y"), op(2, "T1", "write", key="y")]
    assert check(site_a).serializable
    assert check(site_b).serializable
    report = global_serializability({"a": site_a, "b": site_b})
    assert not report.serializable


def test_global_consistent_orders_pass():
    site_a = [op(1, "T1", "write", key="x"), op(2, "T2", "write", key="x")]
    site_b = [op(1, "T1", "write", key="y"), op(2, "T2", "write", key="y")]
    report = global_serializability({"a": site_a, "b": site_b})
    assert report.serializable
    assert report.serial_order.index("T1") < report.serial_order.index("T2")


def test_quasi_serializability_ignores_indirect_conflicts():
    """Global txns ordered consistently; a local txn creates only an
    indirect path -- QSR accepts what global SR would accept too here,
    but the projection drops the local-only edges."""
    site_a = [
        op(1, "G1", "write", key="x"),
        op(2, "L1", "write", key="x"),
        op(3, "L1", "write", key="z"),
        op(4, "G2", "write", key="z"),
    ]
    report = quasi_serializability({"a": site_a}, global_txns={"G1", "G2"})
    assert report.serializable


def test_quasi_serializability_rejects_direct_global_cycle():
    site_a = [op(1, "G1", "write", key="x"), op(2, "G2", "write", key="x")]
    site_b = [op(1, "G2", "write", key="y"), op(2, "G1", "write", key="y")]
    report = quasi_serializability({"a": site_a, "b": site_b}, global_txns={"G1", "G2"})
    assert not report.serializable


def test_quasi_serializability_requires_local_serializability():
    cyclic = [
        op(1, "T1", "read", key="x"),
        op(2, "T2", "write", key="x"),
        op(3, "T2", "read", key="y"),
        op(4, "T1", "write", key="y"),
    ]
    report = quasi_serializability({"a": cyclic}, global_txns=set())
    assert not report.serializable


def test_build_graph_nodes_include_all_txns():
    graph = build_graph([op(1, "T1", "read"), op(2, "T2", "read")])
    assert set(graph.nodes) == {"T1", "T2"}
