"""PaxosAcceptor / AcceptorGroup: the replicated decision log.

Unit-level checks of the consensus substrate under Paxos Commit: the
2F+1 group shape, the promise/accept ballot ordering, the conservative
majority read (``decision_for``), idempotent retransmission handling,
and the crash model -- stable state survives, an in-flight force is
lost, the serve loop respawns on restart.
"""

import pytest

from repro.core.paxos import AcceptorGroup
from repro.net.message import Message
from repro.net.network import FixedLatency, Network
from repro.net.node import Node
from tests.conftest import run

GTXN = "G1"


def make_group(kernel, f: int = 1):
    net = Network(kernel, latency=FixedLatency(1.0))
    central = net.add_node(Node(kernel, "central", is_central=True))
    group = AcceptorGroup(kernel, net, f)
    return net, central, group


def send(net, dest: str, kind: str, gtxn_id: str = GTXN, **payload) -> None:
    net.send(
        Message(
            kind=kind, sender="central", dest=dest,
            payload=payload, gtxn_id=gtxn_id,
        )
    )


def collect(kernel, central, n: int) -> list:
    """Gather the next ``n`` messages arriving at the central node."""
    out: list = []

    def receiver():
        for _ in range(n):
            message = yield from central.recv()
            out.append(message)

    kernel.spawn(receiver(), name="collector")
    return out


def record_for(value: str = "commit", ballot: int = 0) -> dict:
    return {"ballot": ballot, "rms": ["s0", "s1"], "value": value,
            "votes": {"s0": "ready", "s1": "ready"}}


# ---------------------------------------------------------------------------
# Group shape
# ---------------------------------------------------------------------------


def test_group_is_2f_plus_1_with_majority_f_plus_1(kernel):
    for f, size in ((0, 1), (1, 3), (2, 5)):
        _net, _central, group = make_group(kernel, f=f)
        assert len(group.acceptors) == size
        assert group.majority == f + 1
        assert group.names == [f"acceptor{i}" for i in range(size)]


def test_negative_f_rejected(kernel):
    net = Network(kernel, latency=FixedLatency(1.0))
    with pytest.raises(ValueError):
        AcceptorGroup(kernel, net, -1)


# ---------------------------------------------------------------------------
# decision_for: the conservative majority read
# ---------------------------------------------------------------------------


def test_majority_acceptance_chooses_the_value(kernel):
    net, central, group = make_group(kernel, f=1)
    replies = collect(kernel, central, 3)
    for name in group.names:
        send(net, name, "paxos_p2a", record=record_for())
    kernel.run()
    assert group.decision_for(GTXN) == "commit"
    assert all(m.payload["accepted"] for m in replies)
    # One forced write per acceptance, on every acceptor.
    assert group.total_forces() == 3


def test_minority_acceptance_is_not_a_decision(kernel):
    net, central, group = make_group(kernel, f=1)
    collect(kernel, central, 1)
    send(net, group.names[0], "paxos_p2a", record=record_for())
    kernel.run()
    assert group.decision_for(GTXN) is None  # 1 of 3 < majority 2


def test_empty_majority_is_not_presumed_abort(kernel):
    _net, _central, group = make_group(kernel, f=1)
    # All three acceptors readable, zero accepted records: a crashed
    # leader's in-flight ballot-0 messages could still land, so the
    # read must stay undecided -- never conclude abort from silence.
    assert group.decision_for(GTXN) is None


def test_fewer_than_majority_readable_is_unreadable(kernel):
    net, central, group = make_group(kernel, f=1)
    collect(kernel, central, 3)
    for name in group.names:
        send(net, name, "paxos_p2a", record=record_for())
    kernel.run()
    group.crash(0)
    assert group.decision_for(GTXN) == "commit"  # 2 readable >= 2
    group.crash(1)
    assert group.decision_for(GTXN) is None  # 1 readable < 2
    # Stable state survived the crash: restoring one acceptor makes
    # the chosen decision readable again.
    run(kernel, group.restart(0), name="restart-acceptor0")
    assert group.decision_for(GTXN) == "commit"


# ---------------------------------------------------------------------------
# Ballot ordering
# ---------------------------------------------------------------------------


def test_promise_blocks_lower_ballot_p2a(kernel):
    net, central, group = make_group(kernel, f=0)
    acceptor = group.acceptors[0]
    replies = collect(kernel, central, 2)
    send(net, acceptor.name, "paxos_p1a", ballot=5)
    kernel.run()
    send(net, acceptor.name, "paxos_p2a", record=record_for(ballot=0))
    kernel.run()
    assert replies[0].payload["promised"] is True
    assert replies[1].payload["accepted"] is False
    assert replies[1].payload["ballot"] == 5
    assert acceptor.accepted == {}
    assert acceptor.rejections == 1


def test_lower_ballot_p1a_rejected_with_current_ballot(kernel):
    net, central, group = make_group(kernel, f=0)
    replies = collect(kernel, central, 2)
    send(net, "acceptor0", "paxos_p1a", ballot=5)
    kernel.run()
    send(net, "acceptor0", "paxos_p1a", ballot=3)
    kernel.run()
    assert replies[1].payload == {"promised": False, "ballot": 5}


def test_higher_ballot_p2a_supersedes_accepted_record(kernel):
    net, central, group = make_group(kernel, f=0)
    acceptor = group.acceptors[0]
    collect(kernel, central, 2)
    send(net, acceptor.name, "paxos_p2a", record=record_for(ballot=0))
    kernel.run()
    send(net, acceptor.name, "paxos_p2a", record=record_for(ballot=3))
    kernel.run()
    assert acceptor.accepted[GTXN]["ballot"] == 3
    assert acceptor.forces == 2


def test_promise_returns_previously_accepted_record(kernel):
    net, central, group = make_group(kernel, f=0)
    replies = collect(kernel, central, 2)
    send(net, "acceptor0", "paxos_p2a", record=record_for(ballot=0))
    kernel.run()
    send(net, "acceptor0", "paxos_p1a", ballot=7)
    kernel.run()
    assert replies[1].payload["promised"] is True
    assert replies[1].payload["accepted"] == record_for(ballot=0)


# ---------------------------------------------------------------------------
# Idempotence and the crash model
# ---------------------------------------------------------------------------


def test_retransmitted_p2a_reacks_without_second_force(kernel):
    net, central, group = make_group(kernel, f=0)
    acceptor = group.acceptors[0]
    replies = collect(kernel, central, 2)
    send(net, acceptor.name, "paxos_p2a", record=record_for())
    send(net, acceptor.name, "paxos_p2a", record=record_for())
    kernel.run()
    assert [m.payload["accepted"] for m in replies] == [True, True]
    assert acceptor.forces == 1  # the duplicate re-acked, no re-force


def test_crash_mid_force_loses_the_write(kernel):
    net, central, group = make_group(kernel, f=0)
    acceptor = group.acceptors[0]
    send(net, acceptor.name, "paxos_p2a", record=record_for())
    # Delivery at t=1, force completes at t=2: interrupt in between.
    kernel.call_at(1.5, acceptor.crash)
    kernel.run()
    assert acceptor.accepted == {}
    assert acceptor.forces == 0
    # After restart the serve loop is back and the write can land.
    run(kernel, acceptor.restart(), name="restart-acceptor0")
    replies = collect(kernel, central, 1)
    send(net, acceptor.name, "paxos_p2a", record=record_for())
    kernel.run()
    assert replies[0].payload["accepted"] is True
    assert acceptor.accepted[GTXN] == record_for()


def test_metrics_shape(kernel):
    net, central, group = make_group(kernel, f=1)
    collect(kernel, central, 3)
    for name in group.names:
        send(net, name, "paxos_p2a", record=record_for())
    kernel.run()
    group.crash(2)
    metrics = group.metrics()
    assert metrics["acceptors"] == 3
    assert metrics["f"] == 1
    assert metrics["acceptor_forces"] == 3
    assert metrics["acceptances"] == 3
    assert metrics["crashed"] == 1
