"""Global transaction objects and outcomes."""

from repro.core.global_txn import GlobalOutcome, GlobalTransaction, GlobalTxnState
from repro.mlt.actions import increment, read


def test_initial_state_traced(kernel):
    gtxn = GlobalTransaction(kernel, "G1", [increment("t", "k", 1)])
    assert gtxn.state is GlobalTxnState.RUNNING
    record = kernel.trace.first(category="gtxn_state")
    assert record.subject == "G1"
    assert record.details["state"] == "running"


def test_state_transitions_traced_in_order(kernel):
    gtxn = GlobalTransaction(kernel, "G1", [])
    gtxn.set_state(GlobalTxnState.INQUIRE)
    gtxn.set_state(GlobalTxnState.WAITING_TO_COMMIT)
    gtxn.set_state(GlobalTxnState.COMMITTED)
    states = [r.details["state"] for r in kernel.trace.select(category="gtxn_state")]
    assert states == ["running", "inquire", "waiting_to_commit", "committed"]


def test_decision_recorded(kernel):
    gtxn = GlobalTransaction(kernel, "G1", [])
    gtxn.set_decision("abort", cause="test")
    assert gtxn.decision == "abort"
    record = kernel.trace.first(category="gtxn_decision")
    assert record.details["decision"] == "abort"
    assert record.details["cause"] == "test"


def test_sites_in_first_use_order(kernel):
    ops = [
        increment("t", "k", 1).routed("s2", "t"),
        read("u", "k").routed("s1", "u"),
        increment("t", "j", 1).routed("s2", "t"),
    ]
    gtxn = GlobalTransaction(kernel, "G1", ops)
    assert gtxn.sites() == ["s2", "s1"]


def test_outcome_response_time():
    outcome = GlobalOutcome(
        gtxn_id="G1", committed=True, submit_time=3.0, finish_time=10.5
    )
    assert outcome.response_time == 7.5


def test_outcome_defaults():
    outcome = GlobalOutcome(gtxn_id="G1", committed=False)
    assert outcome.redo_executions == 0
    assert outcome.undo_executions == 0
    assert outcome.retriable is False
    assert outcome.reads == {}
