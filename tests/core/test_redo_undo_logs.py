"""Redo-log and undo-log bookkeeping."""

from repro.core.redo import RedoLog
from repro.core.undo import UndoLog
from repro.mlt.actions import increment, inverse_of, read, write


def test_redo_record_and_commit_lifecycle():
    log = RedoLog()
    ops = [write("t", "x", 1)]
    entry = log.record("G1", "a", ops)
    assert not entry.committed
    assert log.pending() == [entry]
    log.mark_committed("G1", "a")
    assert log.pending() == []


def test_redo_counts():
    log = RedoLog()
    log.record("G1", "a", [])
    assert log.note_redo("G1", "a") == 1
    assert log.note_redo("G1", "a") == 2
    assert log.total_redos == 2


def test_redo_forget_clears_gtxn():
    log = RedoLog()
    log.record("G1", "a", [])
    log.record("G1", "b", [])
    log.record("G2", "a", [])
    log.forget("G1")
    assert list(log.entries) == [("G2", "a")]


def test_undo_records_in_reverse_order():
    log = UndoLog()
    op1, op2 = increment("t", "x", 1), increment("t", "y", 2)
    log.record("G1", "a", op1, inverse_of(op1, None))
    log.record("G1", "b", op2, inverse_of(op2, None))
    inverses = log.inverses_for("G1")
    assert [r.operation.key for r in inverses] == ["y", "x"]


def test_undo_reads_have_no_inverse():
    log = UndoLog()
    op = read("t", "x")
    log.record("G1", "a", op, inverse_of(op, 5))
    assert log.inverses_for("G1") == []


def test_undo_filter_by_site():
    log = UndoLog()
    for site in ("a", "b", "a"):
        op = increment("t", site, 1)
        log.record("G1", site, op, inverse_of(op, None))
    assert len(log.inverses_for("G1", site="a")) == 2
    assert len(log.inverses_for("G1", site="b")) == 1


def test_undo_forget():
    log = UndoLog()
    op = increment("t", "x", 1)
    log.record("G1", "a", op, inverse_of(op, None))
    log.record("G2", "a", op, inverse_of(op, None))
    log.forget("G1")
    assert log.inverses_for("G1") == []
    assert len(log.inverses_for("G2")) == 1
