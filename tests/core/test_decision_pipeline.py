"""DecisionPipeline size-or-deadline flush, adaptive window, paxos guard."""

import pytest

from repro.core.gtm import GTMConfig
from repro.errors import DurabilityOrderViolation
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment
from repro.sim.events import Future


def build(**gtm_kwargs) -> Federation:
    specs = [
        SiteSpec("s0", tables={"t0": {f"k{j}": 100 for j in range(8)}},
                 preparable=True, buckets=8),
        SiteSpec("s1", tables={"t1": {f"k{j}": 100 for j in range(8)}},
                 preparable=True, buckets=8),
    ]
    config = GTMConfig(protocol="2pc", granularity="per_site", **gtm_kwargs)
    return Federation(specs, FederationConfig(seed=11, gtm=config))


def transfers(fed, n):
    return [
        fed.submit(
            [increment("t0", f"k{i % 8}", -1), increment("t1", f"k{i % 8}", 1)],
            name=f"T{i}",
        )
        for i in range(n)
    ]


def test_config_validation():
    with pytest.raises(ValueError):
        GTMConfig(pipeline_policy="magic")
    with pytest.raises(ValueError):
        GTMConfig(pipeline_max_group=-1)


def test_size_trigger_flushes_full_group():
    # A window this long would stall every commit; the size trigger
    # must release full groups long before the deadline.
    fed = build(pipeline_window=500.0, pipeline_max_group=2)
    processes = transfers(fed, 4)
    fed.run()
    pipeline = fed.gtm.pipeline
    assert all(p.value.committed for p in processes)
    assert pipeline.size_flushes >= 1
    # Every group left on the size trigger; the scheduled deadlines all
    # fired stale (generation bumped) and flushed nothing.
    assert pipeline.deadline_flushes == 0
    assert pipeline.decisions_grouped == 2 * pipeline.groups_sent
    metrics = fed.gtm.metrics()
    assert metrics["decision_size_flushes"] == pipeline.size_flushes
    assert metrics["decision_deadline_flushes"] == pipeline.deadline_flushes


def test_deadline_flush_counts_partial_groups():
    fed = build(pipeline_window=1.0, pipeline_max_group=50)
    processes = transfers(fed, 3)
    fed.run()
    assert all(p.value.committed for p in processes)
    assert fed.gtm.pipeline.deadline_flushes >= 1
    assert fed.gtm.pipeline.size_flushes == 0


def test_static_policy_has_no_controller():
    fed = build(pipeline_window=1.0)
    assert fed.gtm.pipeline is not None
    assert fed.gtm.pipeline.controller is None


def test_adaptive_policy_observes_and_outcomes_match_static():
    static = build(pipeline_window=2.0)
    static_procs = transfers(static, 8)
    static.run()
    adaptive = build(pipeline_window=2.0, pipeline_policy="adaptive")
    adaptive_procs = transfers(adaptive, 8)
    adaptive.run()
    controller = adaptive.gtm.pipeline.controller
    assert controller is not None
    assert controller.observations > 0
    assert controller.floor == pytest.approx(0.25)
    # The adaptive deadline reschedules flushes, never outcomes.
    assert [p.value.committed for p in adaptive_procs] == [
        p.value.committed for p in static_procs
    ]


def test_paxos_group_send_requires_chosen_decisions():
    """Defence in depth: pipelined forcing cannot outrun the acceptors.

    ``PaxosCommit`` delivers decisions directly, so nothing should ever
    reach ``_send_group`` without a majority-chosen value -- but if a
    future regression routes one there, the participant ack would
    precede durable acceptance.  The pipeline must refuse loudly.
    """
    fed = Federation(
        [
            SiteSpec("s0", tables={"t0": {"k": 100}}, preparable=True),
            SiteSpec("s1", tables={"t1": {"k": 100}}, preparable=True),
        ],
        FederationConfig(
            seed=11,
            gtm=GTMConfig(
                protocol="paxos", granularity="per_site", pipeline_window=5.0
            ),
        ),
    )
    pipeline = fed.gtm.pipeline
    assert pipeline is not None
    assert fed.gtm.acceptors is not None
    entries = [("T-unchosen", "commit", None, Future(label="test"))]
    sender = pipeline._send_group("s0", entries)
    with pytest.raises(DurabilityOrderViolation, match="T-unchosen"):
        next(sender)


def test_paxos_group_send_accepts_chosen_decisions():
    """The guard passes decisions the acceptor group actually chose."""
    fed = Federation(
        [
            SiteSpec("s0", tables={"t0": {"k": 100}}, preparable=True),
            SiteSpec("s1", tables={"t1": {"k": 100}}, preparable=True),
        ],
        FederationConfig(
            seed=11,
            gtm=GTMConfig(
                protocol="paxos", granularity="per_site", pipeline_window=5.0
            ),
        ),
    )
    process = fed.submit(
        [increment("t0", "k", -1), increment("t1", "k", 1)], name="T0"
    )
    fed.run()
    assert process.value.committed
    assert fed.gtm.acceptors.decision_for("T0") == "commit"
    # Replaying the committed decision through the group path does not
    # trip the guard (it advances into the send instead).
    entries = [("T0", "commit", None, Future(label="test"))]
    sender = fed.gtm.pipeline._send_group("s0", entries)
    next(sender)  # no DurabilityOrderViolation
