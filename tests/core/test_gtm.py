"""Global transaction manager: configuration, retries, metrics."""

import pytest

from repro.core.gtm import GTMConfig
from repro.mlt.actions import increment, write
from repro.mlt.conflicts import READ_WRITE_TABLE, SEMANTIC_TABLE
from tests.protocols.conftest import build_fed, submit_and_run


def test_config_validates_granularity():
    with pytest.raises(ValueError):
        GTMConfig(granularity="per_galaxy")


def test_l1_table_resolution_defaults():
    assert GTMConfig(protocol="2pc").resolved_l1_table() is None
    assert GTMConfig(protocol="3pc").resolved_l1_table() is None
    assert GTMConfig(protocol="saga").resolved_l1_table() is None
    assert GTMConfig(protocol="after").resolved_l1_table() is READ_WRITE_TABLE
    assert GTMConfig(protocol="before").resolved_l1_table() is SEMANTIC_TABLE
    assert GTMConfig(protocol="altruistic").resolved_l1_table() is READ_WRITE_TABLE


def test_l1_table_override():
    config = GTMConfig(protocol="before", l1_table=READ_WRITE_TABLE)
    assert config.resolved_l1_table() is READ_WRITE_TABLE


def test_unknown_protocol_rejected():
    from repro.core.protocols.base import make_protocol

    with pytest.raises(ValueError):
        make_protocol("four_pc")


def test_gtxn_ids_sequential():
    fed = build_fed("before", granularity="per_action")
    p1 = fed.submit([increment("t0", "x", 1)])
    p2 = fed.submit([increment("t0", "y", 1)])
    fed.run()
    assert p1.value.gtxn_id == "G1"
    assert p2.value.gtxn_id == "G2"


def test_outcomes_recorded_with_counts():
    fed = build_fed("before", granularity="per_action")
    fed.submit([increment("t0", "x", 1)])
    fed.submit([increment("t0", "y", 1)], intends_abort=True)
    fed.run()
    assert fed.gtm.committed == 1
    assert fed.gtm.aborted == 1
    assert len(fed.gtm.outcomes) == 2


def test_metrics_shape():
    fed = build_fed("before", granularity="per_action")
    submit_and_run(fed, [increment("t0", "x", 1)])
    metrics = fed.gtm.metrics()
    assert metrics["global_committed"] == 1
    assert metrics["mean_response_time"] > 0
    assert "l1_hold_time" in metrics


def test_retry_on_l1_timeout_eventually_commits():
    """An L1 timeout aborts the attempt; the GTM retries and wins."""
    from repro.core.gtm import GTMConfig
    from repro.integration.federation import Federation, FederationConfig, SiteSpec

    fed = Federation(
        [SiteSpec("s0", tables={"t0": {"x": 100}})],
        FederationConfig(
            seed=3,
            gtm=GTMConfig(
                protocol="before", granularity="per_action",
                l1_timeout=8.0, retry_backoff=2.0,
            ),
        ),
    )
    # A long writer holds the X lock; a second writer times out at L1,
    # retries after backoff, then succeeds.
    ops_long = [write("t0", "x", 1)] * 6
    p1 = fed.submit(ops_long, name="LONG")
    from tests.protocols.conftest import submit_delayed

    p2 = submit_delayed(fed, [write("t0", "x", 2)], delay=1.0, name="SHORT")
    fed.run()
    assert p1.value.committed
    assert p2.value.committed
    assert p2.value.attempts > 1


def test_retry_exhaustion_reports_abort():
    from repro.core.gtm import GTMConfig
    from repro.integration.federation import Federation, FederationConfig, SiteSpec

    fed = Federation(
        [SiteSpec("s0", tables={"t0": {"x": 100}})],
        FederationConfig(
            seed=3,
            gtm=GTMConfig(
                protocol="before", granularity="per_action",
                l1_timeout=3.0, retry_attempts=1, retry_backoff=1.0,
            ),
        ),
    )

    def hog():
        # Hold the L1 lock directly, forever.
        yield from fed.gtm.l1.acquire("HOG", ("t0", "x"), READ_WRITE_TABLE.mode_for("write"))
        yield 10_000

    fed.kernel.spawn(hog())
    outcome = submit_and_run(fed, [write("t0", "x", 5)])
    assert not outcome.committed
    assert outcome.attempts == 2  # original + one retry


def test_routed_ops_recorded():
    fed = build_fed("after")
    outcome = submit_and_run(fed, [increment("t0", "x", 1), increment("t1", "x", 1)])
    assert outcome.routed_ops == [("s0", "increment"), ("s1", "increment")]
