"""Regression: buffered group decisions must die with their coordinator.

The bug: ``DecisionPipeline`` buffers commit decisions for up to
``pipeline_window`` before flushing them as one ``decide_group``.  A GTM
crash inside that window used to leave the scheduled ``_flush`` armed;
it would later fire on behalf of the dead coordinator, harden a commit
and message sites -- while a failover peer may already have presumed
those very transactions aborted from the (empty) decision log.

Now ``CoordinatorPool.crash`` calls ``pipeline.crash()`` (dropping the
buffers, counted in ``dropped_on_crash``) and ``_flush`` itself refuses
to run for a crashed GTM, so the only resolution path is the failover
peer's presumed abort.
"""

import zlib

import pytest

from repro.core.gtm import GTMConfig
from repro.core.invariants import atomicity_report
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment

#: Long enough that the commit decision is still buffered at crash time.
WINDOW = 50.0


def build(coordinators: int = 2) -> Federation:
    specs = [
        SiteSpec("s0", tables={"t0": {"k": 100}}, preparable=True),
        SiteSpec("s1", tables={"t1": {"k": 100}}, preparable=True),
    ]
    return Federation(
        specs,
        FederationConfig(
            seed=11,
            coordinators=coordinators,
            gtm=GTMConfig(
                protocol="2pc", granularity="per_site", pipeline_window=WINDOW
            ),
        ),
    )


def shard1_name(n_shards: int) -> str:
    """A gtxn name that hash-routes to shard 1."""
    for i in range(100):
        name = f"T{i}"
        if zlib.crc32(name.encode()) % n_shards == 1:
            return name
    raise AssertionError("unreachable")


def test_buffered_decisions_dropped_not_flushed():
    fed = build(coordinators=2)
    name = shard1_name(2)
    shard = fed.coordinators[1]
    process = fed.submit(
        [increment("t0", "k", -5), increment("t1", "k", 5)], name=name
    )
    # Prepare completes within a few time units; the commit decision
    # then sits in the pipeline buffer until WINDOW elapses.  Crash the
    # shard squarely inside that window.
    fed.crash_coordinator(1, at=20.0)
    fed.run()

    # The scenario materialized: decisions were buffered and dropped.
    assert shard.pipeline is not None
    assert shard.pipeline.dropped_on_crash >= 1
    # No posthumous flush hardened a commit for the dead coordinator.
    assert shard.decision_log.decision_for(name) != "commit"
    assert shard.pipeline.groups_sent == 0

    # The failover peer presumed abort and resolved every site.
    assert fed.pool.unresolved_orphans() == []
    assert fed.peek("s0", "t0", "k") == 100
    assert fed.peek("s1", "t1", "k") == 100
    assert atomicity_report(fed).ok
    # The submitter was interrupted, not left hanging.
    assert process.done


def test_stale_flush_timer_is_inert_after_crash():
    """The pre-armed ``_flush`` fires post-crash and must do nothing."""
    fed = build(coordinators=2)
    name = shard1_name(2)
    shard = fed.coordinators[1]
    fed.submit([increment("t0", "k", -1), increment("t1", "k", 1)], name=name)
    fed.crash_coordinator(1, at=20.0)
    # Run well past decide-time + WINDOW: the flush timer has fired.
    fed.run(until=WINDOW * 3)
    fed.run()
    assert shard.pipeline.groups_sent == 0
    assert shard.comm.node.crashed
    # dropped_on_crash counts each buffered per-site decision exactly
    # once: one per participant site, never recounted by the stale
    # flush timer.
    assert shard.pipeline.dropped_on_crash == 2


def test_live_pipeline_still_groups():
    """Sanity: without a crash the pipeline path is unchanged."""
    fed = build(coordinators=1)
    processes = [
        fed.submit([increment("t0", "k", -1), increment("t1", "k", 1)])
        for _ in range(3)
    ]
    fed.run()
    assert all(p.value.committed for p in processes)
    assert fed.gtm.pipeline.groups_sent > 0
    assert fed.gtm.pipeline.dropped_on_crash == 0
