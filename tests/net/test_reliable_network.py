"""Reliable delivery: acks, retransmission, dedup, partitions, abandon."""

from repro.net.message import Message
from repro.net.network import FixedLatency, Network
from repro.net.node import Node
from tests.conftest import run


def make_net(kernel, **kwargs):
    kwargs.setdefault("latency", FixedLatency(1.0))
    kwargs.setdefault("reliable", True)
    kwargs.setdefault("retransmit_timeout", 5.0)
    kwargs.setdefault("retransmit_backoff", 2.0)
    net = Network(kernel, **kwargs)
    central = net.add_node(Node(kernel, "central", is_central=True))
    a = net.add_node(Node(kernel, "a"))
    return net, central, a


def test_clean_link_delivers_once_and_acks(kernel):
    net, _, a = make_net(kernel)
    net.send(Message(kind="ping", sender="central", dest="a"))

    def receiver():
        message = yield from a.recv()
        return message.kind

    assert run(kernel, receiver()) == "ping"
    assert net.delivered == 1
    assert net.retransmissions == 0
    assert net.acks_sent == 1
    assert net.reliability_counts()["unacked_in_flight"] == 0


def test_lossy_link_retransmits_until_delivered(kernel):
    net, _, a = make_net(kernel, loss_rate=0.5)
    for i in range(20):
        net.send(Message(kind="ping", sender="central", dest="a", payload={"i": i}))
    kernel.run()
    # Every message eventually got through, exactly once each.
    assert net.delivered == 20
    assert net.retransmissions > 0
    assert net.reliability_counts()["unacked_in_flight"] == 0


def test_duplicate_transmissions_suppressed(kernel):
    net, _, a = make_net(kernel, dup_rate=1.0)
    net.send(Message(kind="ping", sender="central", dest="a"))
    kernel.run()
    assert net.delivered == 1
    assert net.duplicates_suppressed >= 1
    # The duplicate is re-acked: its ack may have been the lost one.
    assert net.acks_sent >= 2


def test_lost_ack_triggers_retransmit_but_not_redelivery(kernel):
    # Drop every second frame: some acks will be lost, forcing the
    # sender to retransmit transmissions the receiver already has.
    net, _, a = make_net(kernel, loss_rate=0.4)
    for _ in range(30):
        net.send(Message(kind="ping", sender="central", dest="a"))
    kernel.run()
    assert net.delivered == 30
    assert net.duplicates_suppressed > 0


def test_partition_blocks_both_directions(kernel):
    net, _, a = make_net(kernel, max_retransmits=2)
    net.partition("central", "a")
    assert net.partitioned("central", "a")
    assert net.partitioned("a", "central")
    net.send(Message(kind="ping", sender="central", dest="a"))
    net.send(Message(kind="pong", sender="a", dest="central"))
    kernel.run()
    assert net.delivered == 0
    assert net.partition_blocked > 0
    assert net.retransmit_drops == 2


def test_retransmission_bridges_a_healed_partition(kernel):
    net, _, a = make_net(kernel)
    net.partition("central", "a")
    net.send(Message(kind="ping", sender="central", dest="a"))
    kernel.call_at(12.0, net.heal, "central", "a")
    kernel.run()
    assert net.delivered == 1
    assert net.retransmissions >= 1


def test_heal_all_clears_every_partition(kernel):
    net, _, a = make_net(kernel)
    b = net.add_node(Node(kernel, "b"))
    net.partition("central", "a")
    net.partition("central", "b")
    net.heal()
    assert not net.partitioned("central", "a")
    assert not net.partitioned("central", "b")


def test_retry_budget_exhaustion_drops(kernel):
    net, _, a = make_net(kernel, max_retransmits=3)
    net.partition("central", "a")
    net.send(Message(kind="ping", sender="central", dest="a"))
    kernel.run()
    assert net.retransmit_drops == 1
    assert net.delivered == 0
    assert net.reliability_counts()["unacked_in_flight"] == 0


def test_retransmission_survives_receiver_outage(kernel):
    net, _, a = make_net(kernel)
    a.crash()
    net.send(Message(kind="ping", sender="central", dest="a"))

    def restarter():
        yield 12.0
        yield from a.restart()

    kernel.spawn(restarter(), name="restarter")
    kernel.run()
    assert net.delivered == 1
    assert net.retransmissions >= 1


def test_sender_crash_drops_retransmission_state(kernel):
    net, central, a = make_net(kernel)
    net.partition("central", "a")
    net.send(Message(kind="ping", sender="central", dest="a"))
    kernel.call_at(6.0, central.crash)
    kernel.run()
    # The sender died: its volatile retransmission state went with it.
    assert net.delivered == 0
    assert net.reliability_counts()["unacked_in_flight"] == 0


def test_abandon_stops_retransmission(kernel):
    net, _, a = make_net(kernel)
    net.partition("central", "a")
    message = Message(kind="ping", sender="central", dest="a")
    net.send(message)
    net.abandon(message.msg_id)
    kernel.call_at(2.0, net.heal, "central", "a")
    kernel.run()
    assert net.delivered == 0
    assert net.reliability_counts()["unacked_in_flight"] == 0


def test_abandon_blocks_inflight_delivery(kernel):
    net, _, a = make_net(kernel, latency=FixedLatency(5.0))
    message = Message(kind="ping", sender="central", dest="a")
    net.send(message)  # delivery already scheduled for t=5
    kernel.call_at(1.0, net.abandon, message.msg_id)
    kernel.run()
    assert net.delivered == 0
    assert net.abandoned_messages == 1
    # The frame itself is still acked so the sender stops retrying.
    assert net.reliability_counts()["unacked_in_flight"] == 0


def test_reorder_overtakes(kernel):
    net, _, a = make_net(kernel, reliable=False, reorder_rate=1.0,
                         reorder_spread=10.0)
    net.send(Message(kind="first", sender="central", dest="a"))
    net.send(Message(kind="second", sender="central", dest="a"))
    kernel.run()
    assert net.reordered == 2
    assert net.delivered == 2
