"""Retransmission backoff cap: long partitions stay recoverable.

Uncapped exponential backoff reaches ``retransmit_timeout *
backoff**(max_retransmits - 1)`` -- with the defaults some 30k time
units for a single retry interval, turning a long-but-finite partition
into an effectively permanent message loss.  ``max_retransmit_delay``
clamps each interval; below the cap the schedule is bit-identical to
the uncapped one, so default-config traces do not move.
"""

from repro.net.message import Message
from repro.net.network import FixedLatency, Network
from repro.net.node import Node


def make_net(kernel, **kwargs) -> Network:
    net = Network(
        kernel,
        latency=FixedLatency(1.0),
        reliable=True,
        retransmit_timeout=1.0,
        retransmit_backoff=2.0,
        max_retransmits=6,
        **kwargs,
    )
    net.add_node(Node(kernel, "central", is_central=True))
    net.add_node(Node(kernel, "a"))
    return net


def exhaust_retries(kernel, net: Network) -> float:
    """Send into a partition, run to idle, return the give-up time."""
    net.partition("central", "a")
    net.send(Message(kind="ping", sender="central", dest="a"))
    kernel.run()
    assert net.retransmit_drops == 1  # the retry budget was exhausted
    # The give-up is also a per-destination counter: a chaos run can
    # tell *which* site silently lost a request, not just that one did.
    assert net.retransmit_budget_exhausted == {"a": 1}
    assert net.reliability_counts()["retransmit_budget_exhausted"] == 1
    return kernel.now


def test_backoff_capped_schedule(kernel):
    # Intervals min(2**n, 4): 1, 2, 4, 4, 4, 4, 4 -> give up at t=23.
    net = make_net(kernel, max_retransmit_delay=4.0)
    assert exhaust_retries(kernel, net) == 23.0


def test_backoff_uncapped_schedule(kernel):
    # Cap disabled (0): 1 + 2 + 4 + 8 + 16 + 32 + 64 -> t=127.
    net = make_net(kernel, max_retransmit_delay=0.0)
    assert exhaust_retries(kernel, net) == 127.0


def test_cap_bounds_worst_case_interval():
    """With the cap, (max interval) <= max_retransmit_delay always."""
    from repro.sim.kernel import Kernel

    capped = Kernel(seed=1)
    net = make_net(capped, max_retransmit_delay=2.5)
    give_up = exhaust_retries(capped, net)
    # 1 + 2 + 2.5 * 5 remaining intervals.
    assert give_up == 15.5


def test_cap_above_schedule_is_identity(kernel):
    """A cap no interval reaches leaves the event schedule untouched."""
    from repro.sim.kernel import Kernel

    import re

    # Max interval is 1.0 * 2**5 = 32 < 100: both runs must be
    # byte-identical, trace records included.  (msg_id is a
    # process-global counter, so it is normalized out before comparing
    # two runs made in the same interpreter.)
    times = []
    traces = []
    for cap in (100.0, 0.0):
        k = Kernel(seed=77)
        net = make_net(k, max_retransmit_delay=cap)
        times.append(exhaust_retries(k, net))
        traces.append(
            [re.sub(r"msg_id=\d+", "msg_id=*", str(r)) for r in k.trace.records]
        )
    assert times[0] == times[1] == 127.0
    assert traces[0] == traces[1]


def test_default_cap_recovers_after_long_partition(kernel):
    """A partition longer than any uncapped retry interval still heals."""
    net = Network(
        kernel,
        latency=FixedLatency(1.0),
        reliable=True,
        retransmit_timeout=1.0,
        retransmit_backoff=2.0,
        max_retransmits=40,
        max_retransmit_delay=5.0,
    )
    net.add_node(Node(kernel, "central", is_central=True))
    a = net.add_node(Node(kernel, "a"))
    net.partition("central", "a")
    net.send(Message(kind="ping", sender="central", dest="a"))
    kernel.call_at(60.0, net.heal)

    def receiver():
        message = yield from a.recv()
        return message.kind, kernel.now

    process = kernel.spawn(receiver(), name="receiver")
    kernel.run()
    kind, arrived = process.value
    assert kind == "ping"
    # Capped at 5.0, the next retry lands within one cap interval of
    # the heal; uncapped backoff would have been silent until t=127+.
    assert arrived <= 60.0 + 5.0 + 1.0
    # Delivered within budget: no silent-give-up recorded.
    assert net.retransmit_budget_exhausted == {}
