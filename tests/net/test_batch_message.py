"""Unit tests for the batching layer: envelopes, outboxes, accounting."""

from __future__ import annotations

import pytest

from repro.net.message import BatchMessage, Message
from repro.net.network import FixedLatency, Network
from repro.net.node import Node


def make_net(kernel, batch_window=0.0, loss_rate=0.0):
    net = Network(
        kernel, latency=FixedLatency(1.0), loss_rate=loss_rate,
        batch_window=batch_window,
    )
    central = net.add_node(Node(kernel, "central", is_central=True))
    site = net.add_node(Node(kernel, "s0"))
    return net, central, site


def msg(kind="ping", sender="central", dest="s0", **payload):
    return Message(kind=kind, sender=sender, dest=dest, payload=payload)


# ---------------------------------------------------------------------------
# BatchMessage envelope invariants
# ---------------------------------------------------------------------------


def test_batch_message_requires_messages():
    with pytest.raises(ValueError):
        BatchMessage(sender="a", dest="b", messages=())


def test_batch_message_rejects_mixed_links():
    good = Message(kind="x", sender="a", dest="b")
    stray = Message(kind="x", sender="a", dest="c")
    with pytest.raises(ValueError):
        BatchMessage(sender="a", dest="b", messages=(good, stray))


def test_batch_message_len_and_str():
    messages = tuple(Message(kind=k, sender="a", dest="b") for k in ("x", "y"))
    batch = BatchMessage(sender="a", dest="b", messages=messages)
    assert len(batch) == 2
    assert "x+y" in str(batch)


# ---------------------------------------------------------------------------
# Unbatched path: window=0 behaves exactly like the seed network
# ---------------------------------------------------------------------------


def test_window_zero_one_envelope_per_message(kernel):
    net, _, site = make_net(kernel, batch_window=0.0)
    for _ in range(5):
        net.send(msg())
    kernel.run()
    assert net.sent == 5
    assert net.envelopes == 5
    assert net.piggybacked == 0
    assert net.delivered == 5
    assert len(site.mailbox) == 5


# ---------------------------------------------------------------------------
# Outbox coalescing
# ---------------------------------------------------------------------------


def test_same_instant_messages_share_one_envelope(kernel):
    net, _, site = make_net(kernel, batch_window=0.5)
    for kind in ("a", "b", "c"):
        net.send(msg(kind=kind))
    kernel.run()
    assert net.sent == 3
    assert net.envelopes == 1
    assert net.piggybacked == 2
    assert net.delivered == 3
    # Delivery preserves the logical send order.
    kinds = [m.kind for m in site.mailbox.drain()]
    assert kinds == ["a", "b", "c"]


def test_messages_outside_window_use_separate_envelopes(kernel):
    net, _, _ = make_net(kernel, batch_window=0.5)

    def sender():
        net.send(msg(kind="first"))
        yield 2.0  # well past the window
        net.send(msg(kind="second"))

    kernel.spawn(sender(), name="sender")
    kernel.run()
    assert net.sent == 2
    assert net.envelopes == 2
    assert net.piggybacked == 0


def test_opposite_directions_never_share_envelopes(kernel):
    net, _, _ = make_net(kernel, batch_window=0.5)
    net.send(msg(kind="req", sender="central", dest="s0"))
    net.send(msg(kind="rsp", sender="s0", dest="central"))
    kernel.run()
    assert net.envelopes == 2


def test_envelope_trace_record_reports_size(kernel):
    net, _, _ = make_net(kernel, batch_window=0.5)
    net.send(msg(kind="a"))
    net.send(msg(kind="b"))
    kernel.run()
    envelopes = kernel.trace.select(category="envelope")
    assert len(envelopes) == 1
    assert envelopes[0].details["size"] == 2
    assert envelopes[0].details["kinds"] == "a+b"
    # The logical messages are still traced individually.
    assert len(kernel.trace.select(category="message")) == 2


def test_flush_forces_pending_envelopes_out_early(kernel):
    net, _, _ = make_net(kernel, batch_window=100.0)
    net.send(msg(kind="a"))
    assert net.pending_batched == 1
    net.flush()
    assert net.pending_batched == 0
    kernel.run(until=5.0)  # latency is 1.0 -- no need to reach the window
    assert net.envelopes == 1
    assert net.delivered == 1


def test_message_counts_expand_batches(kernel):
    """EXP-T5 accounting: by_kind counts logical messages, never 'batch'."""
    net, _, _ = make_net(kernel, batch_window=0.5)
    for kind in ("a", "a", "b"):
        net.send(msg(kind=kind))
    kernel.run()
    assert net.message_counts() == {"a": 2, "b": 1}
    assert net.envelope_counts() == {"logical": 3, "envelopes": 1, "piggybacked": 2}


# ---------------------------------------------------------------------------
# Faults
# ---------------------------------------------------------------------------


def test_drop_once_applies_to_logical_messages(kernel):
    net, _, site = make_net(kernel, batch_window=0.5)
    net.drop_once.add("b")
    for kind in ("a", "b", "c"):
        net.send(msg(kind=kind))
    kernel.run()
    assert net.dropped == 1
    kinds = [m.kind for m in site.mailbox.drain()]
    assert kinds == ["a", "c"]


def test_envelope_loss_drops_all_carried_messages(kernel):
    net, _, site = make_net(kernel, batch_window=0.5, loss_rate=1.0)
    for kind in ("a", "b"):
        net.send(msg(kind=kind))
    kernel.run()
    assert net.dropped == 2
    assert net.delivered == 0
    assert len(site.mailbox) == 0


def test_sender_crash_loses_pending_outbox(kernel):
    net, central, site = make_net(kernel, batch_window=0.5)
    net.send(msg(kind="a"))
    central.crash()
    kernel.run()
    assert net.dropped == 1
    assert net.envelopes == 0
    assert len(site.mailbox) == 0


def test_dest_crash_loses_whole_envelope(kernel):
    net, _, site = make_net(kernel, batch_window=0.5)
    net.send(msg(kind="a"))
    net.send(msg(kind="b"))
    site.crash()
    kernel.run()
    assert net.dropped == 2
    assert net.delivered == 0
