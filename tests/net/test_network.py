"""Star network: topology enforcement, latency, loss, crash delivery."""

import pytest

from repro.errors import TopologyViolation
from repro.net.message import Message
from repro.net.network import FixedLatency, Network, UniformLatency
from repro.net.node import Node
from tests.conftest import run


def make_net(kernel, **kwargs):
    net = Network(kernel, **kwargs)
    central = net.add_node(Node(kernel, "central", is_central=True))
    a = net.add_node(Node(kernel, "a"))
    b = net.add_node(Node(kernel, "b"))
    return net, central, a, b


def test_message_delivered_after_latency(kernel):
    net, central, a, _ = make_net(kernel, latency=FixedLatency(2.5))
    net.send(Message(kind="ping", sender="central", dest="a"))

    def receiver():
        message = yield from a.recv()
        return message.kind, kernel.now

    assert run(kernel, receiver()) == ("ping", 2.5)


def test_star_topology_enforced(kernel):
    net, _, a, b = make_net(kernel)
    with pytest.raises(TopologyViolation):
        net.send(Message(kind="gossip", sender="a", dest="b"))


def test_star_enforcement_optional(kernel):
    net = Network(kernel, enforce_star=False)
    net.add_node(Node(kernel, "a"))
    net.add_node(Node(kernel, "b"))
    net.send(Message(kind="gossip", sender="a", dest="b"))  # allowed now


def test_local_to_central_allowed(kernel):
    net, central, a, _ = make_net(kernel)
    net.send(Message(kind="reply", sender="a", dest="central"))

    def receiver():
        message = yield from central.recv()
        return message.sender

    assert run(kernel, receiver()) == "a"


def test_message_to_crashed_node_dropped(kernel):
    net, _, a, _ = make_net(kernel)
    a.crash()
    net.send(Message(kind="ping", sender="central", dest="a"))
    kernel.run()
    assert net.dropped == 1
    assert net.delivered == 0


def test_crash_after_send_before_delivery_drops(kernel):
    net, _, a, _ = make_net(kernel, latency=FixedLatency(5))
    net.send(Message(kind="ping", sender="central", dest="a"))
    kernel.call_at(1, a.crash)
    kernel.run()
    assert net.dropped == 1


def test_loss_rate_drops_some_messages(kernel):
    net, _, a, _ = make_net(kernel, loss_rate=0.5)
    for _ in range(100):
        net.send(Message(kind="ping", sender="central", dest="a"))
    kernel.run()
    assert 20 < net.dropped < 80
    assert net.delivered == 100 - net.dropped


def test_message_counts_by_kind(kernel):
    net, _, a, _ = make_net(kernel)
    for kind in ("prepare", "prepare", "commit"):
        net.send(Message(kind=kind, sender="central", dest="a"))
    kernel.run()
    assert net.message_counts() == {"commit": 1, "prepare": 2}


def test_messages_traced(kernel):
    net, _, a, _ = make_net(kernel)
    net.send(Message(kind="prepare", sender="central", dest="a", gtxn_id="G1"))
    kernel.run()
    record = kernel.trace.first(category="message")
    assert record.subject == "prepare"
    assert record.details["gtxn"] == "G1"


def test_uniform_latency_within_bounds(kernel):
    model = UniformLatency(1.0, 3.0)
    rng = kernel.rng.stream("test")
    samples = [model.sample(rng) for _ in range(50)]
    assert all(1.0 <= s <= 3.0 for s in samples)
    assert len(set(samples)) > 1


def test_uniform_latency_validates_bounds():
    with pytest.raises(ValueError):
        UniformLatency(3.0, 1.0)


def test_duplicate_node_rejected(kernel):
    net, _, _, _ = make_net(kernel)
    with pytest.raises(ValueError):
        net.add_node(Node(kernel, "a"))


def test_reply_correlates(kernel):
    request = Message(kind="status_query", sender="central", dest="a", gtxn_id="G3")
    reply = request.reply("status_report", outcome="committed")
    assert reply.reply_to == request.msg_id
    assert reply.sender == "a"
    assert reply.dest == "central"
    assert reply.gtxn_id == "G3"
    assert reply.payload["outcome"] == "committed"


def test_node_restart_gets_fresh_mailbox(kernel):
    net, _, a, _ = make_net(kernel)
    net.send(Message(kind="stale", sender="central", dest="a"))
    kernel.run()
    a.crash()
    run(kernel, a.restart())
    assert len(a.mailbox) == 0
    assert not a.crashed


def test_node_crash_hooks_fire(kernel):
    net, _, a, _ = make_net(kernel)
    fired = []
    a.on_crash.append(lambda: fired.append("crash"))
    a.on_restart.append(lambda: fired.append("restart"))
    a.crash()
    run(kernel, a.restart())
    assert fired == ["crash", "restart"]


def test_crash_fails_blocked_receivers(kernel):
    from repro.errors import NodeUnreachable

    net, _, a, _ = make_net(kernel)

    def receiver():
        try:
            yield from a.recv()
        except NodeUnreachable:
            return "unreachable"

    proc = kernel.spawn(receiver())
    kernel.call_at(1, a.crash)
    kernel.run(raise_failures=False)
    assert proc.value == "unreachable"
