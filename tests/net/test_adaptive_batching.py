"""Adaptive batching: size-or-deadline flush, load-sensed window, purge.

Covers the EXP-A6 tentpole at the network layer plus the stale-flush
bugfix: a sender crash must kill its buffered outboxes, so a quick
restart cannot let the old scheduled deadline transmit pre-crash
messages.
"""

import pytest

from repro.net.adaptive import AdaptiveWindow
from repro.net.message import Message
from repro.net.network import FixedLatency, Network
from repro.net.node import Node


def make_net(kernel, **kwargs):
    net = Network(kernel, **kwargs)
    net.add_node(Node(kernel, "central", is_central=True))
    a = net.add_node(Node(kernel, "a"))
    b = net.add_node(Node(kernel, "b"))
    return net, a, b


def ping(dest="a", sender="central", kind="ping"):
    return Message(kind=kind, sender=sender, dest=dest)


class TestAdaptiveWindow:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveWindow(0.0)
        with pytest.raises(ValueError):
            AdaptiveWindow(1.0, shrink=1.0)
        with pytest.raises(ValueError):
            AdaptiveWindow(1.0, grow=0.5)
        with pytest.raises(ValueError):
            AdaptiveWindow(1.0, floor=2.0)
        with pytest.raises(ValueError):
            AdaptiveWindow(1.0, relief=1.5, pressure=1.5)
        with pytest.raises(ValueError):
            AdaptiveWindow(1.0, patience=0)

    def test_pressure_shrinks_to_floor(self):
        ctl = AdaptiveWindow(8.0)
        for _ in range(10):
            ctl.observe(1000.0)
        assert ctl.current == pytest.approx(1.0)  # floor = base / 8
        assert ctl.shrinks > 0

    def test_relief_rewidens_to_base(self):
        ctl = AdaptiveWindow(8.0)
        for _ in range(10):
            ctl.observe(1000.0)
        for _ in range(10):
            ctl.observe(0.0)
        assert ctl.current == pytest.approx(8.0)
        assert ctl.widens > 0

    def test_neutral_band_holds_window(self):
        ctl = AdaptiveWindow(8.0)
        ctl.observe(10.0)  # above relief (8) yet below pressure (12)
        assert ctl.current == pytest.approx(8.0)
        assert ctl.shrinks == 0 and ctl.widens == 0

    def test_singleton_deadline_flush_counts_as_relief(self):
        ctl = AdaptiveWindow(8.0)
        for _ in range(10):
            ctl.observe(1000.0)
        assert ctl.current == pytest.approx(1.0)
        # A lone message flushed on deadline waits exactly the current
        # window -- a *streak* of those must read as relief or
        # quiescence never recovers the base window.
        for _ in range(ctl.patience):
            ctl.observe(ctl.current)
        assert ctl.current == pytest.approx(2.0)

    def test_stray_relief_mid_burst_does_not_widen(self):
        ctl = AdaptiveWindow(8.0)
        for _ in range(10):
            ctl.observe(1000.0)
        ctl.observe(0.0)  # one singleton flush amid the burst
        assert ctl.current == pytest.approx(1.0)
        ctl.observe(1000.0)  # burst resumes: streak resets
        ctl.observe(0.0)
        ctl.observe(0.0)
        assert ctl.current == pytest.approx(1.0)
        assert ctl.widens == 0


class TestSizeOrDeadline:
    def test_size_trigger_flushes_full_envelope(self, kernel):
        net, a, _ = make_net(
            kernel, latency=FixedLatency(1.0), batch_window=10.0,
            batch_max_msgs=3,
        )
        for _ in range(3):
            net.send(ping())
        # The third message filled the envelope: it left immediately,
        # well before the 10-unit deadline.
        kernel.run(until=2.0)
        assert net.delivered == 3
        assert net.envelopes == 1
        assert net.size_flushes == 1
        assert net.deadline_flushes == 0

    def test_deadline_still_fires_for_partial_batch(self, kernel):
        net, a, _ = make_net(
            kernel, latency=FixedLatency(1.0), batch_window=4.0,
            batch_max_msgs=3,
        )
        net.send(ping())
        net.send(ping())
        kernel.run()
        assert net.delivered == 2
        assert net.envelopes == 1
        assert net.size_flushes == 0
        assert net.deadline_flushes == 1

    def test_stale_deadline_after_size_flush_is_inert(self, kernel):
        net, a, _ = make_net(
            kernel, latency=FixedLatency(1.0), batch_window=5.0,
            batch_max_msgs=2,
        )
        net.send(ping())
        net.send(ping())  # size flush at t=0 (generation bump)
        kernel.call_at(1.0, lambda: net.send(ping()))
        kernel.run()
        # The second envelope waits its own full window (flushes at
        # t=6): the stale t=5 deadline from the size-flushed generation
        # must not ship it early.
        assert net.envelopes == 2
        assert net.delivered == 3


class TestLoadSensedWindow:
    def test_burst_shrinks_window_quiescence_rewidens(self, kernel):
        net, a, _ = make_net(
            kernel, latency=FixedLatency(1.0), batch_window=8.0,
            batch_policy="adaptive",
        )
        ctl = net.batch_controller
        assert ctl is not None and ctl.current == pytest.approx(8.0)

        # Burst: 12 messages spread over each window -> total queueing
        # wait far above the window; the controller backs off.
        def burst():
            for i in range(48):
                kernel.call_at(i * 0.5, lambda: net.send(ping()))
        burst()
        kernel.run()
        shrunk = ctl.current
        assert shrunk < 8.0
        assert ctl.shrinks > 0

        # Quiescence: a run of lone messages, each waiting exactly one
        # window, builds a relief streak; the window re-widens to base.
        for i in range(12):
            kernel.call_at(kernel.now + 20.0 * (i + 1), lambda: net.send(ping()))
        kernel.run()
        assert ctl.current == pytest.approx(8.0)
        assert ctl.widens > 0

    def test_adaptive_needs_positive_window(self, kernel):
        net = Network(kernel, batch_policy="adaptive", batch_window=0.0)
        assert net.batch_controller is None  # batching off: policy inert

    def test_unknown_policy_rejected(self, kernel):
        with pytest.raises(ValueError):
            Network(kernel, batch_policy="magic")


class TestCrashPurge:
    def test_sender_crash_purges_buffered_outbox(self, kernel):
        net, a, _ = make_net(
            kernel, latency=FixedLatency(1.0), batch_window=5.0,
        )
        net.send(ping(dest="central", sender="a", kind="reply"))
        node_a = net.node("a")
        kernel.call_at(1.0, node_a.crash)
        kernel.run()
        assert net.purged_batched == 1
        assert net.delivered == 0

    def test_crash_restart_within_window_does_not_resurrect(self, kernel):
        """Regression: the stale scheduled flush after crash+restart.

        The ``(key, generation)`` guard only protected against explicit
        flushes.  A sender that crashed *and restarted* inside one batch
        window left the generation untouched and itself healthy, so the
        scheduled deadline transmitted messages buffered before the
        crash -- volatile state that died with the node.
        """
        net, a, _ = make_net(
            kernel, latency=FixedLatency(1.0), batch_window=5.0,
        )
        net.send(ping(dest="central", sender="a", kind="reply"))
        node_a = net.node("a")
        kernel.call_at(1.0, node_a.crash)
        kernel.call_at(2.0, lambda: kernel.spawn(node_a.restart()))
        kernel.run()
        assert net.delivered == 0  # pre-crash buffer stayed dead
        assert net.purged_batched == 1
        # The restarted sender's *new* traffic flows normally.
        net.send(ping(dest="central", sender="a", kind="reply"))
        kernel.run()
        assert net.delivered == 1

    def test_dest_crash_reliable_path_retransmits_batch(self, kernel):
        """A batch bound for a crashed destination is retransmitted.

        The envelope flushes on its deadline while the destination is
        down; with reliable delivery the transmission is retried until
        the restart, then delivered exactly once (receiver-side dedup
        survives the crash).
        """
        net, a, _ = make_net(
            kernel, latency=FixedLatency(1.0), batch_window=3.0,
            reliable=True, retransmit_timeout=4.0,
        )
        net.send(ping())
        net.send(ping())
        node_a = net.node("a")
        kernel.call_at(1.0, node_a.crash)  # down when the flush fires
        kernel.call_at(20.0, lambda: kernel.spawn(node_a.restart()))
        kernel.run()
        assert net.delivered == 2
        assert net.retransmissions >= 1
        assert net.duplicates_suppressed == 0

    def test_purge_only_touches_the_crashed_senders_outboxes(self, kernel):
        net, a, b = make_net(
            kernel, latency=FixedLatency(1.0), batch_window=5.0,
        )
        net.send(ping(dest="central", sender="a", kind="reply"))
        net.send(ping(dest="b"))
        net.node("a").crash()
        kernel.run()
        assert net.purged_batched == 1  # a's outbox died
        assert net.delivered == 1  # central -> b flushed normally
