"""Placement model unit tests: partitioners, specs, the map."""

import pytest

from repro.dataplane import (
    HashPartitioner,
    PlacementError,
    PlacementMap,
    PlacementSpec,
    RangePartitioner,
)
from repro.storage.heap import _stable_hash


def test_hash_partitioner_matches_stable_hash():
    partitioner = HashPartitioner(4)
    for key in ("a", "k17", "holder", 42):
        assert partitioner.partition_of(key) == _stable_hash(key) % 4


def test_range_partitioner_buckets_by_boundary():
    partitioner = RangePartitioner(["g", "p"])
    assert partitioner.partitions == 3
    assert partitioner.partition_of("a") == 0
    assert partitioner.partition_of("g") == 1  # boundaries are upper-exclusive
    assert partitioner.partition_of("m") == 1
    assert partitioner.partition_of("z") == 2


def test_range_partitioner_rejects_unsorted_boundaries():
    with pytest.raises(PlacementError):
        RangePartitioner(["p", "g"])


@pytest.mark.parametrize("kwargs", [
    {"partitions": 0},
    {"replication": 0},
    {"partitioner": "modulo"},
    {"partitioner": "range", "partitions": 3, "boundaries": ("m",)},
])
def test_spec_validation(kwargs):
    with pytest.raises(PlacementError):
        PlacementSpec(table="acct", **kwargs)


def test_chained_declustering_member_assignment():
    placement = PlacementMap(
        [PlacementSpec(table="acct", partitions=3, replication=2)],
        ["s0", "s1", "s2"],
    )
    assert [p.members for p in placement.partitions] == [
        ["s0", "s1"], ["s1", "s2"], ["s2", "s0"],
    ]
    assert [p.local_table for p in placement.partitions] == [
        "acct_p0", "acct_p1", "acct_p2",
    ]
    assert all(p.epoch == 1 for p in placement.partitions)
    assert placement.partitions[1].primary == "s1"


def test_map_rejects_overwide_replication_and_duplicate_tables():
    with pytest.raises(PlacementError):
        PlacementMap(
            [PlacementSpec(table="acct", partitions=2, replication=3)],
            ["s0", "s1"],
        )
    with pytest.raises(PlacementError):
        PlacementMap(
            [
                PlacementSpec(table="acct", partitions=2),
                PlacementSpec(table="acct", partitions=4),
            ],
            ["s0", "s1"],
        )


def test_partition_of_routes_to_declared_sites_subset():
    placement = PlacementMap(
        [PlacementSpec(table="acct", partitions=2, sites=("s2", "s3"))],
        ["s0", "s1", "s2", "s3"],
    )
    assert {p.primary for p in placement.partitions} == {"s2", "s3"}
    partition = placement.partition_of("acct", "k0")
    assert partition in placement.partitions
    assert not placement.manages("other")
    with pytest.raises(PlacementError):
        placement.partition_of("other", "k0")


def test_initial_rows_sliced_by_partitioner():
    rows = {f"k{i}": 100 + i for i in range(16)}
    placement = PlacementMap(
        [PlacementSpec(table="acct", partitions=4, rows=rows)],
        ["s0", "s1"],
    )
    seen = {}
    for partition in placement.partitions:
        slice_ = placement.initial_rows(partition)
        for key in slice_:
            assert _stable_hash(key) % 4 == partition.index
        seen.update(slice_)
    assert seen == rows  # every row lands in exactly one partition


def test_partitions_for_site_includes_offline_memberships():
    placement = PlacementMap(
        [PlacementSpec(table="acct", partitions=2, replication=2)],
        ["s0", "s1"],
    )
    partition = placement.partitions[0]
    partition.members.remove("s0")
    partition.offline.add("s0")
    assert partition in placement.partitions_for_site("s0")
