"""Golden byte-identity: the data plane must not perturb the default path.

A federation built *without* ``placement`` must produce bit-for-bit the
same execution it produced before the data-plane subsystem existed:
same outcomes, same trace records, same event and message counts, same
RNG stream states.  Each fingerprint below was pinned against the seed
tree (pre-dataplane); any drift in these digests means the default,
unpartitioned configuration is no longer byte-identical and is a
regression by definition.

The fingerprint covers, per (protocol, coordinator count):

* every global outcome's committed flag,
* the full rendered trace-record stream,
* kernel events dispatched and final simulated time,
* network envelopes sent,
* one draw from a fresh named RNG stream (stream-state probe).
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.core.gtm import GTMConfig
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment
from repro.net.message import reset_message_ids

PROTOCOLS = [
    ("2pc", "per_site"),
    ("2pc-pa", "per_site"),
    ("3pc", "per_site"),
    ("after", "per_site"),
    ("before", "per_action"),
    ("paxos", "per_site"),
]

N_SITES, N_KEYS, N_TXNS = 3, 8, 18

#: Pinned against the pre-dataplane tree; see the module docstring.
GOLDEN_DIGESTS = {
    "2pc/1": "18da28144ee5f0d8d4c4fb751e9993f73c9f386e7a3e930c564f740f8563a94d",
    "2pc/2": "0f66fa322d38db9d245a19fc8f51bb6d8e47505ec7ccb55b5395784e77a38f9b",
    "2pc-pa/1": "0876b1bf0f74983232b9ec04b60e76d3a525be7301cc3e7345157835483abe4e",
    "2pc-pa/2": "1ae1a20547bb5e851524e6bccad95abddc3f071942eb04b53ea3f75badc8304d",
    "3pc/1": "1583c36a1c026c4603aec7637123373f31cef6d9949a7cbd49352a1a69933ce0",
    "3pc/2": "9e8a92874d0a1ffc23a4fbc25877848dbb8e9f46e57ca4e119a6a0adb72332f0",
    "after/1": "53805d599235184b6039519dc1b608cfdf97fdb81c5f336e42a045bbe33f528f",
    "after/2": "1eba21e3de7ad27fbd2b8333d2dc4922108cf1136672a0a8fcda4e1ad1b6a469",
    "before/1": "908ee3dca8e8f9e3d9ad3f04609b09e931e187b626bd2e590cfce1c58fc1928e",
    "before/2": "d9fb0fd815bedb3748daac6870475dc90dd32a79d51780f2ecdaf3804247f8f8",
    "paxos/1": "c8e27371eff3c58f3b63ecdeda83105f1e03f7ce5da532157fbdaaab5c3d4aeb",
    "paxos/2": "13f2c617429fc207ad98cd9d9e5ce7e408ad88ad8ad4f5d06e1042be93e163bf",
}


def build(protocol: str, granularity: str, coordinators: int) -> Federation:
    preparable = protocol in ("2pc", "2pc-pa", "3pc", "paxos")
    specs = [
        SiteSpec(
            f"s{i}",
            tables={f"t{i}": {f"k{j}": 100 for j in range(N_KEYS)}},
            preparable=preparable,
        )
        for i in range(N_SITES)
    ]
    return Federation(
        specs,
        FederationConfig(
            seed=11,
            coordinators=coordinators,
            gtm=GTMConfig(protocol=protocol, granularity=granularity),
        ),
    )


def workload() -> list[dict]:
    batches = []
    for index in range(N_TXNS):
        src, dst = index % N_SITES, (index + 1) % N_SITES
        batches.append({
            "operations": [
                increment(f"t{src}", f"k{index % N_KEYS}", -1),
                increment(f"t{dst}", f"k{index % N_KEYS}", 1),
            ],
            "name": f"G{index}",
            "delay": (index % 6) * 3.0,
        })
    return batches


def fingerprint(protocol: str, granularity: str, coordinators: int) -> str:
    reset_message_ids()
    fed = build(protocol, granularity, coordinators)
    outcomes = fed.run_transactions(workload())
    blob = json.dumps(
        {
            "outcomes": [outcome.committed for outcome in outcomes],
            "trace": [str(record) for record in fed.kernel.trace.records],
            "events": fed.kernel.events_dispatched,
            "end": fed.kernel.now,
            "sent": fed.network.sent,
            "rng_probe": fed.kernel.rng.stream("golden-probe").random(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


@pytest.mark.parametrize("protocol,granularity", PROTOCOLS)
@pytest.mark.parametrize("coordinators", [1, 2])
def test_default_config_byte_identical_to_seed(protocol, granularity, coordinators):
    digest = fingerprint(protocol, granularity, coordinators)
    assert digest == GOLDEN_DIGESTS[f"{protocol}/{coordinators}"], (
        f"{protocol}/{coordinators}: default (unpartitioned) execution "
        "drifted from the pinned pre-dataplane fingerprint"
    )
