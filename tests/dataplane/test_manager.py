"""DataPlane manager tests: routing, promotion, fencing, rejoin."""

import pytest

from repro.core.gtm import GTMConfig
from repro.dataplane import PlacementSpec, PlacementUnavailable
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment, read


def build(
    sites: int = 3,
    partitions: int = 3,
    replication: int = 2,
    protocol: str = "2pc",
    granularity: str = "per_site",
    lease_timeout: float = 40.0,
    keys: int = 12,
) -> Federation:
    preparable = protocol in ("2pc", "2pc-pa", "3pc", "paxos")
    specs = [
        SiteSpec(f"s{i}", tables={}, preparable=preparable)
        for i in range(sites)
    ]
    placement = [
        PlacementSpec(
            table="acct",
            partitions=partitions,
            replication=replication,
            rows={f"k{j}": 100 for j in range(keys)},
        )
    ]
    return Federation(
        specs,
        FederationConfig(
            seed=5,
            placement=placement,
            lease_timeout=lease_timeout,
            gtm=GTMConfig(protocol=protocol, granularity=granularity),
        ),
    )


def test_writes_fan_out_to_all_members_reads_to_primary():
    fed = build()
    dp = fed.dataplane
    partition = dp.map.partition_of("acct", "k0")

    routed = dp.routes(increment("acct", "k0", 1))
    assert [op.site for op in routed] == partition.members
    assert all(op.local_table == partition.local_table for op in routed)
    assert all(op.partition == partition.pid for op in routed)
    assert all(op.epoch == partition.epoch for op in routed)

    routed = dp.routes(read("acct", "k0"))
    assert [op.site for op in routed] == [partition.primary]
    assert dp.routed_writes == 1 and dp.routed_reads == 1


def test_frozen_and_memberless_partitions_are_unavailable():
    fed = build()
    dp = fed.dataplane
    partition = dp.map.partition_of("acct", "k0")
    partition.frozen = True
    with pytest.raises(PlacementUnavailable):
        dp.routes(increment("acct", "k0", 1))
    partition.frozen = False
    partition.offline.update(partition.members)
    partition.members.clear()
    with pytest.raises(PlacementUnavailable):
        dp.routes(increment("acct", "k0", 1))
    assert dp.unavailable_rejections == 2


def test_lease_expiry_promotes_replica_and_bumps_epoch():
    fed = build()
    dp = fed.dataplane
    victim = dp.map.partition(0).primary
    affected = [p for p in dp.map.partitions if victim in p.members]
    epochs = {p.pid: p.epoch for p in affected}

    fed.crash_site(victim, at=10.0)
    fed.run(until=10.0 + dp.lease_timeout / 2)
    # Leases have not expired yet: membership unchanged.
    assert all(victim in p.members for p in affected)

    fed.run(until=10.0 + dp.lease_timeout + 1.0)
    for partition in affected:
        assert victim not in partition.members
        assert victim in partition.offline
        assert partition.epoch == epochs[partition.pid] + 1
        assert partition.primary != victim
    # The victim was primary of some partitions and replica of others;
    # both cases remove it, but only the primary loss is a promotion.
    assert dp.promotions >= 1
    assert dp.promotions + dp.evictions == len(affected)


def test_returning_within_lease_keeps_membership():
    fed = build()
    dp = fed.dataplane
    victim = dp.map.partition(0).primary
    fed.crash_site(victim, at=10.0)
    fed.restart_site(victim, at=20.0)  # back before the 40.0 lease
    fed.run(until=100.0)
    assert all(victim not in p.offline for p in dp.map.partitions)
    assert dp.promotions == 0 and dp.evictions == 0 and dp.rejoins == 0


def test_stale_epoch_execution_is_fenced():
    fed = build()
    dp = fed.dataplane
    partition = dp.map.partition_of("acct", "k0")
    stale = dp.routes(increment("acct", "k0", 1))[0]
    partition.epoch += 1  # a membership change supersedes the stamp
    comm = fed.comms[stale.site]
    assert comm._stale_epoch(stale)
    assert dp.stale_rejections == 1
    fresh = dp.routes(increment("acct", "k0", 1))[0]
    assert not comm._stale_epoch(fresh)
    # Unstamped (non-placed) operations are never fenced.
    assert not comm._stale_epoch(increment("t0", "k0", 1))


def test_rejoin_drains_resyncs_and_readmits():
    fed = build()
    dp = fed.dataplane
    victim = dp.map.partition(0).primary
    memberships = len(dp.map.partitions_for_site(victim))

    fed.crash_site(victim, at=10.0)
    fed.run(until=60.0)  # leases expire at 50.0
    assert victim not in dp.map.partition(0).members

    # Diverge the survivors while the victim is out.
    outcome = fed.submit([increment("acct", "k0", 7), increment("acct", "k1", -7)])
    fed.run()
    assert outcome.value.committed

    fed.restart_site(victim, at=200.0)
    fed.run()
    for partition in dp.map.partitions_for_site(victim):
        assert victim in partition.members
        assert not partition.offline
        assert not partition.frozen
    assert dp.rejoins == memberships
    # The missed write was copied over during resync.
    for partition in dp.map.partitions:
        images = {
            site: dp.table_records(site, partition.local_table)
            for site in partition.members
        }
        assert len({repr(sorted(i.items())) for i in images.values()}) == 1


def test_metrics_shape():
    fed = build()
    metrics = fed.dataplane.metrics()
    assert set(metrics["partitions"]) == {"acct/p0", "acct/p1", "acct/p2"}
    for entry in metrics["partitions"].values():
        assert entry["epoch"] == 1
        assert len(entry["members"]) == 2
        assert entry["offline"] == []
    assert metrics["routed_writes"] == 0
    assert fed.metrics()["dataplane"]["promotions"] == 0
