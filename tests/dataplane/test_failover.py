"""End-to-end failover: primary crash mid-traffic, promotion, rejoin.

Balanced transfers run against a replicated placement while the
primary of partition 0 crashes and later restarts.  Afterwards every
global transaction must be resolved, money conserved, atomicity intact
and every serving replica byte-equal to its primary -- under both a
prepared protocol (2PC) and the paper's commit-before discipline.
"""

import pytest

from repro.core.gtm import GTMConfig
from repro.core.invariants import (
    atomicity_report,
    replica_convergence_violations,
)
from repro.dataplane import PlacementSpec
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment

N_SITES, N_KEYS, N_TXNS = 4, 16, 24
INITIAL = 100


def build(protocol: str, granularity: str) -> Federation:
    preparable = protocol in ("2pc", "2pc-pa", "3pc", "paxos")
    specs = [
        SiteSpec(f"s{i}", tables={}, preparable=preparable)
        for i in range(N_SITES)
    ]
    placement = [
        PlacementSpec(
            table="acct",
            partitions=N_SITES,
            replication=2,
            rows={f"k{j}": INITIAL for j in range(N_KEYS)},
        )
    ]
    return Federation(
        specs,
        FederationConfig(
            seed=23,
            placement=placement,
            gtm=GTMConfig(
                protocol=protocol, granularity=granularity, msg_timeout=50.0
            ),
        ),
    )


@pytest.mark.parametrize("protocol,granularity", [
    ("2pc", "per_site"),
    ("3pc", "per_site"),
    ("before", "per_action"),
    ("paxos", "per_site"),
])
def test_primary_crash_failover(protocol, granularity):
    fed = build(protocol, granularity)
    dp = fed.dataplane
    victim = dp.map.partition(0).primary

    fed.crash_site(victim, at=60.0)
    fed.restart_site(victim, at=260.0)
    batches = [
        {
            "operations": [
                increment("acct", f"k{index % N_KEYS}", -1),
                increment("acct", f"k{(index + 1) % N_KEYS}", 1),
            ],
            "name": f"F{index}",
            "delay": index * 12.0,  # spans crash, eviction and rejoin
        }
        for index in range(N_TXNS)
    ]
    outcomes = fed.run_transactions(batches)
    fed.run()  # drain recovery + rejoin stragglers

    assert all(outcome is not None for outcome in outcomes)
    assert sum(1 for o in outcomes if o.committed) >= N_TXNS - 2
    assert not fed.pool.unresolved_orphans()
    assert atomicity_report(fed).ok
    assert replica_convergence_violations(fed) == []
    # Balanced transfers: the global balance is conserved exactly.
    total = sum(fed.peek_global("acct", f"k{j}") for j in range(N_KEYS))
    assert total == N_KEYS * INITIAL

    assert dp.promotions >= 1, "lease expiry never promoted a replica"
    assert dp.rejoins >= 1, "the victim never rejoined its partitions"
    assert victim in dp.map.partition(0).members


def test_failover_without_replicas_blocks_until_restart():
    """replication=1: no failover target -- the partition waits.

    Transactions touching the crashed primary's keys cannot finish
    until it returns; atomicity must still hold afterwards, with no
    promotion (there is nothing to promote).
    """
    specs = [SiteSpec(f"s{i}", tables={}, preparable=True) for i in range(3)]
    fed = Federation(
        specs,
        FederationConfig(
            seed=29,
            placement=[PlacementSpec(
                table="acct", partitions=3, replication=1,
                rows={f"k{j}": INITIAL for j in range(6)},
            )],
            gtm=GTMConfig(protocol="2pc", granularity="per_site"),
        ),
    )
    dp = fed.dataplane
    victim = dp.map.partition(0).primary
    fed.crash_site(victim, at=30.0)
    fed.restart_site(victim, at=400.0)
    outcomes = fed.run_transactions([
        {
            "operations": [
                increment("acct", f"k{j}", -1),
                increment("acct", f"k{(j + 1) % 6}", 1),
            ],
            "delay": j * 10.0,
        }
        for j in range(6)
    ])
    fed.run()
    assert all(outcome is not None for outcome in outcomes)
    assert not fed.pool.unresolved_orphans()
    assert atomicity_report(fed).ok
    assert dp.promotions == 0
    total = sum(fed.peek_global("acct", f"k{j}") for j in range(6))
    assert total == 6 * INITIAL
