"""Races and retries at the communication-manager level.

These reproduce, as unit scenarios, the concurrency hazards found
during development: a retried decide racing an in-flight redo, double
redo requests, and retried undo requests -- all of which must be
absorbed by the per-gtxn mutex and the marker idempotence guards.
"""

import pytest

from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment, write


@pytest.fixture
def fed():
    return Federation(
        [SiteSpec("a", tables={"t": {"x": 100}})],
        FederationConfig(seed=19),
    )


def request(fed, kind, gtxn=None, **payload):
    def proc():
        reply = yield from fed.central_comm.request(
            "a", kind, gtxn_id=gtxn, timeout=200, **payload
        )
        return reply

    process = fed.kernel.spawn(proc())
    fed.kernel.run()
    return process.value


def test_double_redo_request_applies_once(fed):
    ops = [increment("t", "x", 7).routed("a", "t")]
    first = request(fed, "redo_subtxn", gtxn="G1", ops=ops, marker_key="G1")
    second = request(fed, "redo_subtxn", gtxn="G1", ops=ops, marker_key="G1")
    assert first.payload["outcome"] == "committed"
    assert second.payload["outcome"] == "committed"
    assert fed.peek("a", "t", "x") == 107  # not 114


def test_double_undo_request_applies_once(fed):
    inverse = [increment("t", "x", -7).routed("a", "t")]
    first = request(fed, "undo_subtxn", gtxn="G1", inverse_ops=inverse, marker_key="undo:G1")
    second = request(fed, "undo_subtxn", gtxn="G1", inverse_ops=inverse, marker_key="undo:G1")
    assert first.payload["outcome"] == "undone"
    assert second.payload["outcome"] == "undone"
    assert fed.peek("a", "t", "x") == 93


def test_double_execute_l0_applies_once_and_replays_reply(fed):
    op = write("t", "x", 55).routed("a", "t")
    first = request(fed, "execute_l0", gtxn="G1", op=op, marker_key="G1:0")
    second = request(fed, "execute_l0", gtxn="G1", op=op, marker_key="G1:0")
    assert first.payload["before"] == 100
    # The retry answers from the marker, including the before-image.
    assert second.payload["before"] == 100
    assert fed.peek("a", "t", "x") == 55


def test_concurrent_decide_and_redo_serialized(fed):
    """A decide retry arriving during a redo must not commit a
    half-executed redo transaction (the race found in development)."""
    request(fed, "begin_subtxn", gtxn="G1")
    op = increment("t", "x", 7).routed("a", "t")
    request(fed, "execute_op", gtxn="G1", op=op)
    # Abort the subtransaction (simulates an erroneous abort).
    txn_id = fed.comms["a"]._subtxns["G1"]
    from repro.localdb.txn import LocalAbortReason

    fed.engines["a"].force_abort(txn_id, LocalAbortReason.SYSTEM)
    fed.run()

    # Now fire a redo and a decide *concurrently*.
    replies = {}

    def fire(kind, tag, **payload):
        def proc():
            reply = yield from fed.central_comm.request(
                "a", kind, gtxn_id="G1", timeout=300, **payload
            )
            replies[tag] = reply

        fed.kernel.spawn(proc())

    fire("redo_subtxn", "redo", ops=[op], marker_key="G1")
    fire("decide", "decide", decision="commit", marker_key="G1")
    fed.run()
    assert replies["redo"].payload["outcome"] == "committed"
    assert replies["decide"].payload["outcome"] == "committed"
    assert fed.peek("a", "t", "x") == 107  # exactly one increment


def test_decide_after_commit_reports_committed(fed):
    request(fed, "begin_subtxn", gtxn="G1")
    op = increment("t", "x", 1).routed("a", "t")
    request(fed, "execute_op", gtxn="G1", op=op)
    first = request(fed, "decide", gtxn="G1", decision="commit", marker_key="G1")
    second = request(fed, "decide", gtxn="G1", decision="commit", marker_key="G1")
    assert first.payload["outcome"] == second.payload["outcome"] == "committed"
    assert fed.peek("a", "t", "x") == 101


def test_unmatched_reply_traced_not_fatal(fed):
    """A reply with no pending future is logged and dropped."""
    from repro.net.message import Message

    fed.network.send(
        Message(kind="finished", sender="a", dest="central", reply_to=99999)
    )
    fed.run()
    assert fed.kernel.trace.first(category="message_unmatched") is not None
