"""Equivalence guarantees of the reliability layer.

Two locked-down behaviours:

* With every new fault knob at its default (no duplication, no
  reordering, no partitions, ``reliable=False``) the federation is
  byte-identical to the pre-reliability system: the golden numbers
  below were captured from the seed revision and must never drift.
* Turning ``reliable=True`` on over a *clean* network changes only the
  physical layer (acks appear, retransmit timers arm and cancel): the
  logical message counts, the outcomes and the final values stay
  exactly the same.
"""

import pytest

from repro.core.gtm import GTMConfig
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment


def scenario(protocol: str, granularity: str, **extra):
    preparable = protocol in ("2pc", "2pc-pa", "3pc")
    fed = Federation(
        [
            SiteSpec("s0", tables={"t0": {"x": 100, "y": 50}}, preparable=preparable),
            SiteSpec("s1", tables={"t1": {"x": 100, "y": 50}}, preparable=preparable),
        ],
        FederationConfig(
            seed=42,
            gtm=GTMConfig(protocol=protocol, granularity=granularity, msg_timeout=20),
            **extra,
        ),
    )
    outcomes = fed.run_transactions(
        [
            {"operations": [increment("t0", "x", -10), increment("t1", "x", 10)],
             "name": "T0", "delay": 0.0},
            {"operations": [increment("t1", "y", -5), increment("t0", "y", 5)],
             "name": "T1", "delay": 2.0},
            {"operations": [increment("t0", "x", -1), increment("t1", "y", 1)],
             "name": "T2", "delay": 4.0, "intends_abort": True},
        ]
    )
    return {
        "committed": sum(1 for o in outcomes if o.committed),
        "end_time": round(fed.kernel.now, 6),
        "sent": fed.network.sent,
        "delivered": fed.network.delivered,
        "dropped": fed.network.dropped,
        "envelopes": fed.network.envelopes,
        "by_kind": fed.network.message_counts(),
        "values": {
            "s0.x": fed.peek("s0", "t0", "x"),
            "s1.x": fed.peek("s1", "t1", "x"),
            "s0.y": fed.peek("s0", "t0", "y"),
            "s1.y": fed.peek("s1", "t1", "y"),
        },
    }, fed


#: Captured from the seed revision (pre-reliability).  A knobs-off run
#: must reproduce every one of these numbers exactly.
GOLDEN = {
    ("2pc", "per_site"): {
        "by_kind": {"begin_subtxn": 30, "decide": 30, "execute_op": 28,
                    "finished": 30, "op_done": 17, "op_failed": 11,
                    "subtxn_begun": 30},
        "committed": 0, "delivered": 176, "dropped": 0, "end_time": 264.6,
        "envelopes": 176, "sent": 176,
        "values": {"s0.x": 100, "s0.y": 50, "s1.x": 100, "s1.y": 50},
    },
    ("2pc-pa", "per_site"): {
        "by_kind": {"begin_subtxn": 30, "decide": 30, "execute_op": 28,
                    "op_done": 17, "op_failed": 11, "subtxn_begun": 30},
        "committed": 0, "delivered": 146, "dropped": 0, "end_time": 254.6,
        "envelopes": 146, "sent": 146,
        "values": {"s0.x": 100, "s0.y": 50, "s1.x": 100, "s1.y": 50},
    },
    ("3pc", "per_site"): {
        "by_kind": {"begin_subtxn": 30, "decide": 30, "execute_op": 28,
                    "finished": 30, "op_done": 17, "op_failed": 11,
                    "subtxn_begun": 30},
        "committed": 0, "delivered": 176, "dropped": 0, "end_time": 264.6,
        "envelopes": 176, "sent": 176,
        "values": {"s0.x": 100, "s0.y": 50, "s1.x": 100, "s1.y": 50},
    },
    ("after", "per_site"): {
        "by_kind": {"begin_subtxn": 26, "decide": 26, "execute_op": 26,
                    "finished": 26, "op_done": 20, "op_failed": 6,
                    "subtxn_begun": 26},
        "committed": 0, "delivered": 156, "dropped": 0, "end_time": 262.7,
        "envelopes": 156, "sent": 156,
        "values": {"s0.x": 100, "s0.y": 50, "s1.x": 100, "s1.y": 50},
    },
    ("before", "per_action"): {
        "by_kind": {"execute_l0": 8, "l0_done": 8},
        "committed": 2, "delivered": 16, "dropped": 0, "end_time": 59.6,
        "envelopes": 16, "sent": 16,
        "values": {"s0.x": 90, "s0.y": 55, "s1.x": 110, "s1.y": 45},
    },
    ("before", "per_site"): {
        "by_kind": {"begin_subtxn": 6, "execute_op": 6, "finish_subtxn": 6,
                    "local_outcome": 6, "op_done": 6, "prepare": 6,
                    "subtxn_begun": 6, "undo_result": 2, "undo_subtxn": 2,
                    "vote": 6},
        "committed": 2, "delivered": 52, "dropped": 0, "end_time": 59.4,
        "envelopes": 52, "sent": 52,
        "values": {"s0.x": 90, "s0.y": 55, "s1.x": 110, "s1.y": 45},
    },
}


@pytest.mark.parametrize("protocol,granularity", sorted(GOLDEN))
def test_knobs_off_matches_seed_exactly(protocol, granularity):
    observed, fed = scenario(protocol, granularity)
    assert observed == GOLDEN[(protocol, granularity)]
    # And the reliability layer really stayed out of the way.
    counts = fed.network.reliability_counts()
    assert counts["acks_sent"] == 0
    assert counts["retransmissions"] == 0
    assert counts["duplicates_suppressed"] == 0


@pytest.mark.parametrize(
    "protocol,granularity",
    [("2pc", "per_site"), ("after", "per_site"), ("before", "per_action")],
)
def test_reliable_on_clean_network_is_transparent(protocol, granularity):
    """Acks are the only difference reliable delivery makes when
    nothing is actually lost."""

    def clean_scenario(**extra):
        preparable = protocol in ("2pc", "2pc-pa", "3pc")
        fed = Federation(
            [
                SiteSpec("s0", tables={"t0": {"x": 100, "y": 50}},
                         preparable=preparable),
                SiteSpec("s1", tables={"t1": {"x": 100, "y": 50}},
                         preparable=preparable),
            ],
            FederationConfig(
                seed=9,
                gtm=GTMConfig(protocol=protocol, granularity=granularity),
                **extra,
            ),
        )
        # Disjoint keys, staggered starts: no conflicts, no timeouts.
        outcomes = fed.run_transactions(
            [
                {"operations": [increment("t0", "x", -10), increment("t1", "x", 10)],
                 "delay": 0.0},
                {"operations": [increment("t1", "y", -5), increment("t0", "y", 5)],
                 "delay": 40.0},
            ]
        )
        return fed, [o.committed for o in outcomes]

    base_fed, base_outcomes = clean_scenario()
    rel_fed, rel_outcomes = clean_scenario(reliable=True)
    assert base_outcomes == rel_outcomes == [True, True]
    assert rel_fed.network.message_counts() == base_fed.network.message_counts()
    assert rel_fed.network.sent == base_fed.network.sent
    assert rel_fed.network.delivered == base_fed.network.delivered
    # The only timing difference is the final ack still in flight.
    assert base_fed.kernel.now <= rel_fed.kernel.now <= base_fed.kernel.now + 2.0
    # Physical acks exist only on the reliable run; nothing retried.
    assert base_fed.network.acks_sent == 0
    assert rel_fed.network.acks_sent > 0
    assert rel_fed.network.retransmissions == 0
    assert rel_fed.network.reliability_counts()["unacked_in_flight"] == 0
