"""Restart / hold-down edges: idempotence and deterministic ordering.

The bugs these pin down: a restart scheduled *before* an overlapping
crash extended the outage used to resurrect the site early, and two
restarts landing at the same instant used to run the §3.1 recovery
sweep twice (double-redriving in-doubt decisions).  Both orderings of
``hold_down`` vs ``restart_site`` must behave identically, restarting
a running site must be a no-op, and concurrent restarts must fold into
one recovery pass.
"""

from repro.core.gtm import GTMConfig
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment


def build(protocol: str = "2pc") -> Federation:
    specs = [
        SiteSpec("s0", tables={"t0": {"k": 100}}, preparable=True),
        SiteSpec("s1", tables={"t1": {"k": 100}}, preparable=True),
    ]
    return Federation(
        specs,
        FederationConfig(seed=4, gtm=GTMConfig(protocol=protocol)),
    )


def sample(fed: Federation, at: float, name: str = "s0"):
    """Record ``name``'s crashed flag at simulated time ``at``."""
    box: list[bool] = []
    fed.kernel.call_at(at, lambda: box.append(fed.nodes[name].crashed))
    return box


def test_restart_of_running_site_is_noop():
    fed = build()
    passes_before = fed.gtm.recovery.passes
    fed.restart_site("s0")  # immediate, site is up
    fed.restart_site("s0", at=5.0)
    fed.run()
    assert not fed.nodes["s0"].crashed
    # No spurious recovery sweep ran for a site that never went down.
    assert fed.gtm.recovery.passes == passes_before


def test_holddown_then_restart_is_ignored():
    """Ordering 1: the hold-down exists before the restart fires."""
    fed = build()
    fed.crash_site("s0", at=10.0)
    fed.hold_down("s0", until=100.0)
    fed.restart_site("s0", at=50.0)  # inside the hold-down: ignored
    fed.restart_site("s0", at=120.0)
    mid = sample(fed, 60.0)
    late = sample(fed, 130.0)
    fed.run()
    assert mid == [True]  # still down at t=60
    assert late == [False]  # the post-hold-down restart went through


def test_restart_scheduled_before_holddown_is_ignored_too():
    """Ordering 2: the restart was scheduled first, hold-down second.

    The check happens when the restart *fires*, so scheduling order
    must not matter -- only simulated-time order does.
    """
    fed = build()
    fed.crash_site("s0", at=10.0)
    fed.restart_site("s0", at=50.0)  # scheduled before the hold-down call
    fed.hold_down("s0", until=100.0)
    fed.restart_site("s0", at=120.0)
    mid = sample(fed, 60.0)
    late = sample(fed, 130.0)
    fed.run()
    assert mid == [True]
    assert late == [False]


def test_overlapping_holddowns_extend_never_shorten():
    fed = build()
    fed.crash_site("s0", at=10.0)
    fed.hold_down("s0", until=200.0)
    fed.hold_down("s0", until=80.0)  # shorter: must not shrink the outage
    fed.restart_site("s0", at=100.0)  # inside the surviving hold-down
    fed.restart_site("s0", at=220.0)
    mid = sample(fed, 110.0)
    fed.run()
    assert mid == [True]
    assert not fed.nodes["s0"].crashed


def test_double_restart_runs_recovery_once():
    """Two restarts at the same instant fold into one recovery pass."""
    fed = build()
    process = fed.submit([increment("t0", "k", -1), increment("t1", "k", 1)])
    fed.crash_site("s0", at=1.0)
    fed.restart_site("s0", at=40.0)
    fed.restart_site("s0", at=40.0)  # duplicate schedule, same instant
    fed.run()
    assert not fed.nodes["s0"].crashed
    assert process.done
    # Exactly one §3.1 sweep for the restart, not two racing ones.
    assert fed.gtm.recovery.passes == 1


def test_restart_after_restart_completes_is_noop():
    fed = build()
    fed.crash_site("s0", at=1.0)
    fed.restart_site("s0", at=20.0)
    fed.restart_site("s0", at=60.0)  # site already back up: no-op
    fed.run()
    assert not fed.nodes["s0"].crashed
    assert fed.gtm.recovery.passes == 1
