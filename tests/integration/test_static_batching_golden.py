"""Golden byte-identity for the pre-adaptive batching paths.

The adaptive controller must be pure opt-in.  Two guarantees:

* spelling out the defaults (``batch_policy="static"``,
  ``batch_max_msgs=0``, same for the decision pipeline) produces a
  bit-for-bit identical execution to leaving them unset, at any batch
  window;
* the static batched execution itself is pinned, so a later change to
  the adaptive machinery cannot silently perturb the static path.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.core.gtm import GTMConfig
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment
from repro.net.message import reset_message_ids

N_SITES, N_KEYS, N_TXNS = 2, 8, 12

#: Pinned when the adaptive policy landed: the static batched path.
GOLDEN_STATIC = {
    # Window 0 (batching off) is pinned by the dataplane golden suite.
    1.0: "f0fd467014bebde4ad8c4d6eef04718c7ba27f4d3e23269ddea50df89c2ae5ce",
    2.0: "bcac4f72f875e8a2cabf86f6fde546bc7d0ab35b74b201c1047ce98accfcaafb",
}


def fingerprint(window: float, **extra) -> str:
    reset_message_ids()
    specs = [
        SiteSpec(
            f"s{i}",
            tables={f"t{i}": {f"k{j}": 100 for j in range(N_KEYS)}},
            preparable=True,
        )
        for i in range(N_SITES)
    ]
    fed = Federation(
        specs,
        FederationConfig(
            seed=11,
            batch_window=window,
            gtm=GTMConfig(
                protocol="2pc", granularity="per_site", pipeline_window=window
            ),
            **extra,
        ),
    )
    batches = [
        {
            "operations": [
                increment("t0", f"k{i % N_KEYS}", -1),
                increment("t1", f"k{i % N_KEYS}", 1),
            ],
            "name": f"G{i}",
            "delay": (i % 4) * 0.5,
        }
        for i in range(N_TXNS)
    ]
    outcomes = fed.run_transactions(batches)
    blob = json.dumps(
        {
            "outcomes": [outcome.committed for outcome in outcomes],
            "trace": [str(record) for record in fed.kernel.trace.records],
            "events": fed.kernel.events_dispatched,
            "end": fed.kernel.now,
            "sent": fed.network.sent,
            "envelopes": fed.network.envelopes,
            "rng_probe": fed.kernel.rng.stream("golden-probe").random(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


@pytest.mark.parametrize("window", [0.0, 1.0, 2.0])
def test_explicit_static_knobs_change_nothing(window):
    implicit = fingerprint(window)
    explicit = fingerprint(window, batch_policy="static", batch_max_msgs=0)
    assert implicit == explicit, (
        f"window={window}: spelling out the static batching defaults "
        "perturbed the execution"
    )


@pytest.mark.parametrize("window", [1.0, 2.0])
def test_static_batched_path_is_pinned(window):
    assert fingerprint(window) == GOLDEN_STATIC[window], (
        f"window={window}: the static batched execution drifted from "
        "the fingerprint pinned when the adaptive policy landed"
    )
