"""Long deterministic soak: everything at once.

A three-site federation with a mixed workload, intended aborts,
injected erroneous aborts, crash/recovery cycles and periodic
checkpoints -- the union of everything the other tests exercise
individually.  The run must end with a clean atomicity audit and a
serializable committed history.
"""

import pytest

from repro.bench.harness import closed_loop, protocol_federation
from repro.core.invariants import atomicity_report, serializability_ok
from repro.faults import FaultInjector
from repro.integration.federation import SiteSpec
from repro.workloads import WorkloadGenerator, WorkloadSpec

pytestmark = pytest.mark.soak

HORIZON = 1500


def run_soak(protocol: str, granularity: str, seed: int):
    specs = [
        SiteSpec(f"s{i}", tables={f"t{i}": {f"k{j}": 1000 for j in range(5)}})
        for i in range(3)
    ]
    fed = protocol_federation(
        protocol, specs, granularity=granularity, seed=seed, msg_timeout=25,
    )
    fed.gtm.config.status_poll_interval = 8
    injector = FaultInjector(fed)
    if protocol == "after":
        injector.erroneous_aborts_after_ready(probability=0.25, delay=0.3)
    injector.crash_site("s1", at=400.0, recover_after=120.0)
    injector.crash_site("s2", at=900.0, recover_after=80.0)
    # A periodic checkpointer on the stable site; it never terminates on
    # its own, so schedule its interrupt before the final queue drain.
    checkpointer = fed.engines["s0"].start_checkpointing(interval=250.0)
    fed.kernel.call_at(HORIZON + 1, lambda: checkpointer.interrupt("soak over"))

    workload = WorkloadSpec(
        ops_per_txn=3,
        read_fraction=0.2,
        increment_fraction=0.8,
        hotspot_fraction=0.4,
        hot_object_count=3,
        intended_abort_rate=0.15,
    )
    generator = WorkloadGenerator(
        workload, [(f"t{i}", f"k{j}") for i in range(3) for j in range(5)]
    )
    stats = closed_loop(
        fed, generator.next_transaction, n_workers=5, horizon=HORIZON,
        label=f"soak-{protocol}",
    )
    return fed, stats


@pytest.mark.parametrize(
    "protocol,granularity,seed",
    [
        ("before", "per_action", 101),
        ("after", "per_site", 102),
        ("2pc", "per_site", 103),
    ],
)
def test_soak_conserves_and_serializes(protocol, granularity, seed):
    fed, stats = run_soak(protocol, granularity, seed)
    assert stats.committed > 10, "soak made no progress"
    report = atomicity_report(fed)
    assert report.ok, report.violations
    assert serializability_ok(fed)
    # The crash/recovery cycles and checkpoints actually happened.
    assert fed.engines["s1"].crashes == 1
    assert fed.engines["s2"].crashes == 1
    assert not fed.nodes["s1"].crashed
    assert fed.engines["s0"].checkpoints >= 3
