"""Federation-level features: partitioned schemas, metrics, determinism."""


from repro.core.gtm import GTMConfig
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.integration.schema import Placement
from repro.mlt.actions import increment, read


def build_partitioned(protocol: str = "before") -> Federation:
    """One logical 'customers' table partitioned over two sites."""
    fed = Federation(
        [
            SiteSpec("east", tables={"customers": {"alice": 10, "carol": 30}}),
            SiteSpec("west", tables={"customers": {"walter": 20, "zoe": 40}}),
        ],
        FederationConfig(
            seed=8, gtm=GTMConfig(protocol=protocol, granularity="per_action")
        ),
    )
    # The auto-mapping took "customers" -> east (first site); replace it
    # with an explicit partitioning by first letter.
    fed.schema._single.pop("customers")
    fed.schema.map_partitioned(
        "customers",
        lambda key: Placement("east" if str(key) < "m" else "west", "customers"),
    )
    return fed


def test_partitioned_table_routes_by_key():
    fed = build_partitioned()
    process = fed.submit(
        [
            read("customers", "alice"),
            read("customers", "zoe"),
            increment("customers", "carol", 5),
            increment("customers", "walter", -5),
        ]
    )
    fed.run()
    outcome = process.value
    assert outcome.committed
    assert outcome.reads == {"customers['alice']": 10, "customers['zoe']": 40}
    assert outcome.sites == ["east", "west"]
    assert fed.peek("east", "customers", "carol") == 35
    assert fed.peek("west", "customers", "walter") == 15


def test_partitioned_abort_undoes_both_partitions():
    fed = build_partitioned()
    process = fed.submit(
        [
            increment("customers", "carol", 5),
            increment("customers", "walter", -5),
        ],
        intends_abort=True,
    )
    fed.run()
    assert not process.value.committed
    assert fed.peek("east", "customers", "carol") == 30
    assert fed.peek("west", "customers", "walter") == 20


def test_metrics_report_structure():
    fed = build_partitioned()
    fed.submit([increment("customers", "carol", 1)])
    fed.run()
    metrics = fed.metrics()
    assert metrics["gtm"]["global_committed"] == 1
    assert metrics["network"]["sent"] > 0
    assert set(metrics["sites"]) == {"east", "west"}
    assert metrics["totals"]["local_commits"] >= 1
    assert "lock_hold_time" in metrics["totals"]


def test_identical_seeds_identical_outcomes():
    def once():
        fed = build_partitioned()
        processes = [
            fed.submit([increment("customers", "carol", i)]) for i in range(3)
        ]
        fed.run()
        return [
            (p.value.committed, round(p.value.response_time, 6)) for p in processes
        ] + [fed.network.sent, fed.peek("east", "customers", "carol")]

    assert once() == once()


def test_run_transactions_convenience_returns_in_submission_order():
    fed = build_partitioned()
    outcomes = fed.run_transactions(
        [
            {"operations": [increment("customers", "carol", 1)], "name": "A"},
            {"operations": [increment("customers", "zoe", 1)], "name": "B", "delay": 5},
        ]
    )
    assert [o.gtxn_id for o in outcomes] == ["A", "B"]
    assert all(o.committed for o in outcomes)


def test_setup_resets_clock_to_zero():
    fed = build_partitioned()
    assert fed.kernel.now == 0.0


def test_peek_reads_buffer_then_disk():
    fed = build_partitioned()
    assert fed.peek("east", "customers", "alice") == 10
    assert fed.peek("east", "customers", "missing") is None


def test_latency_jitter_configuration():
    from repro.net.network import UniformLatency

    fed = Federation(
        [SiteSpec("a", tables={"t": {"x": 1}})],
        FederationConfig(seed=4, latency=2.0, latency_jitter=1.0),
    )
    assert isinstance(fed.network.latency, UniformLatency)
    assert fed.network.latency.low == 1.0
    assert fed.network.latency.high == 3.0
    process = fed.submit([increment("t", "x", 1)])
    fed.run()
    assert process.value.committed


def test_jittered_runs_still_deterministic():
    def once():
        fed = Federation(
            [SiteSpec("a", tables={"t": {"x": 1}})],
            FederationConfig(seed=4, latency=2.0, latency_jitter=1.5),
        )
        process = fed.submit([increment("t", "x", 1)])
        fed.run()
        return process.value.response_time

    assert once() == once()
