"""Paxos Commit under coordinator and acceptor crashes: non-blocking.

The tentpole property: a coordinator crash never leaves a transaction
blocked in doubt.  Undecided transactions of a crashed shard wait out
the takeover timeout, then a live peer finishes their consensus
instances at a higher ballot -- committing what the acceptor majority
already chose, aborting (through a takeover Phase 1 round, never by
silent presumption) what it did not.  Up to F simultaneous acceptor
crashes change nothing; beyond F the system stalls exactly until the
group heals back to a majority, then drains.
"""

import zlib

from repro.core.gtm import GTMConfig
from repro.core.invariants import (
    atomicity_report,
    check_invariants,
    serializability_ok,
)
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment

N_SITES = 3
N_KEYS = 8
HORIZON = 6000.0


def build(coordinators: int = 2, paxos_f: int = 1, seed: int = 3) -> Federation:
    specs = [
        SiteSpec(
            f"s{i}",
            tables={f"t{i}": {f"k{j}": 100 for j in range(N_KEYS)}},
            preparable=True,
        )
        for i in range(N_SITES)
    ]
    return Federation(
        specs,
        FederationConfig(
            seed=seed,
            latency=1.0,
            coordinators=coordinators,
            paxos_f=paxos_f,
            gtm=GTMConfig(protocol="paxos", granularity="per_site"),
        ),
    )


def transfer(index: int) -> list:
    return [
        increment(f"t{index % N_SITES}", f"k{index % N_KEYS}", -1),
        increment(f"t{(index + 1) % N_SITES}", f"k{index % N_KEYS}", 1),
    ]


def submit_all(fed: Federation, n: int = 6, spacing: float = 5.0) -> list:
    def submitter(index: int):
        yield index * spacing
        outcome = yield fed.submit(transfer(index), name=f"G{index}")
        return outcome

    return [
        fed.kernel.spawn(submitter(index), name=f"client:{index}")
        for index in range(n)
    ]


def assert_converged(fed: Federation, processes: list) -> None:
    assert fed.pool.unresolved_orphans() == []
    assert all(process.done for process in processes)
    assert atomicity_report(fed).ok
    assert serializability_ok(fed)
    violations = check_invariants(fed, processes=processes)
    assert not violations, violations


def test_coordinator_crash_resolves_by_takeover():
    fed = build()
    processes = submit_all(fed)
    # G0..G3 hash to shard 1 (crc32 % 2): kill the shard with work.
    fed.crash_coordinator(1, at=8.0)  # stays down for good
    fed.run(until=HORIZON)
    assert fed.pool.crashes == 1
    assert fed.pool.takeovers_started >= 1
    assert_converged(fed, processes)
    # The conservation audit: committed transfers balance out.
    total = sum(
        fed.peek(f"s{i}", f"t{i}", f"k{j}")
        for i in range(N_SITES)
        for j in range(N_KEYS)
    )
    assert total == N_SITES * N_KEYS * 100


def test_f_acceptor_crashes_with_coordinator_crash_still_resolve():
    fed = build(paxos_f=1)
    processes = submit_all(fed)
    fed.crash_coordinator(1, at=8.0)
    fed.crash_acceptor(0, at=8.0)  # F=1: one of three may die
    fed.run(until=HORIZON)
    assert_converged(fed, processes)


def test_chosen_commit_survives_coordinator_crash():
    """A decision the acceptors chose is never presumed aborted.

    The home coordinator is killed right after the second acceptor
    force -- the instant the commit record reached a majority, before
    any site saw the decision.  The takeover leader must read commit
    from the majority and drive it to every site.
    """
    baseline = build(seed=9)
    outcomes = baseline.run_transactions(
        [{"operations": transfer(0), "name": "G0"}]
    )
    assert outcomes[0].committed
    force_times = sorted(
        record.time
        for record in baseline.kernel.trace.select(category="log_force")
        if record.site.startswith("acceptor")
    )
    assert len(force_times) == 3  # one ballot-0 acceptance per acceptor
    chosen_at = force_times[1]  # majority (F+1 = 2) reached here

    fed = build(seed=9)
    home = zlib.crc32(b"G0") % 2
    processes = submit_all(fed, n=1, spacing=0.0)
    fed.crash_coordinator(home, at=chosen_at + 0.5)
    fed.run(until=HORIZON)
    assert fed.acceptors.decision_for("G0") == "commit"
    # Both sites applied the transfer: nothing was presumed aborted.
    assert fed.peek("s0", "t0", "k0") == 99
    assert fed.peek("s1", "t1", "k0") == 101
    assert_converged(fed, processes)


def test_undecided_transaction_aborts_via_takeover_phase1():
    """No consensus record yet -> the takeover *chooses* abort.

    Killing the home coordinator before any acceptor force leaves the
    instance empty; a majority of higher-ballot promises then proves
    ballot 0 can never complete, and the takeover proposes abort.  The
    abort is a chosen consensus value, readable forever after.
    """
    fed = build(seed=9)
    home = zlib.crc32(b"G0") % 2
    processes = submit_all(fed, n=1, spacing=0.0)
    fed.crash_coordinator(home, at=2.0)  # before prepare completes
    fed.run(until=HORIZON)
    assert fed.acceptors.decision_for("G0") == "abort"
    assert fed.peek("s0", "t0", "k0") == 100  # nothing applied
    assert fed.peek("s1", "t1", "k0") == 100
    assert_converged(fed, processes)


def test_fast_path_abort_in_doubt_local_is_concluded():
    """A fast-path abort leaves no consensus record -- recovery concludes.

    s1 dies before voting, so the home coordinator aborts G0 without
    ever starting a consensus instance (presumed abort).  s0 -- already
    prepared -- applies the abort only volatilely, crashes, and its
    restart reinstates the prepared local.  No acceptor majority will
    ever answer and no takeover is pending (the home never crashed):
    the restart sweep must *conclude* the instance at a higher ballot,
    choosing abort, or the local blocks forever.
    """
    specs = [
        SiteSpec("s0", tables={"t0": {"k0": 100}}, preparable=True),
        SiteSpec("s1", tables={"t1": {"k0": 100}}, preparable=True),
    ]
    fed = Federation(
        specs,
        FederationConfig(
            seed=5, latency=1.0, coordinators=1, paxos_f=1,
            gtm=GTMConfig(protocol="paxos", granularity="per_site"),
        ),
    )

    def client():
        outcome = yield fed.submit(
            [increment("t0", "k0", -1), increment("t1", "k0", 1)], name="G0"
        )
        return outcome

    process = fed.kernel.spawn(client(), name="client")
    fed.crash_site("s1", at=7.0)  # prepared is sent; the vote dies here
    fed.crash_site("s0", at=65.0)  # after the volatile abort landed
    fed.restart_site("s0", at=100.0)
    fed.restart_site("s1", at=100.0)
    fed.run(until=HORIZON)
    assert process.done
    assert process.value.committed  # the retry attempt went through
    # Attempt G0's instance was concluded -- abort is *chosen*, durable.
    assert fed.gtm.recovery.paxos_concluded == 1
    assert fed.acceptors.decision_for("G0") == "abort"
    assert fed.acceptors.decision_for(process.value.gtxn_id) == "commit"
    assert fed.engines["s0"].active_txns() == []
    assert fed.peek("s0", "t0", "k0") == 99
    assert fed.peek("s1", "t1", "k0") == 101
    assert_converged(fed, [process])


def test_beyond_f_outage_blocks_then_drains_after_heal():
    fed = build(paxos_f=1)
    processes = submit_all(fed)
    fed.crash_acceptor(0, at=5.0)
    fed.crash_acceptor(1, at=5.0)  # 2 > F=1: majority unreachable
    fed.restart_acceptor(0, at=300.0)
    fed.run(until=HORIZON)
    # Healed back to 2 of 3: everything must have drained.
    assert_converged(fed, processes)
    committed = sum(gtm.committed for gtm in fed.coordinators)
    assert committed == 6
    # The commits could only finish after the heal.
    finish_times = [
        outcome.finish_time
        for gtm in fed.coordinators
        for outcome in gtm.outcomes
    ]
    assert max(finish_times) > 300.0


def test_crash_site_routes_acceptor_names():
    fed = build(paxos_f=1)
    fed.crash_site("acceptor1")
    assert fed.acceptors.acceptors[1].node.crashed
    fed.restart_site("acceptor1")
    fed.run(until=50.0)
    assert not fed.acceptors.acceptors[1].node.crashed
