"""Batching equivalence and determinism (the perf-path safety net).

Batching, decision piggybacking and the group-decision pipeline are
pure transport/scheduling optimisations: at a fixed seed they must not
change which global transactions commit.  And a batched run must stay
deterministic -- same seed, same config, byte-identical trace.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import protocol_federation
from repro.core.invariants import atomicity_report
from repro.integration.federation import SiteSpec
from repro.mlt.actions import Operation
from repro.net.message import reset_message_ids

N_SITES = 2
N_TXNS = 16

#: (protocol, granularity, piggyback) -- all five commit protocols; the
#: decision-piggyback rides only on the commit-before/per_site path.
PROTOCOLS = [
    ("after", "per_site", False),
    ("before", "per_site", True),
    ("before", "per_action", False),
    ("2pc", "per_site", False),
    ("2pc-pa", "per_site", False),
]


def build(protocol, granularity, piggyback, *, batched, seed=7):
    specs = [
        SiteSpec(f"s{i}", tables={f"t{i}": {k: 0 for k in range(N_TXNS)}})
        for i in range(N_SITES)
    ]
    return protocol_federation(
        protocol,
        specs,
        granularity=granularity,
        seed=seed,
        batch_window=1.0 if batched else 0.0,
        pipeline_window=1.0 if batched else 0.0,
        piggyback_decisions=piggyback if batched else False,
    )


def workload():
    """N_TXNS concurrent cross-site transactions, a few intending abort."""
    batches = []
    for t in range(N_TXNS):
        ops = [
            Operation("increment", f"t{i}", t % N_TXNS, 1 + i)
            for i in range(N_SITES)
        ]
        batches.append(
            {
                "operations": ops,
                "name": f"T{t}",
                "intends_abort": t % 5 == 4,
                "delay": 0.25 * (t % 4),
            }
        )
    return batches


def run_once(protocol, granularity, piggyback, *, batched, seed=7):
    reset_message_ids()
    fed = build(protocol, granularity, piggyback, batched=batched, seed=seed)
    outcomes = fed.run_transactions(workload())
    return fed, outcomes


def committed_flags(outcomes):
    """Positional commit flags keyed by the submission-order base name.

    The GTM renames retry attempts (``T5~r1``), so raw gtxn ids are not
    comparable across runs -- the base name is.
    """
    return [(o.gtxn_id.split("~")[0], o.committed) for o in outcomes]


# ---------------------------------------------------------------------------
# Equivalence: batched == unbatched outcomes, per protocol
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("protocol,granularity,piggyback", PROTOCOLS)
def test_batched_run_commits_identical_txn_set(protocol, granularity, piggyback):
    plain_fed, plain = run_once(protocol, granularity, piggyback, batched=False)
    batched_fed, batched = run_once(protocol, granularity, piggyback, batched=True)

    assert committed_flags(batched) == committed_flags(plain)
    # Both runs leave the same committed data behind.
    for i in range(N_SITES):
        for key in range(N_TXNS):
            assert batched_fed.peek(f"s{i}", f"t{i}", key) == plain_fed.peek(
                f"s{i}", f"t{i}", key
            )
    report = atomicity_report(batched_fed)
    assert report.ok, report.violations


@pytest.mark.parametrize("protocol,granularity,piggyback", PROTOCOLS)
def test_batching_reduces_physical_envelopes(protocol, granularity, piggyback):
    plain_fed, _ = run_once(protocol, granularity, piggyback, batched=False)
    batched_fed, _ = run_once(protocol, granularity, piggyback, batched=True)

    plain_envelopes = plain_fed.network.envelopes
    batched_envelopes = batched_fed.network.envelopes
    assert batched_envelopes < plain_envelopes
    # The headline acceptance bar: >= 30% fewer envelopes per committed
    # transaction for commit-after and commit-before/per_site under
    # concurrent load (>= 8 transactions per site here).
    if (protocol, granularity) in (("after", "per_site"), ("before", "per_site")):
        assert batched_envelopes <= 0.7 * plain_envelopes, (
            f"{protocol}/{granularity}: {batched_envelopes} vs {plain_envelopes}"
        )


def test_piggybacking_elides_dedicated_decision_rounds():
    plain_fed, _ = run_once("before", "per_site", True, batched=False)
    piggy_fed, _ = run_once("before", "per_site", True, batched=True)

    plain_kinds = plain_fed.network.message_counts()
    piggy_kinds = piggy_fed.network.message_counts()
    # Unbatched commit-before runs a dedicated local-commit round per
    # site; with piggybacking the request rides on the last execute_op
    # and the outcome rides back on its reply.
    assert plain_kinds.get("finish_subtxn", 0) > 0
    assert piggy_kinds.get("finish_subtxn", 0) == 0
    # Fewer logical messages overall, not just fewer envelopes.
    assert piggy_fed.network.sent < plain_fed.network.sent


def test_pipeline_groups_decision_forces():
    plain_fed, plain = run_once("after", "per_site", False, batched=False)
    piped_fed, piped = run_once("after", "per_site", False, batched=True)

    committed = sum(1 for o in piped if o.committed)
    assert committed == sum(1 for o in plain if o.committed)
    gtm = piped_fed.gtm.metrics()
    # Concurrent same-site decisions share forced decision-log writes.
    assert gtm["decision_forces"] < committed
    assert gtm["decisions_grouped"] > 0
    assert piped_fed.network.message_counts().get("decide_group", 0) > 0


# ---------------------------------------------------------------------------
# Determinism: same seed + same config -> byte-identical traces
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("protocol,granularity,piggyback", PROTOCOLS[:3])
def test_batched_runs_are_deterministic(protocol, granularity, piggyback):
    def trace_of():
        fed, _ = run_once(protocol, granularity, piggyback, batched=True)
        return "\n".join(str(r) for r in fed.kernel.trace.records)

    first = trace_of()
    second = trace_of()
    assert first == second
    assert first  # non-empty: the trace actually recorded the run
