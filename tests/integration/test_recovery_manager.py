"""The global recovery manager: in-doubt resolution after restarts.

Local (ARIES-style) recovery can only reinstate a prepared
subtransaction in the READY state; deciding what becomes of it is the
global layer's job.  These tests drive every resolution path: presumed
abort for orphans, re-driven hardened commits, re-driven redo
obligations, orphan termination from straggler replies, and the
idempotence of the restart machinery itself.
"""

from repro.core.gtm import GTMConfig
from repro.core.invariants import atomicity_report
from repro.faults import FaultInjector
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment
from repro.net.message import Message


def build(protocol: str, seed: int = 0, retries: int = 5, **extra) -> Federation:
    preparable = protocol in ("2pc", "2pc-pa", "3pc")
    return Federation(
        [
            SiteSpec("s0", tables={"t0": {"x": 100}}, preparable=preparable),
            SiteSpec("s1", tables={"t1": {"x": 100}}, preparable=preparable),
        ],
        FederationConfig(
            seed=seed,
            gtm=GTMConfig(
                protocol=protocol, granularity="per_site",
                msg_timeout=15, status_poll_interval=5,
                retry_attempts=retries,
            ),
            **extra,
        ),
    )


TRANSFER = [increment("t0", "x", -10), increment("t1", "x", 10)]


def vote_time(protocol: str, site: str) -> float:
    """Probe run: when does ``site`` send its phase-1 vote?"""
    fed = build(protocol)
    fed.submit(TRANSFER)
    fed.run()
    for record in fed.kernel.trace.records:
        if (record.category == "message" and record.site == site
                and record.subject == "vote"):
            return record.time
    raise AssertionError(f"no vote from {site} in the probe run")


def probe_local_txn(protocol: str, site: str) -> str:
    """Probe run: the id of ``site``'s local transaction."""
    fed = build(protocol)
    fed.submit(TRANSFER)
    fed.run()
    for record in fed.kernel.trace.records:
        if (record.category == "txn_state" and record.site == site
                and record.details.get("gtxn")):
            return record.subject
    raise AssertionError(f"no local transaction on {site} in the probe run")


def test_presumed_abort_resolves_indoubt_on_restart():
    """2PC-PA: s1 votes ready and crashes; s0's vote aborts the global
    transaction, whose fire-and-forget abort misses the crashed site.
    The reinstated READY local is aborted by the restart recovery."""
    abort_at = vote_time("2pc-pa", "s0") - 0.5   # after ops, before prepare
    crash_at = vote_time("2pc-pa", "s1") + 0.2   # just after the ready vote
    s0_txn = probe_local_txn("2pc-pa", "s0")
    fed = build("2pc-pa", retries=0)
    injector = FaultInjector(fed)
    process = fed.submit(TRANSFER)
    injector.abort_subtxn("s0", s0_txn, at=abort_at)
    fed.crash_site("s1", at=crash_at)
    fed.restart_site("s1", at=crash_at + 40.0)
    fed.run()
    assert process.done and not process.value.committed
    # The site held the prepared local in doubt until recovery decided.
    assert fed.gtm.recovery.passes >= 1
    assert fed.gtm.recovery.resolved_indoubt >= 1
    assert not list(fed.engines["s1"].active_txns())
    assert atomicity_report(fed).ok
    assert fed.peek("s1", "t1", "x") == 100


def test_indoubt_commit_redriven_after_restart():
    """2PC: both votes arrive, commit hardens, the decide misses the
    crashed site -- after restart the local must COMMIT, not abort."""
    at = vote_time("2pc", "s1") + 0.2
    fed = build("2pc")
    process = fed.submit(TRANSFER)
    fed.crash_site("s1", at=at)
    fed.restart_site("s1", at=at + 40.0)
    fed.run()
    assert process.done and process.value.committed
    assert not list(fed.engines["s1"].active_txns())
    assert atomicity_report(fed).ok
    assert fed.peek("s1", "t1", "x") == 110


def test_recovery_redrives_hardened_commit_for_orphan():
    """An in-doubt local whose coordinator is gone but whose commit
    was hardened is re-driven to commit (never presumed abort)."""
    at = vote_time("2pc", "s1") + 0.2
    fed = build("2pc")
    process = fed.submit(TRANSFER)
    fed.crash_site("s1", at=at)
    fed.run(until=at + 30.0)  # coordinator blocks in commit_until_done
    assert not process.done  # still waiting on s1
    attempt_ids = list(fed.gtm.active)
    assert attempt_ids and fed.gtm.decision_log.decision_for(attempt_ids[0]) == "commit"
    fed.restart_site("s1")
    fed.run()
    assert process.done and process.value.committed
    assert fed.peek("s1", "t1", "x") == 110


def test_recovery_redrives_orphaned_redo_obligation():
    """Commit-after: a pending redo entry whose coordinator is gone is
    re-driven from the redo log on restart (the §3.2 obligation)."""
    fed = build("after")
    # Plant an orphaned obligation directly: hardened commit + pending
    # redo entry, no active coordinator (its process crashed mid-run).
    fed.gtm.decision_log.harden(["G-orphan"], "commit")
    fed.gtm.redo_log.record("G-orphan", "s1", [increment("t1", "x", 7)])
    fed.crash_site("s1", at=5.0)
    fed.restart_site("s1", at=20.0)
    fed.run()
    assert fed.gtm.recovery.redriven_redos == 1
    assert fed.gtm.redo_log.pending() == []
    assert fed.peek("s1", "t1", "x") == 107


def test_straggler_reply_terminates_orphan():
    """A reply nobody waits for reveals an orphaned subtransaction;
    the recovery manager terminates it with a decide."""
    fed = build("2pc", reliable=True)
    # A ghost delivery in the purest form: a begin_subtxn for an
    # attempt the GTM has already resolved -- nobody awaits the reply.
    fed.network.send(
        Message(kind="begin_subtxn", sender="central", dest="s1",
                gtxn_id="G-ghost")
    )
    fed.run()
    assert fed.gtm.recovery.orphans_terminated == 1
    assert not list(fed.engines["s1"].active_txns())  # presumed abort


def test_restart_of_running_site_is_noop():
    fed = build("2pc")
    fed.restart_site("s1")
    fed.restart_site("s1", at=5.0)
    fed.run()
    assert not fed.nodes["s1"].crashed
    assert fed.gtm.recovery.passes == 0  # no crash: no recovery pass


def test_overlapping_outages_extend_never_shorten():
    """A crash inside another outage must not let the first outage's
    restart resurrect the site early, nor double-count the crash."""
    fed = build("2pc")
    injector = FaultInjector(fed)
    injector.crash_site("s1", at=10.0, recover_after=50.0)   # up at 60
    injector.crash_site("s1", at=40.0, recover_after=50.0)   # up at 90
    observed = {}
    fed.kernel.call_at(65.0, lambda: observed.setdefault("at65", fed.nodes["s1"].crashed))
    fed.kernel.call_at(95.0, lambda: observed.setdefault("at95", fed.nodes["s1"].crashed))
    fed.run()
    assert injector.injected_crashes == 1  # second crash extended the first
    assert observed == {"at65": True, "at95": False}


def test_crash_during_recovery_pass_restarts_cleanly():
    """A second crash while the recovery sweep is mid-flight abandons
    the stale sweep; the next restart resolves the in-doubt local."""
    abort_at = vote_time("2pc-pa", "s0") - 0.5
    crash_at = vote_time("2pc-pa", "s1") + 0.2
    s0_txn = probe_local_txn("2pc-pa", "s0")
    fed = build("2pc-pa", retries=0)
    injector = FaultInjector(fed)
    process = fed.submit(TRANSFER)
    injector.abort_subtxn("s0", s0_txn, at=abort_at)
    fed.crash_site("s1", at=crash_at)
    fed.restart_site("s1", at=crash_at + 30.0)
    # The restart takes ~1s; +31.5 lands between the recovery pass's
    # recover_query and its resolving decide -- mid-sweep.
    fed.crash_site("s1", at=crash_at + 31.5)
    fed.restart_site("s1", at=crash_at + 60.0)
    fed.run()
    assert process.done and not process.value.committed
    assert fed.gtm.recovery.passes >= 2
    assert not list(fed.engines["s1"].active_txns())
    assert atomicity_report(fed).ok
    assert fed.peek("s1", "t1", "x") == 100
