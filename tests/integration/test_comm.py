"""Communication managers: request/reply, subtransactions, markers."""

import pytest

from repro.errors import MessageTimeout
from repro.core.redo import COMMITLOG_TABLE
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment, read, write


@pytest.fixture
def fed():
    return Federation(
        [SiteSpec("a", tables={"t": {"x": 10}})],
        FederationConfig(seed=11),
    )


def request(fed, site, kind, gtxn=None, **payload):
    def proc():
        reply = yield from fed.central_comm.request(
            site, kind, gtxn_id=gtxn, timeout=60, **payload
        )
        return reply

    process = fed.kernel.spawn(proc())
    fed.kernel.run()
    return process.value


def test_ping_pong(fed):
    reply = request(fed, "a", "ping")
    assert reply.kind == "pong"


def test_begin_and_execute_op(fed):
    reply = request(fed, "a", "begin_subtxn", gtxn="G1")
    assert reply.kind == "subtxn_begun"
    reply = request(fed, "a", "execute_op", gtxn="G1", op=read("t", "x").routed("a", "t"))
    assert reply.kind == "op_done"
    assert reply.payload["value"] == 10


def test_execute_op_without_subtxn_fails(fed):
    reply = request(fed, "a", "execute_op", gtxn="GX", op=read("t", "x").routed("a", "t"))
    assert reply.kind == "op_failed"


def test_write_returns_before_image(fed):
    request(fed, "a", "begin_subtxn", gtxn="G1")
    reply = request(
        fed, "a", "execute_op", gtxn="G1", op=write("t", "x", 99).routed("a", "t")
    )
    assert reply.payload["before"] == 10


def test_decide_commit_applies(fed):
    request(fed, "a", "begin_subtxn", gtxn="G1")
    request(fed, "a", "execute_op", gtxn="G1", op=write("t", "x", 42).routed("a", "t"))
    reply = request(fed, "a", "decide", gtxn="G1", decision="commit", marker_key="G1")
    assert reply.payload["outcome"] == "committed"
    assert fed.peek("a", "t", "x") == 42
    # The commit marker landed in the same transaction.
    assert fed.peek("a", COMMITLOG_TABLE, "G1") is not None


def test_decide_abort_rolls_back(fed):
    request(fed, "a", "begin_subtxn", gtxn="G1")
    request(fed, "a", "execute_op", gtxn="G1", op=write("t", "x", 42).routed("a", "t"))
    reply = request(fed, "a", "decide", gtxn="G1", decision="abort")
    assert reply.payload["outcome"] == "aborted"
    assert fed.peek("a", "t", "x") == 10


def test_execute_l0_is_self_contained_txn(fed):
    reply = request(
        fed, "a", "execute_l0", gtxn="G1",
        op=increment("t", "x", 5).routed("a", "t"), marker_key="G1:0",
    )
    assert reply.kind == "l0_done"
    assert reply.payload["value"] == 15
    assert fed.peek("a", "t", "x") == 15


def test_l0_marker_carries_before_image(fed):
    request(
        fed, "a", "execute_l0", gtxn="G1",
        op=write("t", "x", 7).routed("a", "t"), marker_key="G1:0",
    )
    reply = request(fed, "a", "status_query", gtxn="G1", marker_key="G1:0", durable=True)
    assert reply.payload["outcome"] == "committed"
    assert reply.payload["before"] == 10


def test_status_of_unexecuted_marker_is_aborted(fed):
    reply = request(fed, "a", "status_query", gtxn="G9", marker_key="G9:0", durable=True)
    assert reply.payload["outcome"] == "aborted"


def test_volatile_status_unknown_after_crash(fed):
    request(
        fed, "a", "execute_l0", gtxn="G1",
        op=increment("t", "x", 5).routed("a", "t"), marker_key="G1:0",
    )
    fed.nodes["a"].crash()
    fed.restart_site("a")
    fed.run()
    reply = request(fed, "a", "status_query", gtxn="G1", marker_key="G1:0", durable=False)
    assert reply.payload["outcome"] == "unknown"


def test_durable_status_survives_crash(fed):
    request(
        fed, "a", "execute_l0", gtxn="G1",
        op=increment("t", "x", 5).routed("a", "t"), marker_key="G1:0",
    )
    fed.nodes["a"].crash()
    fed.restart_site("a")
    fed.run()
    reply = request(fed, "a", "status_query", gtxn="G1", marker_key="G1:0", durable=True)
    assert reply.payload["outcome"] == "committed"


def test_request_timeout_on_crashed_site(fed):
    fed.nodes["a"].crash()

    def proc():
        try:
            yield from fed.central_comm.request("a", "ping", timeout=5)
        except MessageTimeout:
            return "timeout"

    process = fed.kernel.spawn(proc())
    fed.kernel.run()
    assert process.value == "timeout"


def test_undo_subtxn_applies_inverse(fed):
    request(
        fed, "a", "execute_l0", gtxn="G1",
        op=increment("t", "x", 5).routed("a", "t"), marker_key="G1:0",
    )
    reply = request(
        fed, "a", "undo_subtxn", gtxn="G1",
        inverse_ops=[increment("t", "x", -5).routed("a", "t")],
        marker_key="undo:G1",
    )
    assert reply.payload["outcome"] == "undone"
    assert fed.peek("a", "t", "x") == 10


def test_redo_subtxn_reexecutes(fed):
    reply = request(
        fed, "a", "redo_subtxn", gtxn="G1",
        ops=[write("t", "x", 77).routed("a", "t")], marker_key="G1",
    )
    assert reply.payload["outcome"] == "committed"
    assert fed.peek("a", "t", "x") == 77
    assert fed.comms["a"].redo_executions == 1


def test_prepare_vote_for_after_protocol(fed):
    request(fed, "a", "begin_subtxn", gtxn="G1")
    request(fed, "a", "execute_op", gtxn="G1", op=read("t", "x").routed("a", "t"))
    reply = request(fed, "a", "prepare", gtxn="G1", protocol="after")
    assert reply.payload["vote"] == "ready"
    # The local transaction is STILL RUNNING -- the paper's §3.2 point.
    from repro.localdb.txn import LocalTxnState

    txn_id = fed.comms["a"]._subtxns["G1"]
    assert fed.interfaces["a"].status(txn_id) is LocalTxnState.RUNNING


def test_prepare_vote_2pc_needs_preparable_interface(fed):
    """Standard interface cannot reach ready: the vote request crashes the
    handler, the central times out -- the paper's impossibility."""
    request(fed, "a", "begin_subtxn", gtxn="G1")

    def proc():
        try:
            yield from fed.central_comm.request(
                "a", "prepare", gtxn_id="G1", timeout=10, protocol="2pc"
            )
        except MessageTimeout:
            return "no ready state"

    process = fed.kernel.spawn(proc())
    fed.kernel.run(raise_failures=False)
    assert process.value == "no ready state"


def test_prepare_before_commits_running_subtxn(fed):
    request(fed, "a", "begin_subtxn", gtxn="G1")
    request(fed, "a", "execute_op", gtxn="G1", op=write("t", "x", 3).routed("a", "t"))
    reply = request(
        fed, "a", "prepare", gtxn="G1", protocol="before", marker_key="G1:a"
    )
    assert reply.payload["vote"] == "committed"
    assert fed.peek("a", "t", "x") == 3


def test_prepare_before_resolve_abort(fed):
    request(fed, "a", "begin_subtxn", gtxn="G1")
    request(fed, "a", "execute_op", gtxn="G1", op=write("t", "x", 3).routed("a", "t"))
    reply = request(
        fed, "a", "prepare", gtxn="G1", protocol="before",
        marker_key="G1:a", resolve="abort",
    )
    assert reply.payload["vote"] == "aborted"
    assert fed.peek("a", "t", "x") == 10
