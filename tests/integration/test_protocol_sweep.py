"""The kitchen-sink sweep: every protocol, faults on, invariants audited.

One compact scenario (transfers with intended aborts plus an injected
erroneous-abort source and a crash/recovery cycle) runs under all seven
protocols across several seeds.  For each run the three paper-level
invariants are audited: conservation, global atomicity, and -- for the
serializable protocols -- global serializability.
"""

import pytest

from repro.bench.harness import protocol_federation
from repro.core.invariants import atomicity_report, serializability_ok
from repro.core.protocols import redo_window_protocols
from repro.faults import FaultInjector
from repro.integration.federation import SiteSpec
from repro.workloads.banking import total_balance, transfer

PROTOCOLS = [
    ("before", "per_action", True),
    ("before", "per_site", True),
    ("after", "per_site", True),
    ("2pc", "per_site", True),
    ("2pc-pa", "per_site", True),
    ("3pc", "per_site", True),
    ("saga", "per_action", False),       # not serializable by design
    ("altruistic", "per_action", True),
    ("one_phase", "per_site", True),
    ("short_commit", "per_site", True),
]


def run_one(protocol: str, granularity: str, seed: int):
    specs = [
        SiteSpec(
            f"bank_{i}",
            tables={f"accounts_{i}": {f"acct{i}_{j}": 100 for j in range(3)}},
        )
        for i in range(2)
    ]
    fed = protocol_federation(
        protocol, specs, granularity=granularity, seed=seed, msg_timeout=25
    )
    fed.gtm.config.status_poll_interval = 8
    injector = FaultInjector(fed)
    if protocol in redo_window_protocols():
        injector.erroneous_aborts_after_ready(probability=0.4, delay=0.3)
    injector.crash_site("bank_1", at=60.0, recover_after=50.0)
    rng = fed.kernel.rng.stream("sweep")
    batches = [
        {
            "operations": transfer(rng, 2, 3),
            "intends_abort": rng.random() < 0.2,
            "delay": rng.uniform(0, 120),
        }
        for _ in range(6)
    ]
    fed.run_transactions(batches)
    return fed


@pytest.mark.parametrize("protocol,granularity,must_serialize", PROTOCOLS)
@pytest.mark.parametrize("seed", [201, 202])
def test_sweep(protocol, granularity, must_serialize, seed):
    fed = run_one(protocol, granularity, seed)
    assert total_balance(fed, 2, 3) == 600, "conservation broken"
    report = atomicity_report(fed)
    assert report.ok, report.violations
    if must_serialize:
        assert serializability_ok(fed)
