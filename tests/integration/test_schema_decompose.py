"""Global schema routing and transaction decomposition."""

import pytest

from repro.integration.decompose import decompose
from repro.integration.schema import GlobalSchema, Placement, SchemaError
from repro.mlt.actions import increment, read, write


def make_schema():
    schema = GlobalSchema()
    schema.map_table("accounts_a", "bank_a", "accounts")
    schema.map_table("accounts_b", "bank_b", "accounts")
    schema.map_partitioned(
        "customers",
        lambda key: Placement("bank_a" if str(key) < "m" else "bank_b", "customers"),
    )
    return schema


def test_single_site_routing():
    schema = make_schema()
    op = schema.route(write("accounts_a", "alice", 10))
    assert op.site == "bank_a"
    assert op.local_table == "accounts"


def test_partitioned_routing():
    schema = make_schema()
    assert schema.route(read("customers", "alice")).site == "bank_a"
    assert schema.route(read("customers", "zoe")).site == "bank_b"


def test_unmapped_table_rejected():
    schema = make_schema()
    with pytest.raises(SchemaError):
        schema.route(read("ghost", "k"))


def test_duplicate_mapping_rejected():
    schema = make_schema()
    with pytest.raises(SchemaError):
        schema.map_table("accounts_a", "bank_b")


def test_partition_must_return_placement():
    schema = GlobalSchema()
    schema.map_partitioned("bad", lambda key: ("site", "table"))
    with pytest.raises(SchemaError):
        schema.placement("bad", "k")


def test_tables_listing():
    schema = make_schema()
    assert schema.tables() == ["accounts_a", "accounts_b", "customers"]


def test_decompose_groups_by_site_preserving_order():
    schema = make_schema()
    ops = [
        increment("accounts_a", "alice", -5),
        increment("accounts_b", "bob", 5),
        read("accounts_a", "carol"),
    ]
    decomposition = decompose(schema, ops)
    assert len(decomposition) == 3
    assert decomposition.sites == ["bank_a", "bank_b"]
    assert [op.key for op in decomposition.by_site["bank_a"]] == ["alice", "carol"]
    assert [op.key for op in decomposition.by_site["bank_b"]] == ["bob"]
    # Global order preserved in `ordered`.
    assert [op.key for op in decomposition.ordered] == ["alice", "bob", "carol"]


def test_decompose_routes_operations():
    schema = make_schema()
    decomposition = decompose(schema, [read("customers", "zoe")])
    op = decomposition.ordered[0]
    assert op.site == "bank_b"
    assert op.local_table == "customers"


def test_decompose_empty():
    schema = make_schema()
    decomposition = decompose(schema, [])
    assert len(decomposition) == 0
    assert decomposition.sites == []
