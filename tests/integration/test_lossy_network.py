"""Protocols over an unreliable network.

Message loss turns every request/reply into a maybe; the protocols'
retry and status-inquiry machinery (plus the idempotence markers) must
deliver exactly-once effects anyway.
"""

import pytest

from repro.core.gtm import GTMConfig
from repro.core.invariants import atomicity_report
from repro.faults import FaultInjector
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment


def build(protocol: str, granularity: str, loss_rate: float, seed: int) -> Federation:
    preparable = protocol in ("2pc", "3pc")
    return Federation(
        [
            SiteSpec("s0", tables={"t0": {"x": 100}}, preparable=preparable),
            SiteSpec("s1", tables={"t1": {"x": 100}}, preparable=preparable),
        ],
        FederationConfig(
            seed=seed,
            loss_rate=loss_rate,
            gtm=GTMConfig(
                protocol=protocol, granularity=granularity,
                msg_timeout=12, status_poll_interval=4, retry_attempts=10,
            ),
        ),
    )


TRANSFER = [increment("t0", "x", -10), increment("t1", "x", 10)]


@pytest.mark.parametrize(
    "protocol,granularity",
    [("before", "per_action"), ("after", "per_site"), ("2pc", "per_site")],
)
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_transfer_survives_10pct_loss(protocol, granularity, seed):
    fed = build(protocol, granularity, loss_rate=0.10, seed=seed)
    process = fed.submit(TRANSFER)
    fed.run()
    outcome = process.value
    total = fed.peek("s0", "t0", "x") + fed.peek("s1", "t1", "x")
    assert total == 200, "money lost or duplicated under message loss"
    assert atomicity_report(fed).ok
    if outcome.committed:
        assert fed.peek("s0", "t0", "x") == 90
    else:
        assert fed.peek("s0", "t0", "x") == 100


def test_lost_decide_message_resent_until_answered():
    """Drop the first decide; the coordinator must re-deliver it."""
    fed = build("after", "per_site", loss_rate=0.0, seed=5)
    FaultInjector(fed).lose_next_message("decide")
    process = fed.submit(TRANSFER)
    fed.run()
    assert process.value.committed
    assert fed.peek("s0", "t0", "x") == 90
    assert fed.peek("s1", "t1", "x") == 110
    # The decide was sent more than twice (one per site + the resend).
    assert fed.network.message_counts()["decide"] >= 3


def test_lost_undo_reply_does_not_double_undo():
    """The undo result is lost; the retried undo must hit the marker
    guard instead of running the inverse twice."""
    fed = build("before", "per_action", loss_rate=0.0, seed=6)
    FaultInjector(fed).lose_next_message("l0_done")
    process = fed.submit(TRANSFER, intends_abort=True)
    fed.run()
    assert not process.value.committed
    assert fed.peek("s0", "t0", "x") == 100
    assert fed.peek("s1", "t1", "x") == 100
    assert atomicity_report(fed).ok


def test_lost_vote_aborts_2pc_cleanly():
    fed = build("2pc", "per_site", loss_rate=0.0, seed=7)
    fed.gtm.config.retry_attempts = 0
    FaultInjector(fed).lose_next_message("vote")
    process = fed.submit(TRANSFER)
    fed.run()
    # Missing vote counts as abort; locals roll back from ready/running.
    assert not process.value.committed
    assert fed.peek("s0", "t0", "x") == 100
    assert fed.peek("s1", "t1", "x") == 100
