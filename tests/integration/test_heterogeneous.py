"""Truly heterogeneous federations: mixed 2PL and optimistic sites.

§3.2 names the optimistic scheduler explicitly: a local transaction may
be aborted "by an optimistic scheduler since the transaction did not
survive the validation phase" -- after the ready answer was already
sent.  These tests integrate sites with different concurrency control
schemes (and different speeds) under each protocol.
"""

import pytest

from repro.core.gtm import GTMConfig
from repro.core.invariants import atomicity_report, serializability_ok
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.localdb.config import LocalDBConfig
from repro.mlt.actions import increment, read, write
from repro.storage.disk import StorageConfig


def build_mixed(protocol: str, granularity: str = "per_site", seed: int = 9,
                preparable: bool = False) -> Federation:
    """One strict-2PL site, one optimistic site, one slow site."""
    return Federation(
        [
            SiteSpec(
                "pessimist", tables={"tp": {"x": 100, "y": 10}},
                config=LocalDBConfig(scheduler="2pl"), preparable=preparable,
            ),
            SiteSpec(
                "optimist", tables={"to": {"x": 200}},
                config=LocalDBConfig(scheduler="occ"), preparable=preparable,
            ),
            SiteSpec(
                "sluggish", tables={"ts": {"x": 300}},
                config=LocalDBConfig(
                    storage=StorageConfig(
                        page_read_time=3.0, page_write_time=3.0, log_force_time=3.0
                    )
                ),
                preparable=preparable,
            ),
        ],
        FederationConfig(
            seed=seed, gtm=GTMConfig(protocol=protocol, granularity=granularity)
        ),
    )


TRANSFER = [
    increment("tp", "x", -5),
    increment("to", "x", 5),
    read("ts", "x"),
]


@pytest.mark.parametrize(
    "protocol,granularity",
    [("before", "per_action"), ("before", "per_site"), ("after", "per_site")],
)
def test_mixed_schedulers_commit(protocol, granularity):
    fed = build_mixed(protocol, granularity)
    process = fed.submit(TRANSFER)
    fed.run()
    outcome = process.value
    assert outcome.committed
    assert outcome.reads == {"ts['x']": 300}
    assert fed.peek("pessimist", "tp", "x") == 95
    assert fed.peek("optimist", "to", "x") == 205
    assert atomicity_report(fed).ok


def test_2pc_works_on_preparable_occ_site():
    """A modified OCC manager validates and installs at prepare time."""
    fed = build_mixed("2pc", preparable=True)
    process = fed.submit(TRANSFER)
    fed.run()
    assert process.value.committed
    assert fed.peek("optimist", "to", "x") == 205


def test_validation_abort_after_ready_triggers_redo():
    """The paper's optimistic-scheduler scenario under commit-after:

    a purely local transaction at the optimistic site commits between
    the global subtransaction's ready answer and its commit, stealing
    the validation -- the global subtransaction is erroneously aborted
    and must be redone.
    """
    fed = build_mixed("after", seed=11)
    engine = fed.engines["optimist"]

    # The global txn reads to.x early, then works elsewhere for a while.
    process = fed.submit(
        [read("to", "x"), write("to", "x", 250)]
        + [increment("tp", "y", 1)] * 6,
        name="G_slowpoke",
    )

    def local_interloper():
        # A local (non-federated) transaction at the optimistic site
        # commits a conflicting write while the global one is busy;
        # backward validation will kill the global subtxn at commit.
        yield 20.0
        txn = engine.begin()
        yield from engine.write(txn, "to", "x", 201)
        yield from engine.commit(txn)

    fed.kernel.spawn(local_interloper())
    fed.run()
    outcome = process.value
    assert outcome.committed
    # The redo repeated the optimist subtransaction after validation
    # killed the first execution.
    assert outcome.redo_executions >= 1
    validation_aborts = engine.aborts
    from repro.localdb.txn import LocalAbortReason

    assert validation_aborts[LocalAbortReason.VALIDATION] >= 1
    assert fed.peek("optimist", "to", "x") == 250
    assert atomicity_report(fed).ok


def test_validation_abort_under_commit_before_retried_in_cm():
    """Per-action commit-before: the CM absorbs validation aborts by
    retrying the short L0 transaction."""
    fed = build_mixed("before", granularity="per_action", seed=12)
    engine = fed.engines["optimist"]

    def churn():
        # Continuous local writes to a different key keep the OCC
        # commit sequence moving without conflicting.
        for i in range(10):
            yield 2.0
            txn = engine.begin()
            yield from engine.write(txn, "to", f"noise{i}", i)
            yield from engine.commit(txn)

    fed.kernel.spawn(churn())
    process = fed.submit(TRANSFER)
    fed.run()
    assert process.value.committed
    assert atomicity_report(fed).ok


def test_slow_site_does_not_block_fast_sites_under_before():
    """Commit-before+MLT: the fast sites' locks are long released while
    the slow site still grinds."""
    fed = build_mixed("before", granularity="per_action", seed=13)
    p1 = fed.submit(
        [increment("tp", "x", 1)] + [increment("ts", "x", 1)] * 4, name="G_slow"
    )

    def delayed():
        yield 8.0
        outcome = yield fed.submit([increment("tp", "x", 1)], name="G_fast")
        return outcome

    p2 = fed.kernel.spawn(delayed())
    fed.run()
    assert p1.value.committed and p2.value.committed
    assert p2.value.finish_time < p1.value.finish_time
    assert fed.peek("pessimist", "tp", "x") == 102


def test_mixed_federation_soak_conserves_and_serializes():
    """A small soak: random transfers across the mixed federation."""
    fed = build_mixed("before", granularity="per_action", seed=14)
    rng = fed.kernel.rng.stream("soak")
    tables = [("tp", "x"), ("to", "x"), ("ts", "x")]
    batches = []
    for _ in range(12):
        src, dst = rng.sample(tables, 2)
        amount = rng.randint(1, 9)
        batches.append(
            {
                "operations": [
                    increment(src[0], src[1], -amount),
                    increment(dst[0], dst[1], amount),
                ],
                "intends_abort": rng.random() < 0.25,
                "delay": rng.uniform(0, 30),
            }
        )
    fed.run_transactions(batches)
    total = (
        fed.peek("pessimist", "tp", "x")
        + fed.peek("optimist", "to", "x")
        + fed.peek("sluggish", "ts", "x")
    )
    assert total == 600
    assert atomicity_report(fed).ok
    assert serializability_ok(fed)
