"""Chaos sweeps for Paxos Commit: faults plus coordinator/acceptor kills.

The full chaos gauntlet -- message loss, duplication, reordering, site
crash/recover cycles, link partitions -- with a scheduled coordinator
crash and an F-bounded acceptor kill on top.  Paxos Commit must keep
every obligation the classic protocols keep (atomicity, global
serializability, conservation) *and* converge with the killed
coordinator never restarting: the takeover path is the only way those
transactions can finish.
"""

import pytest

from repro.faults.chaos import ChaosSpec, run_chaos


def paxos_spec(seed: int, **overrides) -> ChaosSpec:
    defaults = dict(
        protocol="paxos",
        granularity="per_site",
        seed=seed,
        coordinators=2,
        paxos_f=1,
        n_txns=10,
        coordinator_crash_index=1,
        coordinator_crash_at=120.0,  # mid-workload, never restarted
    )
    defaults.update(overrides)
    return ChaosSpec(**defaults)


@pytest.mark.parametrize("seed", [1, 2])
def test_chaos_with_coordinator_kill_converges(seed):
    result = run_chaos(paxos_spec(seed))
    assert result.ok, (result.stuck, result.violations)
    assert result.counters["coordinator_crashes"] == 1
    # Transactions in flight at the kill finish through takeover or a
    # recovery conclusion, not through their dead driver, so they never
    # reach the outcome counters -- result.ok above (atomicity,
    # serializability, convergence, conservation) is the real audit.
    assert result.committed >= 1


def test_chaos_with_f_acceptor_kill_converges():
    result = run_chaos(
        paxos_spec(
            3,
            acceptor_crashes=1,  # F=1: one acceptor may stay down
            acceptor_crash_at=90.0,
        )
    )
    assert result.ok, (result.stuck, result.violations)
    assert result.federation.acceptors.metrics()["crashed"] == 1


def test_acceptor_crash_knob_requires_paxos():
    spec = ChaosSpec(
        protocol="2pc", granularity="per_site",
        acceptor_crashes=1, acceptor_crash_at=10.0,
    )
    with pytest.raises(ValueError):
        run_chaos(spec)


def test_fault_counters_surface_retransmit_budget_exhaustion():
    """Satellite check: the net give-up counter reaches FAULT_COUNTERS.

    Every chaos result carries ``retransmit_budget_exhausted`` (via
    ``Network.reliability_counts``), so harness users can assert that a
    run did -- or did not -- silently abandon a request chain.
    """
    result = run_chaos(paxos_spec(4))
    assert "retransmit_budget_exhausted" in result.counters
    assert "takeovers_started" in result.counters
    network = result.federation.network
    assert result.counters["retransmit_budget_exhausted"] == sum(
        network.retransmit_budget_exhausted.values()
    )
