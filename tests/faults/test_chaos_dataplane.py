"""Chaos over the partitioned data plane: crashes, leases, convergence.

The partitioned chaos configuration replaces the per-site tables with
one hash-placed ``acct`` namespace; scheduled primary crashes drive
the lease/promotion/rejoin machinery while the usual network faults
run.  Every seeded schedule must end conserved, atomic, resolved --
and with every serving replica byte-equal to its primary.
"""

import pytest

from repro.faults import ChaosSpec, run_chaos

from .test_chaos import assert_chaos_ok


@pytest.mark.parametrize("protocol,granularity", [
    ("2pc", "per_site"),
    ("before", "per_action"),
    ("paxos", "per_site"),
])
@pytest.mark.parametrize("seed", [7, 11])
def test_chaos_partitioned_matrix(protocol, granularity, seed):
    result = run_chaos(ChaosSpec(
        protocol=protocol,
        granularity=granularity,
        seed=seed,
        n_sites=4,
        partitions=4,
        replication=2,
        site_crashes=1,
        site_crash_at=80.0,
    ))
    assert_chaos_ok(result)
    assert result.replicas_converged, result.replica_violations
    assert result.committed + result.aborted == result.spec.n_txns


def test_chaos_partitioned_crash_exercises_failover():
    result = run_chaos(ChaosSpec(
        protocol="2pc",
        granularity="per_site",
        seed=5,
        n_sites=4,
        partitions=4,
        replication=2,
        site_crashes=2,
        site_crash_at=60.0,
        # Outlive the lease so evictions actually fire before restart.
        replica_outage=120.0,
    ))
    assert_chaos_ok(result)
    assert result.replicas_converged, result.replica_violations
    counters = result.counters
    assert counters["dataplane_promotions"] + counters["dataplane_evictions"] >= 1
    assert counters["dataplane_rejoins"] >= 1


def test_chaos_partitioned_replays_deterministically():
    spec = ChaosSpec(
        protocol="before", granularity="per_action", seed=3,
        n_sites=4, partitions=4, replication=2,
        site_crashes=1, site_crash_at=70.0,
    )
    first = run_chaos(spec)
    second = run_chaos(spec)
    assert first.committed == second.committed
    assert first.aborted == second.aborted
    assert first.counters == second.counters
    assert first.federation.kernel.events_dispatched == \
        second.federation.kernel.events_dispatched


def test_chaos_unpartitioned_spec_unchanged():
    """partitions=0 must keep the legacy chaos path bit-for-bit."""
    legacy = run_chaos(ChaosSpec(protocol="2pc", granularity="per_site", seed=7))
    again = run_chaos(ChaosSpec(protocol="2pc", granularity="per_site", seed=7))
    assert legacy.counters == again.counters
    assert legacy.committed == again.committed
    assert "dataplane_promotions" not in legacy.counters
