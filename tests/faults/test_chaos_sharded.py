"""Sharded chaos: coordinator crash + failover under full fault load.

Satellite of the coordinator-pool tentpole: the chaos matrix is re-run
with ``coordinators > 1`` and a scheduled mid-run coordinator crash, at
fault rates at or above the top of the EXP-R1 sweep (2x the base
schedule -- the ``fault_level=2.0`` point of ``bench_r1_chaos``).
Every run must keep the invariants and end with **zero orphaned
in-doubt transactions**: the failover peer resolves the crashed
shard's in-flight work from the shared central logs.
"""

import pytest

from repro.faults import CHAOS_PROTOCOLS, ChaosSpec, run_chaos
from tests.faults.test_chaos import assert_chaos_ok

#: Base rates of the default schedule, doubled -- the hardest point of
#: the bench_r1 fault-level sweep.
BASE = ChaosSpec(protocol="2pc")
LEVEL = 2.0


def sharded_spec(protocol: str, granularity: str, seed: int, **over) -> ChaosSpec:
    params = dict(
        protocol=protocol,
        granularity=granularity,
        seed=seed,
        loss_rate=BASE.loss_rate * LEVEL,
        dup_rate=BASE.dup_rate * LEVEL,
        reorder_rate=BASE.reorder_rate * LEVEL,
        crash_rate=BASE.crash_rate * LEVEL,
        partition_count=int(BASE.partition_count * LEVEL),
        erroneous_abort_rate=BASE.erroneous_abort_rate * LEVEL,
        coordinators=3,
        coordinator_crash_at=120.0,
        coordinator_outage=500.0,
    )
    params.update(over)
    return ChaosSpec(**params)


@pytest.mark.parametrize("protocol,granularity", CHAOS_PROTOCOLS)
@pytest.mark.parametrize("seed", [3, 7])
def test_sharded_chaos_matrix(protocol, granularity, seed):
    result = run_chaos(sharded_spec(protocol, granularity, seed))
    assert_chaos_ok(result)
    # The coordinator crash fired and failover left nothing orphaned.
    assert result.counters["coordinator_crashes"] == 1
    assert result.federation.pool.unresolved_orphans() == []
    assert result.committed + result.aborted <= result.spec.n_txns


@pytest.mark.parametrize("protocol,granularity", CHAOS_PROTOCOLS)
def test_sharded_chaos_replays_deterministically(protocol, granularity):
    first = run_chaos(sharded_spec(protocol, granularity, seed=5))
    second = run_chaos(sharded_spec(protocol, granularity, seed=5))
    assert first.committed == second.committed
    assert first.aborted == second.aborted
    assert first.end_time == second.end_time
    assert first.counters == second.counters


def test_coordinator_stays_down_without_restart():
    """No restart scheduled: peers carry the rest of the run alone."""
    result = run_chaos(
        sharded_spec("2pc", "per_site", seed=7, coordinator_outage=0.0)
    )
    assert_chaos_ok(result)
    fed = result.federation
    assert fed.coordinators[1].crashed
    assert result.counters["coordinator_crashes"] == 1
    assert fed.pool.unresolved_orphans() == []


def test_failover_counters_reported():
    result = run_chaos(sharded_spec("2pc", "per_site", seed=3))
    for key in ("coordinator_crashes", "failovers", "failover_resolved"):
        assert key in result.counters
    assert result.counters["failovers"] >= 1
