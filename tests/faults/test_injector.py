"""Fault injector."""

from repro.faults import FaultInjector
from repro.mlt.actions import increment
from tests.protocols.conftest import build_fed, submit_and_run


def test_probability_zero_never_fires():
    fed = build_fed("after")
    injector = FaultInjector(fed)
    injector.erroneous_aborts_after_ready(probability=0.0)
    outcome = submit_and_run(fed, [increment("t0", "x", 1)])
    assert outcome.committed
    assert injector.injected_aborts == 0


def test_probability_one_always_fires():
    fed = build_fed("after")
    injector = FaultInjector(fed)
    injector.erroneous_aborts_after_ready(probability=1.0, sites=["s0"], delay=0.2)
    submit_and_run(fed, [increment("t0", "x", 1)])
    assert injector.injected_aborts == 1


def test_2pc_ready_state_immune():
    """A prepared (ready) local may no longer be unilaterally aborted."""
    fed = build_fed("2pc")
    injector = FaultInjector(fed)
    injector.erroneous_aborts_after_ready(probability=1.0, delay=0.2)
    outcome = submit_and_run(fed, [increment("t0", "x", 1), increment("t1", "x", 1)])
    assert outcome.committed
    assert injector.injected_aborts == 0  # injector skips protocol == 2pc


def test_crash_and_recover_cycle():
    fed = build_fed("before", granularity="per_action", msg_timeout=10, poll=5.0)
    injector = FaultInjector(fed)
    injector.crash_site("s0", at=1.0, recover_after=30.0)
    fed.run(until=5.0)
    assert fed.nodes["s0"].crashed
    fed.run(until=60.0)
    assert not fed.nodes["s0"].crashed
    assert injector.injected_crashes == 1


def test_crash_traced():
    fed = build_fed("before")
    FaultInjector(fed).crash_site("s0", at=1.0)
    fed.run(until=10)
    faults = fed.kernel.trace.select(category="fault")
    assert faults and faults[0].details["kind"] == "crash"


def test_random_crashes_schedule_deterministic():
    def make():
        fed = build_fed("before", granularity="per_action", seed=5)
        injector = FaultInjector(fed)
        injector.random_crashes(["s0", "s1"], horizon=500, crash_rate=0.01, outage=20)
        fed.run(until=500)
        return [
            (r.time, r.site)
            for r in fed.kernel.trace.select(category="fault")
        ]

    assert make() == make()


def test_abort_subtxn_direct():
    fed = build_fed("before", granularity="per_site")
    injector = FaultInjector(fed)

    def killer():
        yield 4.0
        comm = fed.comms["s0"]
        for txn_id in comm._subtxns.values():
            injector.abort_subtxn("s0", txn_id)

    fed.kernel.spawn(killer())
    outcome = submit_and_run(
        fed, [increment("t0", "x", 1)] * 4 + [increment("t1", "x", 1)]
    )
    # Whether the GTM retried or aborted, the books must balance.
    from repro.core.invariants import atomicity_report

    assert atomicity_report(fed).ok
