"""Deterministic chaos harness (EXP-R1).

Every seeded schedule -- message loss, duplication, reordering, link
partitions, crash/recover cycles -- must leave the federation with a
clean atomicity audit, a serializable history, conserved balances and
every global transaction terminal at every site within the post-fault
horizon.  The quick matrix below runs in the tier-1 suite; the full
20-seed sweep is a soak test (``-m soak``).

On failure the kernel trace of the offending run is dumped under
``chaos-artifacts/`` so a CI job can upload it for post-mortem.
"""

from pathlib import Path

import pytest

from repro.faults import CHAOS_PROTOCOLS, ChaosResult, ChaosSpec, run_chaos

ARTIFACT_DIR = Path(__file__).resolve().parents[2] / "chaos-artifacts"


def assert_chaos_ok(result: ChaosResult) -> None:
    """Assert a clean run, dumping the kernel trace when it is not."""
    if result.ok:
        return
    spec = result.spec
    ARTIFACT_DIR.mkdir(exist_ok=True)
    path = ARTIFACT_DIR / (
        f"chaos_{spec.protocol}_{spec.granularity}_seed{spec.seed}.trace"
    )
    with path.open("w") as fh:
        fh.write(f"# spec: {spec}\n")
        fh.write(f"# stuck: {result.stuck}\n")
        fh.write(f"# violations: {result.violations}\n")
        fh.write(f"# counters: {result.counters}\n")
        for record in result.federation.kernel.trace.records:
            fh.write(f"{record}\n")
    pytest.fail(
        f"chaos run failed for {spec.protocol}/{spec.granularity} "
        f"seed={spec.seed}: atomicity={result.atomicity_ok} "
        f"serializable={result.serializable} converged={result.converged} "
        f"conserved={result.conserved} stuck={result.stuck[:5]} "
        f"(trace dumped to {path})"
    )


@pytest.mark.parametrize("protocol,granularity", CHAOS_PROTOCOLS)
@pytest.mark.parametrize("seed", [7, 11])
def test_chaos_quick_matrix(protocol, granularity, seed):
    result = run_chaos(
        ChaosSpec(protocol=protocol, granularity=granularity, seed=seed)
    )
    assert_chaos_ok(result)
    assert result.committed + result.aborted == result.spec.n_txns


@pytest.mark.parametrize("protocol,granularity", CHAOS_PROTOCOLS)
def test_chaos_replays_deterministically(protocol, granularity):
    first = run_chaos(ChaosSpec(protocol=protocol, granularity=granularity, seed=3))
    second = run_chaos(ChaosSpec(protocol=protocol, granularity=granularity, seed=3))
    assert first.committed == second.committed
    assert first.aborted == second.aborted
    assert first.end_time == second.end_time
    assert first.counters == second.counters


def test_chaos_counters_recorded():
    result = run_chaos(ChaosSpec(protocol="2pc", seed=7))
    for key in (
        "retransmissions",
        "duplicates_suppressed",
        "abandoned_messages",
        "injected_crashes",
        "injected_partitions",
        "duplicate_requests",
        "recovery_passes",
        "recovery_orphans_terminated",
    ):
        assert key in result.counters
    # Faults did fire: the schedule is not vacuous.
    assert result.counters["injected_crashes"] > 0
    assert result.counters["retransmissions"] > 0


def test_chaos_resolution_bounded():
    """Everything terminal well inside the post-fault horizon."""
    result = run_chaos(ChaosSpec(protocol="2pc-pa", seed=7))
    assert_chaos_ok(result)
    assert result.end_time < result.spec.resolution_horizon


@pytest.mark.soak
@pytest.mark.parametrize("protocol,granularity", CHAOS_PROTOCOLS)
@pytest.mark.parametrize("seed", list(range(20)))
def test_chaos_soak_matrix(protocol, granularity, seed):
    """The full EXP-R1 sweep: 20 seeded schedules per protocol."""
    result = run_chaos(
        ChaosSpec(protocol=protocol, granularity=granularity, seed=seed)
    )
    assert_chaos_ok(result)


@pytest.mark.parametrize("batch_policy", ["static", "adaptive"])
@pytest.mark.parametrize("seed", [7, 11])
def test_chaos_with_batching_survives_crashes(batch_policy, seed):
    """Batched links + crash/recover cycles keep every safety audit.

    Regression scope: a sender crash inside a batch window used to
    leave the scheduled flush armed, so volatile pre-crash messages
    were transmitted on behalf of the dead node.  With the sender-side
    purge, a crashed site's buffered envelopes die with it and the
    reliable path retransmits whatever the *destination* missed.
    """
    result = run_chaos(
        ChaosSpec(
            protocol="2pc",
            seed=seed,
            batch_window=1.0,
            batch_policy=batch_policy,
            batch_max_msgs=4,
        )
    )
    assert_chaos_ok(result)
    assert result.committed + result.aborted == result.spec.n_txns
    assert result.counters["injected_crashes"] > 0
    assert result.federation.network.envelopes > 0


def test_chaos_batching_replays_deterministically():
    spec = dict(
        protocol="2pc", seed=5, batch_window=1.0,
        batch_policy="adaptive", batch_max_msgs=4,
    )
    first = run_chaos(ChaosSpec(**spec))
    second = run_chaos(ChaosSpec(**spec))
    assert first.committed == second.committed
    assert first.end_time == second.end_time
    assert first.counters == second.counters
