"""End-to-end property: random workloads + faults never break atomicity.

For every protocol, random transfer workloads (with intended aborts and
injected erroneous aborts) must leave the federation with (1) conserved
total balance -- transfers are zero-sum -- and (2) a clean audit of the
*full* shared invariant battery (:func:`check_invariants`): atomicity,
serializability, convergence, lock release, redo/undo drain (§3.2) and
inverse-transaction ordering (§3.3) -- the same predicates the
``repro.check`` exploration engine evaluates.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import protocol_federation
from repro.core.invariants import check_invariants
from repro.faults import FaultInjector
from repro.integration.federation import SiteSpec
from repro.workloads.banking import total_balance, transfer


def build(protocol, granularity, seed):
    specs = [
        SiteSpec(f"bank_{i}", tables={f"accounts_{i}": {f"acct{i}_{j}": 100 for j in range(3)}})
        for i in range(2)
    ]
    return protocol_federation(protocol, specs, granularity=granularity, seed=seed)


@given(
    seed=st.integers(min_value=0, max_value=200),
    protocol=st.sampled_from(["before", "after", "2pc", "saga"]),
    n_txns=st.integers(min_value=1, max_value=6),
    abort_rate=st.sampled_from([0.0, 0.5]),
)
@settings(max_examples=25, deadline=None)
def test_money_conserved_under_random_mixes(seed, protocol, n_txns, abort_rate):
    granularity = "per_action" if protocol in ("before", "saga") else "per_site"
    fed = build(protocol, granularity, seed)
    rng = fed.kernel.rng.stream("workload")
    batches = []
    for i in range(n_txns):
        batches.append(
            {
                "operations": transfer(rng, 2, 3),
                "intends_abort": rng.random() < abort_rate,
                "delay": rng.uniform(0, 10),
            }
        )
    fed.run_transactions(batches)
    assert total_balance(fed, 2, 3) == 600
    violations = check_invariants(fed)
    if protocol == "saga":
        # Sagas trade serializability for compensation-based atomicity;
        # every other obligation still holds.
        violations = [v for v in violations if v.invariant != "serializability"]
    assert violations == []


@given(seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=15, deadline=None)
def test_commit_after_atomic_under_erroneous_aborts(seed):
    fed = build("after", "per_site", seed)
    injector = FaultInjector(fed)
    injector.erroneous_aborts_after_ready(probability=0.7, delay=0.3)
    rng = fed.kernel.rng.stream("workload")
    batches = [
        {"operations": transfer(rng, 2, 3), "delay": rng.uniform(0, 15)}
        for _ in range(4)
    ]
    outcomes = fed.run_transactions(batches)
    assert total_balance(fed, 2, 3) == 600
    # Erroneous aborts after READY exercise the redo log (§3.2): the
    # full battery checks it drained once every decision resolved.
    assert check_invariants(fed) == []
    assert all(o.committed for o in outcomes)  # redo masks the faults


@given(seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=10, deadline=None)
def test_commit_before_atomic_under_crash(seed):
    fed = build("before", "per_action", seed)
    fed.gtm.config.msg_timeout = 10
    fed.gtm.config.status_poll_interval = 5
    injector = FaultInjector(fed)
    rng = fed.kernel.rng.stream("crash-plan")
    injector.crash_site("bank_1", at=rng.uniform(1, 12), recover_after=40)
    workload_rng = fed.kernel.rng.stream("workload")
    batches = [
        {
            "operations": transfer(workload_rng, 2, 3),
            "intends_abort": workload_rng.random() < 0.3,
        }
        for _ in range(3)
    ]
    fed.run_transactions(batches)
    assert total_balance(fed, 2, 3) == 600
    assert check_invariants(fed) == []


@given(seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=10, deadline=None)
def test_commit_before_undoes_in_inverse_order(seed):
    # §3.3: a commit-before abort runs inverse transactions; the
    # inverse_order invariant audits they applied in reverse.
    fed = build("before", "per_action", seed)
    rng = fed.kernel.rng.stream("workload")
    batches = [
        {"operations": transfer(rng, 2, 3), "intends_abort": True}
        for _ in range(3)
    ]
    outcomes = fed.run_transactions(batches)
    assert all(not o.committed for o in outcomes)
    assert total_balance(fed, 2, 3) == 600
    assert check_invariants(fed) == []
