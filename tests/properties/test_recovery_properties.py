"""Property-based tests of engine recovery.

Random committed/aborted/in-flight transaction mixes followed by a
crash: recovery must restore exactly the committed effects, leave the
engine quiescent (shared :func:`engine_quiescent_violations` audit:
no surviving transactions, no held locks), and running it twice must
equal running it once.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.invariants import engine_quiescent_violations
from repro.localdb.config import LocalDBConfig
from repro.localdb.engine import LocalDatabase
from repro.sim.kernel import Kernel

KEYS = ["a", "b", "c", "d"]


@st.composite
def transaction_scripts(draw):
    """A list of transactions: (ops, fate) with fate in commit/abort/crash."""
    n_txns = draw(st.integers(min_value=1, max_value=5))
    scripts = []
    for _ in range(n_txns):
        n_ops = draw(st.integers(min_value=1, max_value=4))
        ops = [
            (draw(st.sampled_from(["write", "increment"])),
             draw(st.sampled_from(KEYS)),
             draw(st.integers(min_value=-20, max_value=20)))
            for _ in range(n_ops)
        ]
        fate = draw(st.sampled_from(["commit", "abort", "in_flight"]))
        scripts.append((ops, fate))
    return scripts


def execute_scripts(db, scripts, flush_probability_rng):
    """Run the scripts sequentially; returns the expected final state.

    A transaction left in flight keeps its page locks until the crash,
    so later scripted transactions skip keys already claimed by an
    in-flight one (they would otherwise block until the crash, which is
    not what this property is about).
    """
    expected = {key: 0 for key in KEYS}
    blocked: set[str] = set()

    def runner():
        for ops, fate in scripts:
            usable_ops = [op for op in ops if op[1] not in blocked]
            if not usable_ops:
                continue
            txn = db.begin()
            shadow = dict(expected)
            for kind, key, value in usable_ops:
                if kind == "write":
                    yield from db.write(txn, "t", key, value)
                    shadow[key] = value
                else:
                    yield from db.increment(txn, "t", key, value)
                    shadow[key] += value
            if fate == "commit":
                yield from db.commit(txn)
                expected.update(shadow)
            elif fate == "abort":
                yield from db.abort(txn)
            else:
                blocked.update(op[1] for op in usable_ops)
                # Leave running; optionally steal its dirty pages so the
                # crash exposes uncommitted data on disk.
                if flush_probability_rng.random() < 0.5:
                    yield from db.buffer.flush_all()
                if flush_probability_rng.random() < 0.5:
                    yield from db.log.force()

    return runner(), expected


def read_state(kernel, db):
    def proc():
        txn = db.begin()
        state = {}
        for key in KEYS:
            state[key] = yield from db.read(txn, "t", key)
        yield from db.commit(txn)
        return state

    process = kernel.spawn(proc())
    kernel.run()
    return process.value


@given(scripts=transaction_scripts(), seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_recovery_restores_exactly_committed_state(scripts, seed):
    kernel = Kernel(seed=seed)
    db = LocalDatabase(kernel, "s", LocalDBConfig(buffer_capacity=4))

    def init():
        # One page per key: lock conflicts are exactly per key, so the
        # "blocked keys" bookkeeping below is precise.
        yield from db.create_table("t", len(KEYS))
        for index, key in enumerate(KEYS):
            db.pin_key("t", key, index)
        txn = db.begin()
        for key in KEYS:
            yield from db.insert(txn, "t", key, 0)
        yield from db.commit(txn)

    kernel.spawn(init())
    kernel.run()

    runner, expected = execute_scripts(db, scripts, kernel.rng.stream("flush"))
    kernel.spawn(runner)
    kernel.run()

    db.crash()
    kernel.spawn(db.restart())
    kernel.run()
    assert engine_quiescent_violations(db) == []
    assert read_state(kernel, db) == expected


@given(scripts=transaction_scripts(), seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_double_crash_recovery_idempotent(scripts, seed):
    kernel = Kernel(seed=seed)
    db = LocalDatabase(kernel, "s", LocalDBConfig(buffer_capacity=4))

    def init():
        # One page per key: lock conflicts are exactly per key, so the
        # "blocked keys" bookkeeping below is precise.
        yield from db.create_table("t", len(KEYS))
        for index, key in enumerate(KEYS):
            db.pin_key("t", key, index)
        txn = db.begin()
        for key in KEYS:
            yield from db.insert(txn, "t", key, 0)
        yield from db.commit(txn)

    kernel.spawn(init())
    kernel.run()
    runner, expected = execute_scripts(db, scripts, kernel.rng.stream("flush"))
    kernel.spawn(runner)
    kernel.run()

    db.crash()
    kernel.spawn(db.restart())
    kernel.run()
    first = read_state(kernel, db)
    # Crash again immediately: recovery must be idempotent.
    db.crash()
    kernel.spawn(db.restart())
    kernel.run()
    assert engine_quiescent_violations(db) == []
    second = read_state(kernel, db)
    assert first == second == expected
