"""Federation-level properties: topology, traces, conflict-table laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import protocol_federation
from repro.integration.federation import SiteSpec
from repro.mlt.conflicts import READ_WRITE_TABLE, SEMANTIC_TABLE, L1Mode
from repro.workloads import WorkloadGenerator, WorkloadSpec

KINDS = ("read", "write", "increment", "insert", "delete")


@given(
    seed=st.integers(min_value=0, max_value=100),
    protocol=st.sampled_from(["before", "after", "2pc", "saga"]),
)
@settings(max_examples=12, deadline=None)
def test_star_topology_holds_under_any_protocol(seed, protocol):
    """No run, under any protocol and seed, produces a local-to-local
    message (Figure 1's structural invariant)."""
    granularity = "per_action" if protocol in ("before", "saga") else "per_site"
    specs = [
        SiteSpec(f"s{i}", tables={f"t{i}": {"k": 10}}) for i in range(3)
    ]
    fed = protocol_federation(protocol, specs, granularity=granularity, seed=seed)
    generator = WorkloadGenerator(
        WorkloadSpec(ops_per_txn=3, read_fraction=0.3, increment_fraction=0.7),
        [(f"t{i}", "k") for i in range(3)],
    )
    rng = fed.kernel.rng.stream("w")
    batches = [
        {"operations": generator.next_transaction(rng)[0]} for _ in range(3)
    ]
    fed.run_transactions(batches)
    for record in fed.kernel.trace.select(category="message"):
        assert "central" in (record.site, record.details["dest"])


@given(
    a=st.sampled_from(KINDS),
    b=st.sampled_from(KINDS),
)
@settings(max_examples=50)
def test_conflict_tables_symmetric_and_rw_dominates(a, b):
    """Both tables are symmetric, and the semantic table never adds a
    conflict the read/write table lacks (it only removes them)."""
    for table in (SEMANTIC_TABLE, READ_WRITE_TABLE):
        assert table.conflicts(a, b) == table.conflicts(b, a)
    if SEMANTIC_TABLE.conflicts(a, b):
        assert READ_WRITE_TABLE.conflicts(a, b)


@given(a=st.sampled_from(list(L1Mode)), b=st.sampled_from(list(L1Mode)))
@settings(max_examples=25)
def test_exclusive_conflicts_with_everything(a, b):
    if L1Mode.EXCLUSIVE in (a, b):
        assert not SEMANTIC_TABLE.compatible(a, b)
        assert not READ_WRITE_TABLE.compatible(a, b)


@given(seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=10, deadline=None)
def test_gtxn_states_always_reach_a_final_state(seed):
    """Every global transaction's trace ends in committed or aborted."""
    specs = [SiteSpec("s0", tables={"t0": {"k": 10}})]
    fed = protocol_federation("before", specs, granularity="per_action", seed=seed)
    rng = fed.kernel.rng.stream("w")
    batches = [
        {
            "operations": [
                WorkloadGenerator(
                    WorkloadSpec(ops_per_txn=2, read_fraction=0.0, increment_fraction=1.0),
                    [("t0", "k")],
                ).next_transaction(rng)[0][0]
            ],
            "intends_abort": rng.random() < 0.5,
        }
        for _ in range(4)
    ]
    fed.run_transactions(batches)
    for gtxn in fed.kernel.trace.subjects("gtxn_state"):
        states = [
            r.details["state"]
            for r in fed.kernel.trace.select(category="gtxn_state", subject=gtxn)
        ]
        assert states[-1] in ("committed", "aborted"), (gtxn, states)
