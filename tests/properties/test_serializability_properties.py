"""Property-based tests of the serialization-graph checker."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.serializability import HistoryOp, build_graph, check
from repro.mlt.conflicts import READ_WRITE_TABLE, SEMANTIC_TABLE

txns = st.sampled_from(["T1", "T2", "T3"])
kinds = st.sampled_from(["read", "write", "increment"])
obj_keys = st.sampled_from(["x", "y"])


@st.composite
def histories(draw, min_size=0, max_size=12):
    rows = draw(
        st.lists(st.tuples(txns, kinds, obj_keys), min_size=min_size, max_size=max_size)
    )
    return [
        HistoryOp(seq, txn, kind, "t", key)
        for seq, (txn, kind, key) in enumerate(rows, start=1)
    ]


@given(history=histories())
@settings(max_examples=150)
def test_serial_order_respects_every_conflict_edge(history):
    report = check(history)
    if not report.serializable:
        assert report.cycle is not None
        return
    order = {txn: i for i, txn in enumerate(report.serial_order)}
    graph = build_graph(history)
    for src, dst in graph.edges:
        assert order[src] < order[dst]


@given(history=histories())
@settings(max_examples=150)
def test_serial_histories_always_serializable(history):
    """Reordering ops so each txn runs contiguously => serializable."""
    by_txn: dict[str, list[HistoryOp]] = {}
    for op in history:
        by_txn.setdefault(op.txn, []).append(op)
    serial = [
        HistoryOp(seq, op.txn, op.kind, op.table, op.key)
        for seq, op in enumerate(
            (op for txn in sorted(by_txn) for op in by_txn[txn]), start=1
        )
    ]
    assert check(serial).serializable


@given(history=histories())
@settings(max_examples=100)
def test_semantic_check_is_weaker_than_rw(history):
    """Everything rw-serializable is semantically serializable too
    (the semantic table only removes conflicts)."""
    if check(history, READ_WRITE_TABLE.conflicts).serializable:
        assert check(history, SEMANTIC_TABLE.conflicts).serializable


@given(history=histories(max_size=8))
@settings(max_examples=100)
def test_single_transaction_always_serializable(history):
    renamed = [
        HistoryOp(op.seq, "T1", op.kind, op.table, op.key) for op in history
    ]
    assert check(renamed).serializable


@given(history=histories())
@settings(max_examples=100)
def test_prefix_of_serializable_history_not_made_cyclic_by_removal(history):
    """Dropping the last operation never creates a new cycle."""
    if check(history).serializable and history:
        assert check(history[:-1]).serializable
