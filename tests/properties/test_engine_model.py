"""Model-based testing: the engine vs a plain dictionary.

Random sequences of transactions (each a list of operations followed by
commit or abort) run both against the real engine and an in-memory
model; after every transaction boundary the committed state must match
the model exactly.  This catches WAL/buffer/lock bookkeeping errors
that targeted unit tests miss.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DuplicateKey, KeyNotFound
from repro.localdb.config import LocalDBConfig
from repro.localdb.engine import LocalDatabase
from repro.sim.kernel import Kernel

KEYS = ["a", "b", "c"]


@st.composite
def scripts(draw):
    n_txns = draw(st.integers(min_value=1, max_value=6))
    txns = []
    for _ in range(n_txns):
        n_ops = draw(st.integers(min_value=1, max_value=5))
        ops = [
            (
                draw(st.sampled_from(["read", "write", "increment", "insert", "delete"])),
                draw(st.sampled_from(KEYS)),
                draw(st.integers(min_value=-50, max_value=50)),
            )
            for _ in range(n_ops)
        ]
        txns.append((ops, draw(st.booleans())))  # True = commit
    return txns


def model_apply(model: dict, kind: str, key: str, value: int):
    """Apply one op to the dict model, mirroring engine semantics.

    Returns True if the engine would raise a logic error (and leave the
    transaction alive) for this op.
    """
    if kind == "read":
        return False
    if kind == "write":
        model[key] = value
        return False
    if kind == "increment":
        if key not in model:
            return True
        model[key] += value
        return False
    if kind == "insert":
        if key in model:
            return True
        model[key] = value
        return False
    if kind == "delete":
        if key not in model:
            return True
        del model[key]
        return False
    raise AssertionError(kind)


@given(script=scripts(), seed=st.integers(min_value=0, max_value=5000),
       scheduler=st.sampled_from(["2pl", "occ"]))
@settings(max_examples=60, deadline=None)
def test_engine_matches_dict_model(script, seed, scheduler):
    kernel = Kernel(seed=seed)
    db = LocalDatabase(kernel, "model-site", LocalDBConfig(scheduler=scheduler))

    def init():
        yield from db.create_table("t", 4)

    kernel.spawn(init())
    kernel.run()

    committed_model: dict = {}

    def runner():
        for ops, should_commit in script:
            txn = db.begin()
            txn_model = dict(committed_model)
            for kind, key, value in ops:
                try:
                    if kind == "read":
                        engine_value = yield from db.read(txn, "t", key)
                        assert engine_value == txn_model.get(key)
                    elif kind == "write":
                        yield from db.write(txn, "t", key, value)
                    elif kind == "increment":
                        yield from db.increment(txn, "t", key, value)
                    elif kind == "insert":
                        yield from db.insert(txn, "t", key, value)
                    elif kind == "delete":
                        yield from db.delete(txn, "t", key)
                    rejected = False
                except (KeyNotFound, DuplicateKey):
                    rejected = True
                model_rejected = model_apply(txn_model, kind, key, value)
                assert rejected == model_rejected, (kind, key, txn_model)
            if should_commit:
                yield from db.commit(txn)
                committed_model.clear()
                committed_model.update(txn_model)
            else:
                yield from db.abort(txn)

    kernel.spawn(runner())
    kernel.run()

    def read_back():
        txn = db.begin()
        state = {}
        for key in KEYS:
            value = yield from db.read(txn, "t", key)
            if value is not None:
                state[key] = value
        yield from db.commit(txn)
        return state

    proc = kernel.spawn(read_back())
    kernel.run()
    assert proc.value == committed_model


@given(script=scripts(), seed=st.integers(min_value=0, max_value=5000))
@settings(max_examples=30, deadline=None)
def test_engine_matches_model_across_crash(script, seed):
    """Same equivalence, but with a crash+recovery after the script."""
    kernel = Kernel(seed=seed)
    db = LocalDatabase(kernel, "model-site", LocalDBConfig(buffer_capacity=4))

    def init():
        yield from db.create_table("t", 4)

    kernel.spawn(init())
    kernel.run()
    committed_model: dict = {}

    def runner():
        for ops, should_commit in script:
            txn = db.begin()
            txn_model = dict(committed_model)
            for kind, key, value in ops:
                try:
                    if kind == "read":
                        yield from db.read(txn, "t", key)
                    elif kind == "write":
                        yield from db.write(txn, "t", key, value)
                    elif kind == "increment":
                        yield from db.increment(txn, "t", key, value)
                    elif kind == "insert":
                        yield from db.insert(txn, "t", key, value)
                    elif kind == "delete":
                        yield from db.delete(txn, "t", key)
                except (KeyNotFound, DuplicateKey):
                    pass
                model_apply(txn_model, kind, key, value)
            if should_commit:
                yield from db.commit(txn)
                committed_model.clear()
                committed_model.update(txn_model)
            else:
                yield from db.abort(txn)

    kernel.spawn(runner())
    kernel.run()
    db.crash()
    kernel.spawn(db.restart())
    kernel.run()

    def read_back():
        txn = db.begin()
        state = {}
        for key in KEYS:
            value = yield from db.read(txn, "t", key)
            if value is not None:
                state[key] = value
        yield from db.commit(txn)
        return state

    proc = kernel.spawn(read_back())
    kernel.run()
    assert proc.value == committed_model
