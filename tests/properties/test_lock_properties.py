"""Property-based tests of the lock managers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.localdb.locks import LockManager, LockMode
from repro.mlt.conflicts import SEMANTIC_TABLE, L1Mode
from repro.mlt.locks import SemanticLockManager
from repro.sim.kernel import Kernel

l0_modes = st.sampled_from([LockMode.SHARED, LockMode.EXCLUSIVE])
l1_modes = st.sampled_from([L1Mode.SHARED, L1Mode.INCREMENT, L1Mode.EXCLUSIVE])
resources = st.sampled_from(["r1", "r2"])
txn_names = st.sampled_from(["t1", "t2", "t3"])


@st.composite
def lock_scripts(draw):
    """Sequences of (txn, action) where action is acquire or release."""
    steps = draw(
        st.lists(
            st.tuples(
                txn_names,
                st.sampled_from(["acquire", "release"]),
                resources,
                l0_modes,
            ),
            min_size=1,
            max_size=15,
        )
    )
    return steps


def holders_consistent(manager: LockManager) -> bool:
    """No two holders of one resource have incompatible L0 modes."""
    from repro.localdb.locks import compatible

    for resource in list(manager._resources):
        holders = manager.holders_of(resource)
        items = list(holders.items())
        for i, (txn_a, mode_a) in enumerate(items):
            for txn_b, mode_b in items[i + 1:]:
                if not compatible(mode_a, mode_b):
                    return False
    return True


@given(script=lock_scripts(), seed=st.integers(min_value=0, max_value=999))
@settings(max_examples=60, deadline=None)
def test_l0_no_incompatible_coholders_ever(script, seed):
    kernel = Kernel(seed=seed)
    manager = LockManager(kernel, "s", default_timeout=30)
    violations = []

    def worker(txn, steps):
        for action, resource, mode in steps:
            try:
                if action == "acquire":
                    yield from manager.acquire(txn, resource, mode)
                else:
                    manager.release_all(txn)
            except Exception:
                manager.release_all(txn)
                return
            if not holders_consistent(manager):
                violations.append((txn, action, resource))
            yield 0.1
        manager.release_all(txn)

    by_txn: dict[str, list] = {}
    for txn, action, resource, mode in script:
        by_txn.setdefault(txn, []).append((action, resource, mode))
    for txn, steps in by_txn.items():
        kernel.spawn(worker(txn, steps))
    kernel.run(raise_failures=False)
    assert not violations


def l1_holders_consistent(manager: SemanticLockManager) -> bool:
    for resource in list(manager._resources):
        holders = manager.holders_of(resource)
        items = list(holders.items())
        for i, (txn_a, modes_a) in enumerate(items):
            for txn_b, modes_b in items[i + 1:]:
                for mode_a in modes_a:
                    for mode_b in modes_b:
                        if not manager.table.compatible(mode_a, mode_b):
                            return False
    return True


@given(
    script=st.lists(
        st.tuples(txn_names, resources, l1_modes), min_size=1, max_size=15
    ),
    seed=st.integers(min_value=0, max_value=999),
)
@settings(max_examples=60, deadline=None)
def test_l1_no_conflicting_coholders_ever(script, seed):
    kernel = Kernel(seed=seed)
    manager = SemanticLockManager(kernel, SEMANTIC_TABLE, default_timeout=30)
    violations = []

    def worker(txn, steps):
        for resource, mode in steps:
            try:
                yield from manager.acquire(txn, resource, mode)
            except Exception:
                manager.release_all(txn)
                return
            if not l1_holders_consistent(manager):
                violations.append((txn, resource, mode))
            yield 0.1
        manager.release_all(txn)

    by_txn: dict[str, list] = {}
    for txn, resource, mode in script:
        by_txn.setdefault(txn, []).append((resource, mode))
    for txn, steps in by_txn.items():
        kernel.spawn(worker(txn, steps))
    kernel.run(raise_failures=False)
    assert not violations


@given(
    script=st.lists(
        st.tuples(txn_names, resources, l1_modes), min_size=1, max_size=12
    ),
    seed=st.integers(min_value=0, max_value=999),
)
@settings(max_examples=40, deadline=None)
def test_l1_all_workers_terminate(script, seed):
    """With timeouts + deadlock detection nobody hangs forever."""
    kernel = Kernel(seed=seed)
    manager = SemanticLockManager(kernel, SEMANTIC_TABLE, default_timeout=20)
    finished = []

    def worker(txn, steps):
        for resource, mode in steps:
            try:
                yield from manager.acquire(txn, resource, mode)
            except Exception:
                break
            yield 1
        manager.release_all(txn)
        finished.append(txn)

    by_txn: dict[str, list] = {}
    for txn, resource, mode in script:
        by_txn.setdefault(txn, []).append((resource, mode))
    for txn, steps in by_txn.items():
        kernel.spawn(worker(txn, steps))
    kernel.run(raise_failures=False)
    assert len(finished) == len(by_txn)
