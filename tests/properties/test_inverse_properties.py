"""Property-based tests of the inverse-action algebra.

Core invariant of §3.3: applying an operation and then its inverse to
any state is the identity -- and for increments this holds even with
other increments interleaved in between (general commutativity).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mlt.actions import Operation, inverse_of

keys = st.sampled_from(["a", "b", "c"])
values = st.integers(min_value=-1000, max_value=1000)


def apply_op(state: dict, op: Operation) -> dict:
    """Pure interpreter of operations over a dict state."""
    state = dict(state)
    if op.kind == "read":
        return state
    if op.kind in ("write", "insert"):
        state[op.key] = op.value
        return state
    if op.kind == "delete":
        state.pop(op.key, None)
        return state
    if op.kind == "increment":
        state[op.key] = state.get(op.key, 0) + op.value
        return state
    raise AssertionError(op.kind)


@st.composite
def operations(draw, state_keys):
    kind = draw(st.sampled_from(["write", "increment", "insert", "delete", "read"]))
    key = draw(st.sampled_from(state_keys))
    if kind in ("write", "insert"):
        return Operation(kind, "t", key, draw(values))
    if kind == "increment":
        return Operation(kind, "t", key, draw(values))
    return Operation(kind, "t", key)


@st.composite
def states(draw):
    return {
        key: draw(values)
        for key in draw(st.sets(keys, min_size=0, max_size=3))
    }


@given(state=states(), op=operations(["a", "b", "c"]))
@settings(max_examples=200)
def test_inverse_restores_state(state, op):
    # Skip semantically invalid applications the engine would reject.
    if op.kind == "increment" and op.key not in state:
        return
    if op.kind == "delete" and op.key not in state:
        return
    if op.kind == "insert" and op.key in state:
        return
    before = state.get(op.key)
    after_state = apply_op(state, op)
    inverse = inverse_of(op, before)
    if inverse is None:
        assert op.kind == "read"
        assert after_state == state
        return
    restored = apply_op(after_state, inverse)
    assert restored == state


@given(
    state=states(),
    delta1=values,
    delta2=values,
    key=keys,
)
@settings(max_examples=200)
def test_increment_inverse_commutes_with_interleaved_increments(
    state, delta1, delta2, key
):
    """inc(d1); inc(d2); inc(-d1) == inc(d2) -- the Figure 8 argument."""
    state = {**state, key: state.get(key, 0)}
    op1 = Operation("increment", "t", key, delta1)
    interloper = Operation("increment", "t", key, delta2)
    inverse = inverse_of(op1, state.get(key))
    with_undo = apply_op(apply_op(apply_op(state, op1), interloper), inverse)
    without_op1 = apply_op(state, interloper)
    assert with_undo == without_op1


@given(state=states(), op=operations(["a", "b", "c"]))
@settings(max_examples=100)
def test_inverse_of_inverse_is_original_effect(state, op):
    """Undoing the undo re-applies the operation's effect."""
    if op.kind == "read":
        return
    if op.kind == "increment" and op.key not in state:
        return
    if op.kind == "delete" and op.key not in state:
        return
    if op.kind == "insert" and op.key in state:
        return
    before = state.get(op.key)
    once = apply_op(state, op)
    inverse = inverse_of(op, before)
    undone = apply_op(once, inverse)
    inverse_before = undone.get(op.key)
    inverse_of_inverse = inverse_of(inverse, once.get(op.key))
    if inverse_of_inverse is not None:
        redone = apply_op(apply_op(once, inverse), inverse_of_inverse)
        assert redone == once
