"""Figure-conformance tests: the executable versions of Figures 1-7.

Each test replays the state/message choreography of one figure of the
paper against the trace log and asserts its defining properties.
"""

from repro.mlt.actions import increment
from tests.protocols.conftest import build_fed, submit_and_run

TRANSFER = [increment("t0", "x", -10), increment("t1", "x", 10)]


def message_kinds(fed, dest_filter=None):
    records = fed.kernel.trace.select(category="message")
    if dest_filter:
        records = [r for r in records if r.details.get("dest") == dest_filter]
    return [r.subject for r in records]


# ---------------------------------------------------------------------------
# Figure 1: architecture -- star communication
# ---------------------------------------------------------------------------


def test_figure1_no_local_to_local_messages():
    fed = build_fed("before", granularity="per_action", n_sites=3)
    submit_and_run(fed, TRANSFER + [increment("t2", "x", 0)])
    for record in fed.kernel.trace.select(category="message"):
        endpoints = {record.site, record.details["dest"]}
        assert "central" in endpoints, f"local-to-local message: {record}"


def test_figure1_one_connection_per_site():
    fed = build_fed("2pc", n_sites=3)
    submit_and_run(fed, TRANSFER)
    # Every site only ever talks to the central node.
    for record in fed.kernel.trace.select(category="message"):
        if record.site != "central":
            assert record.details["dest"] == "central"


# ---------------------------------------------------------------------------
# Figure 2: 2PC states and messages
# ---------------------------------------------------------------------------


def test_figure2_message_sequence():
    fed = build_fed("2pc")
    submit_and_run(fed, TRANSFER)
    kinds_to_s0 = message_kinds(fed, dest_filter="s0")
    # prepare then the decision, in that order.
    assert kinds_to_s0.index("prepare") < kinds_to_s0.index("decide")
    kinds_from_s0 = [
        r.subject for r in fed.kernel.trace.select(category="message", site="s0")
    ]
    assert "vote" in kinds_from_s0      # the "ready" message
    assert "finished" in kinds_from_s0  # after following the decision


def test_figure2_global_states():
    fed = build_fed("2pc")
    submit_and_run(fed, TRANSFER)
    states = [
        r.details["state"]
        for r in fed.kernel.trace.select(category="gtxn_state", site="central")
    ]
    assert states == ["running", "inquire", "waiting_to_commit", "committed"]


def test_figure2_local_states_pass_ready():
    fed = build_fed("2pc")
    submit_and_run(fed, TRANSFER)
    states = [
        r.details["state"]
        for r in fed.kernel.trace.select(category="txn_state", site="s0")
        if r.details.get("gtxn")
    ]
    assert states == ["running", "ready", "committed"]


# ---------------------------------------------------------------------------
# Figure 3: 2PC decides in the MIDDLE of local commitment
# ---------------------------------------------------------------------------


def test_figure3_decision_between_ready_and_committed():
    fed = build_fed("2pc")
    submit_and_run(fed, TRANSFER)
    decision = fed.kernel.trace.first(category="gtxn_decision").time
    for site in ("s0", "s1"):
        ready = next(
            r.time
            for r in fed.kernel.trace.select(category="txn_state", site=site)
            if r.details.get("state") == "ready"
        )
        committed = next(
            r.time
            for r in fed.kernel.trace.select(category="txn_state", site=site)
            if r.details.get("state") == "committed" and r.details.get("gtxn")
        )
        assert ready < decision < committed


# ---------------------------------------------------------------------------
# Figure 4 / Figure 5: commit-after -- decision BEFORE local commitment
# ---------------------------------------------------------------------------


def test_figure5_decision_precedes_local_commits():
    fed = build_fed("after")
    submit_and_run(fed, TRANSFER)
    decision = fed.kernel.trace.first(category="gtxn_decision").time
    local_commits = [
        r.time
        for r in fed.kernel.trace.select(category="txn_state")
        if r.details.get("state") == "committed" and r.details.get("gtxn")
    ]
    assert local_commits and all(t > decision for t in local_commits)


def test_figure4_redo_loop_on_erroneous_abort():
    from repro.faults import FaultInjector

    fed = build_fed("after")
    FaultInjector(fed).erroneous_aborts_after_ready(1.0, sites=["s0"], delay=0.2)
    outcome = submit_and_run(fed, TRANSFER)
    assert outcome.committed
    # The double arrow of Figure 4: an aborted run followed by a redo
    # that reaches the committed final state.
    s0_states = [
        (r.details["state"], r.details.get("reason"))
        for r in fed.kernel.trace.select(category="txn_state", site="s0")
        if r.details.get("gtxn")
    ]
    assert ("aborted", "system") in s0_states        # erroneous abort
    assert s0_states[-1][0] == "committed"           # valid final state
    assert len(fed.kernel.trace.select(category="redo")) == 1


def test_figure4_no_ready_state_used():
    fed = build_fed("after")
    submit_and_run(fed, TRANSFER)
    states = [
        r.details["state"]
        for r in fed.kernel.trace.select(category="txn_state")
    ]
    assert "ready" not in states


# ---------------------------------------------------------------------------
# Figure 6 / Figure 7: commit-before -- decision AFTER local commitment
# ---------------------------------------------------------------------------


def test_figure7_local_commits_precede_decision():
    fed = build_fed("before", granularity="per_action")
    submit_and_run(fed, TRANSFER)
    decision = fed.kernel.trace.first(category="gtxn_decision").time
    local_commits = [
        r.time
        for r in fed.kernel.trace.select(category="txn_state")
        if r.details.get("state") == "committed" and r.details.get("gtxn")
    ]
    assert local_commits and all(t <= decision for t in local_commits)


def test_figure6_undo_via_inverse_transaction():
    fed = build_fed("before", granularity="per_action")
    outcome = submit_and_run(fed, TRANSFER, intends_abort=True)
    assert not outcome.committed
    # "Even though a successful inverse transaction is in the committed
    # state, the whole local transaction is in the aborted state":
    # committed inverse transactions exist for both sites...
    undo_commits = [
        r
        for r in fed.kernel.trace.select(category="txn_state")
        if r.details.get("state") == "committed"
        and str(r.details.get("gtxn", "")).endswith("!undo")
    ]
    assert len(undo_commits) == 2
    # ...and the data is back to the initial state.
    assert fed.peek("s0", "t0", "x") == 100
    assert fed.peek("s1", "t1", "x") == 100


def test_figure6_states_waiting_to_abort():
    fed = build_fed("before", granularity="per_action")
    submit_and_run(fed, TRANSFER, intends_abort=True)
    states = [
        r.details["state"]
        for r in fed.kernel.trace.select(category="gtxn_state", site="central")
    ]
    assert states == ["running", "waiting_to_abort", "aborted"]


def test_figure6_per_site_inquire_phase():
    fed = build_fed("before", granularity="per_site")
    submit_and_run(fed, TRANSFER)
    states = [
        r.details["state"]
        for r in fed.kernel.trace.select(category="gtxn_state", site="central")
    ]
    assert states == ["running", "inquire", "committed"]
    # The final-state inquiry is carried by prepare messages (Figure 6).
    assert "prepare" in message_kinds(fed, dest_filter="s0")
