"""Three-phase commit extension."""

from repro.core.invariants import atomicity_report
from repro.mlt.actions import increment
from tests.protocols.conftest import build_fed, submit_and_run

TRANSFER = [increment("t0", "x", -10), increment("t1", "x", 10)]


def test_commit_happy_path():
    fed = build_fed("3pc")
    outcome = submit_and_run(fed, TRANSFER)
    assert outcome.committed
    assert fed.peek("s0", "t0", "x") == 90
    assert fed.peek("s1", "t1", "x") == 110
    assert atomicity_report(fed).ok


def test_intended_abort():
    fed = build_fed("3pc")
    outcome = submit_and_run(fed, TRANSFER, intends_abort=True)
    assert not outcome.committed
    assert fed.peek("s0", "t0", "x") == 100


def test_pre_commit_round_present():
    fed = build_fed("3pc")
    submit_and_run(fed, TRANSFER)
    kinds = [
        r.subject
        for r in fed.kernel.trace.select(category="message")
        if r.details.get("dest") == "s0"
    ]
    assert kinds.index("prepare") < kinds.index("pre_commit") < kinds.index("decide")


def test_more_messages_than_2pc():
    """The [DS 83] point: nonblocking-ness costs a whole round."""
    fed3 = build_fed("3pc")
    submit_and_run(fed3, TRANSFER)
    fed2 = build_fed("2pc")
    submit_and_run(fed2, TRANSFER)
    assert fed3.network.sent > fed2.network.sent
