"""Paxos Commit protocol: fast path, cost parity, abort paths.

Federation-level behaviour of ``coordinator_mode="paxos"``: the
ballot-0 fast path commits through the acceptor group (never through
the classic decision log), the §4-style cost claim holds -- with F=0
exactly one forced write per committed transaction, the same as 2PC's
one decision force -- and aborts stay off the acceptor round entirely
(presumed abort needs no consensus).
"""

import pytest

from repro.core.gtm import GTMConfig
from repro.core.invariants import atomicity_report, serializability_ok
from repro.core.protocols.base import make_protocol
from repro.core.protocols.paxos_commit import PaxosCommit
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment

N_SITES = 3
N_KEYS = 8


def build(
    protocol: str = "paxos",
    coordinators: int = 1,
    paxos_f: int = 1,
    seed: int = 7,
) -> Federation:
    preparable = protocol in ("2pc", "2pc-pa", "3pc", "paxos")
    specs = [
        SiteSpec(
            f"s{i}",
            tables={f"t{i}": {f"k{j}": 100 for j in range(N_KEYS)}},
            preparable=preparable,
        )
        for i in range(N_SITES)
    ]
    return Federation(
        specs,
        FederationConfig(
            seed=seed,
            latency=1.0,
            coordinators=coordinators,
            paxos_f=paxos_f,
            gtm=GTMConfig(protocol=protocol, granularity="per_site"),
        ),
    )


def workload(n: int = 6, spacing: float = 2.0) -> list[dict]:
    return [
        {
            "operations": [
                increment(f"t{index % N_SITES}", f"k{index % N_KEYS}", -1),
                increment(f"t{(index + 1) % N_SITES}", f"k{index % N_KEYS}", 1),
            ],
            "name": f"G{index}",
            "delay": index * spacing,
        }
        for index in range(n)
    ]


def test_registry_builds_paxos_commit():
    protocol = make_protocol("paxos")
    assert isinstance(protocol, PaxosCommit)
    assert protocol.requires_prepare


@pytest.mark.parametrize("coordinators", [1, 2])
@pytest.mark.parametrize("f", [0, 1, 2])
def test_happy_path_replicates_every_decision(f, coordinators):
    fed = build(coordinators=coordinators, paxos_f=f)
    outcomes = fed.run_transactions(workload())
    assert all(outcome.committed for outcome in outcomes)
    assert atomicity_report(fed).ok
    assert serializability_ok(fed)
    committed = sum(gtm.committed for gtm in fed.coordinators)
    assert committed == 6
    # One consensus instance per transaction: every acceptor of the
    # 2F+1 group forced exactly one ballot-0 acceptance per commit.
    assert fed.acceptors.total_forces() == committed * (2 * f + 1)
    # The classic decision log is bypassed entirely.
    assert all(gtm.decision_log.forces == 0 for gtm in fed.coordinators)


def test_f0_forced_write_parity_with_2pc():
    """The paper-cost claim: F=0 Paxos Commit forces like 2PC.

    Widely-spaced transactions (no group-decision batching) make the
    per-transaction force counts directly comparable: one hardened
    decision record under 2PC, one single-acceptor ballot-0 acceptance
    under Paxos Commit.
    """
    paxos = build(paxos_f=0)
    paxos_outcomes = paxos.run_transactions(workload(spacing=40.0))
    two_pc = build(protocol="2pc")
    reference_outcomes = two_pc.run_transactions(workload(spacing=40.0))
    assert all(o.committed for o in paxos_outcomes + reference_outcomes)
    assert paxos.acceptors.total_forces() == 6
    assert two_pc.gtm.decision_log.forces == 6
    assert paxos.acceptors.total_forces() == two_pc.gtm.decision_log.forces


def test_intended_abort_skips_the_acceptor_round():
    fed = build(paxos_f=1)
    batch = dict(workload(n=1)[0], intends_abort=True)
    outcomes = fed.run_transactions([batch])
    assert not outcomes[0].committed
    assert outcomes[0].reason == "intended abort"
    # Presumed abort: no consensus instance was ever started.
    assert fed.acceptors.total_forces() == 0
    assert fed.acceptors.decision_for("G0") is None
    assert atomicity_report(fed).ok


def test_acceptor_metrics_surface_in_federation_report():
    fed = build(paxos_f=1)
    fed.run_transactions(workload(n=2))
    report = fed.metrics()
    assert report["acceptors"]["acceptors"] == 3
    assert report["acceptors"]["acceptor_forces"] == 2 * 3
    # Shard 0 folds acceptor forces into its decision-force figure, so
    # pool-level dashboards keep one "decision durability cost" number.
    assert fed.gtm.metrics()["decision_forces"] == 2 * 3


def test_readonly_decomposition_still_commits():
    """Single-site transactions ride the same paxos path unharmed."""
    fed = build(paxos_f=1)
    outcomes = fed.run_transactions([
        {
            "operations": [increment("t0", "k0", -1), increment("t0", "k1", 1)],
            "name": "G0",
        }
    ])
    assert outcomes[0].committed
    assert fed.acceptors.decision_for("G0") == "commit"
