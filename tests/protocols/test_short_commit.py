"""Short-Commit: 2PC with early lock release at commit-phase start."""

from repro.core.invariants import atomicity_report
from repro.faults import FaultInjector
from repro.localdb.txn import LocalAbortReason
from repro.mlt.actions import increment, read, write
from tests.protocols.conftest import build_fed, submit_and_run


def test_commit_happy_path_downgrades_write_locks():
    fed = build_fed("short_commit")
    outcome = submit_and_run(
        fed, [increment("t0", "x", -10), increment("t1", "x", 10)]
    )
    assert outcome.committed
    assert fed.peek("s0", "t0", "x") == 90
    assert fed.peek("s1", "t1", "x") == 110
    assert atomicity_report(fed).ok
    for engine in fed.engines.values():
        assert engine.metrics()["lock_downgrades"] > 0


def test_control_flow_is_two_phase():
    """Messages and states are exactly 2PC's; only the lock window
    shrinks."""
    fed = build_fed("short_commit")
    submit_and_run(fed, [increment("t0", "x", 1), increment("t1", "x", 1)])
    counts = fed.network.message_counts()
    assert counts["prepare"] == 2 and counts["vote"] == 2
    assert counts["decide"] == 2 and counts["finished"] == 2
    for site in ("s0", "s1"):
        states = [
            r.details["state"]
            for r in fed.kernel.trace.select(category="txn_state", site=site)
            if r.details.get("gtxn", "").startswith("G")
        ]
        assert states == ["running", "ready", "committed"]


def test_shorter_exclusive_hold_than_two_phase():
    """The point of the protocol: exclusive hold time drops because the
    write locks turn shared for the decision round-trip."""
    ops = [write("t0", "x", 1), write("t1", "y", 2)]
    hold = {}
    for protocol in ("short_commit", "2pc"):
        fed = build_fed(protocol)
        submit_and_run(fed, ops)
        hold[protocol] = sum(
            engine.metrics()["lock_exclusive_hold_time"]
            for engine in fed.engines.values()
        )
    assert hold["short_commit"] < hold["2pc"]


def _exposure_run(protocol: str):
    """T0 writes both sites; its decide to s0 is cut so the commit phase
    stays open, and a reader of the exposed page is submitted the moment
    s0 votes.  Returns (fed, T0 process, reader process)."""
    fed = build_fed(protocol, msg_timeout=10, poll=5.0)
    injector = FaultInjector(fed)
    # Drop the central -> s0 decide (sent ~9.4); heal in time for the
    # status-poll redrive, leaving a wide open commit window at s0.
    injector.partition_link("central", "s0", at=9.0, heal_after=8.0)
    reader = []

    def hook(gtxn, txn_id, proto):
        if not reader:
            reader.append(fed.submit([read("t0", "x")], name="R"))

    fed.comms["s0"].on_ready_voted.append(hook)
    p0 = fed.submit([write("t0", "x", 999), write("t1", "y", 1)], name="T0")
    fed.run()
    return fed, p0, reader[0]


def test_reader_proceeds_against_prepared_value():
    """A reader lands inside the commit window: with the write lock
    downgraded it reads the prepared value without waiting, and its own
    commit is held back until the exposer resolved (commit dependency)."""
    fed, p0, pr = _exposure_run("short_commit")
    assert p0.value.committed and pr.value.committed
    assert pr.value.reads == {"t0['x']": 999}
    assert fed.engines["s0"].metrics()["lock_waits"] == 0
    assert fed.engines["s0"].aborts.get(LocalAbortReason.CASCADE, 0) == 0
    # The retroactively-clean dirty read never becomes durable before
    # its exposer: the dependency orders the commits.
    assert pr.value.finish_time >= p0.value.finish_time


def test_same_reader_blocks_under_plain_two_phase():
    """Control: identical scenario under 2PC makes the reader wait out
    the exclusive lock -- the contrast Short-Commit exists to remove."""
    fed, p0, pr = _exposure_run("2pc")
    assert p0.value.committed and pr.value.committed
    assert pr.value.reads == {"t0['x']": 999}  # same value, later
    assert fed.engines["s0"].metrics()["lock_waits"] >= 1
    assert fed.engines["s0"].metrics()["lock_downgrades"] == 0


def test_exposer_abort_cascades_dependent_reader():
    """§3.3 in miniature: the global decision turns out to be abort
    after a reader consumed the exposed value -- the rollback restores
    the before-image and cascade-aborts the reader (retriable)."""
    fed = build_fed("short_commit", msg_timeout=10, poll=5.0, retry_attempts=0)
    injector = FaultInjector(fed)
    # Cut central -> s1 before the prepares go out (sent ~6.4): s1's
    # vote never arrives, so the decision is abort -- but s0 already
    # voted and short-released.
    injector.partition_link("central", "s1", at=6.0, heal_after=40.0)
    reader = []

    def hook(gtxn, txn_id, proto):
        if not reader:
            reader.append(fed.submit([read("t0", "x")], name="R"))

    fed.comms["s0"].on_ready_voted.append(hook)
    p0 = fed.submit([write("t0", "x", 999), write("t1", "y", 1)], name="T0")
    fed.run()
    assert not p0.value.committed
    assert not reader[0].value.committed
    assert reader[0].value.retriable  # cascade aborts are retriable
    assert fed.engines["s0"].aborts.get(LocalAbortReason.CASCADE, 0) >= 1
    assert fed.peek("s0", "t0", "x") == 100  # before-image restored
    assert fed.engines["s0"].undo_clobbers == []  # guard held
    assert atomicity_report(fed).ok


def test_writer_stays_blocked_until_resolution():
    """The downgrade (vs release) half: a writer of the exposed page
    waits on the still-held shared lock, so an abort can never clobber
    a foreign committed write."""
    fed = build_fed("short_commit", msg_timeout=10, poll=5.0)
    FaultInjector(fed).partition_link("central", "s0", at=9.0, heal_after=8.0)
    writer = []

    def hook(gtxn, txn_id, proto):
        if not writer:
            writer.append(fed.submit([write("t0", "x", 555)], name="W"))

    fed.comms["s0"].on_ready_voted.append(hook)
    p0 = fed.submit([write("t0", "x", 999), write("t1", "y", 1)], name="T0")
    fed.run()
    assert p0.value.committed and writer[0].value.committed
    assert fed.peek("s0", "t0", "x") == 555  # T0 before W
    assert writer[0].value.finish_time >= p0.value.finish_time
    assert fed.engines["s0"].metrics()["lock_waits"] >= 1
    assert fed.engines["s0"].undo_clobbers == []


def test_release_all_mutant_lets_the_writer_through():
    """The seeded mutant in isolation: releasing (not downgrading) the
    write locks lets a concurrent writer interleave with prepared
    values -- the hazard the checker's ``short_release_all`` canary
    turns into a caught dirty_undo violation."""
    fed = build_fed("short_commit", msg_timeout=10, poll=5.0)
    fed.gtm.protocol.release_all_locks = True
    FaultInjector(fed).partition_link("central", "s0", at=9.0, heal_after=8.0)
    writer = []

    def hook(gtxn, txn_id, proto):
        if not writer:
            writer.append(fed.submit([write("t0", "x", 555)], name="W"))

    fed.comms["s0"].on_ready_voted.append(hook)
    p0 = fed.submit([write("t0", "x", 999), write("t1", "y", 1)], name="T0")
    fed.run()
    assert p0.value.committed and writer[0].value.committed
    assert fed.engines["s0"].metrics()["lock_waits"] == 0  # no blocking
