"""Helpers for protocol-level tests."""

from __future__ import annotations


from repro.core.gtm import GTMConfig
from repro.core.protocols import preparable_protocols
from repro.integration.federation import Federation, FederationConfig, SiteSpec


def build_fed(
    protocol: str,
    granularity: str = "per_site",
    seed: int = 7,
    n_sites: int = 2,
    log_placement: str = "indb",
    msg_timeout: float = 30.0,
    poll: float = 5.0,
    retry_attempts: int = 5,
    **site_kwargs,
) -> Federation:
    """Two-site (by default) federation with one funded table per site."""
    preparable = protocol in preparable_protocols()
    specs = [
        SiteSpec(
            f"s{i}",
            tables={f"t{i}": {"x": 100, "y": 50}},
            preparable=preparable,
            **site_kwargs,
        )
        for i in range(n_sites)
    ]
    return Federation(
        specs,
        FederationConfig(
            seed=seed,
            log_placement=log_placement,
            gtm=GTMConfig(
                protocol=protocol,
                granularity=granularity,
                msg_timeout=msg_timeout,
                status_poll_interval=poll,
                retry_attempts=retry_attempts,
            ),
        ),
    )


def submit_and_run(fed, operations, **kwargs):
    process = fed.submit(operations, **kwargs)
    fed.run()
    return process.value


def submit_delayed(fed, operations, delay, name=None, **kwargs):
    """Submit ``operations`` after ``delay`` (deterministic ordering)."""

    def later():
        yield delay
        outcome = yield fed.submit(operations, name=name, **kwargs)
        return outcome

    return fed.kernel.spawn(later(), name=f"delayed:{name}")
