"""Logless one-phase commit ("To Vote Before Decide")."""

from repro.core.invariants import atomicity_report
from repro.faults import FaultInjector
from repro.localdb.txn import LocalAbortReason
from repro.mlt.actions import increment
from tests.protocols.conftest import build_fed, submit_and_run


def test_commit_happy_path():
    fed = build_fed("one_phase")
    outcome = submit_and_run(
        fed, [increment("t0", "x", -10), increment("t1", "x", 10)]
    )
    assert outcome.committed
    assert outcome.redo_executions == 0
    assert fed.peek("s0", "t0", "x") == 90
    assert fed.peek("s1", "t1", "x") == 110
    assert atomicity_report(fed).ok


def test_no_voting_round_votes_ride_on_data_replies():
    """The defining property: no prepare/vote messages at all -- the yes
    vote is piggybacked on each site's last ``op_done`` reply."""
    fed = build_fed("one_phase")
    piggybacked = []
    for comm in fed.comms.values():
        comm.on_ready_voted.append(
            lambda gtxn, txn_id, protocol: piggybacked.append(protocol)
        )
    submit_and_run(fed, [increment("t0", "x", -10), increment("t1", "x", 10)])
    counts = fed.network.message_counts()
    assert "prepare" not in counts
    assert counts["decide"] == 2
    assert counts["finished"] == 2
    assert piggybacked == ["one_phase", "one_phase"]


def test_fewer_forces_than_two_phase():
    """Logless: no participant ready record, so one force (the local
    commit) where 2PC pays two."""
    ops = [increment("t0", "x", -10), increment("t1", "x", 10)]
    forces = {}
    for protocol in ("one_phase", "2pc"):
        fed = build_fed(protocol)
        submit_and_run(fed, ops)
        forces[protocol] = {
            site: engine.disk.log_forces for site, engine in fed.engines.items()
        }
    for site in forces["one_phase"]:
        assert forces["one_phase"][site] < forces["2pc"][site]


def test_locals_stay_running_through_the_vote():
    """No ready state: the erroneous-abort window stays open until the
    decision arrives (inherited from commit-after)."""
    fed = build_fed("one_phase")
    submit_and_run(fed, [increment("t0", "x", 1)])
    states = [
        r.details["state"]
        for r in fed.kernel.trace.select(category="txn_state", site="s0")
        if r.details.get("gtxn", "").startswith("G")
    ]
    assert "ready" not in states
    assert states[-1] == "committed"


def test_intended_abort_is_cheap():
    fed = build_fed("one_phase")
    outcome = submit_and_run(
        fed,
        [increment("t0", "x", -10), increment("t1", "x", 10)],
        intends_abort=True,
    )
    assert not outcome.committed
    assert outcome.undo_executions == 0
    assert outcome.redo_executions == 0
    assert fed.peek("s0", "t0", "x") == 100
    assert fed.gtm.redo_log.entries == {}


def test_erroneous_abort_triggers_redo():
    """§3.2 obligation inherited from commit-after: a local that aborts
    after its piggybacked vote is repeated until it commits."""
    fed = build_fed("one_phase")
    injector = FaultInjector(fed)
    injector.erroneous_aborts_after_ready(probability=1.0, sites=["s0"], delay=0.2)
    outcome = submit_and_run(
        fed, [increment("t0", "x", -10), increment("t1", "x", 10)]
    )
    assert outcome.committed
    assert outcome.redo_executions == 1
    assert fed.peek("s0", "t0", "x") == 90  # applied exactly once
    assert atomicity_report(fed).ok


def test_redo_log_cleared_after_finish():
    fed = build_fed("one_phase")
    submit_and_run(fed, [increment("t0", "x", 1)])
    assert fed.gtm.redo_log.entries == {}


def test_crash_during_commit_phase_resolved_by_marker():
    """In-doubt local after a crash: the replicated decision read path
    (here the durable commit marker) disambiguates -- exactly once."""
    fed = build_fed("one_phase", msg_timeout=10, poll=5.0)
    injector = FaultInjector(fed)
    injector.crash_site("s0", at=5.5, recover_after=50.0)
    outcome = submit_and_run(fed, [increment("t0", "x", 7)])
    assert outcome.committed
    assert fed.peek("s0", "t0", "x") == 107
    assert atomicity_report(fed).ok


def _run_with_dead_last_site(presume: bool):
    """Kill s1's subtransaction before its (last) operation, so its
    piggybacked vote never exists."""
    fed = build_fed("one_phase", retry_attempts=0)
    fed.gtm.protocol.presume_commit = presume

    def killer():
        yield 3.0
        comm = fed.comms["s1"]
        if comm._subtxns:
            txn_id = next(iter(comm._subtxns.values()))
            fed.engines["s1"].force_abort(txn_id, LocalAbortReason.SYSTEM)

    fed.kernel.spawn(killer())
    outcome = submit_and_run(
        fed, [increment("t0", "x", 1)] * 3 + [increment("t1", "x", 5)]
    )
    return fed, outcome


def test_missing_vote_aborts():
    """Without the vote there is no 1PC: the global aborts cleanly."""
    fed, outcome = _run_with_dead_last_site(presume=False)
    assert not outcome.committed
    assert outcome.retriable
    assert fed.peek("s0", "t0", "x") == 100
    assert fed.peek("s1", "t1", "x") == 100
    assert atomicity_report(fed).ok


def test_presume_commit_mutant_loses_the_dead_sites_effect():
    """The seeded mutant in isolation: presuming a missing vote is a yes
    commits a global whose s1 subtransaction never executed."""
    fed, outcome = _run_with_dead_last_site(presume=True)
    assert outcome.committed
    assert fed.peek("s1", "t1", "x") == 100  # the lost effect
    report = atomicity_report(fed)
    assert not report.ok
    assert any(v.kind == "lost_execution" for v in report.violations)
