"""Targeted single-message-loss edges for each protocol phase."""

from repro.core.invariants import atomicity_report
from repro.faults import FaultInjector
from repro.mlt.actions import increment
from tests.protocols.conftest import build_fed, submit_and_run

TRANSFER = [increment("t0", "x", -10), increment("t1", "x", 10)]


def test_lost_finish_subtxn_self_heals_at_inquiry():
    """Commit-before per-site: the finish message is lost; the
    final-state inquiry finds the subtransaction still running (all
    actions done) and commits it itself."""
    fed = build_fed("before", granularity="per_site", msg_timeout=12, poll=4)
    FaultInjector(fed).lose_next_message("finish_subtxn")
    outcome = submit_and_run(fed, TRANSFER)
    assert outcome.committed
    assert fed.peek("s0", "t0", "x") == 90
    assert fed.peek("s1", "t1", "x") == 110
    assert atomicity_report(fed).ok


def test_lost_local_outcome_reply_resolved_by_inquiry():
    """The local commit happened but its reply vanished; the inquiry
    (prepare protocol=before) reports committed via the marker."""
    fed = build_fed("before", granularity="per_site", msg_timeout=12, poll=4)
    FaultInjector(fed).lose_next_message("local_outcome")
    outcome = submit_and_run(fed, TRANSFER)
    assert outcome.committed
    assert fed.peek("s0", "t0", "x") == 90
    assert atomicity_report(fed).ok


def test_lost_decide_under_commit_after_status_running_resend():
    """The decision is lost; status says 'running'; the coordinator
    re-sends the decision instead of redoing."""
    fed = build_fed("after", msg_timeout=10, poll=4)
    FaultInjector(fed).lose_next_message("decide")
    outcome = submit_and_run(fed, TRANSFER)
    assert outcome.committed
    assert outcome.redo_executions == 0  # no redo: just a resend
    assert fed.peek("s0", "t0", "x") == 90
    assert atomicity_report(fed).ok


def test_lost_redo_result_not_double_applied():
    """The redo committed but its result reply is lost; the retried
    redo answers from the marker without re-executing."""
    fed = build_fed("after", msg_timeout=10, poll=4)
    injector = FaultInjector(fed)
    injector.erroneous_aborts_after_ready(1.0, sites=["s0"], delay=0.2)
    injector.lose_next_message("redo_result")
    outcome = submit_and_run(fed, TRANSFER)
    assert outcome.committed
    assert fed.peek("s0", "t0", "x") == 90  # exactly once
    assert atomicity_report(fed).ok


def test_lost_prepare_times_out_to_abort_2pc():
    fed = build_fed("2pc", msg_timeout=10, retry_attempts=0)
    FaultInjector(fed).lose_next_message("prepare")
    outcome = submit_and_run(fed, TRANSFER)
    assert not outcome.committed
    assert fed.peek("s0", "t0", "x") == 100
    assert fed.peek("s1", "t1", "x") == 100


def test_lost_execute_l0_reply_recovered_from_marker():
    """The action committed; its reply is lost; ambiguity resolution
    recovers value and before-image from the durable marker row."""
    fed = build_fed("before", granularity="per_action", msg_timeout=10, poll=4)
    FaultInjector(fed).lose_next_message("l0_done")
    outcome = submit_and_run(fed, TRANSFER)
    assert outcome.committed
    assert fed.peek("s0", "t0", "x") == 90  # not 80: no double decrement
    assert atomicity_report(fed).ok
