"""Presumed-abort 2PC with the read-only optimization ([ML 83])."""

from repro.core.invariants import atomicity_report
from repro.mlt.actions import increment, read
from tests.protocols.conftest import build_fed, submit_and_run

TRANSFER = [increment("t0", "x", -10), increment("t1", "x", 10)]


def test_update_transaction_commits():
    fed = build_fed("2pc-pa")
    outcome = submit_and_run(fed, TRANSFER)
    assert outcome.committed
    assert fed.peek("s0", "t0", "x") == 90
    assert fed.peek("s1", "t1", "x") == 110
    assert atomicity_report(fed).ok


def test_readonly_participant_skips_phase_two():
    """The read-only site votes 'readonly' and gets no decide message."""
    fed = build_fed("2pc-pa")
    outcome = submit_and_run(fed, [increment("t0", "x", 5), read("t1", "x")])
    assert outcome.committed
    decides_to_s1 = [
        r for r in fed.kernel.trace.select(category="message")
        if r.subject == "decide" and r.details.get("dest") == "s1"
    ]
    assert decides_to_s1 == []
    decides_to_s0 = [
        r for r in fed.kernel.trace.select(category="message")
        if r.subject == "decide" and r.details.get("dest") == "s0"
    ]
    assert len(decides_to_s0) == 1


def test_fully_readonly_transaction_single_round():
    fed = build_fed("2pc-pa")
    outcome = submit_and_run(fed, [read("t0", "x"), read("t1", "y")])
    assert outcome.committed
    assert outcome.reads == {"t0['x']": 100, "t1['y']": 50}
    kinds = fed.network.message_counts()
    assert "decide" not in kinds  # nobody needed phase 2


def test_fewer_messages_than_plain_2pc_with_readonly_site():
    operations = [increment("t0", "x", 5), read("t1", "x")]
    fed_pa = build_fed("2pc-pa")
    submit_and_run(fed_pa, operations)
    fed_2pc = build_fed("2pc")
    submit_and_run(fed_2pc, operations)
    assert fed_pa.network.sent < fed_2pc.network.sent


def test_presumed_abort_sends_no_ack_round():
    fed = build_fed("2pc-pa")
    outcome = submit_and_run(fed, TRANSFER, intends_abort=True)
    assert not outcome.committed
    assert fed.peek("s0", "t0", "x") == 100
    # Aborts are fire-and-forget: the decide goes out, but the protocol
    # does not wait for (or count on) finished replies.
    fed_plain = build_fed("2pc")
    submit_and_run(fed_plain, TRANSFER, intends_abort=True)
    assert fed.network.sent < fed_plain.network.sent


def test_readonly_site_releases_locks_at_vote():
    """After voting readonly, the site's locks are gone: a second
    transaction can write there while the first awaits phase 2."""
    from tests.protocols.conftest import submit_delayed

    fed = build_fed("2pc-pa")
    p1 = fed.submit([read("t1", "x"), increment("t0", "x", 5)], name="RO")
    p2 = submit_delayed(fed, [increment("t1", "x", 7)], delay=1.0, name="W")
    fed.run()
    assert p1.value.committed and p2.value.committed
    assert fed.peek("s1", "t1", "x") == 107
    assert atomicity_report(fed).ok


def test_abort_vote_still_possible():
    fed = build_fed("2pc-pa", retry_attempts=0)
    outcome = submit_and_run(
        fed, [increment("t0", "missing", 1), increment("t1", "x", 1)]
    )
    assert not outcome.committed
    assert fed.peek("s1", "t1", "x") == 100
