"""Golden byte-identity: the protocol family must not perturb the seed.

Adding one-phase and Short-Commit touched shared machinery -- the
protocol registry, the comm layer's reply path, the recovery manager's
redo sweep, the lock manager's hold accounting.  Every **seed**
protocol must still produce bit-for-bit the execution it produced
before that code existed: same outcomes, same trace-record stream,
same event/message counts, same RNG stream states.

Each digest below was pinned by running :func:`fingerprint` against
the pre-one-phase/Short-Commit tree (the tip this change is stacked
on).  Any drift means a seed protocol's execution is no longer
byte-identical and is a regression by definition.

The scenario deliberately includes a site crash/recovery cycle and
intended aborts so the commit, abort and recovery paths are all inside
the fingerprint -- but no stochastic erroneous-abort injection, whose
latent orphan-adoption redo bug this change intentionally fixes.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.bench.harness import protocol_federation
from repro.core.gtm import GTMConfig
from repro.faults import FaultInjector
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.net.message import reset_message_ids
from repro.workloads.banking import transfer

SEED_PROTOCOLS = [
    ("before", "per_action"),
    ("before", "per_site"),
    ("after", "per_site"),
    ("2pc", "per_site"),
    ("2pc-pa", "per_site"),
    ("3pc", "per_site"),
    ("paxos", "per_site"),
    ("saga", "per_action"),
    ("altruistic", "per_action"),
]

#: Hardcoded on purpose (not ``preparable_protocols()``): the pinning
#: run against the seed tree predates the registry helper, and a golden
#: harness must stay runnable against the tree it pins.
PREPARABLE = frozenset({"2pc", "2pc-pa", "3pc", "paxos"})

#: Pinned against the seed tree; see the module docstring.
GOLDEN_DIGESTS: dict[str, str] = {
    "before/per_action": "46398df66597aaa80c125c23f88ebacbf7884cdda117f77bf9a5c07fda41ad43",
    "before/per_site": "6eb954d8794f11d197fa6401222e8c9dd8a1a08690ed0087a57aa6ce6aef11ab",
    "after/per_site": "6da9bac033e40631cdc5943a564decc63a2fe8c4bac942adfab79e1f6871a01b",
    "2pc/per_site": "22ec6b588f1a78a174524234f61f0fd8f1ba37f801d5b8761627207ed92f7dd6",
    "2pc-pa/per_site": "d781275844c1cc8999d40690126195e1606f324b104515d13db52174ab206ada",
    "3pc/per_site": "af1b75f804a4cbe0676a02fc3ba33ab4af8162c4294950be084da89372b369ee",
    "paxos/per_site": "539ef0f70389adf7e940fbf9d25c7f9ce7c055ca0dc2518548640c305b73ff01",
    "saga/per_action": "46398df66597aaa80c125c23f88ebacbf7884cdda117f77bf9a5c07fda41ad43",
    "altruistic/per_action": "0fc6affe299d9d5164d46dbeedafbed4e66b4fe5a6dbf38813e166f162e11cf0",
}


def fingerprint(protocol: str, granularity: str) -> str:
    reset_message_ids()
    specs = [
        SiteSpec(
            f"bank_{i}",
            tables={f"accounts_{i}": {f"acct{i}_{j}": 100 for j in range(3)}},
            preparable=protocol in PREPARABLE,
        )
        for i in range(2)
    ]
    if protocol == "paxos":
        # The seed-era bench harness predates paxos enrolment; build it
        # directly so the fingerprint harness runs against the seed tree.
        fed = Federation(
            specs,
            FederationConfig(
                seed=97, gtm=GTMConfig(protocol=protocol, granularity=granularity)
            ),
        )
    else:
        fed = protocol_federation(
            protocol, specs, granularity=granularity, seed=97, msg_timeout=25
        )
    fed.gtm.config.status_poll_interval = 8
    injector = FaultInjector(fed)
    injector.crash_site("bank_1", at=60.0, recover_after=50.0)
    rng = fed.kernel.rng.stream("golden")
    batches = [
        {
            "operations": transfer(rng, 2, 3),
            "intends_abort": index % 4 == 3,
            "delay": index * 17.0,
        }
        for index in range(8)
    ]
    outcomes = fed.run_transactions(batches)
    blob = json.dumps(
        {
            "outcomes": [outcome.committed for outcome in outcomes],
            "trace": [str(record) for record in fed.kernel.trace.records],
            "events": fed.kernel.events_dispatched,
            "end": fed.kernel.now,
            "sent": fed.network.sent,
            "rng_probe": fed.kernel.rng.stream("golden-probe").random(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


@pytest.mark.parametrize("protocol,granularity", SEED_PROTOCOLS)
def test_seed_protocol_byte_identical(protocol, granularity):
    digest = fingerprint(protocol, granularity)
    assert digest == GOLDEN_DIGESTS[f"{protocol}/{granularity}"], (
        f"{protocol}/{granularity}: execution drifted from the fingerprint "
        "pinned before the one-phase/Short-Commit family landed"
    )
