"""Local commitment after the global decision (§3.2)."""


from repro.core.invariants import atomicity_report, serializability_ok
from repro.faults import FaultInjector
from repro.localdb.txn import LocalAbortReason
from repro.mlt.actions import increment, read, write
from tests.protocols.conftest import build_fed, submit_and_run


def test_commit_happy_path_no_redo():
    fed = build_fed("after")
    outcome = submit_and_run(fed, [increment("t0", "x", -10), increment("t1", "x", 10)])
    assert outcome.committed
    assert outcome.redo_executions == 0
    assert fed.peek("s0", "t0", "x") == 90
    assert fed.peek("s1", "t1", "x") == 110


def test_locals_stay_running_through_the_vote():
    """No ready state: the vote is answered from the running state."""
    fed = build_fed("after")
    submit_and_run(fed, [increment("t0", "x", 1)])
    states = [
        r.details["state"]
        for r in fed.kernel.trace.select(category="txn_state", site="s0")
        if r.details.get("gtxn", "").startswith("G")
    ]
    assert "ready" not in states  # unlike 2PC
    assert states[-1] == "committed"


def test_intended_abort_is_cheap():
    """All locals are still running: plain aborts, no redo/undo (§4.3)."""
    fed = build_fed("after")
    outcome = submit_and_run(
        fed, [increment("t0", "x", -10), increment("t1", "x", 10)], intends_abort=True
    )
    assert not outcome.committed
    assert outcome.undo_executions == 0
    assert outcome.redo_executions == 0
    assert fed.peek("s0", "t0", "x") == 100


def test_erroneous_abort_triggers_redo():
    """The §3.2 scenario: a local dies after voting ready; it is repeated
    until committed, preserving global atomicity."""
    fed = build_fed("after")
    injector = FaultInjector(fed)
    injector.erroneous_aborts_after_ready(probability=1.0, sites=["s0"], delay=0.2)
    outcome = submit_and_run(fed, [increment("t0", "x", -10), increment("t1", "x", 10)])
    assert outcome.committed
    assert outcome.redo_executions == 1
    assert fed.peek("s0", "t0", "x") == 90  # applied exactly once
    assert atomicity_report(fed).ok


def test_redo_trace_emitted():
    fed = build_fed("after")
    FaultInjector(fed).erroneous_aborts_after_ready(1.0, sites=["s0"], delay=0.2)
    submit_and_run(fed, [increment("t0", "x", 1)])
    assert len(fed.kernel.trace.select(category="redo")) == 1


def test_both_sites_erroneously_aborted():
    fed = build_fed("after")
    FaultInjector(fed).erroneous_aborts_after_ready(1.0, delay=0.2)
    outcome = submit_and_run(fed, [increment("t0", "x", -10), increment("t1", "x", 10)])
    assert outcome.committed
    assert outcome.redo_executions == 2
    assert fed.peek("s0", "t0", "x") == 90
    assert fed.peek("s1", "t1", "x") == 110


def test_crash_during_commit_phase_resolved_by_marker():
    """Site crashes around the decision: the durable commit marker
    disambiguates, so the subtransaction applies exactly once."""
    fed = build_fed("after", msg_timeout=10, poll=5.0)
    injector = FaultInjector(fed)
    injector.crash_site("s0", at=5.5, recover_after=50.0)
    outcome = submit_and_run(fed, [increment("t0", "x", 7)])
    assert outcome.committed
    assert fed.peek("s0", "t0", "x") == 107
    assert atomicity_report(fed).ok


def test_serialization_order_pinned_across_redo():
    """§3.2 serializability requirement: a conflicting global transaction
    cannot slip between the first execution and the redo."""
    from tests.protocols.conftest import submit_delayed

    fed = build_fed("after")
    FaultInjector(fed).erroneous_aborts_after_ready(1.0, sites=["s0"], delay=0.2)
    p1 = fed.submit([read("t0", "x"), increment("t1", "x", 1)], name="T1")
    # T2 arrives after T1 holds its L1 S lock on (t0, x); it must wait
    # until T1 fully committed -- even across T1's redo at s0.
    p2 = submit_delayed(fed, [write("t0", "x", 0)], delay=5.0, name="T2")
    fed.run()
    assert p1.value.committed and p2.value.committed
    assert serializability_ok(fed)
    assert p1.value.reads["t0['x']"] == 100  # T1 serialized before T2
    assert p2.value.finish_time >= p1.value.finish_time
    assert fed.peek("s0", "t0", "x") == 0


def test_vote_abort_when_local_died_before_prepare():
    fed = build_fed("after")
    # Kill s1's subtransaction while the global txn is still executing
    # on s0 (the increments below each take a while).
    def killer():
        yield 3.0
        comm = fed.comms["s1"]
        if comm._subtxns:
            txn_id = next(iter(comm._subtxns.values()))
            fed.engines["s1"].force_abort(txn_id, LocalAbortReason.SYSTEM)

    fed.kernel.spawn(killer())
    outcome = submit_and_run(
        fed,
        [increment("t1", "x", 5)] + [increment("t0", "x", 1)] * 5,
    )
    # Either the op failed mid-flight or the vote was abort; both end in
    # a retried (and eventually committed) or cleanly aborted run.
    assert atomicity_report(fed).ok


def test_redo_log_cleared_after_finish():
    fed = build_fed("after")
    submit_and_run(fed, [increment("t0", "x", 1)])
    assert fed.gtm.redo_log.entries == {}


def test_volatile_placement_can_double_apply():
    """EXP-A2's mechanism: with a volatile commit log, a crash between
    local commit and propagation makes the protocol guess; redo after an
    actually-committed transaction double-applies the increment."""
    fed = build_fed("after", log_placement="volatile", msg_timeout=10, poll=5.0)
    injector = FaultInjector(fed)
    # Crash right after the decide message commits locally but before
    # the reply reaches the coordinator.
    injector.crash_site("s0", at=6.2, recover_after=50.0)
    outcome = submit_and_run(fed, [increment("t0", "x", 7)])
    assert outcome.committed
    report = atomicity_report(fed)
    final = fed.peek("s0", "t0", "x")
    # Depending on exact crash timing the commit either did not land
    # (clean redo, 107) or did land (double apply, 114, flagged).
    if final == 114:
        assert not report.ok
        assert report.violations[0].kind == "double_execution"
    else:
        assert final == 107
