"""Cross-protocol conformance matrix, driven by the protocol registry.

Every protocol in :data:`repro.core.protocols.PROTOCOL_REGISTRY` is
swept through the same battery:

* the **invariant battery** (conservation, global atomicity, and --
  for the protocols that promise it -- global serializability) under a
  faulted transfer workload;
* a **crash-at-every-force** sweep (one controlled execution per
  durable log-force boundary, each crashing the forcing site) for
  every checker-enrolled protocol;
* a **chaos level-1 pass** (the default EXP-R1 fault schedule) for
  every chaos-enrolled protocol.

The parametrizations are derived from the registry itself, and the
consumer-completeness test pins every derived protocol list to it, so
registering a protocol without harness coverage -- or wiring a harness
list by hand and letting it drift -- fails loudly right here.
"""

import pytest

from repro.check import CheckSpec, explore_crash_points
from repro.check.scenarios import CHECK_PROTOCOLS, MUTANTS
from repro.core.invariants import atomicity_report, serializability_ok
from repro.core.protocols import (
    PROTOCOL_REGISTRY,
    chaos_matrix_protocols,
    check_matrix,
    make_protocol,
    preparable_protocols,
    protocol_info,
    protocol_mutants,
    protocol_names,
    redo_window_protocols,
)
from repro.faults import CHAOS_PROTOCOLS, ChaosSpec, FaultInjector, run_chaos
from repro.bench.harness import protocol_federation
from repro.integration.federation import SiteSpec
from repro.workloads.banking import total_balance, transfer

from tests.faults.test_chaos import assert_chaos_ok

# ----------------------------------------------------------------------
# Registry <-> consumer completeness (no hand-maintained list may drift)
# ----------------------------------------------------------------------


def test_every_registered_protocol_loads_and_instantiates():
    for name in protocol_names():
        info = protocol_info(name)
        protocol = make_protocol(name)
        assert protocol.name == name
        assert protocol.requires_prepare == info.requires_prepare
        assert type(protocol) is info.load()


def test_no_consumer_list_misses_a_protocol():
    from repro.__main__ import PROTOCOLS

    assert tuple(PROTOCOLS) == protocol_names()
    assert CHECK_PROTOCOLS == check_matrix()
    assert CHAOS_PROTOCOLS == chaos_matrix_protocols()
    assert {name for name, _g in CHECK_PROTOCOLS} == {
        info.name for info in PROTOCOL_REGISTRY.values() if info.in_check
    }
    assert {name for name, _g in CHAOS_PROTOCOLS} == {
        info.name for info in PROTOCOL_REGISTRY.values() if info.in_chaos
    }
    # Every registry-declared mutant is a valid ``repro.check --mutant``.
    for mutant, target in protocol_mutants().items():
        assert mutant in MUTANTS
        assert target in PROTOCOL_REGISTRY
        CheckSpec(protocol=target, granularity=protocol_info(target).granularity,
                  mutant=mutant)  # must validate


def test_registry_mutants_reject_wrong_protocol():
    for mutant, target in protocol_mutants().items():
        other = next(n for n in protocol_names() if n != target)
        with pytest.raises(ValueError):
            CheckSpec(protocol=other, mutant=mutant)


def test_cli_accepts_every_checkable_protocol_and_mutant():
    from repro.check.cli import build_parser

    parser = build_parser()
    for protocol, _granularity in CHECK_PROTOCOLS:
        args = parser.parse_args(["--protocol", protocol])
        assert args.protocol == protocol
    for mutant in MUTANTS:
        target = protocol_mutants().get(mutant, "before")
        args = parser.parse_args(["--protocol", target, "--mutant", mutant])
        assert args.mutant == mutant


# ----------------------------------------------------------------------
# Invariant battery: every protocol, faults on
# ----------------------------------------------------------------------


def run_battery(protocol: str, granularity: str, seed: int):
    specs = [
        SiteSpec(
            f"bank_{i}",
            tables={f"accounts_{i}": {f"acct{i}_{j}": 100 for j in range(3)}},
            preparable=protocol in preparable_protocols(),
        )
        for i in range(2)
    ]
    fed = protocol_federation(
        protocol, specs, granularity=granularity, seed=seed, msg_timeout=25
    )
    fed.gtm.config.status_poll_interval = 8
    injector = FaultInjector(fed)
    if protocol in redo_window_protocols():
        injector.erroneous_aborts_after_ready(probability=0.4, delay=0.3)
    injector.crash_site("bank_1", at=60.0, recover_after=50.0)
    rng = fed.kernel.rng.stream("conformance")
    batches = [
        {
            "operations": transfer(rng, 2, 3),
            "intends_abort": rng.random() < 0.2,
            "delay": rng.uniform(0, 120),
        }
        for _ in range(6)
    ]
    fed.run_transactions(batches)
    return fed


@pytest.mark.parametrize("protocol", protocol_names())
def test_invariant_battery(protocol):
    info = protocol_info(protocol)
    fed = run_battery(protocol, info.granularity, seed=311)
    assert total_balance(fed, 2, 3) == 600, "conservation broken"
    report = atomicity_report(fed)
    assert report.ok, report.violations
    if info.serializable:
        assert serializability_ok(fed)


# ----------------------------------------------------------------------
# Crash at every durable force boundary: every checkable protocol
# ----------------------------------------------------------------------


@pytest.mark.parametrize("protocol,granularity", check_matrix())
def test_crash_at_every_force_keeps_invariants(protocol, granularity):
    spec = CheckSpec(protocol=protocol, granularity=granularity)
    report = explore_crash_points(spec)
    assert report.crash_points > 0, "a committing run must force site logs"
    assert report.executions == report.crash_points
    assert report.violation_count == 0, (
        report.counterexample and report.counterexample.violations
    )


# ----------------------------------------------------------------------
# Chaos level 1 (the default EXP-R1 schedule): every chaos protocol
# ----------------------------------------------------------------------


@pytest.mark.parametrize("protocol,granularity", chaos_matrix_protocols())
def test_chaos_level1(protocol, granularity):
    result = run_chaos(
        ChaosSpec(protocol=protocol, granularity=granularity, seed=13)
    )
    assert_chaos_ok(result)
    assert result.committed + result.aborted == result.spec.n_txns
