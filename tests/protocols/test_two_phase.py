"""Two-phase commit baseline (§3.1)."""

from repro.core.invariants import atomicity_report
from repro.faults import FaultInjector
from repro.mlt.actions import increment, read, write
from tests.protocols.conftest import build_fed, submit_and_run


def test_commit_happy_path():
    fed = build_fed("2pc")
    outcome = submit_and_run(
        fed, [increment("t0", "x", -10), increment("t1", "x", 10)]
    )
    assert outcome.committed
    assert fed.peek("s0", "t0", "x") == 90
    assert fed.peek("s1", "t1", "x") == 110
    assert atomicity_report(fed).ok


def test_intended_abort_no_undo_needed():
    fed = build_fed("2pc")
    outcome = submit_and_run(
        fed, [increment("t0", "x", -10), increment("t1", "x", 10)], intends_abort=True
    )
    assert not outcome.committed
    assert outcome.undo_executions == 0
    assert fed.peek("s0", "t0", "x") == 100
    assert fed.peek("s1", "t1", "x") == 100


def test_logic_error_aborts_globally():
    fed = build_fed("2pc")
    outcome = submit_and_run(
        fed,
        [increment("t0", "x", -10), increment("t1", "missing_key", 10)],
    )
    assert not outcome.committed
    assert fed.peek("s0", "t0", "x") == 100  # first site rolled back too


def test_standard_interface_cannot_run_2pc():
    """Pointing 2PC at unchangeable TMs fails at prepare -- the premise."""
    fed = build_fed("2pc", msg_timeout=10)
    # Override: plain (standard) interfaces despite the 2PC protocol.
    from repro.localdb.interface import StandardTMInterface

    for site, comm in fed.comms.items():
        comm.interface = StandardTMInterface(fed.engines[site])
        fed.interfaces[site] = comm.interface
    process = fed.submit([increment("t0", "x", -10), increment("t1", "x", 10)])
    fed.kernel.run(raise_failures=False)
    outcome = process.value
    assert not outcome.committed
    assert fed.peek("s0", "t0", "x") == 100
    assert fed.peek("s1", "t1", "x") == 100


def test_locals_pass_through_ready_state():
    fed = build_fed("2pc")
    submit_and_run(fed, [increment("t0", "x", 1), increment("t1", "x", 1)])
    for site in ("s0", "s1"):
        states = [
            r.details["state"]
            for r in fed.kernel.trace.select(category="txn_state", site=site)
            if r.details.get("gtxn", "").startswith("G")
        ]
        assert states == ["running", "ready", "committed"]


def test_participant_crash_before_vote_aborts():
    fed = build_fed("2pc", msg_timeout=15, retry_attempts=0)
    injector = FaultInjector(fed)
    injector.crash_site("s1", at=1.0, recover_after=200.0)
    outcome = submit_and_run(fed, [increment("t0", "x", -10), increment("t1", "x", 10)])
    assert not outcome.committed
    assert fed.peek("s0", "t0", "x") == 100


def test_in_doubt_participant_learns_decision_after_crash():
    """Crash after prepare: recovery reinstates the ready transaction and
    the coordinator's retried decision commits it."""
    fed = build_fed("2pc", msg_timeout=10, poll=5.0)

    # Crash s1 the moment it votes ready, recover shortly after.
    def hook(gtxn, txn_id, protocol):
        fed.kernel._schedule(0.1, fed.nodes["s1"].crash)
        fed.restart_site("s1", at=fed.kernel.now + 40)

    fed.comms["s1"].on_ready_voted.append(hook)
    outcome = submit_and_run(fed, [increment("t0", "x", -10), increment("t1", "x", 10)])
    assert outcome.committed
    assert fed.peek("s1", "t1", "x") == 110
    assert atomicity_report(fed).ok


def test_read_results_returned():
    fed = build_fed("2pc")
    outcome = submit_and_run(fed, [read("t0", "x"), read("t1", "y")])
    assert outcome.committed
    assert outcome.reads == {"t0['x']": 100, "t1['y']": 50}


def test_locks_held_until_global_end():
    """A second conflicting transaction waits for the full first txn."""
    from tests.protocols.conftest import submit_delayed

    fed = build_fed("2pc")
    p1 = fed.submit([write("t0", "x", 1), write("t1", "x", 1)], name="GA")
    p2 = submit_delayed(fed, [write("t0", "x", 2)], delay=2.0, name="GB")
    fed.run()
    o1, o2 = p1.value, p2.value
    assert o1.committed and o2.committed
    # GB's single write could not finish before GA released s0 locks.
    assert o2.finish_time >= o1.finish_time - fed.config.latency * 4
    assert fed.peek("s0", "t0", "x") == 2  # GA before GB
