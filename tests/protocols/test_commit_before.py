"""Local commitment before the global decision (§3.3 / §4)."""

import pytest

from repro.core.invariants import atomicity_report, serializability_ok
from repro.faults import FaultInjector
from repro.mlt.actions import delete, increment, insert, read, write
from tests.protocols.conftest import build_fed, submit_and_run


@pytest.mark.parametrize("granularity", ["per_action", "per_site"])
def test_commit_happy_path(granularity):
    fed = build_fed("before", granularity=granularity)
    outcome = submit_and_run(fed, [increment("t0", "x", -10), increment("t1", "x", 10)])
    assert outcome.committed
    assert fed.peek("s0", "t0", "x") == 90
    assert fed.peek("s1", "t1", "x") == 110
    assert atomicity_report(fed).ok


@pytest.mark.parametrize("granularity", ["per_action", "per_site"])
def test_intended_abort_undoes_committed_locals(granularity):
    """§4.3: the drawback -- an intended abort needs inverse transactions
    because the locals already committed."""
    fed = build_fed("before", granularity=granularity)
    outcome = submit_and_run(
        fed, [increment("t0", "x", -10), increment("t1", "x", 10)], intends_abort=True
    )
    assert not outcome.committed
    assert outcome.undo_executions >= 1
    assert fed.peek("s0", "t0", "x") == 100
    assert fed.peek("s1", "t1", "x") == 100
    assert atomicity_report(fed).ok


def test_local_locks_released_before_global_end():
    """The paper's headline concurrency claim: a second transaction can
    use a local object as soon as the first's L0 action committed, long
    before the first global transaction finishes elsewhere."""
    fed = build_fed("before", granularity="per_action", n_sites=2)
    # T1: quick increment at s0, then a long tail of work at s1.
    t1_ops = [increment("t0", "x", 1)] + [increment("t1", "y", 1)] * 8
    # T2: a single increment on the same object at s0 (commutes at L1).
    p1 = fed.submit(t1_ops, name="T1")
    p2 = fed.submit([increment("t0", "x", 1)], name="T2")
    fed.run()
    o1, o2 = p1.value, p2.value
    assert o1.committed and o2.committed
    assert o2.finish_time < o1.finish_time  # T2 did not wait for T1
    assert fed.peek("s0", "t0", "x") == 102


def test_undo_restores_all_operation_kinds():
    fed = build_fed("before", granularity="per_action")
    outcome = submit_and_run(
        fed,
        [
            write("t0", "x", 777),
            insert("t0", "new", 5),
            delete("t0", "y"),
            increment("t1", "x", 3),
        ],
        intends_abort=True,
    )
    assert not outcome.committed
    assert fed.peek("s0", "t0", "x") == 100
    assert fed.peek("s0", "t0", "new") is None
    assert fed.peek("s0", "t0", "y") == 50
    assert fed.peek("s1", "t1", "x") == 100


def test_logic_error_mid_transaction_undoes_prefix():
    fed = build_fed("before", granularity="per_action")
    outcome = submit_and_run(
        fed,
        [increment("t0", "x", -10), increment("t1", "missing", 10)],
    )
    assert not outcome.committed
    assert outcome.undo_executions == 1
    assert fed.peek("s0", "t0", "x") == 100
    assert atomicity_report(fed).ok


def test_per_site_mixed_outcome_triggers_undo():
    """One local commits, another aborts autonomously before finishing:
    the committed one must be undone (Figure 6)."""
    fed = build_fed("before", granularity="per_site")
    from repro.localdb.txn import LocalAbortReason

    def killer():
        # Abort s1's subtransaction while the global txn still works on s0.
        yield 4.0
        comm = fed.comms["s1"]
        for txn_id in comm._subtxns.values():
            fed.engines["s1"].force_abort(txn_id, LocalAbortReason.SYSTEM)

    fed.kernel.spawn(killer())
    outcome = submit_and_run(
        fed,
        [increment("t1", "x", 5)] + [increment("t0", "x", 1)] * 6,
    )
    assert atomicity_report(fed).ok
    # Whatever the outcome (abort, or commit after the GTM retried), the
    # net effect must be consistent on both sites.
    if not outcome.committed:
        assert fed.peek("t1" and "s1", "t1", "x") == 100


def test_crash_site_protocol_waits_for_recovery():
    """§3.3: 'the global transaction manager has to wait for the local
    system to come up again'."""
    fed = build_fed("before", granularity="per_action", msg_timeout=10, poll=5.0)
    injector = FaultInjector(fed)
    injector.crash_site("s1", at=3.0, recover_after=80.0)
    outcome = submit_and_run(fed, [increment("t0", "x", -10), increment("t1", "x", 10)])
    assert outcome.committed
    assert outcome.finish_time > 80.0  # waited out the outage
    assert fed.peek("s1", "t1", "x") == 110
    assert atomicity_report(fed).ok


def test_crash_during_undo_retries_inverse():
    fed = build_fed("before", granularity="per_action", msg_timeout=10, poll=5.0)
    injector = FaultInjector(fed)
    injector.crash_site("s0", at=8.0, recover_after=60.0)
    outcome = submit_and_run(
        fed, [increment("t0", "x", -10), increment("t1", "x", 10)], intends_abort=True
    )
    assert not outcome.committed
    assert fed.peek("s0", "t0", "x") == 100
    assert fed.peek("s1", "t1", "x") == 100
    assert atomicity_report(fed).ok


def test_commit_point_before_decision_in_trace():
    """Figure 7: local commits precede the global decision."""
    fed = build_fed("before", granularity="per_action")
    submit_and_run(fed, [increment("t0", "x", 1), increment("t1", "x", 1)])
    decision = fed.kernel.trace.first(category="gtxn_decision")
    local_commits = [
        r.time
        for r in fed.kernel.trace.select(category="txn_state")
        if r.details.get("state") == "committed" and r.details.get("gtxn")
    ]
    assert local_commits and all(t <= decision.time for t in local_commits)


def test_semantic_locks_allow_concurrent_increments():
    fed = build_fed("before", granularity="per_action")
    p1 = fed.submit([increment("t0", "x", 1)] * 3, name="T1")
    p2 = fed.submit([increment("t0", "x", 1)] * 3, name="T2")
    fed.run()
    assert p1.value.committed and p2.value.committed
    assert fed.peek("s0", "t0", "x") == 106
    assert serializability_ok(fed)
    # Neither waited on the other at L1 (increment locks commute).
    assert fed.gtm.l1.waits == 0


def test_rw_ablation_serializes_increments():
    """EXP-A1: with the read/write table the same workload serializes."""
    from repro.core.gtm import GTMConfig
    from repro.integration.federation import Federation, FederationConfig, SiteSpec
    from repro.mlt.conflicts import READ_WRITE_TABLE

    fed = Federation(
        [SiteSpec("s0", tables={"t0": {"x": 100}})],
        FederationConfig(
            seed=7,
            gtm=GTMConfig(
                protocol="before", granularity="per_action", l1_table=READ_WRITE_TABLE
            ),
        ),
    )
    p1 = fed.submit([increment("t0", "x", 1)] * 3, name="T1")
    p2 = fed.submit([increment("t0", "x", 1)] * 3, name="T2")
    fed.run()
    assert p1.value.committed and p2.value.committed
    assert fed.gtm.l1.waits > 0  # somebody had to queue
    assert fed.peek("s0", "t0", "x") == 106


def test_undo_log_cleared_after_finish():
    fed = build_fed("before", granularity="per_action")
    submit_and_run(fed, [increment("t0", "x", 1)], intends_abort=True)
    assert fed.gtm.undo_log.records == []


def test_erroneous_l0_aborts_retried_inside_cm():
    """Two actions hammering the same page cause L0 conflicts; the local
    communication manager retries them transparently."""
    fed = build_fed("before", granularity="per_action")
    procs = [
        fed.submit([increment("t0", "x", 1), increment("t0", "y", 1)], name=f"T{i}")
        for i in range(6)
    ]
    fed.run()
    assert all(p.value.committed for p in procs)
    assert fed.peek("s0", "t0", "x") == 106
    assert fed.peek("s0", "t0", "y") == 56
    assert atomicity_report(fed).ok
