"""Buffer pool: LRU, steal/no-force, WAL rule, pins."""

import pytest

from repro.errors import BufferPoolFull
from repro.storage.buffer import BufferPool
from repro.storage.disk import StableDisk
from repro.storage.page import Page
from repro.storage.wal import BeginRecord, LogManager, UpdateRecord
from tests.conftest import run


def make_pool(kernel, capacity=2):
    disk = StableDisk(kernel, "s")
    log = LogManager(disk)
    return disk, log, BufferPool(disk, log, capacity=capacity)


def seed_pages(kernel, disk, n):
    def proc():
        for i in range(n):
            yield from disk.write_page(Page(i, "t"))

    run(kernel, proc())


def test_fetch_miss_then_hit(kernel):
    disk, _, pool = make_pool(kernel)
    seed_pages(kernel, disk, 1)

    def proc():
        yield from pool.fetch(0)
        yield from pool.fetch(0)
        return pool.hits, pool.misses

    assert run(kernel, proc()) == (1, 1)


def test_lru_eviction_of_clean_page(kernel):
    disk, _, pool = make_pool(kernel, capacity=2)
    seed_pages(kernel, disk, 3)

    def proc():
        yield from pool.fetch(0)
        yield from pool.fetch(1)
        yield from pool.fetch(2)  # evicts page 0 (LRU)
        return pool.resident(0), pool.resident(1), pool.resident(2)

    assert run(kernel, proc()) == (False, True, True)


def test_fetch_refreshes_lru_position(kernel):
    disk, _, pool = make_pool(kernel, capacity=2)
    seed_pages(kernel, disk, 3)

    def proc():
        yield from pool.fetch(0)
        yield from pool.fetch(1)
        yield from pool.fetch(0)  # page 0 becomes most recent
        yield from pool.fetch(2)  # evicts page 1
        return pool.resident(0), pool.resident(1)

    assert run(kernel, proc()) == (True, False)


def test_dirty_eviction_writes_back(kernel):
    disk, _, pool = make_pool(kernel, capacity=1)
    seed_pages(kernel, disk, 2)

    def proc():
        page = yield from pool.fetch(0)
        page.put("k", "dirty", lsn=0)
        pool.mark_dirty(0)
        yield from pool.fetch(1)  # forces eviction of dirty page 0
        stable = disk.stable_page(0)
        return stable.get("k")

    assert run(kernel, proc()) == "dirty"


def test_wal_rule_forces_log_before_flush(kernel):
    disk, log, pool = make_pool(kernel, capacity=1)
    seed_pages(kernel, disk, 2)

    def proc():
        log.append(lambda lsn: BeginRecord(lsn=lsn, txn_id="t", prev_lsn=0))
        record = log.append(
            lambda lsn: UpdateRecord(
                lsn=lsn, txn_id="t", prev_lsn=1,
                table="t", key="k", before=None, after=1, page_id=0,
            )
        )
        page = yield from pool.fetch(0)
        page.put("k", 1, record.lsn)
        pool.mark_dirty(0)
        yield from pool.fetch(1)  # eviction must force the log first
        return log.flushed_lsn >= record.lsn

    assert run(kernel, proc()) is True


def test_pinned_pages_never_evicted(kernel):
    disk, _, pool = make_pool(kernel, capacity=1)
    seed_pages(kernel, disk, 2)

    def proc():
        yield from pool.fetch(0)
        pool.pin(0)
        yield from pool.fetch(1)

    with pytest.raises(BufferPoolFull):
        run(kernel, proc())


def test_unpin_allows_eviction(kernel):
    disk, _, pool = make_pool(kernel, capacity=1)
    seed_pages(kernel, disk, 2)

    def proc():
        yield from pool.fetch(0)
        pool.pin(0)
        pool.unpin(0)
        yield from pool.fetch(1)
        return pool.resident(1)

    assert run(kernel, proc()) is True


def test_flush_all_cleans_dirty_set(kernel):
    disk, _, pool = make_pool(kernel, capacity=4)
    seed_pages(kernel, disk, 3)

    def proc():
        for i in range(3):
            page = yield from pool.fetch(i)
            page.put("k", i, lsn=0)
            pool.mark_dirty(i)
        yield from pool.flush_all()
        return [disk.stable_page(i).get("k") for i in range(3)]

    assert run(kernel, proc()) == [0, 1, 2]
    assert not any(pool.is_dirty(i) for i in range(3))


def test_crash_clears_frames(kernel):
    disk, _, pool = make_pool(kernel, capacity=4)
    seed_pages(kernel, disk, 2)

    def proc():
        page = yield from pool.fetch(0)
        page.put("k", "volatile", lsn=0)
        pool.mark_dirty(0)

    run(kernel, proc())
    pool.crash()
    assert not pool.resident(0)
    assert disk.stable_page(0).get("k") is None  # never flushed


def test_capacity_must_be_positive(kernel):
    disk = StableDisk(kernel, "s")
    log = LogManager(disk)
    with pytest.raises(ValueError):
        BufferPool(disk, log, capacity=0)
