"""Write-ahead log manager."""

from repro.storage.disk import StableDisk
from repro.storage.wal import (
    BeginRecord,
    CommitRecord,
    LogManager,
    UpdateRecord,
)
from tests.conftest import run


def make_log(kernel):
    disk = StableDisk(kernel, "s")
    return disk, LogManager(disk)


def append_begin(log, txn_id="t1"):
    return log.append(lambda lsn: BeginRecord(lsn=lsn, txn_id=txn_id, prev_lsn=0))


def test_lsns_monotonic_from_one(kernel):
    _, log = make_log(kernel)
    records = [append_begin(log, f"t{i}") for i in range(3)]
    assert [r.lsn for r in records] == [1, 2, 3]


def test_record_at_returns_appended_record(kernel):
    _, log = make_log(kernel)
    record = append_begin(log)
    assert log.record_at(record.lsn) is record


def test_force_moves_tail_to_disk(kernel):
    disk, log = make_log(kernel)
    append_begin(log)
    append_begin(log, "t2")

    def proc():
        yield from log.force()

    run(kernel, proc())
    assert [r.lsn for r in disk.stable_log()] == [1, 2]
    assert log.flushed_lsn == 2
    assert log.tail_records() == []


def test_partial_force_up_to_lsn(kernel):
    disk, log = make_log(kernel)
    for i in range(4):
        append_begin(log, f"t{i}")

    def proc():
        yield from log.force(2)

    run(kernel, proc())
    assert [r.lsn for r in disk.stable_log()] == [1, 2]
    assert [r.lsn for r in log.tail_records()] == [3, 4]


def test_force_already_flushed_is_noop(kernel):
    disk, log = make_log(kernel)
    append_begin(log)

    def proc():
        yield from log.force()
        before = disk.log_forces
        yield from log.force()  # nothing new
        return before, disk.log_forces

    before, after = run(kernel, proc())
    assert before == after == 1


def test_crash_drops_tail_keeps_stable(kernel):
    disk, log = make_log(kernel)
    append_begin(log, "stable")

    def proc():
        yield from log.force()

    run(kernel, proc())
    append_begin(log, "volatile")
    log.crash()
    assert [r.txn_id for r in disk.stable_log()] == ["stable"]
    assert log.tail_records() == []


def test_rebuild_after_crash_continues_lsns(kernel):
    disk, log = make_log(kernel)
    append_begin(log)
    append_begin(log, "t2")

    def proc():
        yield from log.force()

    run(kernel, proc())
    append_begin(log, "lost")  # never forced
    log.crash()
    log.rebuild_after_crash()
    assert log.next_lsn == 3  # the lost record's LSN is reused
    record = append_begin(log, "after")
    assert record.lsn == 3
    assert log.record_at(1).lsn == 1  # index rebuilt from stable log


def test_update_record_images():
    record = UpdateRecord(
        lsn=1, txn_id="t", prev_lsn=0,
        table="acc", key="x", before=None, after=5, page_id=2,
    )
    assert record.before is None  # insert encoding
    delete = UpdateRecord(
        lsn=2, txn_id="t", prev_lsn=1,
        table="acc", key="x", before=5, after=None, page_id=2,
    )
    assert delete.after is None  # delete encoding


def test_commit_record_chain(kernel):
    _, log = make_log(kernel)
    begin = append_begin(log)
    commit = log.append(
        lambda lsn: CommitRecord(lsn=lsn, txn_id="t1", prev_lsn=begin.lsn)
    )
    assert commit.prev_lsn == begin.lsn
