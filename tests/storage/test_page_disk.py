"""Pages and the simulated stable disk."""

import pytest

from repro.errors import PageNotFound, SiteCrashed
from repro.storage.disk import StableDisk, StorageConfig
from repro.storage.page import Page
from tests.conftest import run


def test_page_put_get_remove():
    page = Page(1, "t")
    page.put("k", 10, lsn=5)
    assert page.get("k") == 10
    assert "k" in page
    assert page.page_lsn == 5
    page.remove("k", lsn=7)
    assert page.get("k") is None
    assert page.page_lsn == 7


def test_page_lsn_monotonic():
    page = Page(1, "t")
    page.put("a", 1, lsn=10)
    page.put("b", 2, lsn=3)  # older LSN must not regress the stamp
    assert page.page_lsn == 10


def test_page_snapshot_is_deep():
    page = Page(1, "t")
    page.put("k", {"nested": [1]}, lsn=1)
    snap = page.snapshot()
    page.get("k")["nested"].append(2)
    assert snap.get("k") == {"nested": [1]}


def test_disk_write_read_roundtrip(kernel):
    disk = StableDisk(kernel, "s")

    def proc():
        page = Page(3, "t")
        page.put("k", "v", lsn=1)
        yield from disk.write_page(page)
        got = yield from disk.read_page(3)
        return got.get("k")

    assert run(kernel, proc()) == "v"


def test_disk_read_missing_page(kernel):
    disk = StableDisk(kernel, "s")

    def proc():
        yield from disk.read_page(99)

    with pytest.raises(PageNotFound):
        run(kernel, proc())


def test_disk_write_stores_snapshot(kernel):
    disk = StableDisk(kernel, "s")
    page = Page(1, "t")
    page.put("k", 1, lsn=1)

    def proc():
        yield from disk.write_page(page)
        page.put("k", 2, lsn=2)  # mutate after write
        stable = yield from disk.read_page(1)
        return stable.get("k")

    assert run(kernel, proc()) == 1


def test_disk_io_consumes_time(kernel):
    config = StorageConfig(page_read_time=2.0, page_write_time=3.0)
    disk = StableDisk(kernel, "s", config)

    def proc():
        yield from disk.write_page(Page(1, "t"))
        t_after_write = kernel.now
        yield from disk.read_page(1)
        return t_after_write, kernel.now

    assert run(kernel, proc()) == (3.0, 5.0)


def test_inflight_write_aborted_by_crash(kernel):
    disk = StableDisk(kernel, "s")

    def writer():
        yield from disk.write_page(Page(1, "t"))

    proc = kernel.spawn(writer())
    kernel.call_at(0.5, lambda: setattr(disk, "crash_epoch", disk.crash_epoch + 1))
    kernel.run(raise_failures=False)
    assert isinstance(proc.exception, SiteCrashed)
    assert not disk.has_page(1)


def test_inflight_log_force_aborted_by_crash(kernel):
    disk = StableDisk(kernel, "s")

    def forcer():
        yield from disk.append_log(["rec"])

    proc = kernel.spawn(forcer())
    kernel.call_at(0.5, lambda: setattr(disk, "crash_epoch", disk.crash_epoch + 1))
    kernel.run(raise_failures=False)
    assert isinstance(proc.exception, SiteCrashed)
    assert disk.stable_log() == []


def test_meta_survives_without_io(kernel):
    disk = StableDisk(kernel, "s")
    disk.set_meta("catalog", {"t": 1})
    assert disk.get_meta("catalog") == {"t": 1}
    assert disk.get_meta("absent", "default") == "default"
    assert disk.meta_keys() == ["catalog"]


def test_log_append_and_truncate(kernel):
    disk = StableDisk(kernel, "s")

    def proc():
        yield from disk.append_log([1, 2])
        yield from disk.append_log([3])
        return disk.stable_log()

    assert run(kernel, proc()) == [1, 2, 3]
    disk.truncate_log(2)
    assert disk.stable_log() == [3]
