"""Heap files: placement, pinning, record access."""

from repro.storage.buffer import BufferPool
from repro.storage.disk import StableDisk
from repro.storage.heap import HeapFile
from repro.storage.wal import LogManager
from tests.conftest import run


def make_heap(kernel, buckets=4):
    disk = StableDisk(kernel, "s")
    pool = BufferPool(disk, LogManager(disk), capacity=16)
    heap = HeapFile("t", disk, pool, first_page_id=0, bucket_count=buckets)
    run(kernel, heap.initialize())
    return disk, heap


def test_initialize_creates_bucket_pages(kernel):
    disk, heap = make_heap(kernel, buckets=3)
    assert all(disk.has_page(i) for i in range(3))
    assert heap.page_ids == [0, 1, 2]


def test_write_read_roundtrip(kernel):
    _, heap = make_heap(kernel)

    def proc():
        yield from heap.write("k", {"v": 1}, lsn=1)
        value = yield from heap.read("k")
        return value

    assert run(kernel, proc()) == {"v": 1}


def test_read_missing_returns_none(kernel):
    _, heap = make_heap(kernel)

    def proc():
        value = yield from heap.read("ghost")
        return value

    assert run(kernel, proc()) is None


def test_delete_removes_key(kernel):
    _, heap = make_heap(kernel)

    def proc():
        yield from heap.write("k", 1, lsn=1)
        yield from heap.delete("k", lsn=2)
        exists = yield from heap.exists("k")
        return exists

    assert run(kernel, proc()) is False


def test_placement_is_stable(kernel):
    _, heap = make_heap(kernel)
    assert heap.page_of("alpha") == heap.page_of("alpha")


def test_placement_covers_only_own_pages(kernel):
    _, heap = make_heap(kernel, buckets=4)
    for key in ("a", "b", "c", "d", "e", "f"):
        assert heap.page_of(key) in heap.page_ids


def test_pin_key_to_page_figure8(kernel):
    """x and y can be co-located on page p, as in the paper's Figure 8."""
    _, heap = make_heap(kernel, buckets=4)
    heap.pin_key_to_page("x", 0)
    heap.pin_key_to_page("y", 0)
    assert heap.page_of("x") == heap.page_of("y") == heap.page_ids[0]


def test_pin_out_of_range_rejected(kernel):
    import pytest

    _, heap = make_heap(kernel, buckets=2)
    with pytest.raises(ValueError):
        heap.pin_key_to_page("x", 5)


def test_scan_returns_all_rows_sorted(kernel):
    _, heap = make_heap(kernel)

    def proc():
        for i in range(5):
            yield from heap.write(f"k{i}", i, lsn=i + 1)
        rows = yield from heap.scan()
        return rows

    rows = run(kernel, proc())
    assert rows == [(f"k{i}", i) for i in range(5)]


def test_hash_spreads_keys(kernel):
    _, heap = make_heap(kernel, buckets=8)
    pages = {heap.page_of(f"key-{i}") for i in range(64)}
    assert len(pages) >= 4  # sane spread over the buckets
