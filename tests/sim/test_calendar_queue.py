"""Calendar-queue kernel mechanics: slot drains, pooling, accounting.

The byte-identity matrix (``test_golden_identity``) proves the rewrite
changed nothing observable; these tests pin down the new machinery's
own invariants -- live slot drains, mid-slot exception recovery,
``stop()`` from inside a drain, pooled timeout-timer recycling and the
``events_dispatched`` counter -- so a future change that breaks one
fails with a named behaviour, not a trace diff.
"""

from __future__ import annotations

import pytest

from repro.errors import KernelStopped, SimulationError
from repro.sim.events import Future
from repro.sim.kernel import Kernel


@pytest.fixture
def kernel():
    return Kernel(seed=1)


# -- slot drains ------------------------------------------------------------


def test_zero_delay_followup_joins_the_live_slot(kernel):
    """A 0-delay event scheduled mid-drain fires in the same drain,
    after everything already queued at that instant (sequence order)."""
    order = []
    kernel.call_at(1.0, lambda: (order.append("a"),
                                 kernel.call_at(1.0, order.append, "a0")))
    kernel.call_at(1.0, order.append, "b")
    kernel.run()
    assert order == ["a", "b", "a0"]


def test_distinct_timestamps_fire_in_time_order_across_buckets(kernel):
    order = []
    for time in (3.0, 1.0, 2.0, 1.0):
        kernel.call_at(time, order.append, time)
    kernel.run()
    assert order == [1.0, 1.0, 2.0, 3.0]


def test_exception_mid_slot_preserves_the_undispatched_tail(kernel):
    """A callback exception drops only the failing entry; the rest of
    the slot (and later slots) fire on the next run() call."""
    order = []

    def boom():
        raise ValueError("boom")

    kernel.call_at(1.0, order.append, 1)
    kernel.call_at(1.0, boom)
    kernel.call_at(1.0, order.append, 2)
    kernel.call_at(2.0, order.append, 3)
    with pytest.raises(ValueError):
        kernel.run()
    assert order == [1]
    assert kernel.queued == 2
    kernel.run()
    assert order == [1, 2, 3]


def test_stop_inside_a_drain_discards_the_rest_of_the_slot(kernel):
    order = []

    def first():
        order.append("first")
        kernel.stop()

    kernel.call_at(1.0, first)
    kernel.call_at(1.0, order.append, "second")
    kernel.call_at(2.0, order.append, "later")
    kernel.run()
    assert order == ["first"]
    assert kernel.queued == 0
    with pytest.raises(KernelStopped):
        kernel.call_at(3.0, order.append, "never")


def test_run_until_leaves_future_slots_queued(kernel):
    order = []
    kernel.call_at(1.0, order.append, 1)
    kernel.call_at(5.0, order.append, 5)
    assert kernel.run(until=2.0) == 2.0
    assert order == [1]
    assert kernel.queued == 1
    kernel.run()
    assert order == [1, 5]


# -- bulk scheduling --------------------------------------------------------


def test_call_at_bulk_interleaves_with_call_at_by_sequence(kernel):
    order = []
    kernel.call_at(1.0, order.append, "a")
    kernel.call_at_bulk([
        (1.0, order.append, ("b",)),
        (0.5, order.append, ("c",)),
    ])
    kernel.call_at(1.0, order.append, "d")
    kernel.run()
    assert order == ["c", "a", "b", "d"]


def test_call_at_bulk_rejects_past_times(kernel):
    kernel.call_at(1.0, lambda: None)
    kernel.run()
    with pytest.raises(SimulationError):
        kernel.call_at_bulk([(0.5, lambda: None, ())])


# -- pooled timeout timers --------------------------------------------------


def _win_race(kernel, resolve_at=1.0, timeout=5.0):
    future = Future(label="work")
    kernel.call_at(resolve_at, future.resolve, 42)
    outcome = []

    def proc():
        outcome.append((yield from kernel.wait_with_timeout(future, timeout)))

    kernel.spawn(proc(), name="racer")
    kernel.run()
    return outcome[0]


def test_won_race_recycles_the_timeout_timer(kernel):
    assert _win_race(kernel) == (True, 42)
    # The losing timer was resolved early; at its deadline the run loop
    # recognised the cancelled pooled firing and returned the future to
    # the free-list, reset and ready for reuse.
    assert len(kernel._timer_pool) == 1
    recycled = kernel._timer_pool[0]
    assert not recycled._done
    assert kernel._pooled_timer(1.0) is recycled


def test_expired_timeout_timer_is_not_recycled(kernel):
    """A timer that actually fired is never pooled: the waiting frame
    (or a same-instant race) may still hold and inspect it."""
    never = Future(label="never")

    def proc():
        result = yield from kernel.wait_with_timeout(never, timeout=2.0)
        assert result == (False, None)

    kernel.spawn(proc(), name="racer")
    kernel.run()
    assert kernel._timer_pool == []


def test_recycled_timer_runs_a_fresh_race_correctly(kernel):
    assert _win_race(kernel) == (True, 42)
    assert _win_race(kernel, resolve_at=kernel.now + 1.0) == (True, 42)
    assert len(kernel._timer_pool) == 1


# -- accounting -------------------------------------------------------------


def test_events_dispatched_counts_fired_events_only(kernel):
    timer = kernel.timer(1.0)
    timer.resolve(None)  # cancelled before firing: queue maintenance
    kernel.call_at(2.0, lambda: None)
    kernel.run()
    assert kernel.events_dispatched == 1


def test_queued_and_repr_reflect_pending_events(kernel):
    kernel.call_at(1.0, lambda: None)
    kernel.call_at(1.0, lambda: None)
    kernel.call_at(2.0, lambda: None)
    assert kernel.queued == 3
    assert "queued=3" in repr(kernel)
    kernel.run()
    assert kernel.queued == 0
