"""Random streams and the trace log."""

from repro.sim.kernel import Kernel
from repro.sim.rng import RandomStreams


def test_streams_are_independent():
    streams = RandomStreams(seed=5)
    a1 = [streams.stream("a").random() for _ in range(3)]
    b = [streams.stream("b").random() for _ in range(10)]
    streams2 = RandomStreams(seed=5)
    [streams2.stream("b").random() for _ in range(10)]
    a2 = [streams2.stream("a").random() for _ in range(3)]
    assert a1 == a2  # draws on "b" never perturb "a"


def test_stream_identity_cached():
    streams = RandomStreams(seed=1)
    assert streams.stream("x") is streams.stream("x")


def test_stream_seed_stable_across_instances():
    a = RandomStreams(seed=9).stream("s").random()
    b = RandomStreams(seed=9).stream("s").random()
    assert a == b


def test_trace_emit_and_select():
    kernel = Kernel()
    kernel.trace.emit("lock", "siteA", "t1", mode="X")
    kernel.trace.emit("lock", "siteB", "t2", mode="S")
    kernel.trace.emit("message", "central", "prepare")
    assert len(kernel.trace) == 3
    locks = kernel.trace.select(category="lock")
    assert [r.site for r in locks] == ["siteA", "siteB"]
    assert kernel.trace.first(category="message").subject == "prepare"
    assert kernel.trace.last(category="lock").details["mode"] == "S"


def test_trace_timestamps_follow_clock():
    kernel = Kernel()

    def proc():
        kernel.trace.emit("step", "here", "one")
        yield 5
        kernel.trace.emit("step", "here", "two")

    kernel.spawn(proc())
    kernel.run()
    times = [r.time for r in kernel.trace.select(category="step")]
    assert times == [0.0, 5.0]


def test_trace_subjects_in_first_seen_order():
    kernel = Kernel()
    for subject in ["b", "a", "b", "c"]:
        kernel.trace.emit("x", "s", subject)
    assert kernel.trace.subjects("x") == ["b", "a", "c"]


def test_trace_disabled_drops_records():
    kernel = Kernel()
    kernel.trace.enabled = False
    kernel.trace.emit("x", "s", "t")
    assert len(kernel.trace) == 0


def test_trace_predicate_filter():
    kernel = Kernel()
    for i in range(5):
        kernel.trace.emit("n", "s", str(i), value=i)
    big = kernel.trace.select(category="n", predicate=lambda r: r.details["value"] >= 3)
    assert [r.subject for r in big] == ["3", "4"]


def test_trace_dump_is_readable():
    kernel = Kernel()
    kernel.trace.emit("txn_state", "bank_a", "t1", state="committed")
    text = kernel.trace.dump(category="txn_state")
    assert "bank_a" in text and "committed" in text
