"""Kernel scheduling, time, determinism and failure propagation."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Kernel
from tests.conftest import run


def test_time_starts_at_zero(kernel):
    assert kernel.now == 0.0


def test_delay_advances_time(kernel):
    def proc():
        yield 5
        return kernel.now

    assert run(kernel, proc()) == 5.0


def test_numeric_yield_accepts_int_and_float(kernel):
    def proc():
        yield 1
        yield 2.5
        return kernel.now

    assert run(kernel, proc()) == 3.5


def test_events_fire_in_time_order(kernel):
    order = []
    kernel._schedule(3, lambda: order.append("c"))
    kernel._schedule(1, lambda: order.append("a"))
    kernel._schedule(2, lambda: order.append("b"))
    kernel.run()
    assert order == ["a", "b", "c"]


def test_ties_break_in_insertion_order(kernel):
    order = []
    for name in "abcde":
        kernel._schedule(1.0, lambda n=name: order.append(n))
    kernel.run()
    assert order == list("abcde")


def test_run_until_stops_at_horizon(kernel):
    fired = []
    kernel._schedule(10, lambda: fired.append(1))
    final = kernel.run(until=5)
    assert final == 5
    assert not fired


def test_negative_delay_rejected(kernel):
    with pytest.raises(SimulationError):
        kernel._schedule(-1, lambda: None)


def test_process_return_value(kernel):
    def proc():
        yield 1
        return "done"

    assert run(kernel, proc()) == "done"


def test_join_process(kernel):
    def child():
        yield 4
        return 99

    def parent():
        value = yield kernel.spawn(child())
        return (value, kernel.now)

    assert run(kernel, parent()) == (99, 4.0)


def test_join_already_finished_process(kernel):
    def child():
        return 7
        yield

    def parent():
        proc = kernel.spawn(child())
        yield 10
        value = yield proc
        return value

    assert run(kernel, parent()) == 7


def test_unobserved_failure_raises_after_run(kernel):
    def bad():
        yield 1
        raise ValueError("boom")

    kernel.spawn(bad())
    with pytest.raises(ValueError, match="boom"):
        kernel.run()


def test_observed_failure_propagates_to_joiner_only(kernel):
    def bad():
        yield 1
        raise ValueError("boom")

    def parent():
        try:
            yield kernel.spawn(bad())
        except ValueError:
            return "caught"
        return "missed"

    assert run(kernel, parent()) == "caught"


def test_timer_resolves_at_deadline(kernel):
    def proc():
        yield kernel.timer(7)
        return kernel.now

    assert run(kernel, proc()) == 7.0


def test_wait_with_timeout_success(kernel):
    def proc():
        ok, _ = yield from kernel.wait_with_timeout(kernel.timer(2), timeout=10)
        return ok, kernel.now

    assert run(kernel, proc()) == (True, 2.0)


def test_wait_with_timeout_expires(kernel):
    from repro.sim.events import Future

    def proc():
        ok, value = yield from kernel.wait_with_timeout(Future(), timeout=3)
        return ok, value, kernel.now

    assert run(kernel, proc()) == (False, None, 3.0)


def test_same_seed_same_schedule():
    def workload(kernel):
        trace = []

        def proc(i):
            rng = kernel.rng.stream("jitter")
            yield rng.uniform(0, 10)
            trace.append((i, kernel.now))

        for i in range(5):
            kernel.spawn(proc(i))
        kernel.run()
        return trace

    assert workload(Kernel(seed=7)) == workload(Kernel(seed=7))


def test_different_seed_different_schedule():
    def workload(kernel):
        rng = kernel.rng.stream("jitter")
        return [rng.random() for _ in range(5)]

    assert workload(Kernel(seed=7)) != workload(Kernel(seed=8))


def test_stop_discards_pending_and_refuses_scheduling(kernel):
    from repro.errors import KernelStopped

    fired = []
    kernel._schedule(5, lambda: fired.append(1))
    kernel.stop()
    kernel.run()
    assert not fired
    with pytest.raises(KernelStopped):
        kernel._schedule(1, lambda: None)


def test_call_at_absolute_time(kernel):
    seen = []

    def proc():
        yield 2
        kernel.call_at(9, lambda: seen.append(kernel.now))
        yield 10

    run(kernel, proc())
    assert seen == [9.0]


def test_cancelled_timer_does_not_advance_clock(kernel):
    """A timer resolved early is skipped by the run loop without
    advancing simulated time -- a sim must not end at the deadline of
    a retransmit/timeout timer that was cancelled long before."""

    def proc():
        timer = kernel.timer(1000.0, label="cancelled")
        yield 1.0
        timer.resolve(None)  # cancel: the awaited event arrived
        yield 2.0

    run(kernel, proc())
    assert kernel.now == 3.0


def test_winning_wait_with_timeout_cancels_its_timer(kernel):
    """When the awaited future wins the race, the timeout timer is
    cancelled so the queue drains at the event's time, not the
    timeout's."""
    from repro.sim.events import Future

    future = Future()

    def resolver():
        yield 2.0
        future.resolve("value")

    def waiter():
        ok, value = yield from kernel.wait_with_timeout(future, 500.0)
        return ok, value

    kernel.spawn(resolver(), name="resolver")
    process = kernel.spawn(waiter(), name="waiter")
    end = kernel.run()
    assert process.value == (True, "value")
    assert end == 2.0
