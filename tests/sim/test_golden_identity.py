"""Golden byte-identity: calendar-queue kernel vs the heap reference.

The calendar-queue run loop (slot-local FIFO drains + a heap of
distinct timestamps) replaced the seed's single ``heapq`` of events.
The rewrite's contract is *byte identity* on the default path: same
event order, same trace bytes, same RNG draws, same outcomes -- the
data structure changed, the schedule did not.

:class:`HeapKernel` below is the seed's run loop, kept verbatim as an
executable reference (heap of ``(time, seq, fn, args)``, per-event
pops, ``AnyOf``-based ``wait_with_timeout``).  Every test runs the
same federation workload under both kernels -- the reference is
injected by monkeypatching the ``Kernel`` name Federation instantiates
-- and demands identical fingerprints across a 5-protocol x {1, 2, 8}
coordinator matrix, plus identical ``repro.check`` DFS exploration
statistics (the controlled-scheduling path).
"""

from __future__ import annotations

import heapq

import pytest

import repro.integration.federation as federation_module
from repro.check import CheckSpec, explore
from repro.core.gtm import GTMConfig
from repro.errors import KernelStopped, SimulationError
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment
from repro.net.message import reset_message_ids
from repro.sim.events import AnyOf, Future
from repro.sim.kernel import Kernel

N_SITES = 3
N_KEYS = 8
N_TXNS = 18

PROTOCOLS = [
    ("2pc", "per_site"),
    ("2pc-pa", "per_site"),
    ("3pc", "per_site"),
    ("after", "per_site"),
    ("before", "per_action"),
    ("paxos", "per_site"),
]
COORDINATORS = [1, 2, 8]
#: The five pre-paxos protocols: the paxos wiring must be inert here.
CLASSIC_PROTOCOLS = [entry for entry in PROTOCOLS if entry[0] != "paxos"]


class HeapKernel(Kernel):
    """The seed tree's event loop, preserved as the identity reference."""

    __slots__ = ("_heap",)

    def __init__(self, seed: int = 0):
        super().__init__(seed=seed)
        self._heap: list = []

    @property
    def queued(self) -> int:
        return len(self._heap)

    def _schedule(self, delay, callback, *args):
        if self._stopped:
            raise KernelStopped("kernel already stopped")
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._sequence += 1
        heapq.heappush(self._heap, (self._now + delay, self._sequence, callback, args))

    def call_at_bulk(self, entries):
        if self._stopped:
            raise KernelStopped("kernel already stopped")
        queue = self._heap
        now = self._now
        push = heapq.heappush
        sequence = self._sequence
        for time, fn, args in entries:
            if time < now:
                raise SimulationError(f"time {time} is in the past (now={now})")
            sequence += 1
            push(queue, (time, sequence, fn, args))
        self._sequence = sequence

    def run(self, until=None, raise_failures=True):
        if self.scheduler is not None:
            return self._run_controlled(until, raise_failures)
        queue = self._heap
        pop = heapq.heappop
        fire_timer = self._fire_timer
        dispatched = 0
        try:
            while queue:
                if until is not None and queue[0][0] > until:
                    self._now = until
                    break
                time, _seq, fn, args = pop(queue)
                if fn is fire_timer and args[0]._done:
                    continue  # cancelled timer: skip without advancing the clock
                self._now = time
                dispatched += 1
                fn(*args)
        finally:
            self.events_dispatched += dispatched
        if raise_failures:
            for process, exc in self.failures:
                if not process._observed:
                    raise exc
        return self._now

    def _run_controlled(self, until, raise_failures):
        queue = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        fire_timer = self._fire_timer
        scheduler = self.scheduler
        while queue:
            time = queue[0][0]
            if until is not None and time > until:
                self._now = until
                break
            batch = []
            while queue and queue[0][0] == time:
                entry = pop(queue)
                if entry[2] is fire_timer and entry[3][0]._done:
                    continue  # cancelled timer: never offered as a choice
                batch.append(entry)
            if not batch:
                continue
            chosen = scheduler.pick(self, batch) if len(batch) > 1 else batch[0]
            for entry in batch:
                if entry is not chosen:
                    push(queue, entry)
            self._now = time
            self.events_dispatched += 1
            chosen[2](*chosen[3])
        if raise_failures:
            for process, exc in self.failures:
                if not process._observed:
                    raise exc
        return self._now

    def stop(self) -> None:
        self._heap.clear()
        self._stopped = True

    def wait_with_timeout(self, future: Future, timeout: float):
        timer = self.timer(timeout, label="timeout")
        index, value = yield AnyOf([future, timer])
        if index == 0:
            if not timer._done:
                timer.resolve(None)
            return True, value
        return False, None


# ---------------------------------------------------------------------------


def _build(
    protocol: str, granularity: str, coordinators: int, paxos_f: int = 1
) -> Federation:
    preparable = protocol in ("2pc", "2pc-pa", "3pc", "paxos")
    specs = [
        SiteSpec(
            f"s{i}",
            tables={f"t{i}": {f"k{j}": 100 for j in range(N_KEYS)}},
            preparable=preparable,
        )
        for i in range(N_SITES)
    ]
    return Federation(
        specs,
        FederationConfig(
            seed=11,
            coordinators=coordinators,
            paxos_f=paxos_f,
            gtm=GTMConfig(protocol=protocol, granularity=granularity),
        ),
    )


def _workload() -> list[dict]:
    """Partially overlapping transfers: several txns share an arrival
    instant, so same-timestamp frontiers (the calendar queue's slot
    drains) actually occur."""
    batches = []
    for index in range(N_TXNS):
        src = index % N_SITES
        dst = (index + 1) % N_SITES
        batches.append({
            "operations": [
                increment(f"t{src}", f"k{index % N_KEYS}", -1),
                increment(f"t{dst}", f"k{index % N_KEYS}", 1),
            ],
            "name": f"G{index}",
            "delay": (index % 6) * 3.0,
        })
    return batches


def _fingerprint(
    protocol: str, granularity: str, coordinators: int, paxos_f: int = 1
) -> dict:
    """Everything observable about one run, byte for byte."""
    reset_message_ids()
    fed = _build(protocol, granularity, coordinators, paxos_f=paxos_f)
    outcomes = fed.run_transactions(_workload())
    return {
        "outcomes": [outcome.committed for outcome in outcomes],
        "trace": [str(record) for record in fed.kernel.trace.records],
        "events_dispatched": fed.kernel.events_dispatched,
        "end_time": fed.kernel.now,
        "sent": fed.network.sent,
        "delivered": fed.network.delivered,
        # One draw from a fresh named stream: equal only if both runs
        # consumed the kernel's RNG streams identically.
        "rng_probe": fed.kernel.rng.stream("golden-probe").random(),
    }


@pytest.mark.parametrize("coordinators", COORDINATORS)
@pytest.mark.parametrize("protocol,granularity", PROTOCOLS)
def test_calendar_kernel_matches_heap_reference(
    monkeypatch, protocol, granularity, coordinators
):
    calendar = _fingerprint(protocol, granularity, coordinators)
    with monkeypatch.context() as patch:
        patch.setattr(federation_module, "Kernel", HeapKernel)
        reference = _fingerprint(protocol, granularity, coordinators)
    # Trace bytes first: on mismatch the diff pinpoints the first
    # diverging event, which names the reordered dispatch.
    assert calendar["trace"] == reference["trace"]
    assert calendar == reference


@pytest.mark.parametrize("protocol,granularity", CLASSIC_PROTOCOLS)
def test_paxos_wiring_is_inert_on_classic_protocols(protocol, granularity):
    """The paxos knob must not move a single byte of a classic run.

    Acceptors are only ever built for ``protocol="paxos"``, so varying
    ``paxos_f`` on any other protocol has to produce byte-identical
    traces, outcomes and RNG draws -- the regression that catches a
    future leak of paxos wiring into the classic paths.
    """
    default = _fingerprint(protocol, granularity, 2)
    widened = _fingerprint(protocol, granularity, 2, paxos_f=3)
    assert default["trace"] == widened["trace"]
    assert default == widened


def test_classic_runs_build_no_acceptors():
    fed = _build("2pc", "per_site", 2)
    assert fed.acceptors is None
    assert all(gtm.acceptors is None for gtm in fed.coordinators)
    assert not any(name.startswith("acceptor") for name in fed.nodes)


@pytest.mark.parametrize("protocol", ["2pc", "before", "paxos"])
def test_dfs_exploration_counts_match_heap_reference(monkeypatch, protocol):
    """The controlled-scheduling path explores the same schedule tree."""
    spec = CheckSpec(protocol=protocol)
    calendar = explore(spec, depth=4, budget=80).summary()
    with monkeypatch.context() as patch:
        patch.setattr(federation_module, "Kernel", HeapKernel)
        reference = explore(spec, depth=4, budget=80).summary()
    assert calendar == reference
    assert calendar["executions"] > 1


def test_heap_reference_is_actually_used(monkeypatch):
    """Guard the harness itself: the patch must reach Federation."""
    with monkeypatch.context() as patch:
        patch.setattr(federation_module, "Kernel", HeapKernel)
        fed = _build("2pc", "per_site", 1)
    assert isinstance(fed.kernel, HeapKernel)
