"""Mailbox and FifoLock semantics."""

import pytest

from repro.sim.sync import FifoLock, Mailbox
from tests.conftest import run


def test_mailbox_put_then_recv(kernel):
    box = Mailbox()
    box.put("a")

    def consumer():
        item = yield from box.recv()
        return item

    assert run(kernel, consumer()) == "a"


def test_mailbox_recv_blocks_until_put(kernel):
    box = Mailbox()

    def consumer():
        item = yield from box.recv()
        return item, kernel.now

    def producer():
        yield 4
        box.put("late")

    kernel.spawn(producer())
    assert run(kernel, consumer()) == ("late", 4.0)


def test_mailbox_fifo_order(kernel):
    box = Mailbox()
    for i in range(3):
        box.put(i)

    def consumer():
        items = []
        for _ in range(3):
            item = yield from box.recv()
            items.append(item)
        return items

    assert run(kernel, consumer()) == [0, 1, 2]


def test_mailbox_multiple_waiters_served_fifo(kernel):
    box = Mailbox()
    got = []

    def consumer(i):
        item = yield from box.recv()
        got.append((i, item))

    kernel.spawn(consumer(0))
    kernel.spawn(consumer(1))

    def producer():
        yield 1
        box.put("first")
        yield 1
        box.put("second")

    kernel.spawn(producer())
    kernel.run()
    assert got == [(0, "first"), (1, "second")]


def test_mailbox_drain():
    box = Mailbox()
    box.put(1)
    box.put(2)
    assert box.drain() == [1, 2]
    assert len(box) == 0


def test_mailbox_fail_waiters(kernel):
    box = Mailbox()

    def consumer():
        try:
            yield from box.recv()
        except ConnectionError:
            return "failed"

    proc = kernel.spawn(consumer())
    kernel.call_at(1, lambda: box.fail_waiters(ConnectionError()))
    kernel.run()
    assert proc.value == "failed"


def test_fifolock_mutual_exclusion(kernel):
    lock = FifoLock()
    order = []

    def worker(i):
        yield from lock.acquire()
        order.append(("in", i, kernel.now))
        yield 5
        order.append(("out", i, kernel.now))
        lock.release()

    kernel.spawn(worker(0))
    kernel.spawn(worker(1))
    kernel.run()
    assert order == [
        ("in", 0, 0.0), ("out", 0, 5.0),
        ("in", 1, 5.0), ("out", 1, 10.0),
    ]


def test_fifolock_release_unlocked_rejected():
    lock = FifoLock()
    with pytest.raises(RuntimeError):
        lock.release()


def test_fifolock_reset_fails_waiters(kernel):
    lock = FifoLock()

    def holder():
        yield from lock.acquire()
        yield 100

    def waiter():
        try:
            yield from lock.acquire()
        except ConnectionError:
            return "reset"

    kernel.spawn(holder())
    proc = kernel.spawn(waiter())
    kernel.call_at(2, lambda: lock.reset(ConnectionError()))
    kernel.run(raise_failures=False)
    assert proc.value == "reset"
    assert not lock.locked
