"""Futures and AnyOf races."""

import pytest

from repro.sim.events import AnyOf, Delay, Future
from tests.conftest import run


def test_future_resolve_and_value():
    future = Future(label="f")
    assert not future.done
    future.resolve(42)
    assert future.done
    assert future.value == 42


def test_future_fail_raises_on_value():
    future = Future()
    future.fail(RuntimeError("nope"))
    with pytest.raises(RuntimeError):
        future.value


def test_future_double_resolve_rejected():
    future = Future()
    future.resolve(1)
    with pytest.raises(RuntimeError):
        future.resolve(2)


def test_value_before_resolution_rejected():
    with pytest.raises(RuntimeError):
        Future().value


def test_callback_on_resolution():
    future = Future()
    seen = []
    future.add_callback(lambda f: seen.append(f._value))
    future.resolve("x")
    assert seen == ["x"]


def test_callback_on_already_done_future():
    future = Future()
    future.resolve("y")
    seen = []
    future.add_callback(lambda f: seen.append(f._value))
    assert seen == ["y"]


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Delay(-1)


def test_anyof_needs_futures():
    with pytest.raises(ValueError):
        AnyOf([])


def test_process_wakes_on_future(kernel):
    future = Future()

    def waiter():
        value = yield future
        return value, kernel.now

    def resolver():
        yield 6
        future.resolve("hello")

    kernel.spawn(resolver())
    assert run(kernel, waiter()) == ("hello", 6.0)


def test_failed_future_raises_in_process(kernel):
    future = Future()

    def waiter():
        try:
            yield future
        except KeyError:
            return "caught"

    def failer():
        yield 1
        future.fail(KeyError("gone"))

    kernel.spawn(failer())
    assert run(kernel, waiter()) == "caught"


def test_anyof_returns_first_winner(kernel):
    def proc():
        index, value = yield AnyOf([kernel.timer(10), kernel.timer(3)])
        return index, kernel.now

    assert run(kernel, proc()) == (1, 3.0)


def test_anyof_ignores_later_resolutions(kernel):
    slow = Future()
    fast = Future()

    def proc():
        index, _ = yield AnyOf([slow, fast])
        yield 5  # let the loser resolve afterwards
        return index

    def resolver():
        yield 1
        fast.resolve("fast")
        yield 1
        slow.resolve("slow")

    kernel.spawn(resolver())
    assert run(kernel, proc()) == 1


def test_anyof_with_already_done_future(kernel):
    ready = Future()
    ready.resolve("now")

    def proc():
        index, value = yield AnyOf([Future(), ready])
        return index, value

    assert run(kernel, proc()) == (1, "now")
