"""Process lifecycle and interruption semantics."""

import pytest

from repro.errors import ProcessInterrupted, SimulationError
from repro.sim.events import Future
from tests.conftest import run


def test_interrupt_raises_inside_process(kernel):
    seen = []

    def sleeper():
        try:
            yield 100
        except ProcessInterrupted as exc:
            seen.append((kernel.now, exc.cause))

    proc = kernel.spawn(sleeper())

    def killer():
        yield 7
        proc.interrupt("deadline")

    kernel.spawn(killer())
    kernel.run()
    assert seen == [(7.0, "deadline")]


def test_interrupt_cancels_pending_timer_resume(kernel):
    resumes = []

    def sleeper():
        try:
            yield 100
        except ProcessInterrupted:
            yield 1  # continue doing something else
        resumes.append(kernel.now)

    proc = kernel.spawn(sleeper())
    kernel.call_at(5, lambda: proc.interrupt())
    kernel.run()
    # Exactly one completion; the original t=100 wakeup must not fire.
    assert resumes == [6.0]


def test_interrupt_while_waiting_on_future_ignores_late_resolution(kernel):
    future = Future()
    events = []

    def waiter():
        try:
            yield future
            events.append("resolved")
        except ProcessInterrupted:
            events.append("interrupted")
            yield 10
            events.append("after")

    proc = kernel.spawn(waiter())
    kernel.call_at(2, lambda: proc.interrupt())
    kernel.call_at(3, lambda: future.resolve("late"))
    kernel.run()
    assert events == ["interrupted", "after"]


def test_interrupt_finished_process_is_noop(kernel):
    def quick():
        yield 1

    proc = kernel.spawn(quick())
    kernel.run()
    proc.interrupt("too late")  # must not raise
    kernel.run()


def test_unhandled_interrupt_finishes_quietly(kernel):
    def sleeper():
        yield 100

    proc = kernel.spawn(sleeper())
    kernel.call_at(1, lambda: proc.interrupt("kill"))
    kernel.run()  # must not raise
    assert not proc.alive


def test_yielding_garbage_fails_process(kernel):
    def bad():
        yield object()

    kernel.spawn(bad())
    with pytest.raises(SimulationError):
        kernel.run()


def test_process_names_unique():
    from repro.sim.kernel import Kernel

    kernel = Kernel()

    def noop():
        return
        yield

    a = kernel.spawn(noop())
    b = kernel.spawn(noop())
    assert a.name != b.name


def test_alive_flag(kernel):
    def proc():
        yield 5

    p = kernel.spawn(proc())
    assert p.alive
    kernel.run()
    assert not p.alive


def test_nested_yield_from_composition(kernel):
    def inner():
        yield 2
        return "inner"

    def outer():
        value = yield from inner()
        yield 3
        return value, kernel.now

    assert run(kernel, outer()) == ("inner", 5.0)
