"""Benchmark harness: closed loop driver and report tables."""

from repro.bench import RunStats, closed_loop, format_table, protocol_federation
from repro.integration.federation import SiteSpec
from repro.workloads import WorkloadGenerator, WorkloadSpec


def small_specs():
    return [SiteSpec(f"s{i}", tables={f"t{i}": {"k": 0}}) for i in range(2)]


def small_generator():
    spec = WorkloadSpec(ops_per_txn=2, read_fraction=0.0, increment_fraction=1.0)
    return WorkloadGenerator(spec, [("t0", "k"), ("t1", "k")])


def test_closed_loop_collects_stats():
    fed = protocol_federation("before", small_specs(), seed=1)
    gen = small_generator()
    stats = closed_loop(fed, gen.next_transaction, n_workers=2, horizon=300, label="x")
    assert stats.committed > 0
    assert stats.throughput > 0
    assert stats.mean_response_time > 0
    assert stats.metrics["gtm"]["global_committed"] == stats.committed


def test_closed_loop_deterministic():
    def once():
        fed = protocol_federation("before", small_specs(), seed=5)
        gen = small_generator()
        stats = closed_loop(fed, gen.next_transaction, n_workers=3, horizon=200)
        return stats.committed, stats.aborted, round(stats.mean_response_time, 6)

    assert once() == once()


def test_protocol_federation_sets_preparable_for_2pc():
    fed = protocol_federation("2pc", small_specs(), seed=1)
    assert all(iface.has_prepare for iface in fed.interfaces.values())
    fed2 = protocol_federation("before", small_specs(), seed=1)
    assert not any(iface.has_prepare for iface in fed2.interfaces.values())


def test_run_stats_percentiles():
    stats = RunStats(label="x", horizon=10)
    stats.response_times = [float(i) for i in range(1, 101)]
    stats.committed = 100
    assert stats.throughput == 10.0
    assert stats.mean_response_time == 50.5
    assert stats.p95_response_time == 96.0


def test_run_stats_empty_safe():
    stats = RunStats(label="x", horizon=0)
    assert stats.throughput == 0.0
    assert stats.mean_response_time == 0.0
    assert stats.p95_response_time == 0.0
    assert stats.abort_ratio == 0.0


def test_format_table_alignment():
    text = format_table(
        ["protocol", "throughput"],
        [["before", 1.23456], ["2pc", 0.5]],
        title="T2",
    )
    lines = text.splitlines()
    assert lines[0] == "T2"
    assert "protocol" in lines[1]
    assert "1.235" in text
    assert len({len(line) for line in lines[1:]}) <= 2  # aligned columns
