"""Unit tests for the Pareto non-domination gate (perf-smoke CI)."""

import importlib.util
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def load_gate():
    spec = importlib.util.spec_from_file_location(
        "check_perf_regression", REPO_ROOT / "scripts" / "check_perf_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def summary_with(points):
    return {"adaptive": {"pareto": points}}


def patch_fresh(monkeypatch, module, points):
    bench = sys.modules.get("benchmarks.bench_a6_adaptive")
    if bench is None:
        sys.path.insert(0, str(REPO_ROOT))
        sys.path.insert(0, str(REPO_ROOT / "src"))
        import benchmarks.bench_a6_adaptive as bench
    monkeypatch.setattr(bench, "pareto_points", lambda: points)


BASE = {"p/ps": {"static": {"throughput": 0.20, "p99": 40.0}}}


def test_missing_baseline_section_skips(capsys):
    module = load_gate()
    assert module.pareto_regressions({}, 0.2) == []
    assert "skipping" in capsys.readouterr().out


def test_unchanged_point_passes(monkeypatch):
    module = load_gate()
    patch_fresh(monkeypatch, module, BASE)
    assert module.pareto_regressions(summary_with(BASE), 0.2) == []


def test_trade_along_the_front_passes(monkeypatch):
    # Throughput down 30% but p99 improved: a trade, not a regression.
    module = load_gate()
    patch_fresh(
        monkeypatch, module,
        {"p/ps": {"static": {"throughput": 0.14, "p99": 20.0}}},
    )
    assert module.pareto_regressions(summary_with(BASE), 0.2) == []


def test_dominated_point_fails(monkeypatch):
    # p99 up 50% with throughput no better: strictly dominated.
    module = load_gate()
    patch_fresh(
        monkeypatch, module,
        {"p/ps": {"static": {"throughput": 0.20, "p99": 60.0}}},
    )
    assert module.pareto_regressions(summary_with(BASE), 0.2) == ["p/ps:static"]


def test_throughput_collapse_fails(monkeypatch):
    module = load_gate()
    patch_fresh(
        monkeypatch, module,
        {"p/ps": {"static": {"throughput": 0.10, "p99": 40.0}}},
    )
    assert module.pareto_regressions(summary_with(BASE), 0.2) == ["p/ps:static"]


def test_missing_fresh_point_fails(monkeypatch):
    module = load_gate()
    patch_fresh(monkeypatch, module, {})
    assert module.pareto_regressions(summary_with(BASE), 0.2) == ["p/ps:static"]
