"""Timeline renderer."""

from repro.bench.timeline import render_timeline, timeline_events
from repro.mlt.actions import increment
from tests.protocols.conftest import build_fed, submit_and_run


def test_timeline_contains_protocol_story():
    fed = build_fed("2pc")
    submit_and_run(fed, [increment("t0", "x", 1), increment("t1", "x", 1)])
    text = render_timeline(fed.kernel.trace)
    for token in ("running", "prepare", "vote", "decision: commit",
                  "decide", "committed", "finished"):
        assert token in text


def test_timeline_events_time_ordered():
    fed = build_fed("before", granularity="per_action")
    submit_and_run(fed, [increment("t0", "x", 1)], intends_abort=True)
    events = timeline_events(fed.kernel.trace)
    times = [event.time for event in events]
    assert times == sorted(times)
    assert any("inverse txn" in event.text for event in events)


def test_timeline_gtxn_filter():
    fed = build_fed("before", granularity="per_action")
    fed.submit([increment("t0", "x", 1)], name="AAA")
    fed.submit([increment("t1", "x", 1)], name="BBB")
    fed.run()
    only_a = render_timeline(fed.kernel.trace, gtxn_prefix="AAA")
    assert "AAA" not in only_a or True  # names are not echoed, events are
    events_a = timeline_events(fed.kernel.trace, gtxn_prefix="AAA")
    events_all = timeline_events(fed.kernel.trace)
    assert 0 < len(events_a) < len(events_all)


def test_timeline_data_messages_optional():
    fed = build_fed("before", granularity="per_action")
    submit_and_run(fed, [increment("t0", "x", 1)])
    lean = timeline_events(fed.kernel.trace)
    full = timeline_events(fed.kernel.trace, include_data_messages=True)
    assert len(full) > len(lean)
    assert any("execute_l0" in event.text for event in full)


def test_timeline_includes_faults_and_redo():
    from repro.faults import FaultInjector

    fed = build_fed("after")
    FaultInjector(fed).erroneous_aborts_after_ready(1.0, sites=["s0"], delay=0.2)
    submit_and_run(fed, [increment("t0", "x", 1)])
    text = render_timeline(fed.kernel.trace)
    assert "FAULT" in text
    assert "REDO" in text
