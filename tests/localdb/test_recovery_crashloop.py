"""In-doubt reinstatement under repeated crashes (crash-loop recovery).

A prepared subtransaction must come back READY -- with its locks and
its identity -- after *any* number of crashes, including a crash that
interrupts recovery itself.  Local recovery only reads the stable log,
so every pass starts from the same truth no matter how many times it
was cut short.
"""

from repro.localdb.txn import LocalTxnState
from tests.conftest import run
from tests.localdb.test_recovery import crash_restart, make_db, read_all


def prepare_indoubt(kernel, db, gtxn_id: str, value: int) -> str:
    def proc():
        txn = db.begin(gtxn_id=gtxn_id)
        yield from db.write(txn, "t", "a", value)
        yield from db.prepare(txn)
        return txn.txn_id

    return run(kernel, proc())


def test_indoubt_survives_repeated_crashes(kernel):
    db = make_db(kernel)
    txn_id = prepare_indoubt(kernel, db, "G1", 77)
    for _ in range(3):
        crash_restart(kernel, db)
        recovered = db.find_by_gtxn("G1")
        assert recovered is not None
        assert recovered.state is LocalTxnState.READY
        assert recovered.txn_id == txn_id
    run(kernel, db.commit(db.find_by_gtxn("G1")))
    assert read_all(kernel, db) == (77, 2)


def test_indoubt_abort_after_crash_loop(kernel):
    db = make_db(kernel)
    prepare_indoubt(kernel, db, "G1", 77)
    for _ in range(3):
        crash_restart(kernel, db)
    run(kernel, db.abort(db.find_by_gtxn("G1")))
    assert read_all(kernel, db) == (1, 2)  # original value restored


def test_crash_during_recovery_is_harmless(kernel):
    """Cutting recovery short mid-pass loses nothing: the next pass
    replays from the same stable log and reinstates the same txn."""
    db = make_db(kernel)
    txn_id = prepare_indoubt(kernel, db, "G1", 77)
    db.crash()
    restarting = kernel.spawn(db.restart(), name="restart")
    # Crash again a hair into the restart, before recovery finishes.
    kernel.call_at(kernel.now + 0.01, db.crash)
    kernel.run()
    assert restarting.done
    crash_restart(kernel, db)
    recovered = db.find_by_gtxn("G1")
    assert recovered is not None
    assert recovered.state is LocalTxnState.READY
    assert recovered.txn_id == txn_id
    run(kernel, db.commit(recovered))
    assert read_all(kernel, db) == (77, 2)


def test_loser_undone_indoubt_kept_across_crashes(kernel):
    """A crash with both an unprepared loser and a prepared in-doubt
    transaction: only the loser is rolled back, every time."""
    db = make_db(kernel)
    prepare_indoubt(kernel, db, "G1", 77)

    def loser():
        txn = db.begin()
        yield from db.write(txn, "t", "b", 999)

    run(kernel, loser())
    for _ in range(2):
        crash_restart(kernel, db)
        recovered = db.find_by_gtxn("G1")
        assert recovered is not None and recovered.state is LocalTxnState.READY
        assert len(db.active_txns()) == 1  # the loser is gone
    run(kernel, db.abort(db.find_by_gtxn("G1")))
    assert read_all(kernel, db) == (1, 2)


def test_two_indoubt_transactions_reinstated_independently(kernel):
    db = make_db(kernel)
    prepare_indoubt(kernel, db, "G1", 77)

    def second():
        txn = db.begin(gtxn_id="G2")
        yield from db.write(txn, "t", "b", 88)
        yield from db.prepare(txn)

    run(kernel, second())
    for _ in range(2):
        crash_restart(kernel, db)
        assert db.find_by_gtxn("G1").state is LocalTxnState.READY
        assert db.find_by_gtxn("G2").state is LocalTxnState.READY
    run(kernel, db.commit(db.find_by_gtxn("G1")))
    run(kernel, db.abort(db.find_by_gtxn("G2")))
    assert read_all(kernel, db) == (77, 2)
