"""L0 lock manager: grants, waits, upgrades, deadlocks, timeouts."""

import pytest

from repro.errors import DeadlockDetected, LockTimeout
from repro.localdb.locks import LockManager, LockMode, compatible
from tests.conftest import run

S, X = LockMode.SHARED, LockMode.EXCLUSIVE


def make(kernel, timeout=None, deadlock=True):
    return LockManager(kernel, "site", default_timeout=timeout, deadlock_detection=deadlock)


def test_compatibility_matrix():
    assert compatible(S, S)
    assert not compatible(S, X)
    assert not compatible(X, S)
    assert not compatible(X, X)


def test_immediate_grant_when_free(kernel):
    locks = make(kernel)

    def proc():
        yield from locks.acquire("t1", "r", X)
        return locks.holds("t1", "r", X)

    assert run(kernel, proc()) is True


def test_shared_locks_coexist(kernel):
    locks = make(kernel)

    def proc():
        yield from locks.acquire("t1", "r", S)
        yield from locks.acquire("t2", "r", S)
        return sorted(locks.holders_of("r"))

    assert run(kernel, proc()) == ["t1", "t2"]


def test_reentrant_acquire_is_noop(kernel):
    locks = make(kernel)

    def proc():
        yield from locks.acquire("t1", "r", X)
        yield from locks.acquire("t1", "r", X)
        yield from locks.acquire("t1", "r", S)  # weaker: covered
        return locks.grants

    assert run(kernel, proc()) == 1


def test_exclusive_blocks_until_release(kernel):
    locks = make(kernel)
    order = []

    def holder():
        yield from locks.acquire("t1", "r", X)
        yield 10
        locks.release_all("t1")

    def waiter():
        yield 1
        yield from locks.acquire("t2", "r", X)
        order.append(kernel.now)

    kernel.spawn(holder())
    kernel.spawn(waiter())
    kernel.run()
    assert order == [10.0]


def test_fifo_fairness_no_reader_overtaking(kernel):
    """A shared request behind a queued exclusive one must wait."""
    locks = make(kernel)
    order = []

    def reader1():
        yield from locks.acquire("r1", "r", S)
        yield 10
        locks.release_all("r1")

    def writer():
        yield 1
        yield from locks.acquire("w", "r", X)
        order.append(("w", kernel.now))
        locks.release_all("w")

    def reader2():
        yield 2
        yield from locks.acquire("r2", "r", S)
        order.append(("r2", kernel.now))
        locks.release_all("r2")

    kernel.spawn(reader1())
    kernel.spawn(writer())
    kernel.spawn(reader2())
    kernel.run()
    assert order == [("w", 10.0), ("r2", 10.0)]


def test_upgrade_sole_holder_instant(kernel):
    locks = make(kernel)

    def proc():
        yield from locks.acquire("t1", "r", S)
        yield from locks.acquire("t1", "r", X)
        return locks.holds("t1", "r", X)

    assert run(kernel, proc()) is True


def test_upgrade_waits_for_other_readers(kernel):
    locks = make(kernel)
    times = {}

    def other_reader():
        yield from locks.acquire("t2", "r", S)
        yield 5
        locks.release_all("t2")

    def upgrader():
        yield from locks.acquire("t1", "r", S)
        yield 1
        yield from locks.acquire("t1", "r", X)
        times["upgraded"] = kernel.now

    kernel.spawn(other_reader())
    kernel.spawn(upgrader())
    kernel.run()
    assert times["upgraded"] == 5.0


def test_upgrade_has_priority_over_waiters(kernel):
    locks = make(kernel)
    order = []

    def reader():
        yield from locks.acquire("t1", "r", S)
        yield 2
        yield from locks.acquire("t1", "r", X)  # upgrade
        order.append(("t1-upgraded", kernel.now))
        yield 2
        locks.release_all("t1")

    def writer():
        yield 1
        yield from locks.acquire("t2", "r", X)
        order.append(("t2", kernel.now))
        locks.release_all("t2")

    kernel.spawn(reader())
    kernel.spawn(writer())
    kernel.run()
    assert order[0][0] == "t1-upgraded"


def test_deadlock_detected_requester_aborts(kernel):
    locks = make(kernel)
    outcome = {}

    def t1():
        yield from locks.acquire("t1", "a", X)
        yield 2
        try:
            yield from locks.acquire("t1", "b", X)
            outcome["t1"] = "ok"
        except DeadlockDetected:
            outcome["t1"] = "deadlock"
            locks.release_all("t1")

    def t2():
        yield from locks.acquire("t2", "b", X)
        yield 2
        try:
            yield from locks.acquire("t2", "a", X)
            outcome["t2"] = "ok"
        except DeadlockDetected:
            outcome["t2"] = "deadlock"
            locks.release_all("t2")

    kernel.spawn(t1())
    kernel.spawn(t2())
    kernel.run()
    assert sorted(outcome.values()) == ["deadlock", "ok"]
    assert locks.deadlocks == 1


def test_three_way_deadlock_detected(kernel):
    locks = make(kernel)
    deadlocks = []

    def worker(me, first, second):
        yield from locks.acquire(me, first, X)
        yield 2
        try:
            yield from locks.acquire(me, second, X)
            yield 2
        except DeadlockDetected:
            deadlocks.append(me)
        locks.release_all(me)

    kernel.spawn(worker("t1", "a", "b"))
    kernel.spawn(worker("t2", "b", "c"))
    kernel.spawn(worker("t3", "c", "a"))
    kernel.run()
    assert len(deadlocks) >= 1  # at least one victim breaks the cycle


def test_timeout_raises_and_cleans_queue(kernel):
    locks = make(kernel, timeout=5)
    result = {}

    def holder():
        yield from locks.acquire("t1", "r", X)
        yield 100
        locks.release_all("t1")

    def waiter():
        yield 1
        try:
            yield from locks.acquire("t2", "r", X)
        except LockTimeout:
            result["t2"] = kernel.now

    kernel.spawn(holder())
    kernel.spawn(waiter())
    kernel.run()
    assert result["t2"] == 6.0
    assert locks.timeouts == 1


def test_release_all_wakes_compatible_batch(kernel):
    locks = make(kernel)
    woke = []

    def writer():
        yield from locks.acquire("w", "r", X)
        yield 5
        locks.release_all("w")

    def reader(name):
        yield 1
        yield from locks.acquire(name, "r", S)
        woke.append((name, kernel.now))

    kernel.spawn(writer())
    kernel.spawn(reader("r1"))
    kernel.spawn(reader("r2"))
    kernel.run()
    assert woke == [("r1", 5.0), ("r2", 5.0)]


def test_cancel_wait_fails_future(kernel):
    locks = make(kernel)
    result = {}

    def holder():
        yield from locks.acquire("t1", "r", X)
        yield 100
        locks.release_all("t1")

    def waiter():
        yield 1
        try:
            yield from locks.acquire("t2", "r", X)
        except RuntimeError as exc:
            result["err"] = str(exc)

    kernel.spawn(holder())
    kernel.spawn(waiter())
    kernel.call_at(3, lambda: locks.cancel_wait("t2", RuntimeError("killed")))
    kernel.run()
    assert result["err"] == "killed"


def test_crash_fails_all_waiters(kernel):
    from repro.errors import SiteCrashed

    locks = make(kernel)
    result = []

    def holder():
        yield from locks.acquire("t1", "r", X)
        yield 100

    def waiter():
        yield 1
        try:
            yield from locks.acquire("t2", "r", X)
        except SiteCrashed:
            result.append("crashed")

    kernel.spawn(holder())
    kernel.spawn(waiter())
    kernel.call_at(2, locks.crash)
    kernel.run(raise_failures=False)
    assert result == ["crashed"]
    assert locks.holders_of("r") == {}


def test_metrics_wait_and_hold_time(kernel):
    locks = make(kernel)

    def holder():
        yield from locks.acquire("t1", "r", X)
        yield 10
        locks.release_all("t1")

    def waiter():
        yield from locks.acquire("t2", "r", X)
        yield 5
        locks.release_all("t2")

    kernel.spawn(holder())
    kernel.spawn(waiter())
    kernel.run()
    assert locks.total_wait_time == pytest.approx(10.0)
    assert locks.total_hold_time == pytest.approx(15.0)
    assert locks.waits == 1
