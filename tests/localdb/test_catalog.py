"""Durable catalog."""

import pytest

from repro.errors import UnknownTable
from repro.localdb.catalog import Catalog
from repro.storage.buffer import BufferPool
from repro.storage.disk import StableDisk
from repro.storage.heap import HeapFile
from repro.storage.wal import LogManager


def make(kernel):
    disk = StableDisk(kernel, "s")
    pool = BufferPool(disk, LogManager(disk), capacity=8)
    return disk, pool, Catalog(disk)


def test_define_allocates_disjoint_page_ranges(kernel):
    _, _, catalog = make(kernel)
    a = catalog.define("a", 4)
    b = catalog.define("b", 2)
    assert a.first_page_id == 0
    assert b.first_page_id == 4
    range_a = set(range(a.first_page_id, a.first_page_id + 4))
    range_b = set(range(b.first_page_id, b.first_page_id + 2))
    assert not range_a & range_b


def test_duplicate_table_rejected(kernel):
    _, _, catalog = make(kernel)
    catalog.define("t", 2)
    with pytest.raises(ValueError):
        catalog.define("t", 2)


def test_unknown_table_access_rejected(kernel):
    _, _, catalog = make(kernel)
    with pytest.raises(UnknownTable):
        catalog.heap("ghost")


def test_reload_restores_definitions_and_pins(kernel):
    disk, pool, catalog = make(kernel)
    catalog.define("t", 4)
    heap = HeapFile("t", disk, pool, 0, 4)
    catalog.attach_heap("t", heap)
    catalog.pin_key("t", "x", 2)

    fresh = Catalog(disk)
    fresh.reload(pool)
    assert "t" in fresh
    assert fresh.heap("t").page_of("x") == fresh.heap("t").page_ids[2]


def test_reload_continues_page_allocation(kernel):
    disk, pool, catalog = make(kernel)
    catalog.define("t", 4)
    heap = HeapFile("t", disk, pool, 0, 4)
    catalog.attach_heap("t", heap)

    fresh = Catalog(disk)
    fresh.reload(pool)
    definition = fresh.define("u", 2)
    assert definition.first_page_id == 4  # no overlap with "t"


def test_table_names_sorted(kernel):
    _, _, catalog = make(kernel)
    for name in ("zeta", "alpha"):
        catalog.define(name, 1)
    assert catalog.table_names() == ["alpha", "zeta"]
