"""Group commit: batched log forces."""


from repro.localdb.config import LocalDBConfig
from repro.localdb.engine import LocalDatabase
from tests.conftest import run


def make_db(kernel, window):
    db = LocalDatabase(
        kernel, "gc-site",
        LocalDBConfig(group_commit_window=window, default_buckets=8),
    )

    def init():
        yield from db.create_table("t", 8)
        txn = db.begin()
        for i in range(6):
            yield from db.insert(txn, "t", f"k{i}", 0)
        yield from db.commit(txn)

    run(kernel, init())
    return db


def commit_concurrently(kernel, db, n):
    def worker(i):
        txn = db.begin()
        yield from db.write(txn, "t", f"k{i}", i)
        yield from db.commit(txn)

    processes = [kernel.spawn(worker(i)) for i in range(n)]
    kernel.run()
    return processes


def test_concurrent_commits_share_one_force(kernel):
    db = make_db(kernel, window=2.0)
    forces_before = db.disk.log_forces
    commit_concurrently(kernel, db, 5)
    # All five commits (on distinct pages) ride 1-2 disk forces instead
    # of five.
    assert db.disk.log_forces - forces_before <= 2


def test_without_group_commit_each_commit_forces(kernel):
    db = make_db(kernel, window=0.0)
    forces_before = db.disk.log_forces
    commit_concurrently(kernel, db, 5)
    assert db.disk.log_forces - forces_before == 5


def test_group_commit_adds_bounded_latency(kernel):
    db = make_db(kernel, window=3.0)

    def lone_committer():
        txn = db.begin()
        yield from db.write(txn, "t", "k0", 1)
        start = kernel.now
        yield from db.commit(txn)
        return kernel.now - start

    latency = run(kernel, lone_committer())
    # One window + one force, not more.
    assert latency <= 3.0 + db.config.storage.log_force_time + 1.0


def test_grouped_commits_are_durable(kernel):
    db = make_db(kernel, window=2.0)
    commit_concurrently(kernel, db, 5)
    db.crash()
    run(kernel, db.restart())

    def read_all():
        txn = db.begin()
        values = []
        for i in range(5):
            value = yield from db.read(txn, "t", f"k{i}")
            values.append(value)
        yield from db.commit(txn)
        return values

    assert run(kernel, read_all()) == [0, 1, 2, 3, 4]


def test_crash_during_window_loses_only_unforced(kernel):
    db = make_db(kernel, window=5.0)
    results = {}

    def committer():
        txn = db.begin()
        yield from db.write(txn, "t", "k0", 99)
        try:
            yield from db.commit(txn)
            results["committed"] = True
        except Exception as exc:
            results["committed"] = type(exc).__name__

    kernel.spawn(committer())
    kernel.call_at(kernel.now + 2.0, db.crash)  # inside the window
    kernel.run(raise_failures=False)
    assert results["committed"] in ("SiteCrashed", "TransactionAborted")
    run(kernel, db.restart())

    def read():
        txn = db.begin()
        value = yield from db.read(txn, "t", "k0")
        yield from db.commit(txn)
        return value

    assert run(kernel, read()) == 0  # the unforced commit is gone


def test_late_joiner_triggers_second_round(kernel):
    db = make_db(kernel, window=2.0)

    def early():
        txn = db.begin()
        yield from db.write(txn, "t", "k0", 1)
        yield from db.commit(txn)

    def late():
        yield 2.5  # arrives while the first group is flushing
        txn = db.begin()
        yield from db.write(txn, "t", "k1", 2)
        yield from db.commit(txn)
        return kernel.now

    kernel.spawn(early())
    process = kernel.spawn(late())
    kernel.run()
    assert process.done  # the second round picked it up; no hang
