"""Local engine: CRUD, transactions, commit/abort semantics."""

import pytest

from repro.errors import (
    DuplicateKey,
    InvalidTransactionState,
    KeyNotFound,
    UnknownTable,
)
from repro.localdb.engine import LocalDatabase
from repro.localdb.txn import LocalAbortReason, LocalTxnState
from tests.conftest import run


@pytest.fixture
def db(kernel):
    engine = LocalDatabase(kernel, "site")
    run(kernel, engine.create_table("t", 4))
    return engine


def commit_rows(kernel, db, rows):
    def proc():
        txn = db.begin()
        for key, value in rows.items():
            yield from db.insert(txn, "t", key, value)
        yield from db.commit(txn)

    run(kernel, proc())


def test_insert_read_roundtrip(kernel, db):
    commit_rows(kernel, db, {"k": 10})

    def proc():
        txn = db.begin()
        value = yield from db.read(txn, "t", "k")
        yield from db.commit(txn)
        return value

    assert run(kernel, proc()) == 10


def test_read_missing_returns_none(kernel, db):
    def proc():
        txn = db.begin()
        value = yield from db.read(txn, "t", "nope")
        yield from db.commit(txn)
        return value

    assert run(kernel, proc()) is None


def test_write_is_upsert(kernel, db):
    def proc():
        txn = db.begin()
        yield from db.write(txn, "t", "k", 1)
        yield from db.write(txn, "t", "k", 2)
        yield from db.commit(txn)
        txn2 = db.begin()
        value = yield from db.read(txn2, "t", "k")
        yield from db.commit(txn2)
        return value

    assert run(kernel, proc()) == 2


def test_duplicate_insert_rejected_txn_survives(kernel, db):
    commit_rows(kernel, db, {"k": 1})

    def proc():
        txn = db.begin()
        try:
            yield from db.insert(txn, "t", "k", 2)
        except DuplicateKey:
            pass
        # Logic errors do not kill the transaction.
        yield from db.write(txn, "t", "other", 5)
        yield from db.commit(txn)
        return txn.state

    assert run(kernel, proc()) is LocalTxnState.COMMITTED


def test_delete_missing_key_rejected(kernel, db):
    def proc():
        txn = db.begin()
        try:
            yield from db.delete(txn, "t", "nope")
        except KeyNotFound:
            yield from db.abort(txn)
            return "keynotfound"

    assert run(kernel, proc()) == "keynotfound"


def test_increment_returns_new_value(kernel, db):
    commit_rows(kernel, db, {"c": 10})

    def proc():
        txn = db.begin()
        value = yield from db.increment(txn, "t", "c", -3)
        yield from db.commit(txn)
        return value

    assert run(kernel, proc()) == 7


def test_increment_missing_key_rejected(kernel, db):
    def proc():
        txn = db.begin()
        try:
            yield from db.increment(txn, "t", "ghost", 1)
        except KeyNotFound:
            yield from db.abort(txn)
            return "missing"

    assert run(kernel, proc()) == "missing"


def test_abort_undoes_everything(kernel, db):
    commit_rows(kernel, db, {"a": 1, "b": 2})

    def proc():
        txn = db.begin()
        yield from db.write(txn, "t", "a", 100)
        yield from db.delete(txn, "t", "b")
        yield from db.insert(txn, "t", "c", 3)
        yield from db.increment(txn, "t", "a", 5)
        yield from db.abort(txn)
        check = db.begin()
        a = yield from db.read(check, "t", "a")
        b = yield from db.read(check, "t", "b")
        c = yield from db.read(check, "t", "c")
        yield from db.commit(check)
        return a, b, c

    assert run(kernel, proc()) == (1, 2, None)


def test_operations_after_commit_rejected(kernel, db):
    def proc():
        txn = db.begin()
        yield from db.commit(txn)
        yield from db.read(txn, "t", "k")

    with pytest.raises(InvalidTransactionState):
        run(kernel, proc())


def test_unknown_table_rejected(kernel, db):
    def proc():
        txn = db.begin()
        yield from db.read(txn, "ghost_table", "k")

    with pytest.raises(UnknownTable):
        run(kernel, proc())


def test_scan_sees_committed_rows(kernel, db):
    commit_rows(kernel, db, {"a": 1, "b": 2, "c": 3})

    def proc():
        txn = db.begin()
        rows = yield from db.scan(txn, "t")
        yield from db.commit(txn)
        return rows

    assert run(kernel, proc()) == [("a", 1), ("b", 2), ("c", 3)]


def test_commit_forces_log(kernel, db):
    forces_before = db.disk.log_forces

    def proc():
        txn = db.begin()
        yield from db.write(txn, "t", "k", 1)
        yield from db.commit(txn)

    run(kernel, proc())
    assert db.disk.log_forces == forces_before + 1


def test_abort_does_not_force_log(kernel, db):
    def proc():
        txn = db.begin()
        yield from db.write(txn, "t", "k", 1)
        before = db.disk.log_forces
        yield from db.abort(txn)
        return before

    before = run(kernel, proc())
    assert db.disk.log_forces == before


def test_metrics_counters(kernel, db):
    commit_rows(kernel, db, {"k": 1})

    def proc():
        txn = db.begin()
        yield from db.read(txn, "t", "k")
        yield from db.abort(txn)

    run(kernel, proc())
    metrics = db.metrics()
    assert metrics["commits"] == 1
    assert metrics["aborts"] == {"requested": 1}
    assert metrics["ops"] >= 2


def test_stable_outcome_reflects_log(kernel, db):
    def proc():
        txn = db.begin()
        yield from db.write(txn, "t", "k", 1)
        yield from db.commit(txn)
        txn2 = db.begin()
        yield from db.write(txn2, "t", "k", 2)
        yield from db.abort(txn2)
        return txn.txn_id, txn2.txn_id

    committed_id, aborted_id = run(kernel, proc())
    assert db.stable_outcome(committed_id) == "committed"
    # The abort record may still sit in the unforced tail.
    run(kernel, db.log.force())
    assert db.stable_outcome(aborted_id) == "aborted"
    assert db.stable_outcome("never-existed") is None


def test_gtxn_id_attached(kernel, db):
    txn = db.begin(gtxn_id="G1")
    assert txn.gtxn_id == "G1"
    assert db.find_by_gtxn("G1") is txn
    assert db.find_by_gtxn("G2") is None


def test_abort_reason_classification():
    assert not LocalAbortReason.REQUESTED.erroneous
    for reason in (
        LocalAbortReason.DEADLOCK,
        LocalAbortReason.TIMEOUT,
        LocalAbortReason.VALIDATION,
        LocalAbortReason.CRASH,
        LocalAbortReason.SYSTEM,
    ):
        assert reason.erroneous
