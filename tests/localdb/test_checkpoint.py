"""Checkpointing and log truncation."""


from repro.localdb.engine import LocalDatabase
from tests.conftest import run


def make_db(kernel):
    db = LocalDatabase(kernel, "cp-site")

    def init():
        yield from db.create_table("t", 4)
        txn = db.begin()
        yield from db.insert(txn, "t", "a", 1)
        yield from db.insert(txn, "t", "b", 2)
        yield from db.commit(txn)

    run(kernel, init())
    return db


def do_txns(kernel, db, n):
    def proc():
        for i in range(n):
            txn = db.begin()
            yield from db.write(txn, "t", "a", i)
            yield from db.commit(txn)

    run(kernel, proc())


def read_all(kernel, db):
    def proc():
        txn = db.begin()
        a = yield from db.read(txn, "t", "a")
        b = yield from db.read(txn, "t", "b")
        yield from db.commit(txn)
        return a, b

    return run(kernel, proc())


def test_checkpoint_truncates_stable_log(kernel):
    db = make_db(kernel)
    do_txns(kernel, db, 5)
    before = len(db.disk.stable_log())
    dropped = run(kernel, db.checkpoint())
    assert dropped > 0
    assert len(db.disk.stable_log()) < before


def test_recovery_after_checkpoint(kernel):
    db = make_db(kernel)
    do_txns(kernel, db, 5)
    run(kernel, db.checkpoint())
    do_txns(kernel, db, 2)  # post-checkpoint work, unflushed
    db.crash()
    run(kernel, db.restart())
    assert read_all(kernel, db) == (1, 2)


def test_checkpoint_keeps_active_txn_undo_chain(kernel):
    db = make_db(kernel)

    def proc():
        loser = db.begin()
        yield from db.write(loser, "t", "b", 999)
        yield from db.log.force()
        dropped = yield from db.checkpoint()
        return loser.first_lsn, dropped

    first_lsn, _dropped = run(kernel, proc())
    # The active transaction's begin record must survive truncation.
    assert any(r.lsn == first_lsn for r in db.disk.stable_log())
    db.crash()
    run(kernel, db.restart())
    assert read_all(kernel, db) == (1, 2)  # loser undone despite checkpoint


def test_checkpoint_flushes_committed_state(kernel):
    db = make_db(kernel)
    do_txns(kernel, db, 3)
    run(kernel, db.checkpoint())
    # The stable page now carries the last committed value directly.
    heap = db.catalog.heap("t")
    assert db.disk.stable_page(heap.page_of("a")).get("a") == 2


def test_double_checkpoint_idempotent(kernel):
    db = make_db(kernel)
    do_txns(kernel, db, 3)
    run(kernel, db.checkpoint())
    dropped_again = run(kernel, db.checkpoint())
    assert dropped_again <= 1  # only the previous checkpoint record
    db.crash()
    run(kernel, db.restart())
    assert read_all(kernel, db) == (2, 2)


def test_periodic_checkpointer(kernel):
    db = make_db(kernel)
    checkpointer = db.start_checkpointing(interval=10.0)

    def workload():
        for i in range(6):
            yield 5.0
            txn = db.begin()
            yield from db.write(txn, "t", "a", i * 10)
            yield from db.commit(txn)

    workload_process = kernel.spawn(workload())
    # The checkpointer never terminates on its own: run bounded (long
    # enough for the whole workload), then stop it before draining.
    kernel.run(until=kernel.now + 80)
    assert workload_process.done
    assert db.checkpoints >= 2
    checkpointer.interrupt("test over")
    kernel.run()
    db.crash()
    run(kernel, db.restart())
    assert read_all(kernel, db)[0] == 50


def test_checkpoint_counted_in_trace(kernel):
    db = make_db(kernel)
    do_txns(kernel, db, 1)
    run(kernel, db.checkpoint())
    records = kernel.trace.select(category="checkpoint", site="cp-site")
    assert len(records) == 1
    assert records[0].details["dropped"] >= 0
