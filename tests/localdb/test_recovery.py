"""Crash recovery: analysis, redo, undo, in-doubt reinstatement."""

import pytest

from repro.errors import SiteCrashed
from repro.localdb.config import LocalDBConfig
from repro.localdb.engine import LocalDatabase
from repro.localdb.txn import LocalTxnState
from tests.conftest import run


def make_db(kernel, **kwargs):
    db = LocalDatabase(kernel, "site", LocalDBConfig(**kwargs))

    def init():
        yield from db.create_table("t", 4)
        txn = db.begin()
        yield from db.insert(txn, "t", "a", 1)
        yield from db.insert(txn, "t", "b", 2)
        yield from db.commit(txn)

    run(kernel, init())
    return db


def read_all(kernel, db):
    def proc():
        txn = db.begin()
        a = yield from db.read(txn, "t", "a")
        b = yield from db.read(txn, "t", "b")
        yield from db.commit(txn)
        return a, b

    return run(kernel, proc())


def crash_restart(kernel, db):
    db.crash()
    run(kernel, db.restart())


def test_committed_data_survives_crash(kernel):
    db = make_db(kernel)
    crash_restart(kernel, db)
    assert read_all(kernel, db) == (1, 2)


def test_uncommitted_changes_lost_when_never_flushed(kernel):
    db = make_db(kernel)

    def proc():
        txn = db.begin()
        yield from db.write(txn, "t", "a", 999)

    run(kernel, proc())
    crash_restart(kernel, db)
    assert read_all(kernel, db) == (1, 2)


def test_stolen_dirty_page_undone_on_recovery(kernel):
    """Steal policy: uncommitted data on disk must be rolled back."""
    db = make_db(kernel)

    def proc():
        txn = db.begin()
        yield from db.write(txn, "t", "a", 999)
        yield from db.buffer.flush_all()  # steal: dirty page hits disk

    run(kernel, proc())
    crash_restart(kernel, db)
    assert read_all(kernel, db) == (1, 2)


def test_committed_but_unflushed_changes_redone(kernel):
    """No-force policy: committed data only in the log must be redone."""
    db = make_db(kernel)

    def proc():
        txn = db.begin()
        yield from db.write(txn, "t", "a", 42)
        yield from db.commit(txn)  # forces log, pages stay dirty in buffer

    run(kernel, proc())
    crash_restart(kernel, db)
    assert read_all(kernel, db) == (42, 2)


def test_recovery_summary_reports_losers(kernel):
    from repro.localdb.recovery import recover

    db = make_db(kernel)

    def proc():
        txn = db.begin()
        yield from db.write(txn, "t", "a", 7)
        yield from db.log.force()  # updates stable, no commit record
        return txn.txn_id

    loser_id = run(kernel, proc())
    db.crash()
    db.locks = type(db.locks)(kernel, db.site)
    from repro.storage.buffer import BufferPool

    db.buffer = BufferPool(db.disk, db.log, db.config.buffer_capacity)
    db.log.rebuild_after_crash()
    db.catalog.reload(db.buffer)
    summary = run(kernel, recover(db))
    db.crashed = False
    assert loser_id in summary["losers"]
    assert summary["undone"] >= 1
    assert read_all(kernel, db) == (1, 2)


def test_partial_rollback_resumed_after_crash(kernel):
    """A crash in the middle of an abort leaves CLRs; recovery finishes."""
    db = make_db(kernel)

    def proc():
        txn = db.begin()
        yield from db.write(txn, "t", "a", 10)
        yield from db.write(txn, "t", "b", 20)
        yield from db.log.force()
        # Manually undo one update (as an interrupted rollback would),
        # then crash before the abort record lands on disk.
        yield from db._undo_chain(txn)
        yield from db.log.force(db.log.next_lsn - 2)

    run(kernel, proc())
    crash_restart(kernel, db)
    assert read_all(kernel, db) == (1, 2)


def test_double_recovery_idempotent(kernel):
    db = make_db(kernel)

    def proc():
        txn = db.begin()
        yield from db.write(txn, "t", "a", 5)
        yield from db.commit(txn)
        txn2 = db.begin()
        yield from db.write(txn2, "t", "b", 99)
        yield from db.log.force()

    run(kernel, proc())
    crash_restart(kernel, db)
    first = read_all(kernel, db)
    crash_restart(kernel, db)
    assert read_all(kernel, db) == first == (5, 2)


def test_in_doubt_transaction_reinstated_with_locks(kernel):
    db = make_db(kernel)

    def proc():
        txn = db.begin(gtxn_id="G9")
        yield from db.write(txn, "t", "a", 123)
        yield from db.prepare(txn)
        return txn.txn_id

    txn_id = run(kernel, proc())
    crash_restart(kernel, db)
    recovered = db.find_by_gtxn("G9")
    assert recovered is not None
    assert recovered.state is LocalTxnState.READY
    assert recovered.txn_id == txn_id
    # Its exclusive locks are back: a conflicting writer must block.
    from repro.errors import TransactionAborted

    def conflicting():
        txn = db.begin()
        try:
            yield from db.write(txn, "t", "a", 7)
            return "wrote"
        except TransactionAborted:
            return "blocked-aborted"

    db.config.lock_timeout = 5  # bound the wait
    db.locks.default_timeout = 5
    assert run(kernel, conflicting()) == "blocked-aborted"


def test_in_doubt_can_commit_after_recovery(kernel):
    db = make_db(kernel)

    def proc():
        txn = db.begin(gtxn_id="G1")
        yield from db.write(txn, "t", "a", 55)
        yield from db.prepare(txn)

    run(kernel, proc())
    crash_restart(kernel, db)
    recovered = db.find_by_gtxn("G1")

    def finish():
        yield from db.commit(recovered)

    run(kernel, finish())
    assert read_all(kernel, db) == (55, 2)


def test_in_doubt_can_abort_after_recovery(kernel):
    db = make_db(kernel)

    def proc():
        txn = db.begin(gtxn_id="G1")
        yield from db.write(txn, "t", "a", 55)
        yield from db.prepare(txn)

    run(kernel, proc())
    crash_restart(kernel, db)
    recovered = db.find_by_gtxn("G1")

    def finish():
        yield from db.abort(recovered)

    run(kernel, finish())
    assert read_all(kernel, db) == (1, 2)


def test_active_ops_fail_during_crash(kernel):
    db = make_db(kernel)
    results = {}

    def slow_reader():
        txn = db.begin()
        try:
            # Buffer is cold after we crash mid-operation below.
            yield from db.read(txn, "t", "a")
            yield 10
            yield from db.read(txn, "t", "b")
            results["end"] = "ok"
        except Exception as exc:
            results["end"] = type(exc).__name__

    kernel.spawn(slow_reader())
    kernel.call_at(kernel.now + 5, db.crash)
    kernel.run(raise_failures=False)
    assert results["end"] in ("TransactionAborted", "SiteCrashed")


def test_operations_rejected_while_crashed(kernel):
    db = make_db(kernel)
    db.crash()
    with pytest.raises(SiteCrashed):
        db.begin()


def test_catalog_survives_crash(kernel):
    db = make_db(kernel)
    db.pin_key("t", "special", 0)
    crash_restart(kernel, db)
    assert "t" in db.catalog
    assert db.catalog.heap("t").page_of("special") == db.catalog.heap("t").page_ids[0]


def test_restart_on_healthy_engine_rejected(kernel):
    from repro.errors import InvalidTransactionState

    db = make_db(kernel)
    with pytest.raises(InvalidTransactionState):
        run(kernel, db.restart())
