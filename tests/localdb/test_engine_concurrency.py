"""Concurrent transactions against one engine: 2PL behaviour."""

import pytest

from repro.errors import TransactionAborted
from repro.localdb.config import LocalDBConfig
from repro.localdb.engine import LocalDatabase
from repro.localdb.txn import LocalAbortReason
from tests.conftest import run


def setup_db(kernel, **config_kwargs):
    db = LocalDatabase(kernel, "site", LocalDBConfig(**config_kwargs))

    def init():
        yield from db.create_table("t", 2)
        db.pin_key("t", "x", 0)
        db.pin_key("t", "y", 0)  # same page as x
        db.pin_key("t", "z", 1)
        txn = db.begin()
        for key in ("x", "y", "z"):
            yield from db.insert(txn, "t", key, 0)
        yield from db.commit(txn)

    run(kernel, init())
    return db


def test_writers_on_same_page_serialize(kernel):
    db = setup_db(kernel)
    timeline = []

    def writer(name, key):
        txn = db.begin()
        yield from db.write(txn, "t", key, name)
        timeline.append((name, "wrote", kernel.now))
        yield 5
        yield from db.commit(txn)
        timeline.append((name, "committed", kernel.now))

    kernel.spawn(writer("w1", "x"))
    kernel.spawn(writer("w2", "y"))  # same page -> must wait for w1
    kernel.run()
    w1_commit = next(t for n, e, t in timeline if n == "w1" and e == "committed")
    w2_write = next(t for n, e, t in timeline if n == "w2" and e == "wrote")
    assert w2_write >= w1_commit


def test_writers_on_different_pages_overlap(kernel):
    db = setup_db(kernel)
    writes = {}

    def writer(name, key):
        txn = db.begin()
        yield from db.write(txn, "t", key, name)
        writes[name] = kernel.now
        yield 5
        yield from db.commit(txn)

    kernel.spawn(writer("w1", "x"))
    kernel.spawn(writer("w2", "z"))  # different page: no blocking
    kernel.run()
    assert abs(writes["w1"] - writes["w2"]) < 5


def test_readers_share_page(kernel):
    db = setup_db(kernel)
    reads = {}

    def reader(name):
        txn = db.begin()
        yield from db.read(txn, "t", "x")
        reads[name] = kernel.now
        yield 5
        yield from db.commit(txn)

    kernel.spawn(reader("r1"))
    kernel.spawn(reader("r2"))
    kernel.run()
    assert abs(reads["r1"] - reads["r2"]) < 1


def test_deadlock_victim_rolled_back_automatically(kernel):
    db = setup_db(kernel, lock_timeout=None)
    results = {}

    def worker(name, first, second):
        txn = db.begin()
        try:
            yield from db.write(txn, "t", first, name)
            yield 2
            yield from db.write(txn, "t", second, name)
            yield from db.commit(txn)
            results[name] = "committed"
        except TransactionAborted as exc:
            results[name] = exc.reason

    kernel.spawn(worker("a", "x", "z"))
    kernel.spawn(worker("b", "z", "x"))
    kernel.run()
    assert sorted(str(v) for v in results.values()) == [
        "LocalAbortReason.DEADLOCK", "committed",
    ]
    # Victim's changes must be gone; winner's visible.
    def check():
        txn = db.begin()
        x = yield from db.read(txn, "t", "x")
        z = yield from db.read(txn, "t", "z")
        yield from db.commit(txn)
        return x, z

    x, z = run(kernel, check())
    winner = next(k for k, v in results.items() if v == "committed")
    assert x == winner and z == winner


def test_lock_timeout_aborts_waiter(kernel):
    db = setup_db(kernel, lock_timeout=5, deadlock_detection=False)
    results = {}

    def holder():
        txn = db.begin()
        yield from db.write(txn, "t", "x", 1)
        yield 50
        yield from db.commit(txn)

    def waiter():
        yield 1
        txn = db.begin()
        try:
            yield from db.write(txn, "t", "x", 2)
        except TransactionAborted as exc:
            results["reason"] = exc.reason

    kernel.spawn(holder())
    kernel.spawn(waiter())
    kernel.run()
    assert results["reason"] is LocalAbortReason.TIMEOUT


def test_force_abort_running_txn(kernel):
    db = setup_db(kernel)

    def victim():
        txn = db.begin()
        yield from db.write(txn, "t", "x", 99)
        db.force_abort(txn.txn_id, LocalAbortReason.SYSTEM)
        yield 5  # let the abort land
        return txn

    txn = run(kernel, victim())
    assert txn.abort_reason is LocalAbortReason.SYSTEM

    def check():
        check_txn = db.begin()
        x = yield from db.read(check_txn, "t", "x")
        yield from db.commit(check_txn)
        return x

    assert run(kernel, check()) == 0


def test_force_abort_waiting_txn_cancels_wait(kernel):
    db = setup_db(kernel, lock_timeout=None)
    results = {}

    def holder():
        txn = db.begin()
        yield from db.write(txn, "t", "x", 1)
        yield 50
        yield from db.commit(txn)

    def waiter():
        yield 1
        txn = db.begin()
        results["txn_id"] = txn.txn_id
        try:
            yield from db.write(txn, "t", "x", 2)
        except TransactionAborted:
            results["aborted_at"] = kernel.now

    kernel.spawn(holder())
    kernel.spawn(waiter())
    kernel.call_at(
        10, lambda: db.force_abort(results["txn_id"], LocalAbortReason.SYSTEM)
    )
    kernel.run()
    assert results["aborted_at"] == pytest.approx(10.0)


def test_force_abort_committed_txn_is_noop(kernel):
    db = setup_db(kernel)

    def proc():
        txn = db.begin()
        yield from db.write(txn, "t", "x", 42)
        yield from db.commit(txn)
        db.force_abort(txn.txn_id, LocalAbortReason.SYSTEM)
        yield 2
        check = db.begin()
        x = yield from db.read(check, "t", "x")
        yield from db.commit(check)
        return x

    assert run(kernel, proc()) == 42


def test_strict_2pl_no_dirty_reads(kernel):
    db = setup_db(kernel)
    observed = {}

    def writer():
        txn = db.begin()
        yield from db.write(txn, "t", "x", 99)
        yield 10
        yield from db.abort(txn)

    def reader():
        yield 1
        txn = db.begin()
        value = yield from db.read(txn, "t", "x")
        observed["x"] = value
        yield from db.commit(txn)

    kernel.spawn(writer())
    kernel.spawn(reader())
    kernel.run()
    # The reader blocked until the writer aborted: it saw the old value.
    assert observed["x"] == 0
