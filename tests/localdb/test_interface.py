"""The standard vs. preparable TM interfaces -- the paper's premise."""

import pytest

from repro.errors import UnsupportedInterface
from repro.localdb.engine import LocalDatabase
from repro.localdb.interface import PreparableTMInterface, StandardTMInterface
from repro.localdb.txn import LocalTxnState
from tests.conftest import run


@pytest.fixture
def engine(kernel):
    db = LocalDatabase(kernel, "site")
    run(kernel, db.create_table("t", 4))
    return db


def test_standard_interface_has_no_prepare(kernel, engine):
    """The central observation: existing TMs offer no ready state."""
    interface = StandardTMInterface(engine)
    assert interface.has_prepare is False
    txn_id = interface.begin()
    with pytest.raises(UnsupportedInterface):
        run(kernel, interface.prepare(txn_id))


def test_standard_commit_is_atomic_transition(kernel, engine):
    """No externally visible state between running and committed."""
    interface = StandardTMInterface(engine)
    txn_id = interface.begin()
    states = []

    def proc():
        yield from interface.write(txn_id, "t", "k", 1)
        states.append(interface.status(txn_id))
        yield from interface.commit(txn_id)
        states.append(interface.status(txn_id))

    run(kernel, proc())
    assert states == [LocalTxnState.RUNNING, LocalTxnState.COMMITTED]


def test_preparable_interface_reaches_ready(kernel, engine):
    interface = PreparableTMInterface(engine)
    assert interface.has_prepare is True
    txn_id = interface.begin(gtxn_id="G1")

    def proc():
        yield from interface.write(txn_id, "t", "k", 1)
        yield from interface.prepare(txn_id)
        return interface.status(txn_id)

    assert run(kernel, proc()) is LocalTxnState.READY


def test_ready_txn_can_commit(kernel, engine):
    interface = PreparableTMInterface(engine)
    txn_id = interface.begin()

    def proc():
        yield from interface.write(txn_id, "t", "k", 5)
        yield from interface.prepare(txn_id)
        yield from interface.commit(txn_id)
        check = interface.begin()
        value = yield from interface.read(check, "t", "k")
        yield from interface.commit(check)
        return value

    assert run(kernel, proc()) == 5


def test_ready_txn_can_abort(kernel, engine):
    interface = PreparableTMInterface(engine)
    txn_id = interface.begin()

    def proc():
        yield from interface.write(txn_id, "t", "k", 5)
        yield from interface.prepare(txn_id)
        yield from interface.abort(txn_id)
        check = interface.begin()
        value = yield from interface.read(check, "t", "k")
        yield from interface.commit(check)
        return value

    assert run(kernel, proc()) is None


def test_prepare_forces_log(kernel, engine):
    interface = PreparableTMInterface(engine)
    txn_id = interface.begin()

    def proc():
        yield from interface.write(txn_id, "t", "k", 1)
        before = engine.disk.log_forces
        yield from interface.prepare(txn_id)
        return before

    before = run(kernel, proc())
    assert engine.disk.log_forces == before + 1


def test_status_of_unknown_txn_is_none(engine):
    interface = StandardTMInterface(engine)
    assert interface.status("ghost") is None


def test_durable_outcome_passthrough(kernel, engine):
    interface = StandardTMInterface(engine)
    txn_id = interface.begin()

    def proc():
        yield from interface.write(txn_id, "t", "k", 1)
        yield from interface.commit(txn_id)

    run(kernel, proc())
    assert interface.durable_outcome(txn_id) == "committed"


def test_all_operations_via_interface(kernel, engine):
    interface = StandardTMInterface(engine)
    txn_id = interface.begin()

    def proc():
        yield from interface.insert(txn_id, "t", "n", 10)
        value = yield from interface.increment(txn_id, "t", "n", 5)
        yield from interface.write(txn_id, "t", "m", 1)
        yield from interface.delete(txn_id, "t", "m")
        rows = yield from interface.scan(txn_id, "t")
        yield from interface.commit(txn_id)
        return value, rows

    value, rows = run(kernel, proc())
    assert value == 15
    assert rows == [("n", 15)]
