"""Waits-for graph and cycle detection."""

from repro.localdb.deadlock import WaitsForGraph


def test_no_cycle_on_chain():
    graph = WaitsForGraph()
    graph.set_blockers("r1", "a", {"b"})
    graph.set_blockers("r2", "b", {"c"})
    assert graph.find_cycle_from("a") is None


def test_two_cycle_detected():
    graph = WaitsForGraph()
    graph.set_blockers("r1", "a", {"b"})
    graph.set_blockers("r2", "b", {"a"})
    cycle = graph.find_cycle_from("a")
    assert cycle is not None
    assert cycle[0] == "a" and cycle[-1] == "a"


def test_long_cycle_detected():
    graph = WaitsForGraph()
    for waiter, blocker in [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")]:
        graph.set_blockers(f"r-{waiter}", waiter, {blocker})
    assert graph.find_cycle_from("a") is not None


def test_cycle_not_through_start_ignored():
    graph = WaitsForGraph()
    graph.set_blockers("r1", "b", {"c"})
    graph.set_blockers("r2", "c", {"b"})
    graph.set_blockers("r3", "a", {"b"})
    # a -> b <-> c cycle exists but does not pass through a.
    assert graph.find_cycle_from("a") is None


def test_self_edges_dropped():
    graph = WaitsForGraph()
    graph.set_blockers("r", "a", {"a", "b"})
    assert graph.adjacency() == {"a": {"b"}}


def test_clear_removes_edge():
    graph = WaitsForGraph()
    graph.set_blockers("r1", "a", {"b"})
    graph.set_blockers("r2", "b", {"a"})
    graph.clear("r1", "a")
    assert graph.find_cycle_from("b") is None


def test_clear_txn_removes_all_waits():
    graph = WaitsForGraph()
    graph.set_blockers("r1", "a", {"b"})
    graph.set_blockers("r2", "a", {"c"})
    graph.set_blockers("r3", "b", {"a"})
    graph.clear_txn("a")
    assert graph.adjacency() == {"b": {"a"}}


def test_per_resource_edges_independent():
    graph = WaitsForGraph()
    graph.set_blockers("r1", "a", {"b"})
    graph.set_blockers("r2", "a", {"c"})
    graph.set_blockers("r1", "a", {"d"})  # restate r1's contribution
    assert graph.adjacency()["a"] == {"c", "d"}


def test_empty_blockers_clears_entry():
    graph = WaitsForGraph()
    graph.set_blockers("r", "a", {"b"})
    graph.set_blockers("r", "a", set())
    assert len(graph) == 0


def test_deterministic_cycle_for_same_graph():
    def build():
        graph = WaitsForGraph()
        graph.set_blockers("r1", "a", {"b", "c"})
        graph.set_blockers("r2", "b", {"a"})
        graph.set_blockers("r3", "c", {"a"})
        return graph.find_cycle_from("a")

    assert build() == build()
