"""Optimistic (backward-validation) scheduler."""


from repro.errors import TransactionAborted
from repro.localdb.config import LocalDBConfig
from repro.localdb.engine import LocalDatabase
from repro.localdb.txn import LocalAbortReason
from tests.conftest import run


def make_db(kernel):
    db = LocalDatabase(kernel, "occ-site", LocalDBConfig(scheduler="occ"))

    def init():
        yield from db.create_table("t", 4)
        txn = db.begin()
        yield from db.insert(txn, "t", "a", 10)
        yield from db.insert(txn, "t", "b", 20)
        yield from db.commit(txn)

    run(kernel, init())
    return db


def test_basic_commit(kernel):
    db = make_db(kernel)

    def proc():
        txn = db.begin()
        a = yield from db.read(txn, "t", "a")
        yield from db.write(txn, "t", "a", a + 1)
        yield from db.commit(txn)
        check = db.begin()
        value = yield from db.read(check, "t", "a")
        yield from db.commit(check)
        return value

    assert run(kernel, proc()) == 11


def test_reads_own_writes(kernel):
    db = make_db(kernel)

    def proc():
        txn = db.begin()
        yield from db.write(txn, "t", "a", 99)
        value = yield from db.read(txn, "t", "a")
        yield from db.abort(txn)
        return value

    assert run(kernel, proc()) == 99


def test_no_dirty_reads_before_install(kernel):
    db = make_db(kernel)
    observed = {}

    def writer():
        txn = db.begin()
        yield from db.write(txn, "t", "a", 999)
        yield 10  # long think time before commit
        yield from db.commit(txn)

    def reader():
        yield 2
        txn = db.begin()
        value = yield from db.read(txn, "t", "a")
        observed["a"] = value
        yield from db.commit(txn)

    kernel.spawn(writer())
    kernel.spawn(reader())
    kernel.run()
    assert observed["a"] == 10  # workspace writes invisible until commit


def test_validation_failure_on_stale_read(kernel):
    db = make_db(kernel)
    results = {}

    def slow():
        txn = db.begin()
        value = yield from db.read(txn, "t", "a")
        yield 10
        try:
            yield from db.write(txn, "t", "b", value)
            yield from db.commit(txn)
            results["slow"] = "committed"
        except TransactionAborted as exc:
            results["slow"] = exc.reason

    def fast():
        yield 2
        txn = db.begin()
        yield from db.write(txn, "t", "a", 0)
        yield from db.commit(txn)
        results["fast"] = "committed"

    kernel.spawn(slow())
    kernel.spawn(fast())
    kernel.run()
    assert results["fast"] == "committed"
    assert results["slow"] is LocalAbortReason.VALIDATION


def test_disjoint_transactions_both_commit(kernel):
    db = make_db(kernel)
    results = []

    def worker(key):
        txn = db.begin()
        value = yield from db.read(txn, "t", key)
        yield 5
        yield from db.write(txn, "t", key, value * 2)
        yield from db.commit(txn)
        results.append(key)

    kernel.spawn(worker("a"))
    kernel.spawn(worker("b"))
    kernel.run()
    assert sorted(results) == ["a", "b"]


def test_blind_writes_both_commit(kernel):
    """Writers with empty read sets never fail backward validation."""
    db = make_db(kernel)
    committed = []

    def writer(i):
        txn = db.begin()
        yield from db.write(txn, "t", "a", i)
        yield i  # stagger commits
        yield from db.commit(txn)
        committed.append(i)

    kernel.spawn(writer(1))
    kernel.spawn(writer(2))
    kernel.run()
    assert sorted(committed) == [1, 2]


def test_increment_in_occ(kernel):
    db = make_db(kernel)

    def proc():
        txn = db.begin()
        value = yield from db.increment(txn, "t", "a", 5)
        yield from db.commit(txn)
        return value

    assert run(kernel, proc()) == 15


def test_occ_abort_discards_workspace(kernel):
    db = make_db(kernel)

    def proc():
        txn = db.begin()
        yield from db.write(txn, "t", "a", 0)
        yield from db.abort(txn)
        check = db.begin()
        value = yield from db.read(check, "t", "a")
        yield from db.commit(check)
        return value

    assert run(kernel, proc()) == 10


def test_occ_delete_and_insert(kernel):
    db = make_db(kernel)

    def proc():
        txn = db.begin()
        yield from db.delete(txn, "t", "a")
        yield from db.insert(txn, "t", "c", 30)
        yield from db.commit(txn)
        check = db.begin()
        a = yield from db.read(check, "t", "a")
        c = yield from db.read(check, "t", "c")
        yield from db.commit(check)
        return a, c

    assert run(kernel, proc()) == (None, 30)


def test_occ_scan_merges_workspace(kernel):
    db = make_db(kernel)

    def proc():
        txn = db.begin()
        yield from db.write(txn, "t", "c", 30)
        yield from db.delete(txn, "t", "a")
        rows = yield from db.scan(txn, "t")
        yield from db.abort(txn)
        return rows

    assert run(kernel, proc()) == [("b", 20), ("c", 30)]


def test_validation_uses_start_snapshot_boundary(kernel):
    """Writes committed *before* a transaction starts never conflict."""
    db = make_db(kernel)

    def proc():
        t1 = db.begin()
        yield from db.write(t1, "t", "a", 1)
        yield from db.commit(t1)
        t2 = db.begin()  # starts after t1 committed
        yield from db.read(t2, "t", "a")
        yield from db.write(t2, "t", "b", 2)
        yield from db.commit(t2)
        return "ok"

    assert run(kernel, proc()) == "ok"
