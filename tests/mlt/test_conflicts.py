"""L1 conflict tables: commutativity semantics."""

import pytest

from repro.mlt.conflicts import (
    READ_WRITE_TABLE,
    SEMANTIC_TABLE,
    ConflictTable,
    L1Mode,
)


def test_semantic_modes():
    assert SEMANTIC_TABLE.mode_for("read") is L1Mode.SHARED
    assert SEMANTIC_TABLE.mode_for("increment") is L1Mode.INCREMENT
    for kind in ("write", "insert", "delete"):
        assert SEMANTIC_TABLE.mode_for(kind) is L1Mode.EXCLUSIVE


def test_semantic_increments_commute():
    assert not SEMANTIC_TABLE.conflicts("increment", "increment")


def test_semantic_reads_share():
    assert not SEMANTIC_TABLE.conflicts("read", "read")


def test_semantic_read_vs_increment_conflicts():
    assert SEMANTIC_TABLE.conflicts("read", "increment")
    assert SEMANTIC_TABLE.conflicts("increment", "read")


def test_semantic_write_conflicts_with_everything():
    for kind in ("read", "increment", "write", "insert", "delete"):
        assert SEMANTIC_TABLE.conflicts("write", kind)


def test_rw_table_increment_is_a_write():
    assert READ_WRITE_TABLE.mode_for("increment") is L1Mode.EXCLUSIVE
    assert READ_WRITE_TABLE.conflicts("increment", "increment")


def test_rw_table_reads_still_share():
    assert not READ_WRITE_TABLE.conflicts("read", "read")


def test_symmetry_of_conflicts():
    kinds = ("read", "write", "increment", "insert", "delete")
    for table in (SEMANTIC_TABLE, READ_WRITE_TABLE):
        for a in kinds:
            for b in kinds:
                assert table.conflicts(a, b) == table.conflicts(b, a)


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        SEMANTIC_TABLE.mode_for("merge")


def test_custom_table():
    table = ConflictTable(
        "everything-commutes",
        {"read": L1Mode.SHARED, "increment": L1Mode.INCREMENT,
         "write": L1Mode.EXCLUSIVE, "insert": L1Mode.EXCLUSIVE,
         "delete": L1Mode.EXCLUSIVE},
        [frozenset({L1Mode.SHARED}), frozenset({L1Mode.INCREMENT}),
         frozenset({L1Mode.SHARED, L1Mode.INCREMENT})],
    )
    assert not table.conflicts("read", "increment")
    assert table.conflicts("write", "write")
