"""Operations and the inverse-action algebra."""

import pytest

from repro.mlt.actions import (
    Operation,
    delete,
    increment,
    insert,
    inverse_of,
    read,
    write,
)


def test_constructors():
    assert read("t", "k").kind == "read"
    assert write("t", "k", 5).value == 5
    assert increment("t", "k", -2).value == -2
    assert insert("t", "k", 1).kind == "insert"
    assert delete("t", "k").kind == "delete"


def test_custom_kinds_allowed_for_upper_levels():
    # Higher abstraction levels define their own action kinds.
    assert Operation("transfer", "t", ("a", "b"), 5).kind == "transfer"


def test_empty_kind_rejected():
    with pytest.raises(ValueError):
        Operation("", "t", "k")


def test_writes_property():
    assert not read("t", "k").writes
    for op in (write("t", "k", 1), increment("t", "k", 1), insert("t", "k", 1), delete("t", "k")):
        assert op.writes


def test_routed_binds_site():
    op = write("global_accounts", "k", 1).routed("bank_a", "accounts")
    assert op.site == "bank_a"
    assert op.local_table == "accounts"
    assert op.table == "global_accounts"  # global name preserved


def test_inverse_of_read_is_none():
    assert inverse_of(read("t", "k"), before=5) is None


def test_inverse_of_increment_is_commutative_decrement():
    inverse = inverse_of(increment("t", "k", 7), before=100)
    assert inverse.kind == "increment"
    assert inverse.value == -7  # independent of the before image


def test_inverse_of_write_restores_before():
    inverse = inverse_of(write("t", "k", 9), before=4)
    assert inverse.kind == "write"
    assert inverse.value == 4


def test_inverse_of_write_over_absent_key_deletes():
    inverse = inverse_of(write("t", "k", 9), before=None)
    assert inverse.kind == "delete"


def test_inverse_of_insert_deletes():
    assert inverse_of(insert("t", "k", 1), before=None).kind == "delete"


def test_inverse_of_delete_reinserts_before():
    inverse = inverse_of(delete("t", "k"), before=42)
    assert inverse.kind == "insert"
    assert inverse.value == 42


def test_inverse_preserves_routing():
    op = increment("t", "k", 3).routed("s1", "lt")
    inverse = inverse_of(op, before=None)
    assert inverse.site == "s1"
    assert inverse.local_table == "lt"


def test_str_rendering():
    assert "increment" in str(increment("t", "k", 3))
    assert "write" in str(write("t", "k", 1))
