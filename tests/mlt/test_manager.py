"""Two-level transaction manager (Figure 8 semantics)."""


from repro.localdb.engine import LocalDatabase
from repro.mlt.actions import increment, read, write
from repro.mlt.conflicts import READ_WRITE_TABLE
from repro.mlt.manager import SingleLevelManager, TwoLevelManager
from repro.mlt.theory import check_l1, verify_two_level
from tests.conftest import run


def make_engine(kernel):
    db = LocalDatabase(kernel, "store")

    def init():
        yield from db.create_table("obj", 2)
        db.pin_key("obj", "x", 0)
        db.pin_key("obj", "y", 0)  # Figure 8: x and y share page p
        txn = db.begin()
        yield from db.insert(txn, "obj", "x", 0)
        yield from db.insert(txn, "obj", "y", 0)
        yield from db.commit(txn)

    run(kernel, init())
    return db


def read_value(kernel, db, key):
    def proc():
        txn = db.begin()
        value = yield from db.read(txn, "obj", key)
        yield from db.commit(txn)
        return value

    return run(kernel, proc())


def test_committed_increments_apply(kernel):
    db = make_engine(kernel)
    mgr = TwoLevelManager(kernel, db)
    result = run(kernel, mgr.run("T1", [increment("obj", "x", 3), increment("obj", "y", 2)]))
    assert result.committed
    assert read_value(kernel, db, "x") == 3
    assert read_value(kernel, db, "y") == 2


def test_figure8_concurrent_increments_on_same_object(kernel):
    """Both T1 and T2 hold increment locks on x concurrently (Figure 8)."""
    db = make_engine(kernel)
    mgr = TwoLevelManager(kernel, db)
    overlap = {}

    def t1():
        result = yield from mgr.run("T1", [increment("obj", "x", 1), increment("obj", "y", 1)])
        overlap["T1"] = result.committed

    def t2():
        result = yield from mgr.run("T2", [increment("obj", "x", 1)])
        overlap["T2"] = result.committed

    kernel.spawn(t1())
    kernel.spawn(t2())
    kernel.run()
    assert overlap == {"T1": True, "T2": True}
    assert read_value(kernel, db, "x") == 2
    assert read_value(kernel, db, "y") == 1
    report = verify_two_level(db, mgr.l1_history, committed_l1={"T1", "T2"})
    assert report.serializable


def test_intended_abort_undoes_by_inverse_actions(kernel):
    db = make_engine(kernel)
    mgr = TwoLevelManager(kernel, db)
    result = run(
        kernel,
        mgr.run("T1", [increment("obj", "x", 5), increment("obj", "y", 7)], abort_after=2),
    )
    assert not result.committed
    assert result.abort_reason == "intended"
    assert result.inverse_actions == 2
    assert read_value(kernel, db, "x") == 0
    assert read_value(kernel, db, "y") == 0


def test_undo_preserves_other_transactions_increment(kernel):
    """The Figure 8 recovery argument: undoing T1 by decrement must not
    destroy T2's interleaved increment (page-image undo would)."""
    db = make_engine(kernel)
    mgr = TwoLevelManager(kernel, db)

    def t1():
        yield from mgr.run(
            "T1", [increment("obj", "x", 10), increment("obj", "y", 1)], abort_after=2
        )

    def t2():
        yield 0.5  # land between T1's actions
        yield from mgr.run("T2", [increment("obj", "x", 100)])

    kernel.spawn(t1())
    kernel.spawn(t2())
    kernel.run()
    assert read_value(kernel, db, "x") == 100  # T2 survives T1's undo


def test_partial_execution_abort(kernel):
    db = make_engine(kernel)
    mgr = TwoLevelManager(kernel, db)
    result = run(
        kernel,
        mgr.run("T1", [increment("obj", "x", 5), increment("obj", "y", 7)], abort_after=1),
    )
    assert result.actions_executed == 1
    assert result.inverse_actions == 1
    assert read_value(kernel, db, "x") == 0
    assert read_value(kernel, db, "y") == 0


def test_reads_collected(kernel):
    db = make_engine(kernel)
    mgr = TwoLevelManager(kernel, db)
    result = run(kernel, mgr.run("T1", [increment("obj", "x", 4), read("obj", "x")]))
    assert result.reads == {"obj['x']": 4}


def test_inverse_actions_recorded_in_history(kernel):
    db = make_engine(kernel)
    mgr = TwoLevelManager(kernel, db)
    run(kernel, mgr.run("T1", [increment("obj", "x", 5)], abort_after=1))
    kinds = [(txn, kind) for _, txn, kind, _, _ in mgr.l1_history]
    assert kinds == [("T1", "increment"), ("T1", "increment")]  # fwd + inverse


def test_rw_conflict_table_blocks_concurrent_increments(kernel):
    """Ablation: without commutativity the increments serialize."""
    db = make_engine(kernel)
    mgr = TwoLevelManager(kernel, db, conflicts=READ_WRITE_TABLE)
    times = {}

    def t(name, delay):
        yield delay
        start = kernel.now
        yield from mgr.run(name, [increment("obj", "x", 1)])
        times[name] = (start, kernel.now)

    kernel.spawn(t("T1", 0))
    kernel.spawn(t("T2", 0.1))
    kernel.run()
    # T2 could not start its increment before T1 finished.
    assert times["T2"][1] > times["T1"][1]


def test_single_level_manager_commits(kernel):
    db = make_engine(kernel)
    mgr = SingleLevelManager(kernel, db)
    result = run(kernel, mgr.run("T1", [increment("obj", "x", 5), write("obj", "y", 9)]))
    assert result.committed
    assert read_value(kernel, db, "x") == 5
    assert read_value(kernel, db, "y") == 9


def test_single_level_blocks_on_shared_page(kernel):
    """Flat transactions hold page locks to the end: no Figure 8 overlap."""
    db = make_engine(kernel)
    mgr = SingleLevelManager(kernel, db)
    times = {}

    def t(name, key, delay):
        yield delay
        yield from mgr.run(name, [increment("obj", key, 1)], abort_after=None)
        times[name] = kernel.now

    def slow():
        txn = db.begin()
        yield from db.increment(txn, "obj", "x", 1)
        yield 20  # hold the page lock
        yield from db.commit(txn)
        times["slow"] = kernel.now

    kernel.spawn(slow())
    kernel.spawn(t("T2", "y", 1))  # same page as x -> blocked
    kernel.run()
    assert times["T2"] >= times["slow"]


def test_single_level_intended_abort(kernel):
    db = make_engine(kernel)
    mgr = SingleLevelManager(kernel, db)
    result = run(kernel, mgr.run("T1", [increment("obj", "x", 5)], abort_after=1))
    assert not result.committed
    assert read_value(kernel, db, "x") == 0


def test_l1_checker_flags_nonserializable_history():
    history = [
        (1, "T1", "read", "obj", "x"),
        (2, "T2", "increment", "obj", "x"),
        (3, "T1", "read", "obj", "x"),
    ]
    report = check_l1(history)
    assert not report.serializable  # T1 -> T2 -> T1 under semantic conflicts
