"""Semantic L1 lock manager."""

import pytest

from repro.errors import DeadlockDetected, LockTimeout
from repro.mlt.conflicts import READ_WRITE_TABLE, SEMANTIC_TABLE, L1Mode
from repro.mlt.locks import SemanticLockManager
from tests.conftest import run

S, I, X = L1Mode.SHARED, L1Mode.INCREMENT, L1Mode.EXCLUSIVE


def make(kernel, table=SEMANTIC_TABLE, timeout=None):
    return SemanticLockManager(kernel, table, default_timeout=timeout)


def test_increment_locks_commute(kernel):
    locks = make(kernel)

    def proc():
        yield from locks.acquire("g1", ("t", "x"), I)
        yield from locks.acquire("g2", ("t", "x"), I)
        return sorted(locks.holders_of(("t", "x")))

    assert run(kernel, proc()) == ["g1", "g2"]


def test_exclusive_blocks_increment(kernel):
    locks = make(kernel)
    grant_time = {}

    def writer():
        yield from locks.acquire("g1", ("t", "x"), X)
        yield 8
        locks.release_all("g1")

    def incrementer():
        yield 1
        yield from locks.acquire("g2", ("t", "x"), I)
        grant_time["g2"] = kernel.now

    kernel.spawn(writer())
    kernel.spawn(incrementer())
    kernel.run()
    assert grant_time["g2"] == 8.0


def test_rw_table_serializes_increments(kernel):
    locks = make(kernel, table=READ_WRITE_TABLE)
    grant_time = {}

    def first():
        yield from locks.acquire("g1", ("t", "x"), X)
        yield 5
        locks.release_all("g1")

    def second():
        yield 1
        yield from locks.acquire("g2", ("t", "x"), X)
        grant_time["g2"] = kernel.now

    kernel.spawn(first())
    kernel.spawn(second())
    kernel.run()
    assert grant_time["g2"] == 5.0


def test_mode_sets_accumulate(kernel):
    locks = make(kernel)

    def proc():
        yield from locks.acquire("g1", ("t", "x"), S)
        yield from locks.acquire("g1", ("t", "x"), I)
        return locks.holders_of(("t", "x"))["g1"]

    assert run(kernel, proc()) == {S, I}


def test_conversion_priority_no_self_deadlock(kernel):
    """A holder converting S->I must not queue behind a compatible waiter
    that waits on its own held S mode (the FIFO self-deadlock)."""
    locks = make(kernel)
    done = []

    def holder():
        yield from locks.acquire("g1", ("t", "x"), S)
        yield 2
        # g2's I request is queued (conflicts with our S); our own I
        # conversion must jump the queue.
        yield from locks.acquire("g1", ("t", "x"), I)
        done.append(("g1", kernel.now))
        locks.release_all("g1")

    def other():
        yield 1
        yield from locks.acquire("g2", ("t", "x"), I)
        done.append(("g2", kernel.now))
        locks.release_all("g2")

    kernel.spawn(holder())
    kernel.spawn(other())
    kernel.run()
    assert done[0][0] == "g1"
    assert len(done) == 2


def test_conversion_deadlock_detected(kernel):
    """Two S-holders both converting to X is a true deadlock."""
    locks = make(kernel)
    outcomes = {}

    def worker(name):
        yield from locks.acquire(name, ("t", "x"), S)
        yield 2
        try:
            yield from locks.acquire(name, ("t", "x"), X)
            outcomes[name] = "converted"
            yield 1
        except DeadlockDetected:
            outcomes[name] = "deadlock"
        locks.release_all(name)

    kernel.spawn(worker("g1"))
    kernel.spawn(worker("g2"))
    kernel.run()
    assert sorted(outcomes.values()) == ["converted", "deadlock"]


def test_cross_object_deadlock_detected(kernel):
    locks = make(kernel)
    outcomes = {}

    def worker(name, first, second):
        yield from locks.acquire(name, first, X)
        yield 2
        try:
            yield from locks.acquire(name, second, X)
            outcomes[name] = "ok"
        except DeadlockDetected:
            outcomes[name] = "deadlock"
        locks.release_all(name)

    kernel.spawn(worker("g1", ("t", "a"), ("t", "b")))
    kernel.spawn(worker("g2", ("t", "b"), ("t", "a")))
    kernel.run()
    assert sorted(outcomes.values()) == ["deadlock", "ok"]


def test_timeout(kernel):
    locks = make(kernel, timeout=4)
    outcome = {}

    def holder():
        yield from locks.acquire("g1", ("t", "x"), X)
        yield 100
        locks.release_all("g1")

    def waiter():
        yield 1
        try:
            yield from locks.acquire("g2", ("t", "x"), X)
        except LockTimeout:
            outcome["g2"] = kernel.now

    kernel.spawn(holder())
    kernel.spawn(waiter())
    kernel.run()
    assert outcome["g2"] == 5.0


def test_cancel_wait(kernel):
    locks = make(kernel)
    outcome = {}

    def holder():
        yield from locks.acquire("g1", ("t", "x"), X)
        yield 100
        locks.release_all("g1")

    def waiter():
        yield 1
        try:
            yield from locks.acquire("g2", ("t", "x"), X)
        except RuntimeError:
            outcome["g2"] = "cancelled"

    kernel.spawn(holder())
    kernel.spawn(waiter())
    kernel.call_at(3, lambda: locks.cancel_wait("g2", RuntimeError()))
    kernel.run()
    assert outcome["g2"] == "cancelled"


def test_release_wakes_queue_in_order(kernel):
    locks = make(kernel)
    order = []

    def holder():
        yield from locks.acquire("g1", ("t", "x"), X)
        yield 5
        locks.release_all("g1")

    def incrementer(name, delay):
        yield delay
        yield from locks.acquire(name, ("t", "x"), I)
        order.append((name, kernel.now))

    kernel.spawn(holder())
    kernel.spawn(incrementer("g2", 1))
    kernel.spawn(incrementer("g3", 2))
    kernel.run()
    # Both increments are compatible: granted together at release time.
    assert order == [("g2", 5.0), ("g3", 5.0)]


def test_hold_time_metric(kernel):
    locks = make(kernel)

    def proc():
        yield from locks.acquire("g1", ("t", "x"), I)
        yield 7
        locks.release_all("g1")

    run(kernel, proc())
    assert locks.total_hold_time == pytest.approx(7.0)
