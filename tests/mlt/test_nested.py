"""General n-level multi-level transactions.

A three-level banking stack:

* **L2** -- business actions: ``transfer`` (commutes with transfers)
  and ``audit`` (reads, conflicts with transfers);
* **L1** -- record operations (increments commute);
* **L0** -- the engine's page transactions.
"""

import pytest

from repro.localdb.engine import LocalDatabase
from repro.mlt.actions import Operation
from repro.mlt.conflicts import ConflictTable, L1Mode
from repro.mlt.nested import (
    ActionDef,
    LevelSpec,
    NestedTransactionManager,
    bottom_level,
)
from tests.conftest import run

#: L2 conflict table: transfers commute (they are increments), audits
#: share with audits, audits conflict with transfers.
BUSINESS_TABLE = ConflictTable(
    "business",
    {
        "transfer": L1Mode.INCREMENT,
        "audit": L1Mode.SHARED,
        "write": L1Mode.EXCLUSIVE,
        "read": L1Mode.SHARED,
        "increment": L1Mode.INCREMENT,
        "insert": L1Mode.EXCLUSIVE,
        "delete": L1Mode.EXCLUSIVE,
    },
    [frozenset({L1Mode.SHARED}), frozenset({L1Mode.INCREMENT})],
)


def expand_transfer(action: Operation, context: dict) -> list[Operation]:
    src, dst = action.key
    return [
        Operation("increment", action.table, src, -action.value),
        Operation("increment", action.table, dst, action.value),
    ]


def invert_transfer(action: Operation, context: dict) -> Operation:
    src, dst = action.key
    return Operation("transfer", action.table, (dst, src), action.value)


def expand_audit(action: Operation, context: dict) -> list[Operation]:
    return [Operation("read", action.table, key) for key in action.key]


def business_level() -> LevelSpec:
    level = LevelSpec("L2", BUSINESS_TABLE)
    level.define(
        ActionDef(
            kind="transfer",
            mode_kind="transfer",
            expand=expand_transfer,
            invert=invert_transfer,
            resources=lambda a: [(a.table, k) for k in a.key],
        )
    )
    level.define(
        ActionDef(
            kind="audit",
            mode_kind="audit",
            expand=expand_audit,
            invert=lambda a, c: None,
            resources=lambda a: [(a.table, k) for k in a.key],
        )
    )
    return level


@pytest.fixture
def stack(kernel):
    engine = LocalDatabase(kernel, "bank")

    def init():
        yield from engine.create_table("acc", 4)
        txn = engine.begin()
        for key in ("a", "b", "c"):
            yield from engine.insert(txn, "acc", key, 100)
        yield from engine.commit(txn)

    run(kernel, init())
    manager = NestedTransactionManager(
        kernel, engine, [business_level(), bottom_level()]
    )
    return engine, manager


def balance(kernel, engine, key):
    def proc():
        txn = engine.begin()
        value = yield from engine.read(txn, "acc", key)
        yield from engine.commit(txn)
        return value

    return run(kernel, proc())


def transfer(src, dst, amount):
    return Operation("transfer", "acc", (src, dst), amount)


def audit(*keys):
    return Operation("audit", "acc", tuple(keys))


def test_transfer_commits_through_three_levels(kernel, stack):
    engine, manager = stack
    result = run(kernel, manager.run("T1", [transfer("a", "b", 30)]))
    assert result.committed
    assert balance(kernel, engine, "a") == 70
    assert balance(kernel, engine, "b") == 130


def test_audit_reads_collected(kernel, stack):
    engine, manager = stack
    result = run(kernel, manager.run("T1", [audit("a", "b")]))
    assert result.committed
    assert result.reads == {"acc['a']": 100, "acc['b']": 100}


def test_intended_abort_undoes_transfer_by_inverse_transfer(kernel, stack):
    engine, manager = stack
    result = run(
        kernel,
        manager.run("T1", [transfer("a", "b", 30), transfer("b", "c", 10)], abort_after=2),
    )
    assert not result.committed
    assert result.inverse_actions == 2  # two inverse transfers at L2
    for key in ("a", "b", "c"):
        assert balance(kernel, engine, key) == 100


def test_partial_abort_undoes_prefix_only(kernel, stack):
    engine, manager = stack
    result = run(
        kernel,
        manager.run("T1", [transfer("a", "b", 30), transfer("b", "c", 10)], abort_after=1),
    )
    assert not result.committed
    assert result.inverse_actions == 1
    assert balance(kernel, engine, "a") == 100


def test_transfers_commute_at_l2(kernel, stack):
    """Two transfers over the same accounts run concurrently: the L2
    increment-mode locks commute, as do the L1 increments."""
    engine, manager = stack
    done = {}

    def t(name, src, dst, amount):
        result = yield from manager.run(
            name, [transfer(src, dst, amount)], think_time=3.0
        )
        done[name] = result.committed

    kernel.spawn(t("T1", "a", "b", 10))
    kernel.spawn(t("T2", "b", "a", 5))
    kernel.run()
    assert done == {"T1": True, "T2": True}
    assert balance(kernel, engine, "a") == 95
    assert balance(kernel, engine, "b") == 105
    assert manager.locks[0].waits == 0  # nobody queued at L2


def test_audit_blocks_on_concurrent_transfer(kernel, stack):
    """Audit (shared) conflicts with transfer (increment) at L2, so the
    audit sees an atomic picture."""
    engine, manager = stack
    observed = {}

    def transferer():
        yield from manager.run("T1", [transfer("a", "b", 50)], think_time=6.0)

    def auditor():
        yield 1.0
        result = yield from manager.run("T2", [audit("a", "b")])
        observed.update(result.reads)

    kernel.spawn(transferer())
    kernel.spawn(auditor())
    kernel.run()
    assert observed["acc['a']"] + observed["acc['b']"] == 200
    assert observed["acc['a']"] in (50, 100)  # before or after, never mid


def test_undo_preserves_interleaved_transfer(kernel, stack):
    """The Figure 8 argument lifted one level: T1's inverse transfer
    must not clobber T2's interleaved commuting transfer."""
    engine, manager = stack

    def t1():
        yield from manager.run(
            "T1", [transfer("a", "b", 10), transfer("a", "c", 10)],
            abort_after=2, think_time=4.0,
        )

    def t2():
        yield 2.0  # lands between T1's two actions
        yield from manager.run("T2", [transfer("a", "b", 100)])

    kernel.spawn(t1())
    kernel.spawn(t2())
    kernel.run()
    assert balance(kernel, engine, "a") == 0     # only T2's -100
    assert balance(kernel, engine, "b") == 200   # only T2's +100
    assert balance(kernel, engine, "c") == 100


def test_all_levels_serializable(kernel, stack):
    engine, manager = stack

    def t(name, src, dst):
        yield from manager.run(name, [transfer(src, dst, 5), audit("c")])

    kernel.spawn(t("T1", "a", "b"))
    kernel.spawn(t("T2", "b", "c"))
    kernel.run()
    assert manager.serializable(committed={"T1", "T2"})
    reports = manager.level_reports(committed={"T1", "T2"})
    assert len(reports) == 2
    assert all(report.serializable for report in reports)


def test_unknown_action_kind_rejected(kernel, stack):
    from repro.mlt.nested import NestedTransactionError

    engine, manager = stack

    def proc():
        yield from manager.run("T1", [Operation("write", "acc", "a", 1)])

    # L2 defines transfer/audit only; "write" is not an L2 action here.
    with pytest.raises(NestedTransactionError):
        run(kernel, proc())


def test_history_attributes_actions_to_top_level_txn(kernel, stack):
    engine, manager = stack
    run(kernel, manager.run("T1", [transfer("a", "b", 1)]))
    l2_owners = {txn for _, txn, _, _, _ in manager.histories[0]}
    l1_owners = {txn for _, txn, _, _, _ in manager.histories[1]}
    assert l2_owners == {"T1"}
    assert l1_owners == {"T1"}
