"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.kernel import Kernel


@pytest.fixture
def kernel() -> Kernel:
    """A fresh deterministic kernel."""
    return Kernel(seed=1234)


def run(kernel: Kernel, generator, name: str = "test"):
    """Spawn ``generator``, run the kernel to idle, return its value.

    Raises whatever the process raised.
    """
    process = kernel.spawn(generator, name=name)
    kernel.run()
    assert process.done, f"{name} never finished (simulation deadlock?)"
    return process.value


def drive(generator):
    """Run a generator that never actually waits (pure-CPU path).

    Useful for exercising generator-based APIs outside a kernel when
    the code under test yields nothing.
    """
    try:
        next(generator)
    except StopIteration as stop:
        return stop.value
    raise AssertionError("generator suspended; use run(kernel, gen) instead")
