"""Altruistic locking baseline."""

from repro.baselines.altruistic import AltruisticLockManager
from repro.core.invariants import atomicity_report, serializability_ok
from repro.mlt.actions import increment, write
from repro.mlt.conflicts import READ_WRITE_TABLE, L1Mode
from tests.conftest import run
from tests.protocols.conftest import build_fed, submit_and_run, submit_delayed

TRANSFER = [increment("t0", "x", -10), increment("t1", "x", 10)]


def test_altruistic_commits_transfer():
    fed = build_fed("altruistic", granularity="per_action")
    outcome = submit_and_run(fed, TRANSFER)
    assert outcome.committed
    assert fed.peek("s0", "t0", "x") == 90
    assert atomicity_report(fed).ok


def test_altruistic_abort_compensates():
    fed = build_fed("altruistic", granularity="per_action")
    outcome = submit_and_run(fed, TRANSFER, intends_abort=True)
    assert not outcome.committed
    assert fed.peek("s0", "t0", "x") == 100
    assert fed.peek("s1", "t1", "x") == 100


def test_donation_lets_second_txn_pass_early():
    """T2 passes T1's donated object but must wait in T1's wake before
    deciding -- early data access, delayed commit."""
    fed = build_fed("altruistic", granularity="per_action")
    t1_ops = [write("t0", "x", 1)] + [increment("t1", "y", 1)] * 6
    p1 = fed.submit(t1_ops, name="T1")
    p2 = submit_delayed(fed, [write("t0", "x", 2)], delay=4.0, name="T2")
    fed.run()
    o1, o2 = p1.value, p2.value
    assert o1.committed and o2.committed
    locks = fed.gtm.l1
    assert locks.donations > 0
    assert locks.wake_entries >= 1
    # The wake rule: T2 finished no earlier than T1.
    assert o2.finish_time >= o1.finish_time
    assert serializability_ok(fed)


def test_wake_cycle_refused(kernel):
    """Mutual donation passing would deadlock; the manager refuses it."""
    locks = AltruisticLockManager(kernel, READ_WRITE_TABLE, default_timeout=10)
    timeline = []

    def t1():
        yield from locks.acquire("T1", "a", L1Mode.EXCLUSIVE)
        locks.donate("T1", "a")
        yield 2
        try:
            yield from locks.acquire("T1", "b", L1Mode.EXCLUSIVE)
            timeline.append("T1-got-b")
        except Exception as exc:
            timeline.append(f"T1-{type(exc).__name__}")
        locks.finish("T1")

    def t2():
        yield 1
        yield from locks.acquire("T2", "b", L1Mode.EXCLUSIVE)
        locks.donate("T2", "b")
        yield from locks.acquire("T2", "a", L1Mode.EXCLUSIVE)  # passes T1's donation
        timeline.append("T2-got-a")
        yield 5
        locks.finish("T2")

    kernel.spawn(t1())
    kernel.spawn(t2())
    kernel.run()
    # T2 entered T1's wake on a; T1 must NOT be allowed to pass T2's
    # donated b (cycle) -- it waits for the real release instead.
    assert "T2-got-a" in timeline
    assert "T1-got-b" in timeline  # granted after T2 finished, not passed


def test_metrics_track_donations(kernel):
    locks = AltruisticLockManager(kernel, READ_WRITE_TABLE)

    def proc():
        yield from locks.acquire("T1", "a", L1Mode.EXCLUSIVE)
        locks.donate("T1", "a")
        locks.finish("T1")

    run(kernel, proc())
    assert locks.donations == 1
