"""Saga baseline: compensation works, global serializability does not."""

from repro.core.invariants import atomicity_report, serializability_ok
from repro.mlt.actions import increment, read, write
from tests.protocols.conftest import build_fed, submit_and_run, submit_delayed

TRANSFER = [increment("t0", "x", -10), increment("t1", "x", 10)]


def test_saga_commits_transfer():
    fed = build_fed("saga", granularity="per_action")
    outcome = submit_and_run(fed, TRANSFER)
    assert outcome.committed
    assert fed.peek("s0", "t0", "x") == 90
    assert fed.peek("s1", "t1", "x") == 110


def test_saga_compensates_on_abort():
    fed = build_fed("saga", granularity="per_action")
    outcome = submit_and_run(fed, TRANSFER, intends_abort=True)
    assert not outcome.committed
    assert outcome.undo_executions == 2
    assert fed.peek("s0", "t0", "x") == 100
    assert fed.peek("s1", "t1", "x") == 100
    assert atomicity_report(fed).ok


def test_saga_runs_without_global_locks():
    fed = build_fed("saga", granularity="per_action")
    assert fed.gtm.l1 is None
    submit_and_run(fed, TRANSFER)


def test_saga_violates_global_serializability():
    """The §5 critique: two interleaved sagas produce a history that is
    serializable at each site but globally cyclic."""
    fed = build_fed("saga", granularity="per_action")
    # T1 reads x at both sites with a long gap; T2 writes both in the gap.
    p1 = fed.submit(
        [read("t0", "x")] + [increment("t0", "y", 1)] * 4 + [read("t1", "x")],
        name="T1",
    )
    p2 = submit_delayed(
        fed, [write("t0", "x", 0), write("t1", "x", 0)], delay=3.0, name="T2"
    )
    fed.run()
    assert p1.value.committed and p2.value.committed
    # T1 saw pre-T2 state at s0 and post-T2 state at s1: inconsistent.
    assert p1.value.reads["t0['x']"] == 100
    assert p1.value.reads["t1['x']"] == 0
    assert not serializability_ok(fed)


def test_commit_before_prevents_the_same_anomaly():
    """Identical workload under commit-before: the L1 locks delay T2."""
    fed = build_fed("before", granularity="per_action")
    p1 = fed.submit(
        [read("t0", "x")] + [increment("t0", "y", 1)] * 4 + [read("t1", "x")],
        name="T1",
    )
    p2 = submit_delayed(
        fed, [write("t0", "x", 0), write("t1", "x", 0)], delay=3.0, name="T2"
    )
    fed.run()
    assert p1.value.committed and p2.value.committed
    assert p1.value.reads["t0['x']"] == 100
    assert p1.value.reads["t1['x']"] == 100  # T2 had to wait
    assert serializability_ok(fed)
