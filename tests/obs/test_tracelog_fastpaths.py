"""TraceLog fast paths and the metrics no-interference guarantee.

Three locked-down behaviours:

* ``trace.enabled = False`` turns ``emit`` into an early return --
  nothing is recorded, nothing is formatted;
* sinks see formatted lines only while attached;
* enabling metrics leaves the kernel trace byte-identical to an
  uninstrumented run (metrics are pull-based and consume no
  randomness), which is what keeps every golden test in the repo
  valid under instrumentation.  Span mode is the explicit exception:
  it adds ``log_force`` records, and only those.
"""

from repro.core.gtm import GTMConfig
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment
from repro.net.message import reset_message_ids
from repro.sim.kernel import Kernel
from repro.sim.tracing import TraceLog


class TestDisabledFastPath:
    def test_disabled_emit_records_nothing(self):
        trace = TraceLog(Kernel(seed=0))
        trace.enabled = False
        trace.emit("txn_state", "s0", "t1", state="ready")
        assert trace.records == []
        assert len(trace) == 0

    def test_disabled_emit_skips_sink(self):
        trace = TraceLog(Kernel(seed=0))
        seen = []
        trace.attach_sink(seen.append)
        trace.enabled = False
        trace.emit("txn_state", "s0", "t1", state="ready")
        assert seen == []

    def test_disabled_emit_never_formats(self):
        trace = TraceLog(Kernel(seed=0))

        class Exploding:
            def __str__(self):
                raise AssertionError("formatted a record on the disabled path")

        trace.enabled = False
        trace.emit("txn_state", "s0", "t1", payload=Exploding())
        trace.enabled = True
        trace.emit("txn_state", "s0", "t1", payload=Exploding())  # no sink: lazy
        assert len(trace) == 1

    def test_reenabling_resumes_recording(self):
        trace = TraceLog(Kernel(seed=0))
        trace.enabled = False
        trace.emit("site", "s0", "up")
        trace.enabled = True
        trace.emit("site", "s0", "up")
        assert len(trace) == 1


class TestSinkAttachDetach:
    def test_sink_sees_lines_only_while_attached(self):
        trace = TraceLog(Kernel(seed=0))
        seen = []
        trace.emit("site", "s0", "before-attach")
        trace.attach_sink(seen.append)
        trace.emit("site", "s0", "while-attached")
        trace.detach_sink()
        trace.emit("site", "s0", "after-detach")
        assert len(seen) == 1
        assert "while-attached" in seen[0]
        assert len(trace) == 3  # records accrue regardless of the sink

    def test_sink_lines_are_formatted_records(self):
        trace = TraceLog(Kernel(seed=0))
        seen = []
        trace.attach_sink(seen.append)
        trace.emit("txn_state", "s0", "t1", state="ready")
        assert seen == [str(trace.records[0])]


def run_traced(metrics: bool, spans: bool = False):
    reset_message_ids()
    fed = Federation(
        [
            SiteSpec("s0", tables={"t0": {"x": 100}}, preparable=True),
            SiteSpec("s1", tables={"t1": {"x": 100}}, preparable=True),
        ],
        FederationConfig(
            seed=23, metrics=metrics, spans=spans,
            gtm=GTMConfig(protocol="2pc", granularity="per_site"),
        ),
    )
    fed.run_transactions([
        {"operations": [increment("t0", "x", -10), increment("t1", "x", 10)],
         "name": "T0"},
        {"operations": [increment("t0", "x", -1), increment("t1", "x", 1)],
         "name": "T1", "delay": 25.0, "intends_abort": True},
    ])
    return fed


class TestMetricsGolden:
    def test_metrics_leave_trace_byte_identical(self):
        baseline = run_traced(metrics=False)
        instrumented = run_traced(metrics=True)
        # Force a full collection first: collecting must not perturb
        # the trace either.
        instrumented.obs.collect()
        assert instrumented.kernel.trace.records == baseline.kernel.trace.records
        assert instrumented.kernel.now == baseline.kernel.now
        assert instrumented.network.sent == baseline.network.sent

    def test_span_mode_adds_only_log_force_records(self):
        baseline = run_traced(metrics=False)
        spanned = run_traced(metrics=True, spans=True)
        extra = [
            r for r in spanned.kernel.trace.records
            if r.category == "log_force"
        ]
        assert extra, "span mode must emit log_force records"
        remaining = [
            r for r in spanned.kernel.trace.records
            if r.category != "log_force"
        ]
        assert remaining == baseline.kernel.trace.records
        assert spanned.kernel.now == baseline.kernel.now
