"""Span building and exporters, against live federation runs."""

import json

import pytest

from repro.core.gtm import GTMConfig
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment
from repro.obs.export import (
    to_chrome_trace,
    to_prometheus_text,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.spans import build_spans


def run_fed(protocol="2pc", granularity="per_site", spans=True):
    preparable = protocol in ("2pc", "2pc-pa", "3pc")
    fed = Federation(
        [
            SiteSpec("s0", tables={"t0": {"x": 100}}, preparable=preparable),
            SiteSpec("s1", tables={"t1": {"x": 100}}, preparable=preparable),
        ],
        FederationConfig(
            seed=11, metrics=True, spans=spans,
            gtm=GTMConfig(protocol=protocol, granularity=granularity),
        ),
    )
    fed.run_transactions([
        {"operations": [increment("t0", "x", -10), increment("t1", "x", 10)],
         "name": "T0"},
        {"operations": [increment("t0", "x", -1), increment("t1", "x", 1)],
         "name": "T1", "delay": 40.0, "intends_abort": True},
    ])
    return fed


@pytest.fixture(scope="module")
def fed_2pc():
    return run_fed()


@pytest.fixture(scope="module")
def forest_2pc(fed_2pc):
    return fed_2pc.obs.span_forest()


class TestSpanForest:
    def test_every_gtxn_gets_a_root_span(self, forest_2pc):
        gtxns = forest_2pc.by_category("gtxn")
        assert len(gtxns) == 2
        for span in gtxns:
            assert span.parent_id is None
            assert span.duration > 0

    def test_gtxn_spans_carry_decision(self, forest_2pc):
        decisions = {
            s.name: s.attrs.get("decision")
            for s in forest_2pc.by_category("gtxn")
        }
        assert sorted(decisions.values()) == ["abort", "commit"]

    def test_subtxns_parented_on_their_gtxn(self, forest_2pc):
        subtxns = forest_2pc.by_category("subtxn")
        assert subtxns, "expected subtxn spans"
        gtxn_ids = {s.span_id for s in forest_2pc.by_category("gtxn")}
        for span in subtxns:
            assert span.parent_id in gtxn_ids
            assert span.site in ("s0", "s1")

    def test_2pc_subtxns_record_indoubt_window(self, forest_2pc):
        windows = [
            s.attrs["indoubt_window"]
            for s in forest_2pc.by_category("subtxn")
            if "indoubt_window" in s.attrs
        ]
        assert windows, "2PC locals must pass through the ready state"
        assert all(w > 0 for w in windows)

    def test_rpc_spans_pair_request_and_reply(self, forest_2pc):
        paired = [
            s for s in forest_2pc.by_category("rpc") if "reply" in s.attrs
        ]
        assert paired, "expected at least one request/reply pair"
        for span in paired:
            assert span.duration > 0  # reply came after the request

    def test_log_force_spans_present_and_parented(self, forest_2pc):
        forces = forest_2pc.by_category("log_force")
        assert forces, "span mode must emit log_force records"
        subtxn_ids = {s.span_id for s in forest_2pc.by_category("subtxn")}
        attributed = [s for s in forces if s.parent_id is not None]
        assert attributed, "commit forces should attach to their subtxn"
        for span in attributed:
            assert span.parent_id in subtxn_ids

    def test_setup_prefix_is_skipped(self, fed_2pc, forest_2pc):
        # Setup commits one local transaction per site; with the mark
        # applied none of those appear, and no span starts before t=0.
        for span in forest_2pc:
            assert span.start >= 0.0

    def test_breakdown_sums_child_categories(self, forest_2pc):
        root = forest_2pc.by_category("gtxn")[0]
        breakdown = forest_2pc.breakdown(root.name)
        assert breakdown["total"] == pytest.approx(root.duration)
        assert breakdown.get("rpc", 0) > 0
        with pytest.raises(KeyError):
            forest_2pc.breakdown("no-such-gtxn")

    def test_children_of_and_roots(self, forest_2pc):
        root = forest_2pc.by_category("gtxn")[0]
        children = forest_2pc.children_of(root)
        assert all(c.parent_id == root.span_id for c in children)
        assert root in forest_2pc.roots()

    def test_without_span_mode_no_log_force_spans(self):
        fed = run_fed(spans=False)
        forest = build_spans(fed.kernel.trace, skip_before=fed.obs.trace_mark)
        assert forest.by_category("log_force") == []
        assert forest.by_category("gtxn")  # the rest still builds

    def test_empty_trace_builds_empty_forest(self):
        assert len(build_spans([])) == 0


class TestChromeExport:
    def test_schema_valid(self, forest_2pc):
        doc = to_chrome_trace(forest_2pc)
        assert validate_chrome_trace(doc) == []

    def test_json_serializable_and_round_trips(self, forest_2pc, tmp_path):
        path = tmp_path / "trace.json"
        doc = write_chrome_trace(forest_2pc, str(path))
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(doc))
        assert validate_chrome_trace(loaded) == []

    def test_sites_become_named_processes(self, forest_2pc):
        doc = to_chrome_trace(forest_2pc)
        names = {
            event["args"]["name"]
            for event in doc["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        assert {"site:central", "site:s0", "site:s1"} <= names

    def test_validator_catches_problems(self):
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace({"traceEvents": [{"ph": "X"}]}) != []
        bad_phase = {"traceEvents": [
            {"name": "e", "ph": "Q", "pid": 1, "tid": 1},
        ]}
        assert any("phase" in p for p in validate_chrome_trace(bad_phase))
        unnamed_pid = {"traceEvents": [
            {"name": "e", "ph": "X", "pid": 7, "tid": 1, "ts": 0, "dur": 1},
        ]}
        assert any("process_name" in p for p in validate_chrome_trace(unnamed_pid))


class TestPrometheusExport:
    def test_text_format_shape(self, fed_2pc):
        text = to_prometheus_text(fed_2pc.obs.collect())
        lines = text.strip().splitlines()
        assert any(line.startswith("# TYPE repro_") for line in lines)
        assert 'protocol="2pc"' in text
        # Histogram series: cumulative buckets ending at +Inf, plus
        # _sum and _count.
        assert 'repro_lock_hold_bucket' in text
        assert 'le="+Inf"' in text
        assert "repro_lock_hold_sum" in text
        assert "repro_lock_hold_count" in text

    def test_cumulative_buckets_monotone(self, fed_2pc):
        text = to_prometheus_text(fed_2pc.obs.registry)
        last_by_series: dict[str, float] = {}
        for line in text.splitlines():
            if "_bucket{" not in line:
                continue
            series, value = line.rsplit(" ", 1)
            series = series.split(',le="')[0]
            count = float(value)
            assert count >= last_by_series.get(series, 0.0)
            last_by_series[series] = count
