"""§4 conformance: the RunReport reproduces the paper's cost ranking.

The paper's quantitative argument (§4.3): commit-before with MLT pays
*zero* forced log writes beyond what local commits already pay, and
releases L0 locks earliest, while commit-after and especially 2PC pay
extra forces (decision hardening, prepare records) and hold L0 locks
across the global protocol.
"""

import pytest

from repro.core.gtm import GTMConfig
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment
from repro.obs.report import ProtocolCost, RunReport

WORKLOAD = [
    {"operations": [increment("t0", "x", -10), increment("t1", "x", 10)],
     "name": "T0"},
    {"operations": [increment("t0", "y", -5), increment("t1", "y", 5)],
     "name": "T1", "delay": 30.0},
    {"operations": [increment("t1", "x", -2), increment("t0", "y", 2)],
     "name": "T2", "delay": 60.0},
]


def run_protocol(protocol: str, granularity: str) -> Federation:
    preparable = protocol in ("2pc", "2pc-pa", "3pc")
    fed = Federation(
        [
            SiteSpec("s0", tables={"t0": {"x": 100, "y": 100}},
                     preparable=preparable),
            SiteSpec("s1", tables={"t1": {"x": 100, "y": 100}},
                     preparable=preparable),
        ],
        FederationConfig(
            seed=5, metrics=True,
            gtm=GTMConfig(protocol=protocol, granularity=granularity),
        ),
    )
    outcomes = fed.run_transactions(WORKLOAD)
    assert all(o.committed for o in outcomes), f"{protocol}: workload must commit"
    return fed


@pytest.fixture(scope="module")
def costs() -> dict[str, ProtocolCost]:
    feds = {
        "before": run_protocol("before", "per_action"),
        "after": run_protocol("after", "per_site"),
        "2pc": run_protocol("2pc", "per_site"),
    }
    report = RunReport.from_federations(feds.values())
    return {name: report.cost_for(fed.config.gtm.protocol)
            for name, fed in feds.items()}


class TestSection4Conformance:
    def test_commit_before_mlt_zero_extra_forces(self, costs):
        assert costs["before"].extra_forces == 0
        assert costs["before"].decision_forces == 0

    def test_commit_after_and_2pc_pay_extra_forces(self, costs):
        assert costs["after"].extra_forces > 0
        assert costs["2pc"].extra_forces > 0
        # 2PC additionally forces a prepare record per subtransaction.
        assert costs["2pc"].extra_forces > costs["after"].extra_forces

    def test_commit_before_releases_l0_locks_earliest(self, costs):
        assert costs["before"].mean_hold < costs["after"].mean_hold
        assert costs["before"].mean_hold < costs["2pc"].mean_hold
        assert costs["before"].max_hold < costs["2pc"].max_hold

    def test_only_2pc_has_indoubt_window(self, costs):
        # Unmodified local TMs (before/after) never enter the ready
        # state, so only the prepared 2PC locals are ever in doubt.
        assert costs["2pc"].indoubt_count > 0
        assert costs["2pc"].indoubt_mean > 0
        assert costs["before"].indoubt_count == 0
        assert costs["after"].indoubt_count == 0

    def test_every_protocol_committed_the_workload(self, costs):
        for cost in costs.values():
            assert cost.committed == len(WORKLOAD)
            assert cost.aborted == 0

    def test_setup_excluded_from_costs(self, costs):
        # Setup commits one loader transaction per site; run-only
        # accounting must not include them.
        assert costs["after"].local_commits == 2 * len(WORKLOAD)

    def test_extra_forces_identity(self, costs):
        for cost in costs.values():
            assert cost.extra_forces == (
                cost.log_forces - cost.local_commits + cost.decision_forces
            )


class TestRunReportApi:
    def test_render_contains_all_protocols(self, costs):
        report = RunReport(list(costs.values()))
        text = report.render()
        for name in ("before", "after", "2pc"):
            assert name in text
        assert "extra" in text and "hold(mean)" in text

    def test_as_dict_round_trip(self, costs):
        report = RunReport(list(costs.values()))
        snapshot = report.as_dict()
        assert snapshot["before"]["extra_forces"] == 0
        assert set(snapshot) == {"before", "after", "2pc"}

    def test_cost_for_unknown_protocol_raises(self, costs):
        with pytest.raises(KeyError):
            RunReport(list(costs.values())).cost_for("paxos")

    def test_from_federation_requires_metrics(self):
        fed = Federation(
            [SiteSpec("s0", tables={"t0": {"x": 1}}),
             SiteSpec("s1", tables={"t1": {"x": 1}})],
            FederationConfig(seed=1),
        )
        with pytest.raises(ValueError):
            RunReport.from_federation(fed)

    def test_federation_report_shortcut(self):
        fed = run_protocol("before", "per_action")
        assert fed.report().costs[0].protocol == "before"

    def test_metrics_dict_gains_obs_section(self):
        fed = run_protocol("after", "per_site")
        metrics = fed.metrics()
        assert "obs" in metrics
        assert metrics["obs"]["global_committed"][
            "protocol=after,site=central"
        ] == len(WORKLOAD)
