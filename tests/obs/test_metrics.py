"""Unit tests for the metrics registry."""

import math

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("commits", site="s0")
        assert counter.value == 0
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_rejects_negative_increment(self):
        counter = MetricsRegistry().counter("commits")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_set_total_overwrites(self):
        counter = MetricsRegistry().counter("forces")
        counter.set_total(17)
        assert counter.value == 17

    def test_same_labels_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("commits", site="s0", protocol="2pc")
        b = registry.counter("commits", protocol="2pc", site="s0")
        assert a is b

    def test_different_labels_different_instruments(self):
        registry = MetricsRegistry()
        a = registry.counter("commits", site="s0")
        b = registry.counter("commits", site="s1")
        a.inc()
        assert b.value == 0
        assert len(registry) == 2


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("in_flight")
        gauge.set(5)
        gauge.add(-2)
        assert gauge.value == 3


class TestKindCollision:
    def test_counter_vs_gauge_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", site="a")
        with pytest.raises(TypeError):
            registry.gauge("x", site="a")

    def test_counter_vs_histogram_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.histogram("x")


class TestHistogram:
    def test_bucket_assignment(self):
        histogram = Histogram("h", (), buckets=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 10.0, 11.0):
            histogram.observe(value)
        # <=1.0: 0.5 and 1.0; <=10.0: 5.0 and 10.0; +Inf: 11.0.
        assert histogram.bucket_counts == [2, 2, 1]
        assert histogram.cumulative_buckets() == [
            (1.0, 2), (10.0, 4), (math.inf, 5),
        ]

    def test_stats(self):
        histogram = Histogram("h", ())
        for value in (4.0, 2.0, 6.0, 8.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == 20.0
        assert histogram.mean == 5.0
        assert histogram.min == 2.0
        assert histogram.max == 8.0

    def test_exact_quantiles_unsorted_input(self):
        histogram = Histogram("h", ())
        for value in (9.0, 1.0, 5.0, 3.0, 7.0):
            histogram.observe(value)
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(0.5) == 5.0
        assert histogram.quantile(1.0) == 9.0

    def test_quantile_then_more_observations(self):
        histogram = Histogram("h", ())
        histogram.observe(5.0)
        histogram.observe(1.0)
        assert histogram.quantile(1.0) == 5.0
        histogram.observe(0.5)  # arrives below the sorted tail
        assert histogram.quantile(0.0) == 0.5

    def test_empty_summary(self):
        summary = Histogram("h", ()).summary()
        assert summary["count"] == 0
        assert summary["mean"] == 0.0
        assert summary["min"] == 0.0

    def test_increasing_bounds_enforced(self):
        with pytest.raises(ValueError):
            Histogram("h", (), buckets=(5.0, 5.0))

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram("h", ()).quantile(1.5)


class TestRegistryQueries:
    def test_value_and_total(self):
        registry = MetricsRegistry()
        registry.counter("forces", site="s0").inc(3)
        registry.counter("forces", site="s1").inc(4)
        assert registry.value("forces", site="s0") == 3
        assert registry.value("forces", site="missing", default=-1) == -1
        assert registry.total("forces") == 7

    def test_total_skips_histograms(self):
        registry = MetricsRegistry()
        registry.counter("x", kind="c").inc(2)
        registry.histogram("x", site="h").observe(100.0)
        assert registry.total("x") == 2

    def test_families_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zeta")
        registry.counter("alpha")
        assert registry.families() == ["alpha", "zeta"]

    def test_collector_runs_on_collect(self):
        registry = MetricsRegistry()
        source = {"events": 0}
        registry.register_collector(
            lambda: registry.counter("events").set_total(source["events"])
        )
        source["events"] = 11
        registry.collect()
        assert registry.value("events") == 11
        source["events"] = 13
        assert registry.as_dict()["events"]["_"] == 13  # as_dict collects too

    def test_as_dict_renders_histogram_summary(self):
        registry = MetricsRegistry()
        registry.histogram("hold", site="s0").observe(2.0)
        snapshot = registry.as_dict()
        assert snapshot["hold"]["site=s0"]["count"] == 1
        assert snapshot["hold"]["site=s0"]["mean"] == 2.0

    def test_collect_order_is_stable(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a", site="s1")
        registry.counter("a", site="s0")
        names = [(i.name, i.labels) for i in registry.collect()]
        assert names == sorted(names, key=str)

    def test_get_returns_none_when_absent(self):
        assert MetricsRegistry().get("nope") is None

    def test_instruments_expose_kind(self):
        registry = MetricsRegistry()
        assert registry.counter("c").kind == "counter"
        assert registry.gauge("g").kind == "gauge"
        assert registry.histogram("h").kind == "histogram"

    def test_repr_smoke(self):
        registry = MetricsRegistry()
        registry.counter("c", site="x").inc()
        registry.gauge("g").set(1)
        registry.histogram("h").observe(1.0)
        for instrument in registry.collect():
            assert instrument.name in repr(instrument)
