"""The ``python -m repro`` command line."""

import json

import pytest

from repro.__main__ import main


class TestSingleProtocolRun:
    def test_report_flag_prints_cost_table(self, capsys):
        main(["--protocol", "before", "--txns", "2", "--report"])
        out = capsys.readouterr().out
        assert "2/2 committed" in out
        assert "atomicity OK" in out
        assert "extra" in out and "hold(mean)" in out
        assert "before" in out

    def test_trace_out_writes_valid_chrome_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        main(["--protocol", "2pc", "--txns", "2", "--trace-out", str(path)])
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
        assert any(event["ph"] == "X" for event in doc["traceEvents"])
        assert "trace events" in capsys.readouterr().out

    def test_sites_and_seed_accepted(self, capsys):
        main(["--protocol", "after", "--sites", "3", "--txns", "3",
              "--seed", "99", "--report"])
        out = capsys.readouterr().out
        assert "3/3 committed over 3 sites (seed 99)" in out

    def test_plain_run_without_observability(self, capsys):
        main(["--protocol", "before", "--txns", "2"])
        out = capsys.readouterr().out
        assert "committed" in out
        assert "hold(mean)" not in out


class TestArgumentValidation:
    def test_report_without_protocol_rejected(self):
        with pytest.raises(SystemExit):
            main(["--report"])

    def test_trace_out_without_protocol_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--trace-out", str(tmp_path / "t.json")])

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            main(["--protocol", "4pc"])

    def test_too_few_sites_rejected(self):
        with pytest.raises(SystemExit):
            main(["--protocol", "2pc", "--sites", "1"])
