"""Instrumentation wiring: hooks, baselines, restarts, fault counters."""

from repro.core.gtm import GTMConfig
from repro.faults.chaos import ChaosSpec, run_chaos
from repro.faults.injector import FaultInjector
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment


def build(metrics=True, spans=False, protocol="after", **gtm_extra):
    return Federation(
        [
            SiteSpec("s0", tables={"t0": {"x": 100}}),
            SiteSpec("s1", tables={"t1": {"x": 100}}),
        ],
        FederationConfig(
            seed=3, metrics=metrics, spans=spans,
            gtm=GTMConfig(protocol=protocol, **gtm_extra),
        ),
    )


TRANSFER = [increment("t0", "x", -10), increment("t1", "x", 10)]


class TestAttachment:
    def test_disabled_by_default(self):
        fed = Federation(
            [SiteSpec("s0", tables={"t0": {"x": 1}}),
             SiteSpec("s1", tables={"t1": {"x": 1}})],
            FederationConfig(seed=3),
        )
        assert fed.obs is None
        for engine in fed.engines.values():
            assert engine.locks.hold_observer is None
            assert engine.disk.trace_forces is False

    def test_metrics_mode_attaches_lock_observer_only(self):
        fed = build(metrics=True, spans=False)
        for engine in fed.engines.values():
            assert engine.locks.hold_observer is not None
            assert engine.disk.trace_forces is False

    def test_span_mode_turns_on_force_tracing(self):
        fed = build(metrics=True, spans=True)
        for engine in fed.engines.values():
            assert engine.disk.trace_forces is True


class TestCollection:
    def test_lock_hold_histogram_fed_by_observer(self):
        fed = build()
        fed.submit(TRANSFER)
        fed.run()
        registry = fed.obs.collect()
        histogram = registry.get("lock_hold", site="s0", protocol="after")
        assert histogram.count > 0
        assert histogram.mean > 0

    def test_site_counters_are_run_only(self):
        fed = build()
        fed.submit(TRANSFER)
        fed.run()
        registry = fed.obs.collect()
        # Exactly one local commit per site for one global transfer;
        # the setup loader commit is baselined away.
        assert registry.value("local_commits", site="s0", protocol="after") == 1
        assert registry.value("log_forces", site="s0", protocol="after") >= 1

    def test_collect_is_idempotent(self):
        fed = build()
        fed.submit(TRANSFER)
        fed.run()
        fed.obs.collect()
        first = fed.obs.registry.get("gtxn_response_time", protocol="after").count
        fed.obs.collect()
        fed.obs.collect()
        assert fed.obs.registry.get(
            "gtxn_response_time", protocol="after"
        ).count == first

    def test_network_and_gtm_counters_present(self):
        fed = build()
        fed.submit(TRANSFER)
        fed.run()
        registry = fed.obs.collect()
        assert registry.value("messages_sent", protocol="after") == fed.network.sent
        assert registry.value(
            "global_committed", site="central", protocol="after"
        ) == 1


class TestRestartReattachment:
    def test_observer_survives_crash_restart(self):
        fed = build(protocol="after", msg_timeout=20)
        fed.submit(TRANSFER)
        fed.run()
        before = fed.obs.registry.get("lock_hold", site="s0", protocol="after").count
        fed.crash_site("s0")
        fed.restart_site("s0", at=fed.kernel.now + 10)
        fed.run()
        # The restart replaced the LockManager: the observer must be
        # re-attached to the new instance.
        assert fed.engines["s0"].locks.hold_observer is not None
        fed.submit(TRANSFER)
        fed.run()
        after = fed.obs.registry.get("lock_hold", site="s0", protocol="after").count
        assert after > before

    def test_lock_counters_rebaselined_after_restart(self):
        fed = build(protocol="after", msg_timeout=20)
        fed.submit(TRANSFER)
        fed.run()
        fed.crash_site("s0")
        fed.restart_site("s0", at=fed.kernel.now + 10)
        fed.run()
        fed.submit(TRANSFER)
        fed.run()
        registry = fed.obs.collect()
        # The fresh LockManager starts at zero; with a zeroed baseline
        # the reported counter must never go negative.
        assert registry.value("lock_grants", site="s0", protocol="after") >= 0


class TestFaultCounterMigration:
    def test_injector_attributes_read_registry(self):
        fed = build(metrics=False)
        injector = FaultInjector(fed)
        assert injector.injected_aborts == 0
        injector._aborts.inc()
        assert injector.injected_aborts == 1
        assert injector.counters() == {
            "injected_aborts": 1,
            "injected_crashes": 0,
            "injected_partitions": 0,
        }

    def test_injector_shares_federation_registry(self):
        fed = build(metrics=True)
        injector = FaultInjector(fed)
        assert injector.registry is fed.obs.registry
        injector._crashes.inc()
        assert fed.obs.registry.value(
            "injected_crashes", protocol="after"
        ) == 1

    def test_injector_private_registry_without_obs(self):
        fed = build(metrics=False)
        injector = FaultInjector(fed)
        assert fed.obs is None
        assert injector.registry is not None

    def test_chaos_counters_keys_unchanged(self):
        spec = ChaosSpec(
            protocol="2pc", seed=1, n_txns=4, fault_horizon=100.0,
            resolution_horizon=1500.0, crash_rate=0.0, partition_count=0,
        )
        result = run_chaos(spec)
        for key in (
            "retransmissions", "injected_aborts", "injected_crashes",
            "injected_partitions", "duplicate_requests", "recovery_passes",
        ):
            assert key in result.counters
        assert result.registry is not None
        assert result.registry.value(
            "injected_crashes", protocol="2pc"
        ) == result.counters["injected_crashes"]

    def test_chaos_metrics_mode_uses_federation_registry(self):
        spec = ChaosSpec(
            protocol="2pc", seed=1, n_txns=4, fault_horizon=100.0,
            resolution_horizon=1500.0, crash_rate=0.0, partition_count=0,
            metrics=True,
        )
        result = run_chaos(spec)
        assert result.registry is result.federation.obs.registry
