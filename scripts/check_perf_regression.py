"""Perf-smoke regression gate: fresh hot-path rates vs BENCH_perf.json.

Reruns the kernel hot-path benchmarks (``bench_k1_hotpath`` and
``bench_kernel_wallclock``) and compares every events/s figure against
the committed baseline in ``BENCH_perf.json``.  A rate more than
``--threshold`` (default 20%) below its baseline fails the run; on
failure the federation scenario is re-profiled and the ``cProfile``
stats land in ``--artifacts-dir`` for the post-mortem.

Additionally re-measures the EXP-A6 open-loop latency-throughput
points and holds them to a **Pareto non-domination gate** against the
baseline's ``adaptive.pareto`` section: a configuration may trade
along the front (lose some throughput *for* better latency, or vice
versa), but a point whose throughput drops or whose p99 rises by more
than the threshold *without the other axis improving* is strictly
dominated by its baseline and fails the gate.  These figures are
simulated time -- deterministic, so this part is immune to runner
noise.  Baselines predating the ``adaptive`` section skip the gate.

Usage (from the repo root)::

    PYTHONPATH=src python scripts/check_perf_regression.py \
        [--threshold 0.2] [--artifacts-dir perf-artifacts]

The threshold is deliberately loose: CI runners and dev machines
differ, and wall-clock noise is one-sided.  It catches the class of
regression that matters -- an accidental return to per-event heap
churn or a new allocation on the dispatch path -- not single-digit
drift.  ``PERF_SMOKE_THRESHOLD`` overrides the default when the
runner fleet changes speed.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import shutil
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))


def fresh_rates() -> dict[str, float]:
    from benchmarks.bench_k1_hotpath import hotpath_headline
    from benchmarks.bench_kernel_wallclock import kernel_events_per_sec

    rates = {
        f"kernel_hotpath.{name}": float(rate)
        for name, rate in hotpath_headline().items()
    }
    rates["kernel.events_per_sec"] = kernel_events_per_sec()
    return rates


def baseline_rates(summary: dict) -> dict[str, float]:
    rates = {
        f"kernel_hotpath.{name}": float(rate)
        for name, rate in summary.get("kernel_hotpath", {}).items()
    }
    kernel = summary.get("kernel", {})
    if "events_per_sec" in kernel:
        rates["kernel.events_per_sec"] = float(kernel["events_per_sec"])
    return rates


def pareto_regressions(summary: dict, threshold: float) -> list[str]:
    """Check fresh EXP-A6 points against the baseline Pareto front.

    Returns the names of (protocol, config) points strictly dominated
    by their baseline: one axis worse by more than ``threshold`` while
    the other failed to improve.
    """
    baseline_front = summary.get("adaptive", {}).get("pareto")
    if not baseline_front:
        print("\npareto gate: baseline has no adaptive section, skipping")
        return []
    from benchmarks.bench_a6_adaptive import pareto_points

    fresh_front = pareto_points()
    regressions = []
    print(
        f"\n{'pareto point':<32} {'thr base':>9} {'thr now':>9} "
        f"{'p99 base':>9} {'p99 now':>9}"
    )
    for protocol in sorted(baseline_front):
        for config, base in sorted(baseline_front[protocol].items()):
            fresh = fresh_front.get(protocol, {}).get(config)
            name = f"{protocol}:{config}"
            if fresh is None:
                print(f"{name:<32} {'(missing from fresh run)':>20}")
                regressions.append(name)
                continue
            thr_ratio = fresh["throughput"] / base["throughput"]
            p99_ratio = (
                fresh["p99"] / base["p99"] if base["p99"] > 0 else 1.0
            )
            thr_worse = thr_ratio < 1.0 - threshold
            p99_worse = p99_ratio > 1.0 + threshold
            dominated = (thr_worse and p99_ratio >= 1.0) or (
                p99_worse and thr_ratio <= 1.0
            )
            flag = "  << DOMINATED" if dominated else ""
            print(
                f"{name:<32} {base['throughput']:>9.4f} "
                f"{fresh['throughput']:>9.4f} {base['p99']:>9.2f} "
                f"{fresh['p99']:>9.2f}{flag}"
            )
            if dominated:
                regressions.append(name)
    if not regressions:
        print("pareto gate: no point strictly dominated by its baseline")
    return regressions


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("PERF_SMOKE_THRESHOLD", "0.2")),
        help="maximum tolerated fractional drop vs baseline (default 0.2)",
    )
    parser.add_argument(
        "--artifacts-dir",
        default="perf-artifacts",
        help="where profile stats land when a regression is found",
    )
    args = parser.parse_args(argv)

    baseline_path = REPO_ROOT / "BENCH_perf.json"
    if not baseline_path.exists():
        print(f"error: no baseline at {baseline_path}", file=sys.stderr)
        return 2
    summary = json.loads(baseline_path.read_text())
    baseline = baseline_rates(summary)
    if not baseline:
        print("error: BENCH_perf.json has no hot-path rates", file=sys.stderr)
        return 2

    fresh = fresh_rates()
    floor = 1.0 - args.threshold
    regressions = []
    print(f"{'metric':<42} {'baseline':>12} {'fresh':>12} {'ratio':>7}")
    for name in sorted(baseline):
        if name not in fresh:
            print(f"{name:<42} {baseline[name]:>12.0f} {'missing':>12}")
            regressions.append(name)
            continue
        ratio = fresh[name] / baseline[name]
        flag = "" if ratio >= floor else "  << REGRESSION"
        print(
            f"{name:<42} {baseline[name]:>12.0f} {fresh[name]:>12.0f} "
            f"{ratio:>6.2f}x{flag}"
        )
        if ratio < floor:
            regressions.append(name)

    dominated = pareto_regressions(summary, args.threshold)

    if not regressions and not dominated:
        print(
            f"\nok: all rates within {args.threshold:.0%} of baseline and "
            "no Pareto point dominated"
        )
        return 0

    if dominated:
        print(
            f"\nFAILED: {len(dominated)} Pareto point(s) strictly dominated "
            f"by baseline: {', '.join(dominated)}"
        )
        if not regressions:
            # Simulated-time regressions carry no profile to capture.
            return 1

    print(
        f"\nFAILED: {len(regressions)} rate(s) more than "
        f"{args.threshold:.0%} below baseline: {', '.join(regressions)}"
    )
    # Capture a profile of the representative scenario for the triage.
    from benchmarks.bench_k1_hotpath import profile_federation

    artifacts = pathlib.Path(args.artifacts_dir)
    artifacts.mkdir(parents=True, exist_ok=True)
    report = profile_federation()
    (artifacts / "profile_report.txt").write_text(report + "\n")
    stats = REPO_ROOT / "benchmarks" / "results" / "k1_hotpath.prof"
    if stats.exists():
        shutil.copy(stats, artifacts / "k1_hotpath.prof")
    print(f"profile artifacts written to {artifacts}/")
    return 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
