"""Crash recovery walkthrough, from page images to global protocols.

Three acts:

1. A single local database survives a crash: committed-but-unflushed
   data is redone from the log, uncommitted-but-flushed data is undone
   (steal/no-force + ARIES-style recovery).
2. A commit-after federation hits an erroneous local abort after the
   ready answer -- the subtransaction is repeated from the redo-log.
3. A commit-before federation loses a site mid-transaction -- the
   protocol waits for the site to come up again, exactly as §3.3 says.

Run:  python examples/crash_recovery_demo.py
"""

from repro import Federation, FederationConfig, GTMConfig, Kernel, LocalDatabase, SiteSpec, ops
from repro.faults import FaultInjector


def act_one_local_recovery() -> None:
    print("== act 1: one local database, one crash ==")
    kernel = Kernel(seed=1)
    db = LocalDatabase(kernel, "solo")

    def scenario():
        yield from db.create_table("t", 4)
        txn = db.begin()
        yield from db.insert(txn, "t", "committed_key", "safe")
        yield from db.commit(txn)

        # Committed but only in the log (no-force): must be redone.
        txn = db.begin()
        yield from db.write(txn, "t", "committed_key", "updated")
        yield from db.commit(txn)

        # Uncommitted but flushed to disk (steal): must be undone.
        loser = db.begin()
        yield from db.write(loser, "t", "committed_key", "dirty!")
        yield from db.buffer.flush_all()

    kernel.spawn(scenario())
    kernel.run()
    print(f"  stable page before recovery: "
          f"{db.disk.stable_page(db.catalog.heap('t').page_of('committed_key')).get('committed_key')!r}")
    db.crash()
    kernel.spawn(db.restart())
    kernel.run()

    def check():
        txn = db.begin()
        value = yield from db.read(txn, "t", "committed_key")
        yield from db.commit(txn)
        return value

    proc = kernel.spawn(check())
    kernel.run()
    print(f"  after crash recovery:        {proc.value!r}  (redo applied, steal undone)")


def act_two_redo() -> None:
    print("\n== act 2: commit-after repeats an erroneously aborted local ==")
    fed = Federation(
        [SiteSpec("a", tables={"ta": {"x": 100}}), SiteSpec("b", tables={"tb": {"y": 50}})],
        FederationConfig(seed=2, gtm=GTMConfig(protocol="after")),
    )
    FaultInjector(fed).erroneous_aborts_after_ready(probability=1.0, sites=["a"], delay=0.2)
    process = fed.submit([ops.increment("ta", "x", -10), ops.increment("tb", "y", 10)])
    fed.run()
    outcome = process.value
    print(f"  committed: {outcome.committed}, redo executions: {outcome.redo_executions}")
    print(f"  x = {fed.peek('a', 'ta', 'x')} (exactly once despite the abort+redo)")


def act_three_wait_for_recovery() -> None:
    print("\n== act 3: commit-before waits for a crashed site (§3.3) ==")
    fed = Federation(
        [SiteSpec("a", tables={"ta": {"x": 100}}), SiteSpec("b", tables={"tb": {"y": 50}})],
        FederationConfig(
            seed=3,
            gtm=GTMConfig(
                protocol="before", granularity="per_action",
                msg_timeout=15, status_poll_interval=5,
            ),
        ),
    )
    FaultInjector(fed).crash_site("b", at=2.0, recover_after=80.0)
    process = fed.submit([ops.increment("ta", "x", -10), ops.increment("tb", "y", 10)])
    fed.run()
    outcome = process.value
    print(f"  committed: {outcome.committed}, finished at t={outcome.finish_time:.1f} "
          f"(outage lasted until t=82)")
    print(f"  y = {fed.peek('b', 'tb', 'y')}")


def main() -> None:
    act_one_local_recovery()
    act_two_redo()
    act_three_wait_for_recovery()


if __name__ == "__main__":
    main()
