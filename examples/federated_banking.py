"""Federated banking: a multi-bank workload under every commit protocol.

Three banks, random cross-bank transfers and balance audits, with a
fraction of transactions aborting by intent.  The same workload runs
under each protocol; the script reports throughput, response time,
redo/undo work and verifies money conservation -- a compact version of
the paper's §4.3 comparison.

Run:  python examples/federated_banking.py
"""

from repro.bench import closed_loop, format_table, protocol_federation
from repro.core.invariants import atomicity_report, serializability_ok
from repro.integration.federation import SiteSpec
from repro.workloads.banking import balance_audit, total_balance, transfer

N_SITES = 3
ACCOUNTS = 4
INITIAL = 1000
HORIZON = 600


def make_txn_factory():
    def factory(rng):
        if rng.random() < 0.2:
            return balance_audit(N_SITES, ACCOUNTS, sample=3, rng=rng), False
        intends_abort = rng.random() < 0.1
        return transfer(rng, N_SITES, ACCOUNTS), intends_abort

    return factory


def site_specs():
    return [
        SiteSpec(
            f"bank_{i}",
            tables={f"accounts_{i}": {f"acct{i}_{j}": INITIAL for j in range(ACCOUNTS)}},
        )
        for i in range(N_SITES)
    ]


def main() -> None:
    rows = []
    for protocol, granularity, label in [
        ("before", "per_action", "commit-before+MLT"),
        ("before", "per_site", "commit-before/site"),
        ("after", "per_site", "commit-after"),
        ("2pc", "per_site", "2PC (modified TMs)"),
    ]:
        fed = protocol_federation(protocol, site_specs(), granularity=granularity, seed=99)
        stats = closed_loop(
            fed, make_txn_factory(), n_workers=5, horizon=HORIZON, label=label
        )
        conserved = total_balance(fed, N_SITES, ACCOUNTS) == N_SITES * ACCOUNTS * INITIAL
        rows.append([
            label, stats.committed, stats.aborted,
            round(stats.throughput * 1000, 1),
            round(stats.mean_response_time, 1),
            stats.redo_executions, stats.undo_executions,
            "OK" if conserved else "LOST MONEY",
            "OK" if atomicity_report(fed).ok else "VIOLATED",
            "OK" if serializability_ok(fed) else "VIOLATED",
        ])
    print(format_table(
        ["protocol", "committed", "aborted", "thr/1k", "mean resp",
         "redos", "undos", "conservation", "atomicity", "serializability"],
        rows,
        title=f"Federated banking: {N_SITES} banks, transfers + audits, 10% intended aborts",
    ))


if __name__ == "__main__":
    main()
