"""Quickstart: integrate two existing databases, transfer money, crash one.

Builds the paper's architecture in a dozen lines: two autonomous bank
databases with unchangeable transaction managers, a central global
transaction manager running the commit-before + multi-level protocol,
and a cross-bank transfer.  Then a site crashes mid-protocol and the
federation recovers without losing atomicity.

Run:  python examples/quickstart.py
"""

from repro import Federation, FederationConfig, GTMConfig, SiteSpec, ops
from repro.core.invariants import atomicity_report, serializability_ok
from repro.faults import FaultInjector


def main() -> None:
    federation = Federation(
        [
            SiteSpec("bank_a", tables={"accounts_a": {"alice": 100}}),
            SiteSpec("bank_b", tables={"accounts_b": {"bob": 50}}),
        ],
        FederationConfig(
            seed=1,
            gtm=GTMConfig(protocol="before", granularity="per_action"),
        ),
    )

    print("== a successful cross-bank transfer ==")
    process = federation.submit(
        [
            ops.increment("accounts_a", "alice", -10),
            ops.increment("accounts_b", "bob", +10),
        ]
    )
    federation.run()
    outcome = process.value
    print(f"  committed: {outcome.committed} (response time {outcome.response_time:.1f})")
    print(f"  alice = {federation.peek('bank_a', 'accounts_a', 'alice')}")
    print(f"  bob   = {federation.peek('bank_b', 'accounts_b', 'bob')}")

    print("\n== a transfer across a site crash ==")
    injector = FaultInjector(federation)
    injector.crash_site("bank_b", at=federation.kernel.now + 2.0, recover_after=60.0)
    process = federation.submit(
        [
            ops.increment("accounts_a", "alice", -25),
            ops.increment("accounts_b", "bob", +25),
        ]
    )
    federation.run()
    outcome = process.value
    print(f"  committed: {outcome.committed} "
          f"(waited out the outage; finished at t={outcome.finish_time:.1f})")
    print(f"  alice = {federation.peek('bank_a', 'accounts_a', 'alice')}")
    print(f"  bob   = {federation.peek('bank_b', 'accounts_b', 'bob')}")

    print("\n== invariants ==")
    print(f"  global atomicity:       {'OK' if atomicity_report(federation).ok else 'VIOLATED'}")
    print(f"  global serializability: {'OK' if serializability_ok(federation) else 'VIOLATED'}")


if __name__ == "__main__":
    main()
