"""Travel booking: the classic multi-step federated transaction.

A trip books a flight, a hotel and a car, each in a different existing
reservation system.  One booking in the middle fails (no rooms left) --
the global transaction must abort and the already-committed steps must
be undone.  The script contrasts:

* the saga way [GS 87]: compensation works, but a concurrently running
  audit can observe a half-booked trip (no isolation between steps);
* the paper's commit-before + multi-level way: same early local
  commits, same compensation -- but the L1 locks keep the audit out of
  the window, so it always sees a consistent world.

Run:  python examples/travel_booking.py
"""

from repro import Federation, FederationConfig, GTMConfig, SiteSpec, ops


def build(protocol: str) -> Federation:
    return Federation(
        [
            SiteSpec("airline", tables={"flights": {"FL123": 5}}),      # seats
            SiteSpec("hotel", tables={"rooms": {"R42": 0}}),            # none left!
            SiteSpec("carrental", tables={"cars": {"C7": 3}}),
        ],
        FederationConfig(
            seed=5, gtm=GTMConfig(protocol=protocol, granularity="per_action")
        ),
    )


def book_trip():
    """Reserve one unit at each provider; the hotel step will fail."""
    return [
        ops.increment("flights", "FL123", -1),
        ops.increment("rooms", "R42", -1),     # fine arithmetically...
        ops.read("rooms", "R42"),
        ops.increment("cars", "C7", -1),
    ]


def audit_ops():
    return [
        ops.read("flights", "FL123"),
        ops.read("rooms", "R42"),
        ops.read("cars", "C7"),
    ]


def run_scenario(protocol: str) -> None:
    fed = build(protocol)

    # The trip intends to abort once it sees the over-booked hotel
    # (modelled as an intended abort: the transaction's own logic).
    trip = fed.submit(book_trip(), name="TRIP", intends_abort=True)

    # A concurrent audit reads all three inventories mid-trip.
    def delayed_audit():
        yield 3.0
        outcome = yield fed.submit(audit_ops(), name="AUDIT")
        return outcome

    audit = fed.kernel.spawn(delayed_audit())
    fed.run()

    trip_outcome, audit_outcome = trip.value, audit.value
    flights = fed.peek("airline", "flights", "FL123")
    rooms = fed.peek("hotel", "rooms", "R42")
    cars = fed.peek("carrental", "cars", "C7")
    seen = audit_outcome.reads
    consistent = (
        seen["flights['FL123']"] == 5
        and seen["rooms['R42']"] == 0
        and seen["cars['C7']"] == 3
    ) or (
        # ...or the audit serialized entirely after a committed trip;
        # with the aborting trip only the pre-state is consistent.
        False
    )
    print(f"  trip committed:   {trip_outcome.committed} "
          f"(undo executions: {trip_outcome.undo_executions})")
    print(f"  final inventory:  flights={flights} rooms={rooms} cars={cars}")
    print(f"  audit observed:   {dict(seen)}")
    print(f"  audit consistent: {'YES' if consistent else 'NO -- saw a half-booked trip'}")


def main() -> None:
    print("== sagas: compensation without isolation ==")
    run_scenario("saga")
    print()
    print("== commit-before + multi-level transactions (the paper) ==")
    run_scenario("before")


if __name__ == "__main__":
    main()
