"""General multi-level transactions: a three-level banking stack.

The paper's §4 uses two levels for the federation, but the multi-level
model is general (§4.1).  This example builds a three-level stack on a
single database:

* L2 -- business actions: ``transfer`` (commutes with transfers, like
  increments one level down) and ``audit`` (shared);
* L1 -- record operations (increments commute);
* L0 -- the engine's page transactions.

Two concurrent transfers over the same accounts overlap at every level;
an aborting transfer is undone by an *inverse transfer*; an audit is
serialized against transfers and always sees conserved money.

Run:  python examples/nested_levels.py
"""

from repro import Kernel, LocalDatabase
from repro.mlt import ActionDef, LevelSpec, NestedTransactionManager, bottom_level
from repro.mlt.actions import Operation
from repro.mlt.conflicts import ConflictTable, L1Mode

BUSINESS = ConflictTable(
    "business",
    {
        "transfer": L1Mode.INCREMENT, "audit": L1Mode.SHARED,
        "read": L1Mode.SHARED, "write": L1Mode.EXCLUSIVE,
        "increment": L1Mode.INCREMENT, "insert": L1Mode.EXCLUSIVE,
        "delete": L1Mode.EXCLUSIVE,
    },
    [frozenset({L1Mode.SHARED}), frozenset({L1Mode.INCREMENT})],
)


def business_level() -> LevelSpec:
    level = LevelSpec("L2", BUSINESS)
    level.define(ActionDef(
        kind="transfer",
        mode_kind="transfer",
        expand=lambda a, ctx: [
            Operation("increment", a.table, a.key[0], -a.value),
            Operation("increment", a.table, a.key[1], a.value),
        ],
        invert=lambda a, ctx: Operation("transfer", a.table, (a.key[1], a.key[0]), a.value),
        resources=lambda a: [(a.table, k) for k in a.key],
    ))
    level.define(ActionDef(
        kind="audit",
        mode_kind="audit",
        expand=lambda a, ctx: [Operation("read", a.table, k) for k in a.key],
        invert=lambda a, ctx: None,
        resources=lambda a: [(a.table, k) for k in a.key],
    ))
    return level


def main() -> None:
    kernel = Kernel(seed=7)
    engine = LocalDatabase(kernel, "bank")

    def init():
        yield from engine.create_table("acc", 4)
        txn = engine.begin()
        for key in ("checking", "savings", "broker"):
            yield from engine.insert(txn, "acc", key, 1000)
        yield from engine.commit(txn)

    kernel.spawn(init())
    kernel.run()

    manager = NestedTransactionManager(kernel, engine, [business_level(), bottom_level()])
    results = {}

    def txn(name, actions, **kwargs):
        outcome = yield from manager.run(name, actions, **kwargs)
        results[name] = outcome

    transfer = lambda s, d, amt: Operation("transfer", "acc", (s, d), amt)  # noqa: E731
    audit = Operation("audit", "acc", ("checking", "savings", "broker"))

    # Two commuting transfers plus a concurrent audit and an aborter.
    kernel.spawn(txn("T1", [transfer("checking", "savings", 100)], think_time=4))
    kernel.spawn(txn("T2", [transfer("savings", "broker", 50)], think_time=4))
    kernel.spawn(txn("AUDIT", [audit]))
    kernel.spawn(txn("OOPS", [transfer("checking", "broker", 999)], abort_after=1))
    kernel.run()

    for name, outcome in sorted(results.items()):
        status = "committed" if outcome.committed else f"aborted ({outcome.abort_reason})"
        extra = f", inverse actions: {outcome.inverse_actions}" if outcome.inverse_actions else ""
        print(f"  {name:6s} {status}{extra}")
        if outcome.reads:
            total = sum(outcome.reads.values())
            print(f"         audit saw {dict(outcome.reads)} (total {total})")

    def final_balances():
        txn = engine.begin()
        values = {}
        for key in ("checking", "savings", "broker"):
            values[key] = yield from engine.read(txn, "acc", key)
        yield from engine.commit(txn)
        return values

    proc = kernel.spawn(final_balances())
    kernel.run()
    print(f"  final: {proc.value} (total {sum(proc.value.values())})")
    print(f"  every level serializable: {manager.serializable()}")


if __name__ == "__main__":
    main()
