"""Order processing: the full operation vocabulary under federation.

A warehouse system and an order-entry system are integrated; placing an
order inserts an order row in one database while moving stock and
revenue in the other.  The example places random orders (some of which
abort), cancels a few, and runs the cross-site consistency audit: every
unit of missing stock must be accounted for by an existing order row,
and revenue must match the order book to the cent.

Run:  python examples/order_processing.py
"""

from repro import FederationConfig, GTMConfig
from repro.core.invariants import atomicity_report, serializability_ok
from repro.workloads.orders import (
    audit_consistency,
    build_orders_federation,
    cancel_order,
    random_order,
)

N_PRODUCTS = 4
INITIAL_STOCK = 100
N_ORDERS = 14


def main() -> None:
    fed = build_orders_federation(
        n_products=N_PRODUCTS,
        initial_stock=INITIAL_STOCK,
        config=FederationConfig(
            seed=77, gtm=GTMConfig(protocol="before", granularity="per_action")
        ),
    )
    rng = fed.kernel.rng.stream("orders")
    price_of = {}
    placed = []
    batches = []
    for seq in range(N_ORDERS):
        order_id, operations, meta = random_order(rng, N_PRODUCTS, seq)
        price_of[order_id] = meta["price"]
        intends_abort = rng.random() < 0.25
        if not intends_abort:
            placed.append((order_id, meta))
        batches.append({
            "operations": operations,
            "name": order_id,
            "intends_abort": intends_abort,
            "delay": rng.uniform(0, 60),
        })
    outcomes = fed.run_transactions(batches)
    committed = sum(1 for o in outcomes if o.committed)
    print(f"placed {committed} orders, {len(outcomes) - committed} aborted "
          f"(their stock/revenue legs undone by inverse transactions)")

    # Cancel a couple of the placed orders with forward business actions.
    cancels = placed[:2]
    fed.run_transactions([
        {
            "operations": cancel_order(
                order_id, meta["product"], meta["qty"], price_of[order_id]
            )
        }
        for order_id, meta in cancels
    ])
    print(f"cancelled {len(cancels)} orders (forward compensation)")

    audit = audit_consistency(fed, N_PRODUCTS, INITIAL_STOCK, price_of)
    print(f"\naudit: {audit['orders']} open orders, "
          f"{audit['stock_missing']} units out of stock, "
          f"revenue {audit['revenue']}")
    print(f"  order book accounts for {audit['booked_quantity']} units / "
          f"revenue {audit['booked_revenue']}")
    print(f"  cross-site consistency: {'OK' if audit['consistent'] else 'BROKEN'}")
    print(f"  global atomicity:       {'OK' if atomicity_report(fed).ok else 'VIOLATED'}")
    print(f"  global serializability: {'OK' if serializability_ok(fed) else 'VIOLATED'}")


if __name__ == "__main__":
    main()
