"""Protocol tour: watch each commit protocol's choreography unfold.

Runs the same two-site transfer under 2PC, commit-after and
commit-before and prints the full message/state timeline of each --
the paper's Figures 2, 4 and 6 as live traces.  Then it runs an
intended abort under commit-before to show the inverse transactions.

Run:  python examples/protocol_tour.py
"""

from repro import Federation, FederationConfig, GTMConfig, SiteSpec, ops
from repro.bench.timeline import render_timeline

TRANSFER = [ops.increment("t0", "x", -10), ops.increment("t1", "x", 10)]


def build(protocol: str, granularity: str = "per_site") -> Federation:
    preparable = protocol in ("2pc", "3pc")
    return Federation(
        [
            SiteSpec("s0", tables={"t0": {"x": 100}}, preparable=preparable),
            SiteSpec("s1", tables={"t1": {"x": 50}}, preparable=preparable),
        ],
        FederationConfig(
            seed=4, gtm=GTMConfig(protocol=protocol, granularity=granularity)
        ),
    )


def print_timeline(fed: Federation) -> None:
    print(render_timeline(fed.kernel.trace))


def main() -> None:
    for protocol, granularity, title in [
        ("2pc", "per_site", "TWO-PHASE COMMIT (Figure 2): decision in the middle"),
        ("after", "per_site", "COMMIT-AFTER (Figure 4/5): decision before local commits"),
        ("before", "per_action", "COMMIT-BEFORE + MLT (Figure 6/7): local commits first"),
    ]:
        print(f"\n==== {title} ====")
        fed = build(protocol, granularity)
        process = fed.submit(TRANSFER)
        fed.run()
        print_timeline(fed)
        print(f"  outcome: committed={process.value.committed}")

    print("\n==== COMMIT-BEFORE with an intended abort: inverse transactions ====")
    fed = build("before", "per_action")
    process = fed.submit(TRANSFER, intends_abort=True)
    fed.run()
    print_timeline(fed)
    print(f"  outcome: committed={process.value.committed}, "
          f"undo executions={process.value.undo_executions}")
    print(f"  balances restored: x0={fed.peek('s0', 't0', 'x')}, x1={fed.peek('s1', 't1', 'x')}")


if __name__ == "__main__":
    main()
