"""Legacy setup shim.

Everything lives in pyproject.toml; this file only enables
``python setup.py develop`` on offline machines whose environment lacks
the ``wheel`` package (PEP 660 editable installs need it).
"""

from setuptools import setup

setup()
