"""Metrics registry: counters, gauges and histograms.

Instruments are keyed by ``(name, labels)`` where the conventional
labels are ``site`` and ``protocol`` -- the paper's cost tables compare
exactly along those two axes.  The registry supports two feeding
styles:

* **push** -- hot-path hooks call :meth:`Counter.inc` /
  :meth:`Histogram.observe` directly.  Hook slots default to ``None``
  so an uninstrumented run pays one attribute test per event, the
  ``TraceLog.enabled`` idiom.
* **pull** -- collectors registered with
  :meth:`MetricsRegistry.register_collector` run at
  :meth:`MetricsRegistry.collect` time and copy counters the system
  already maintains (``network.sent``, ``disk.log_forces``, ...) into
  the registry.  Pull instrumentation is exactly zero-cost during the
  run.

Histograms keep fixed bucket counts (Prometheus-style cumulative
``le`` buckets) *and* the raw observations, so exact quantile
summaries stay available -- runs are simulation-sized, the memory is
bounded by the event count.

Everything is deterministic: no wall-clock reads, no randomness.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Callable, Iterable, Optional

#: Default histogram bucket upper bounds, in simulated time units.
#: Chosen to straddle the simulator's device timings (ops 0.1, I/O 1.0,
#: message latency ~1.0) up through whole-transaction latencies.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)

LabelItems = tuple[tuple[str, Any], ...]


def _label_key(labels: dict[str, Any]) -> LabelItems:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def set_total(self, value: float) -> None:
        """Collector path: overwrite with an externally maintained total."""
        self.value = value

    def __repr__(self) -> str:
        return f"<Counter {self.name}{dict(self.labels)} {self.value}>"


class Gauge:
    """Point-in-time value (may go up and down)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def __repr__(self) -> str:
        return f"<Gauge {self.name}{dict(self.labels)} {self.value}>"


class Histogram:
    """Fixed-bucket histogram with an exact quantile summary.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``
    (non-cumulative per bucket; the exporter renders the cumulative
    Prometheus form).  The final implicit bucket is ``+Inf``.
    """

    __slots__ = (
        "name", "labels", "bounds", "bucket_counts", "count", "sum",
        "min", "max", "_samples", "_sorted",
    )
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        buckets: Optional[Iterable[float]] = None,
    ):
        self.name = name
        self.labels = labels
        bounds = tuple(sorted(buckets)) if buckets is not None else DEFAULT_BUCKETS
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name}: bucket bounds must increase")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: list[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self._samples and value < self._samples[-1]:
            self._sorted = False
        self._samples.append(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Exact quantile over every observation (0 <= q <= 1)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if not self._samples:
            return 0.0
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        index = min(len(self._samples) - 1, int(q * len(self._samples)))
        return self._samples[index]

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, ending with ``+Inf``."""
        out = []
        running = 0
        for bound, count in zip(self.bounds, self.bucket_counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, self.count))
        return out

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": round(self.sum, 6),
            "mean": round(self.mean, 6),
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name}{dict(self.labels)} n={self.count}>"


class MetricsRegistry:
    """The per-run instrument store.

    One registry per federation (or per chaos run); instruments are
    created on first use and looked up by ``(name, labels)``.
    """

    def __init__(self):
        self._instruments: dict[tuple[str, LabelItems], Any] = {}
        self._collectors: list[Callable[[], None]] = []

    # -- instrument factories -------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Optional[Iterable[float]] = None, **labels: Any
    ) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = Histogram(name, key[1], buckets=buckets)
            self._instruments[key] = instrument
        elif not isinstance(instrument, Histogram):
            raise TypeError(f"{name}{labels} already registered as {instrument.kind}")
        return instrument

    def _get(self, cls, name: str, labels: dict[str, Any]):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1])
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(f"{name}{labels} already registered as {instrument.kind}")
        return instrument

    # -- collection -----------------------------------------------------

    def register_collector(self, collector: Callable[[], None]) -> None:
        """Add a pull-style collector run at :meth:`collect` time."""
        self._collectors.append(collector)

    def collect(self) -> list[Any]:
        """Run collectors, then return every instrument (stable order)."""
        for collector in self._collectors:
            collector()
        return [self._instruments[key] for key in sorted(self._instruments, key=str)]

    # -- queries --------------------------------------------------------

    def get(self, name: str, **labels: Any) -> Optional[Any]:
        """The instrument registered under ``(name, labels)``, if any."""
        return self._instruments.get((name, _label_key(labels)))

    def value(self, name: str, default: float = 0.0, **labels: Any) -> float:
        """Counter/gauge value, or ``default`` when never registered."""
        instrument = self.get(name, **labels)
        return instrument.value if instrument is not None else default

    def total(self, name: str) -> float:
        """Sum of a counter/gauge family across all label sets."""
        return sum(
            instrument.value
            for (key_name, _), instrument in self._instruments.items()
            if key_name == name and not isinstance(instrument, Histogram)
        )

    def families(self) -> list[str]:
        """Distinct instrument names, sorted."""
        return sorted({name for name, _ in self._instruments})

    def as_dict(self) -> dict[str, dict[str, Any]]:
        """JSON-friendly snapshot: family -> rendered-labels -> value."""
        out: dict[str, dict[str, Any]] = {}
        for instrument in self.collect():
            family = out.setdefault(instrument.name, {})
            label_str = ",".join(f"{k}={v}" for k, v in instrument.labels) or "_"
            if isinstance(instrument, Histogram):
                family[label_str] = instrument.summary()
            else:
                family[label_str] = instrument.value
        return out

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:
        return f"<MetricsRegistry instruments={len(self._instruments)}>"
