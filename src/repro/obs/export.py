"""Exporters: Chrome ``trace_event`` JSON and Prometheus text.

The Chrome exporter renders a :class:`~repro.obs.spans.SpanForest` in
the Trace Event Format (the ``chrome://tracing`` / Perfetto JSON
object form): complete events (``"ph": "X"``) with one process per
site and one thread per span category.  Simulated time is mapped
1 unit -> 1 microsecond, so the viewer's timeline reads directly in
simulated units.

The Prometheus exporter renders a
:class:`~repro.obs.metrics.MetricsRegistry` in the text exposition
format (``# TYPE`` headers, cumulative ``le`` buckets, ``_sum`` /
``_count`` series) -- handy for diffing runs with standard tooling.
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.spans import Span, SpanForest

#: Stable lane ordering for the trace viewer: one thread per category.
_CATEGORY_TIDS = {"gtxn": 1, "subtxn": 2, "rpc": 3, "log_force": 4}


def _span_event(span: Span, pids: dict[str, int]) -> dict[str, Any]:
    pid = pids.setdefault(span.site, len(pids) + 1)
    args = {k: v for k, v in span.attrs.items() if v is not None}
    if span.parent_id is not None:
        args["parent_id"] = span.parent_id
    return {
        "name": span.name,
        "cat": span.category,
        "ph": "X",
        "ts": span.start,
        "dur": max(span.duration, 0.0),
        "pid": pid,
        "tid": _CATEGORY_TIDS.get(span.category, 0),
        "args": args,
    }


def to_chrome_trace(forest: SpanForest) -> dict[str, Any]:
    """Render spans as a Trace Event Format JSON object."""
    pids: dict[str, int] = {}
    events = [_span_event(span, pids) for span in forest]
    # Metadata events name the per-site processes and per-category lanes.
    for site, pid in sorted(pids.items(), key=lambda item: item[1]):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"site:{site}"},
        })
        for category, tid in _CATEGORY_TIDS.items():
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": category},
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated", "time_unit": "sim units as us"},
    }


def write_chrome_trace(forest: SpanForest, path: str) -> dict[str, Any]:
    """Render and write the Chrome trace; returns the rendered object."""
    doc = to_chrome_trace(forest)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
    return doc


def validate_chrome_trace(doc: dict[str, Any]) -> list[str]:
    """Schema-check a Chrome trace object; returns problems ([] = valid).

    Checks the subset of the Trace Event Format we emit: a
    ``traceEvents`` list whose members carry the required fields with
    the right types, complete events with non-negative durations, and
    metadata events naming every referenced pid.
    """
    problems: list[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    named_pids: set[int] = set()
    used_pids: set[int] = set()
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for field, types in (("name", str), ("ph", str), ("pid", int), ("tid", int)):
            if not isinstance(event.get(field), types):
                problems.append(f"{where}: bad or missing {field!r}")
        ph = event.get("ph")
        if ph == "X":
            ts, dur = event.get("ts"), event.get("dur")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: complete event needs ts >= 0")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete event needs dur >= 0")
            if isinstance(event.get("pid"), int):
                used_pids.add(event["pid"])
        elif ph == "M":
            if event.get("name") == "process_name" and isinstance(event.get("pid"), int):
                named_pids.add(event["pid"])
        else:
            problems.append(f"{where}: unexpected phase {ph!r}")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"{where}: args not an object")
    for pid in sorted(used_pids - named_pids):
        problems.append(f"pid {pid} has events but no process_name metadata")
    return problems


def _render_labels(labels: tuple[tuple[str, Any], ...], extra: str = "") -> str:
    parts = [f'{key}="{value}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def to_prometheus_text(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    seen_types: set[str] = set()
    for instrument in registry.collect():
        name = f"{prefix}_{instrument.name}"
        if name not in seen_types:
            lines.append(f"# TYPE {name} {instrument.kind}")
            seen_types.add(name)
        if isinstance(instrument, Histogram):
            for le, cumulative in instrument.cumulative_buckets():
                labels = _render_labels(instrument.labels, f'le="{_fmt(le)}"')
                lines.append(f"{name}_bucket{labels} {cumulative}")
            labels = _render_labels(instrument.labels)
            lines.append(f"{name}_sum{labels} {_fmt(round(instrument.sum, 9))}")
            lines.append(f"{name}_count{labels} {instrument.count}")
        else:
            labels = _render_labels(instrument.labels)
            lines.append(f"{name}{labels} {_fmt(instrument.value)}")
    return "\n".join(lines) + "\n"
