"""RunReport: the paper's §4 cost table from a live run.

§4 ranks the commit protocols by what they *cost* an integrated
database system: forced log writes beyond what local commits already
pay, messages exchanged, and how long L0 locks stay held (the in-doubt
window during which local resources are blocked on the global
decision).  :class:`ProtocolCost` computes those quantities from a
federation's metrics registry; :class:`RunReport` renders one row per
protocol.

The key derived quantity is **extra forced log writes**::

    extra_forces = (site log forces - local commits) + decision forces

Every local commit forces exactly one log write regardless of the
commit protocol, so anything beyond that -- 2PC's prepare forces, the
coordinator's hardened decisions -- is protocol overhead.  The paper's
headline result (§4.3) is that commit-before/MLT pays *zero* extra
forces while also releasing L0 locks earliest.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Iterable

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.integration.federation import Federation


@dataclass(frozen=True)
class ProtocolCost:
    """One protocol's §4 cost row, measured from a run."""

    protocol: str
    committed: int
    aborted: int
    messages: int
    envelopes: int
    log_forces: int
    decision_forces: int
    extra_forces: int
    local_commits: int
    mean_hold: float
    max_hold: float
    indoubt_count: int
    indoubt_mean: float
    indoubt_max: float
    mean_response_time: float

    @classmethod
    def from_registry(
        cls, registry: MetricsRegistry, protocol: str, sites: Iterable[str]
    ) -> "ProtocolCost":
        sites = list(sites)

        def site_sum(name: str) -> float:
            return sum(
                registry.value(name, site=site, protocol=protocol) for site in sites
            )

        log_forces = site_sum("log_forces")
        local_commits = site_sum("local_commits")
        decision_forces = registry.value(
            "decision_forces", site="central", protocol=protocol
        )
        hold_time = site_sum("lock_hold_time")
        releases = site_sum("lock_releases")
        max_hold = max(
            (
                registry.value("lock_max_hold_time", site=site, protocol=protocol)
                for site in sites
            ),
            default=0.0,
        )
        indoubt = registry.get("indoubt_window", protocol=protocol)
        return cls(
            protocol=protocol,
            committed=int(
                registry.value("global_committed", site="central", protocol=protocol)
            ),
            aborted=int(
                registry.value("global_aborted", site="central", protocol=protocol)
            ),
            messages=int(registry.value("messages_sent", protocol=protocol)),
            envelopes=int(registry.value("envelopes", protocol=protocol)),
            log_forces=int(log_forces),
            decision_forces=int(decision_forces),
            extra_forces=int(log_forces - local_commits + decision_forces),
            local_commits=int(local_commits),
            mean_hold=hold_time / releases if releases else 0.0,
            max_hold=max_hold,
            indoubt_count=indoubt.count if indoubt is not None else 0,
            indoubt_mean=indoubt.mean if indoubt is not None else 0.0,
            indoubt_max=(
                indoubt.max if indoubt is not None and indoubt.count else 0.0
            ),
            mean_response_time=registry.value(
                "mean_response_time", site="central", protocol=protocol
            ),
        )


_COLUMNS: tuple[tuple[str, str], ...] = (
    ("protocol", "protocol"),
    ("committed", "commit"),
    ("aborted", "abort"),
    ("messages", "msgs"),
    ("log_forces", "forces"),
    ("extra_forces", "extra"),
    ("mean_hold", "hold(mean)"),
    ("max_hold", "hold(max)"),
    ("indoubt_mean", "indoubt(mean)"),
    ("indoubt_max", "indoubt(max)"),
    ("mean_response_time", "resp(mean)"),
)


class RunReport:
    """§4 cost table: one :class:`ProtocolCost` row per protocol."""

    def __init__(self, costs: list[ProtocolCost]):
        self.costs = costs

    @classmethod
    def from_federation(cls, federation: "Federation") -> "RunReport":
        """One-row report from an observability-enabled federation."""
        obs = getattr(federation, "obs", None)
        if obs is None:
            raise ValueError(
                "federation has no observability attached "
                "(build it with FederationConfig(metrics=True))"
            )
        registry = obs.collect()
        cost = ProtocolCost.from_registry(
            registry, obs.protocol, federation.engines
        )
        return cls([cost])

    @classmethod
    def from_federations(cls, federations: Iterable["Federation"]) -> "RunReport":
        """Multi-protocol comparison: one row per federation."""
        costs = []
        for federation in federations:
            costs.extend(cls.from_federation(federation).costs)
        return cls(costs)

    def cost_for(self, protocol: str) -> ProtocolCost:
        for cost in self.costs:
            if cost.protocol == protocol:
                return cost
        raise KeyError(f"no cost row for protocol {protocol!r}")

    def as_dict(self) -> dict[str, dict[str, Any]]:
        return {cost.protocol: asdict(cost) for cost in self.costs}

    def render(self) -> str:
        """Fixed-width text table (the paper's §4 comparison)."""
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.2f}"
            return str(value)

        rows = [
            [fmt(getattr(cost, attr)) for attr, _ in _COLUMNS]
            for cost in self.costs
        ]
        headers = [header for _, header in _COLUMNS]
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in rows)) if rows
            else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
            "  ".join("-" * width for width in widths),
        ]
        for row in rows:
            lines.append(
                "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<RunReport protocols={[c.protocol for c in self.costs]}>"
