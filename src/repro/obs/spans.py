"""Causally-linked spans built from the kernel trace.

The :class:`~repro.sim.tracing.TraceLog` is a flat record stream; this
module groups it into a forest of spans with parent links:

* ``gtxn`` -- one span per global transaction attempt, from its first
  ``gtxn_state`` record to its terminal state;
* ``subtxn`` -- one span per local transaction that belongs to a
  global one (``txn_state`` records carrying a ``gtxn`` detail),
  parented on its global span; the span also carries the §3 *in-doubt
  window* (ready -> terminal) when the local passed through the ready
  state;
* ``rpc`` -- one span per request/reply message pair (correlated via
  ``msg_id`` / ``reply_to``), parented on the global span when the
  message carries a ``gtxn_id``; one-way messages become zero-length
  spans;
* ``log_force`` -- one span per forced log write, emitted by
  :class:`~repro.storage.disk.StableDisk` only when force tracing is
  on (see ``FederationConfig.spans``), parented on the subtxn that
  forced when identifiable.

Span building is a pure function of the trace -- it never touches the
simulation and can run on a live or finished kernel alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.sim.tracing import TraceLog, TraceRecord

_TERMINAL_GLOBAL = ("committed", "aborted")
_TERMINAL_LOCAL = ("committed", "aborted")


@dataclass
class Span:
    """One causally-delimited interval of a run."""

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str  # "gtxn" | "subtxn" | "rpc" | "log_force"
    site: str
    start: float
    end: float
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:
        return (
            f"<Span {self.category}:{self.name} [{self.start:.2f},{self.end:.2f}] "
            f"site={self.site} parent={self.parent_id}>"
        )


class SpanForest:
    """The spans of one run plus query helpers."""

    def __init__(self, spans: list[Span]):
        self.spans = spans
        self._by_id = {span.span_id: span for span in spans}

    def __iter__(self):
        return iter(self.spans)

    def __len__(self) -> int:
        return len(self.spans)

    def by_category(self, category: str) -> list[Span]:
        return [span for span in self.spans if span.category == category]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def find(self, category: str, name: str) -> Optional[Span]:
        for span in self.spans:
            if span.category == category and span.name == name:
                return span
        return None

    def breakdown(self, gtxn_id: str) -> dict[str, float]:
        """Latency breakdown of one global transaction.

        Returns the total simulated time its child spans spent per
        category plus the overall span duration; overlapping child
        spans are *not* deduplicated (parallel RPCs each count), so
        the categories measure work, not wall time.
        """
        root = self.find("gtxn", gtxn_id)
        if root is None:
            raise KeyError(f"no gtxn span {gtxn_id!r}")
        totals: dict[str, float] = {"total": root.duration}
        for span in self.spans:
            if span.parent_id is None:
                continue
            # Walk up to check ancestry (forests are tiny; clarity wins).
            cursor: Optional[Span] = span
            while cursor is not None and cursor.span_id != root.span_id:
                cursor = self._by_id.get(cursor.parent_id) if cursor.parent_id else None
            if cursor is None:
                continue
            totals[span.category] = totals.get(span.category, 0.0) + span.duration
        return totals


def build_spans(
    trace: TraceLog | Iterable[TraceRecord],
    skip_before: int = 0,
) -> SpanForest:
    """Group trace records into a span forest.

    ``skip_before`` drops the first N records (the federation's setup
    prefix, whose timestamps predate the run's t=0 reset).
    """
    records = list(trace.records if isinstance(trace, TraceLog) else trace)
    records = records[skip_before:]

    spans: list[Span] = []
    next_id = [0]

    def new_span(**kwargs: Any) -> Span:
        next_id[0] += 1
        span = Span(span_id=next_id[0], **kwargs)
        spans.append(span)
        return span

    last_time = records[-1].time if records else 0.0

    # -- pass 1: global transaction spans -------------------------------
    gtxn_spans: dict[str, Span] = {}
    for record in records:
        if record.category == "gtxn_state":
            gtxn_id = record.subject
            state = record.details.get("state")
            span = gtxn_spans.get(gtxn_id)
            if span is None:
                span = new_span(
                    parent_id=None, name=gtxn_id, category="gtxn",
                    site=record.site, start=record.time, end=record.time,
                    attrs={"state": state},
                )
                gtxn_spans[gtxn_id] = span
            span.end = max(span.end, record.time)
            span.attrs["state"] = state
        elif record.category == "gtxn_decision":
            span = gtxn_spans.get(record.subject)
            if span is not None:
                span.attrs["decision"] = record.details.get("decision")
                span.attrs["decision_time"] = record.time
    # A still-running transaction extends to the end of the trace.
    for span in gtxn_spans.values():
        if span.attrs.get("state") not in _TERMINAL_GLOBAL:
            span.end = max(span.end, last_time)

    # -- pass 2: subtransaction spans -----------------------------------
    subtxn_spans: dict[tuple[str, str], Span] = {}
    for record in records:
        if record.category != "txn_state":
            continue
        gtxn_id = record.details.get("gtxn")
        if gtxn_id is None:
            continue  # purely local work: not part of any global span
        key = (record.site, record.subject)
        state = record.details.get("state")
        span = subtxn_spans.get(key)
        if span is None:
            parent = gtxn_spans.get(gtxn_id)
            span = new_span(
                parent_id=parent.span_id if parent else None,
                name=record.subject, category="subtxn", site=record.site,
                start=record.time, end=record.time,
                attrs={"gtxn": gtxn_id, "state": state},
            )
            subtxn_spans[key] = span
        span.end = max(span.end, record.time)
        span.attrs["state"] = state
        if state == "ready" and "ready_time" not in span.attrs:
            span.attrs["ready_time"] = record.time
        if state in _TERMINAL_LOCAL and "ready_time" in span.attrs:
            # The §3 in-doubt window: voted ready, awaiting the decision.
            span.attrs["indoubt_window"] = record.time - span.attrs["ready_time"]
        if record.details.get("reason"):
            span.attrs["reason"] = record.details["reason"]

    # -- pass 3: message RPC spans --------------------------------------
    requests: dict[int, tuple[TraceRecord, Span]] = {}
    for record in records:
        if record.category != "message":
            continue
        msg_id = record.details.get("msg_id")
        reply_to = record.details.get("reply_to")
        if reply_to is not None and reply_to in requests:
            request_record, span = requests.pop(reply_to)
            span.end = record.time
            span.attrs["reply"] = record.subject
            continue
        gtxn_id = record.details.get("gtxn")
        parent = gtxn_spans.get(gtxn_id) if gtxn_id else None
        span = new_span(
            parent_id=parent.span_id if parent else None,
            name=record.subject, category="rpc", site=record.site,
            start=record.time, end=record.time,
            attrs={
                "dest": record.details.get("dest"),
                "gtxn": gtxn_id,
            },
        )
        if msg_id is not None:
            requests[msg_id] = (record, span)

    # -- pass 4: log force spans (opt-in detailed tracing) --------------
    for record in records:
        if record.category != "log_force":
            continue
        txn_id = record.details.get("txn")
        parent = subtxn_spans.get((record.site, txn_id)) if txn_id else None
        new_span(
            parent_id=parent.span_id if parent else None,
            name=record.subject, category="log_force", site=record.site,
            start=record.details.get("start", record.time), end=record.time,
            attrs={"records": record.details.get("records"), "txn": txn_id},
        )

    return SpanForest(spans)
