"""Observability: metrics, spans and protocol cost reports.

The paper's §4 comparison is quantitative -- protocols are ranked by
forced log writes, message rounds and how long L0 locks are held.  This
package makes those quantities first-class:

* :mod:`repro.obs.metrics` -- a registry of counters, gauges and
  histograms keyed by ``(site, protocol, name)``;
* :mod:`repro.obs.instrument` -- hooks that feed the registry from a
  running :class:`~repro.integration.federation.Federation` (GTM,
  protocols, network, lock managers, WAL forced writes);
* :mod:`repro.obs.spans` -- causally-linked spans built from the
  kernel :class:`~repro.sim.tracing.TraceLog` (global transaction ->
  subtransaction -> message RPC -> log force);
* :mod:`repro.obs.export` -- Chrome ``trace_event`` JSON and
  Prometheus-style text exposition;
* :mod:`repro.obs.report` -- :class:`RunReport`, the paper's §4 cost
  table rendered from a live run.

Everything here is *pull-based or hook-based*: with observability
disabled (the default) no registry exists, every hook slot is ``None``
and the instrumented hot paths pay only a single attribute test --
the same fast-path idiom as ``TraceLog.enabled``.  All measurements
use simulated time only; nothing reads the wall clock.
"""

from repro.obs.export import (
    to_chrome_trace,
    to_prometheus_text,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.instrument import Observability
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import ProtocolCost, RunReport
from repro.obs.spans import Span, build_spans

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "ProtocolCost",
    "RunReport",
    "Span",
    "build_spans",
    "to_chrome_trace",
    "to_prometheus_text",
    "validate_chrome_trace",
    "write_chrome_trace",
]
