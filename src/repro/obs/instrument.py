"""Federation instrumentation: feed the metrics registry from a run.

:class:`Observability` attaches to a built
:class:`~repro.integration.federation.Federation` and owns its
:class:`~repro.obs.metrics.MetricsRegistry`.  Almost everything is
*pull* -- a collector copies counters the system already maintains
(network, GTM, per-site engine/disk/log/locks) into the registry at
:meth:`collect` time, so the running simulation pays nothing.  Exactly
two opt-in hooks touch the hot path, both following the
``TraceLog.enabled`` single-attribute-test idiom:

* ``LockManager.hold_observer`` feeds the per-site L0 lock-hold
  histogram (re-attached after a site restart, which replaces the
  lock manager);
* ``StableDisk.trace_forces`` (span mode only) emits ``log_force``
  trace records so :func:`repro.obs.spans.build_spans` can build
  log-force spans.

Counters bumped during federation setup (initial loads commit real
transactions) are snapshotted at attach time and subtracted, so every
reported number covers the run only -- matching the trace, whose
setup prefix is skipped via :attr:`Observability.trace_mark`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanForest, build_spans

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.integration.federation import Federation

#: GTM counters copied verbatim (labelled site="central").
_GTM_COUNTERS = (
    "global_committed", "global_aborted",
    "redo_executions", "undo_executions",
    "decision_forces", "decision_groups", "decisions_grouped",
    "decision_size_flushes", "decision_deadline_flushes",
    "recovery_passes", "recovery_resolved_indoubt",
    "recovery_redriven_redos", "recovery_redriven_undos",
    "recovery_orphans_terminated",
    "l1_waits", "l1_deadlocks",
)

_LOCAL_TERMINAL = ("committed", "aborted")


def _site_snapshot(engine: Any) -> dict[str, float]:
    return {
        "local_commits": engine.commits,
        "local_ops": engine.ops,
        "log_forces": engine.disk.log_forces,
        "log_records": engine.log.appended,
        "log_force_writes": engine.log.forced,
        "page_reads": engine.disk.page_reads,
        "page_writes": engine.disk.page_writes,
    }


def _lock_snapshot(locks: Any) -> dict[str, float]:
    return {
        "lock_grants": locks.grants,
        "lock_waits": locks.waits,
        "lock_releases": locks.releases,
        "lock_wait_time": locks.total_wait_time,
        "lock_hold_time": locks.total_hold_time,
        "deadlocks": locks.deadlocks,
        "lock_timeouts": locks.timeouts,
    }


class Observability:
    """Metrics + span instrumentation for one federation run."""

    def __init__(self, federation: "Federation", spans: bool = False):
        self.federation = federation
        self.registry = MetricsRegistry()
        self.protocol = federation.config.gtm.protocol
        self.spans_enabled = spans
        trace = federation.kernel.trace
        #: Number of setup trace records to skip when building spans.
        self.trace_mark = len(trace.records)
        self._site_base = {
            site: _site_snapshot(engine)
            for site, engine in federation.engines.items()
        }
        self._lock_base = {
            site: _lock_snapshot(engine.locks)
            for site, engine in federation.engines.items()
        }
        # Idempotent-scan cursors (collect() may run many times).
        # Outcome cursors are per coordinator shard: each shard appends
        # to its own outcome list.
        self._outcome_scan: dict[str, int] = {}
        self._trace_scan = self.trace_mark
        self._ready_since: dict[tuple[str, str], float] = {}

        if spans:
            trace.enabled = True  # spans are built from the record stream
            for engine in federation.engines.values():
                engine.disk.trace_forces = True

        for site in federation.engines:
            self._attach_lock_observer(site)
            # A restart replaces the site's LockManager (and zeroes its
            # counters): re-attach the observer and re-baseline.
            federation.nodes[site].on_restart.append(self._restart_hook(site))

        self.registry.register_collector(self._collect)

    # -- hooks ----------------------------------------------------------

    def _attach_lock_observer(self, site: str) -> None:
        histogram = self.registry.histogram(
            "lock_hold", site=site, protocol=self.protocol
        )
        self.federation.engines[site].locks.hold_observer = (
            lambda _resource, hold, _h=histogram: _h.observe(hold)
        )

    def _restart_hook(self, site: str):
        def reattach() -> None:
            self._lock_base[site] = dict.fromkeys(self._lock_base[site], 0.0)
            self._attach_lock_observer(site)
            if self.spans_enabled:
                self.federation.engines[site].disk.trace_forces = True
        return reattach

    # -- collection -----------------------------------------------------

    def collect(self) -> MetricsRegistry:
        """Run the collectors; returns the (now current) registry."""
        self.registry.collect()
        return self.registry

    def _collect(self) -> None:
        registry = self.registry
        protocol = self.protocol
        federation = self.federation

        network = federation.network
        for name, value in (
            ("messages_sent", network.sent),
            ("messages_delivered", network.delivered),
            ("messages_dropped", network.dropped),
            ("envelopes", network.envelopes),
            ("piggybacked", network.piggybacked),
        ):
            registry.counter(name, protocol=protocol).set_total(value)
        for kind, count in network.message_counts().items():
            registry.counter(
                "messages_by_kind", protocol=protocol, kind=kind
            ).set_total(count)
        for name, value in network.reliability_counts().items():
            if name == "unacked_in_flight":
                registry.gauge(name, protocol=protocol).set(value)
            else:
                registry.counter(name, protocol=protocol).set_total(value)
        for name, value in network.batching_counts().items():
            if name == "batch_window_now":
                # The adaptive controller's live window is a level, not
                # a count.
                registry.gauge(name, protocol=protocol).set(value)
            else:
                registry.counter(name, protocol=protocol).set_total(value)
        # Per-destination retry-budget exhaustion (site + protocol
        # labels): lets chaos runs assert on which site silently lost a
        # request, not just that *some* retry chain gave up.
        for dest, count in sorted(network.retransmit_budget_exhausted.items()):
            registry.counter(
                "retransmit_budget_exhausted", site=dest, protocol=protocol
            ).set_total(count)
        registry.counter("duplicate_requests", protocol=protocol).set_total(
            sum(comm.duplicate_requests for comm in federation.comms.values())
        )

        # One instrument set per coordinator shard; shard 0 keeps the
        # historical site="central" labels, so single-coordinator runs
        # are unchanged.
        for gtm in federation.coordinators:
            gtm_metrics = gtm.metrics()
            for name in _GTM_COUNTERS:
                registry.counter(name, site=gtm.name, protocol=protocol).set_total(
                    gtm_metrics[name]
                )
            for name in ("l1_wait_time", "l1_hold_time", "mean_response_time"):
                registry.gauge(name, site=gtm.name, protocol=protocol).set(
                    gtm_metrics[name]
                )

        for site, engine in federation.engines.items():
            base = self._site_base[site]
            for name, value in _site_snapshot(engine).items():
                registry.counter(name, site=site, protocol=protocol).set_total(
                    value - base[name]
                )
            lock_base = self._lock_base[site]
            for name, value in _lock_snapshot(engine.locks).items():
                registry.counter(name, site=site, protocol=protocol).set_total(
                    value - lock_base[name]
                )
            registry.gauge("lock_max_hold_time", site=site, protocol=protocol).set(
                engine.locks.max_hold_time
            )
            registry.counter("crashes", site=site, protocol=protocol).set_total(
                engine.crashes
            )
            for reason, count in engine.aborts.items():
                if count:
                    registry.counter(
                        "local_aborts", site=site, protocol=protocol,
                        reason=reason.value,
                    ).set_total(count)

        # Response-time distribution over committed globals (all shards
        # feed the one histogram).
        response = registry.histogram("gtxn_response_time", protocol=protocol)
        for gtm in federation.coordinators:
            outcomes = gtm.outcomes
            for outcome in outcomes[self._outcome_scan.get(gtm.name, 0):]:
                if outcome.committed:
                    response.observe(outcome.response_time)
            self._outcome_scan[gtm.name] = len(outcomes)

        # Data-plane routing and membership (only when placement is on).
        dataplane = getattr(federation, "dataplane", None)
        if dataplane is not None:
            for name in (
                "promotions", "evictions", "rejoins", "resynced_keys",
                "stale_rejections", "unavailable_rejections",
                "routed_reads", "routed_writes",
            ):
                registry.counter(
                    f"dataplane_{name}", protocol=protocol
                ).set_total(getattr(dataplane, name))
            for partition in dataplane.map.partitions:
                labels = {
                    "partition": f"{partition.table}/p{partition.index}",
                    "protocol": protocol,
                }
                registry.gauge("partition_epoch", **labels).set(partition.epoch)
                registry.gauge("partition_members", **labels).set(
                    len(partition.members)
                )

        # In-doubt windows (§3): local ready -> terminal, from the trace.
        indoubt = registry.histogram("indoubt_window", protocol=protocol)
        records = federation.kernel.trace.records
        for record in records[self._trace_scan:]:
            if record.category != "txn_state":
                continue
            state = record.details.get("state")
            key = (record.site, record.subject)
            if state == "ready":
                self._ready_since.setdefault(key, record.time)
            elif state in _LOCAL_TERMINAL and key in self._ready_since:
                indoubt.observe(record.time - self._ready_since.pop(key))
        self._trace_scan = len(records)

    # -- spans ----------------------------------------------------------

    def span_forest(self) -> SpanForest:
        """Build the span forest of the run so far (setup skipped)."""
        return build_spans(self.federation.kernel.trace, skip_before=self.trace_mark)

    def __repr__(self) -> str:
        return (
            f"<Observability protocol={self.protocol} "
            f"spans={'on' if self.spans_enabled else 'off'} "
            f"instruments={len(self.registry)}>"
        )
