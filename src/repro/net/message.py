"""Network messages.

The message kinds mirror the paper's protocol vocabulary: ``prepare``,
``ready``, ``commit``, ``abort``, ``finished``, ``undo``, plus the
operational kinds the integration layer needs (``execute_op``,
``op_done``, ``status``, ...).  ``reply_to`` correlates a response with
its request so the central communication manager can match futures.

:class:`BatchMessage` is a *physical envelope*: several logical
messages bound for the same destination, coalesced by the network's
per-destination outbox (see :class:`~repro.net.network.Network`).
Receivers never see it -- the network unwraps envelopes at delivery
time -- but the metrics distinguish logical messages from envelopes so
the EXP-T5 accounting stays honest.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_msg_counter = itertools.count(1)


def reset_message_ids() -> None:
    """Restart the global message-id counter (test support only).

    Message ids appear in traces; two runs inside one interpreter can
    only produce byte-identical traces if the counter starts from the
    same point.  Production code must never call this.
    """
    global _msg_counter
    _msg_counter = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Message:
    """One logical network message."""

    kind: str
    sender: str
    dest: str
    payload: dict[str, Any] = field(default_factory=dict)
    gtxn_id: Optional[str] = None
    reply_to: Optional[int] = None
    msg_id: int = field(default_factory=lambda: next(_msg_counter))

    @property
    def link(self) -> tuple[str, str]:
        """The directed link this message travels, ``(sender, dest)``.

        Links are FIFO in the default network (fixed latency, no
        reordering), so two deliveries on the same link are *ordered*,
        not concurrent -- the ``repro.check`` scheduler never offers
        their swap as a schedule choice.
        """
        return (self.sender, self.dest)

    def commutes_with(self, other: "Message | BatchMessage") -> bool:
        """Do the two deliveries commute (order cannot matter)?

        Deliveries to different destination nodes touch disjoint node
        state and exchange no information within one simulated instant,
        so either order yields the same continuation -- the
        partial-order reduction of the checker prunes one of them.
        Deliveries to the same destination share the receiver's state
        (lock queues, GTM bookkeeping, dedup tables) and must both be
        explored.
        """
        return self.dest != other.dest

    def reply(self, kind: str, **payload: Any) -> "Message":
        """Build a response correlated with this message."""
        return Message(
            kind=kind,
            sender=self.dest,
            dest=self.sender,
            payload=payload,
            gtxn_id=self.gtxn_id,
            reply_to=self.msg_id,
        )

    def __str__(self) -> str:
        return f"{self.kind}({self.sender}->{self.dest}, gtxn={self.gtxn_id})"


@dataclass(frozen=True, slots=True)
class BatchMessage:
    """One physical envelope carrying several logical messages.

    All carried messages share the same ``(sender, dest)`` link -- the
    outbox coalesces per destination, so an envelope never mixes
    senders.  The envelope itself has no protocol meaning; it exists so
    one network transmission (one latency sample, one loss trial) can
    carry many logical messages.
    """

    sender: str
    dest: str
    messages: tuple[Message, ...]
    msg_id: int = field(default_factory=lambda: next(_msg_counter))

    def __post_init__(self) -> None:
        if not self.messages:
            raise ValueError("empty batch")
        for message in self.messages:
            if message.sender != self.sender or message.dest != self.dest:
                raise ValueError(
                    f"batch {self.sender}->{self.dest} cannot carry "
                    f"{message.sender}->{message.dest} message"
                )

    def __len__(self) -> int:
        return len(self.messages)

    @property
    def link(self) -> tuple[str, str]:
        """The directed link of the envelope (see :attr:`Message.link`)."""
        return (self.sender, self.dest)

    def commutes_with(self, other: "Message | BatchMessage") -> bool:
        """Envelope-level commutativity (see :meth:`Message.commutes_with`)."""
        return self.dest != other.dest

    def __str__(self) -> str:
        kinds = "+".join(m.kind for m in self.messages)
        return f"batch[{kinds}]({self.sender}->{self.dest})"
