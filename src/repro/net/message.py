"""Network messages.

The message kinds mirror the paper's protocol vocabulary: ``prepare``,
``ready``, ``commit``, ``abort``, ``finished``, ``undo``, plus the
operational kinds the integration layer needs (``execute_op``,
``op_done``, ``status``, ...).  ``reply_to`` correlates a response with
its request so the central communication manager can match futures.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_msg_counter = itertools.count(1)


@dataclass(frozen=True)
class Message:
    """One network message."""

    kind: str
    sender: str
    dest: str
    payload: dict[str, Any] = field(default_factory=dict)
    gtxn_id: Optional[str] = None
    reply_to: Optional[int] = None
    msg_id: int = field(default_factory=lambda: next(_msg_counter))

    def reply(self, kind: str, **payload: Any) -> "Message":
        """Build a response correlated with this message."""
        return Message(
            kind=kind,
            sender=self.dest,
            dest=self.sender,
            payload=payload,
            gtxn_id=self.gtxn_id,
            reply_to=self.msg_id,
        )

    def __str__(self) -> str:
        return f"{self.kind}({self.sender}->{self.dest}, gtxn={self.gtxn_id})"
