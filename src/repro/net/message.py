"""Network messages.

The message kinds mirror the paper's protocol vocabulary: ``prepare``,
``ready``, ``commit``, ``abort``, ``finished``, ``undo``, plus the
operational kinds the integration layer needs (``execute_op``,
``op_done``, ``status``, ...).  ``reply_to`` correlates a response with
its request so the central communication manager can match futures.

:class:`BatchMessage` is a *physical envelope*: several logical
messages bound for the same destination, coalesced by the network's
per-destination outbox (see :class:`~repro.net.network.Network`).
Receivers never see it -- the network unwraps envelopes at delivery
time -- but the metrics distinguish logical messages from envelopes so
the EXP-T5 accounting stays honest.

Both classes are hand-written ``__slots__`` classes rather than frozen
dataclasses: every request/response pair allocates a message, and the
frozen-dataclass construction path (one ``object.__setattr__`` per
field) dominated the envelope cost in profiles.  Instances are
immutable by convention; equality remains field-by-field, like the
dataclasses they replace.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

_msg_counter = itertools.count(1)


def reset_message_ids() -> None:
    """Restart the global message-id counter (test support only).

    Message ids appear in traces; two runs inside one interpreter can
    only produce byte-identical traces if the counter starts from the
    same point.  Production code must never call this.
    """
    global _msg_counter
    _msg_counter = itertools.count(1)


class Message:
    """One logical network message."""

    __slots__ = ("kind", "sender", "dest", "payload", "gtxn_id", "reply_to", "msg_id")

    def __init__(
        self,
        kind: str,
        sender: str,
        dest: str,
        payload: Optional[dict[str, Any]] = None,
        gtxn_id: Optional[str] = None,
        reply_to: Optional[int] = None,
        msg_id: Optional[int] = None,
    ):
        self.kind = kind
        self.sender = sender
        self.dest = dest
        self.payload = {} if payload is None else payload
        self.gtxn_id = gtxn_id
        self.reply_to = reply_to
        self.msg_id = next(_msg_counter) if msg_id is None else msg_id

    @property
    def link(self) -> tuple[str, str]:
        """The directed link this message travels, ``(sender, dest)``.

        Links are FIFO in the default network (fixed latency, no
        reordering), so two deliveries on the same link are *ordered*,
        not concurrent -- the ``repro.check`` scheduler never offers
        their swap as a schedule choice.
        """
        return (self.sender, self.dest)

    def commutes_with(self, other: "Message | BatchMessage") -> bool:
        """Do the two deliveries commute (order cannot matter)?

        Deliveries to different destination nodes touch disjoint node
        state and exchange no information within one simulated instant,
        so either order yields the same continuation -- the
        partial-order reduction of the checker prunes one of them.
        Deliveries to the same destination share the receiver's state
        (lock queues, GTM bookkeeping, dedup tables) and must both be
        explored.
        """
        return self.dest != other.dest

    def reply(self, kind: str, **payload: Any) -> "Message":
        """Build a response correlated with this message."""
        return Message(
            kind,
            self.dest,
            self.sender,
            payload,
            self.gtxn_id,
            self.msg_id,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.sender == other.sender
            and self.dest == other.dest
            and self.payload == other.payload
            and self.gtxn_id == other.gtxn_id
            and self.reply_to == other.reply_to
            and self.msg_id == other.msg_id
        )

    # Payload dicts make messages unhashable, exactly like the frozen
    # dataclass this class replaces (its generated hash raised on the
    # dict field).
    __hash__ = None  # type: ignore[assignment]

    def __str__(self) -> str:
        return f"{self.kind}({self.sender}->{self.dest}, gtxn={self.gtxn_id})"

    def __repr__(self) -> str:
        return (
            f"Message(kind={self.kind!r}, sender={self.sender!r}, "
            f"dest={self.dest!r}, payload={self.payload!r}, "
            f"gtxn_id={self.gtxn_id!r}, reply_to={self.reply_to!r}, "
            f"msg_id={self.msg_id!r})"
        )


class BatchMessage:
    """One physical envelope carrying several logical messages.

    All carried messages share the same ``(sender, dest)`` link -- the
    outbox coalesces per destination, so an envelope never mixes
    senders.  The envelope itself has no protocol meaning; it exists so
    one network transmission (one latency sample, one loss trial) can
    carry many logical messages.
    """

    __slots__ = ("sender", "dest", "messages", "msg_id")

    def __init__(
        self,
        sender: str,
        dest: str,
        messages: tuple[Message, ...],
        msg_id: Optional[int] = None,
    ):
        if not messages:
            raise ValueError("empty batch")
        for message in messages:
            if message.sender != sender or message.dest != dest:
                raise ValueError(
                    f"batch {sender}->{dest} cannot carry "
                    f"{message.sender}->{message.dest} message"
                )
        self.sender = sender
        self.dest = dest
        self.messages = messages
        self.msg_id = next(_msg_counter) if msg_id is None else msg_id

    def __len__(self) -> int:
        return len(self.messages)

    @property
    def link(self) -> tuple[str, str]:
        """The directed link of the envelope (see :attr:`Message.link`)."""
        return (self.sender, self.dest)

    def commutes_with(self, other: "Message | BatchMessage") -> bool:
        """Envelope-level commutativity (see :meth:`Message.commutes_with`)."""
        return self.dest != other.dest

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BatchMessage):
            return NotImplemented
        return (
            self.sender == other.sender
            and self.dest == other.dest
            and self.messages == other.messages
            and self.msg_id == other.msg_id
        )

    __hash__ = None  # type: ignore[assignment]

    def __str__(self) -> str:
        kinds = "+".join(m.kind for m in self.messages)
        return f"batch[{kinds}]({self.sender}->{self.dest})"

    def __repr__(self) -> str:
        return (
            f"BatchMessage(sender={self.sender!r}, dest={self.dest!r}, "
            f"messages={self.messages!r}, msg_id={self.msg_id!r})"
        )
