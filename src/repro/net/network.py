"""The star network.

Messages travel only between the central node and a local node -- the
paper's Figure 1 communication scheme.  Latency models, optional
message loss, per-kind counters and a full message trace are provided
for the experiments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import NodeUnreachable, TopologyViolation
from repro.net.message import Message
from repro.net.node import Node

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Kernel


class FixedLatency:
    """Constant message delay."""

    def __init__(self, delay: float = 1.0):
        self.delay = delay

    def sample(self, rng) -> float:
        return self.delay


class UniformLatency:
    """Uniformly distributed message delay in ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if low > high:
            raise ValueError("low > high")
        self.low = low
        self.high = high

    def sample(self, rng) -> float:
        return rng.uniform(self.low, self.high)


class Network:
    """Star-topology message fabric."""

    def __init__(
        self,
        kernel: "Kernel",
        latency: Optional[FixedLatency | UniformLatency] = None,
        loss_rate: float = 0.0,
        enforce_star: bool = True,
    ):
        self.kernel = kernel
        self.latency = latency or FixedLatency(1.0)
        self.loss_rate = loss_rate
        self.enforce_star = enforce_star
        self._nodes: dict[str, Node] = {}
        self._rng = kernel.rng.stream("network")
        # Deterministic fault hook: message kinds to drop exactly once
        # (used by the fault injector to lose a specific reply).
        self.drop_once: set[str] = set()
        # Metrics.
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.by_kind: dict[str, int] = {}

    # -- membership -----------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        if node.name in self._nodes:
            raise ValueError(f"duplicate node {node.name}")
        self._nodes[node.name] = node
        return node

    def node(self, name: str) -> Node:
        if name not in self._nodes:
            raise NodeUnreachable(f"unknown node {name}")
        return self._nodes[name]

    def nodes(self) -> list[Node]:
        return list(self._nodes.values())

    @property
    def central(self) -> Node:
        for node in self._nodes.values():
            if node.is_central:
                return node
        raise NodeUnreachable("no central node registered")

    # -- sending ----------------------------------------------------------------

    def send(self, message: Message) -> None:
        """Asynchronously transmit ``message`` (fire and forget)."""
        src = self.node(message.sender)
        dst = self.node(message.dest)
        if self.enforce_star and not (src.is_central or dst.is_central):
            raise TopologyViolation(
                f"local-to-local message {message.sender} -> {message.dest}"
            )
        self.sent += 1
        self.by_kind[message.kind] = self.by_kind.get(message.kind, 0) + 1
        self.kernel.trace.emit(
            "message",
            message.sender,
            message.kind,
            dest=message.dest,
            gtxn=message.gtxn_id,
            msg_id=message.msg_id,
            reply_to=message.reply_to,
        )
        if message.kind in self.drop_once:
            self.drop_once.discard(message.kind)
            self.dropped += 1
            self.kernel.trace.emit(
                "message_drop", message.sender, message.kind,
                dest=message.dest, cause="injected",
            )
            return
        if self.loss_rate and self._rng.random() < self.loss_rate:
            self.dropped += 1
            self.kernel.trace.emit(
                "message_drop", message.sender, message.kind, dest=message.dest
            )
            return
        delay = self.latency.sample(self._rng)
        self.kernel._schedule(delay, lambda: self._deliver(message))

    def _deliver(self, message: Message) -> None:
        dst = self._nodes.get(message.dest)
        if dst is None or not dst.deliver(message):
            self.dropped += 1
            self.kernel.trace.emit(
                "message_drop", message.sender, message.kind, dest=message.dest,
                cause="dest down",
            )
            return
        self.delivered += 1

    def message_counts(self) -> dict[str, int]:
        """Messages sent per kind (EXP-T5)."""
        return dict(sorted(self.by_kind.items()))

    def __repr__(self) -> str:
        return f"<Network nodes={sorted(self._nodes)} sent={self.sent}>"
