"""The star network.

Messages travel only between the central node and a local node -- the
paper's Figure 1 communication scheme.  Latency models, optional
message loss, per-kind counters and a full message trace are provided
for the experiments.

With ``batch_window > 0`` the network keeps a per-link outbox: logical
messages bound for the same ``(sender, dest)`` link within the window
are coalesced into one :class:`~repro.net.message.BatchMessage`
envelope -- one latency sample, one loss trial, one transmission.
Metrics count *logical* messages (``sent``/``by_kind``) and *physical*
envelopes (``envelopes``) separately so the EXP-T5 message-complexity
accounting stays honest; ``piggybacked`` counts the logical messages
that rode along in an envelope after the first.  ``batch_window = 0``
(the default) takes exactly the unbatched path of the seed system.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import NodeUnreachable, TopologyViolation
from repro.net.message import BatchMessage, Message
from repro.net.node import Node

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Kernel


class FixedLatency:
    """Constant message delay."""

    def __init__(self, delay: float = 1.0):
        self.delay = delay

    def sample(self, rng) -> float:
        return self.delay


class UniformLatency:
    """Uniformly distributed message delay in ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if low > high:
            raise ValueError("low > high")
        self.low = low
        self.high = high

    def sample(self, rng) -> float:
        return rng.uniform(self.low, self.high)


class Network:
    """Star-topology message fabric."""

    def __init__(
        self,
        kernel: "Kernel",
        latency: Optional[FixedLatency | UniformLatency] = None,
        loss_rate: float = 0.0,
        enforce_star: bool = True,
        batch_window: float = 0.0,
    ):
        if batch_window < 0:
            raise ValueError(f"negative batch window {batch_window}")
        self.kernel = kernel
        self.latency = latency or FixedLatency(1.0)
        self.loss_rate = loss_rate
        self.enforce_star = enforce_star
        self.batch_window = batch_window
        self._nodes: dict[str, Node] = {}
        self._rng = kernel.rng.stream("network")
        # Per-link outboxes for the batching path: (sender, dest) ->
        # queued logical messages, plus a generation counter that
        # invalidates stale scheduled flushes after an explicit flush.
        self._outboxes: dict[tuple[str, str], list[Message]] = {}
        self._outbox_gen: dict[tuple[str, str], int] = {}
        # Deterministic fault hook: message kinds to drop exactly once
        # (used by the fault injector to lose a specific reply).
        self.drop_once: set[str] = set()
        # Metrics.  ``sent``/``delivered``/``dropped``/``by_kind`` count
        # logical messages; ``envelopes`` counts physical transmissions.
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.envelopes = 0
        self.piggybacked = 0
        self.by_kind: dict[str, int] = {}

    # -- membership -----------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        if node.name in self._nodes:
            raise ValueError(f"duplicate node {node.name}")
        self._nodes[node.name] = node
        return node

    def node(self, name: str) -> Node:
        if name not in self._nodes:
            raise NodeUnreachable(f"unknown node {name}")
        return self._nodes[name]

    def nodes(self) -> list[Node]:
        return list(self._nodes.values())

    @property
    def central(self) -> Node:
        for node in self._nodes.values():
            if node.is_central:
                return node
        raise NodeUnreachable("no central node registered")

    # -- sending ----------------------------------------------------------------

    def send(self, message: Message) -> None:
        """Asynchronously transmit ``message`` (fire and forget)."""
        src = self.node(message.sender)
        dst = self.node(message.dest)
        if self.enforce_star and not (src.is_central or dst.is_central):
            raise TopologyViolation(
                f"local-to-local message {message.sender} -> {message.dest}"
            )
        self.sent += 1
        self.by_kind[message.kind] = self.by_kind.get(message.kind, 0) + 1
        trace = self.kernel.trace
        if trace.enabled:
            trace.emit(
                "message",
                message.sender,
                message.kind,
                dest=message.dest,
                gtxn=message.gtxn_id,
                msg_id=message.msg_id,
                reply_to=message.reply_to,
            )
        if message.kind in self.drop_once:
            self.drop_once.discard(message.kind)
            self.dropped += 1
            trace.emit(
                "message_drop", message.sender, message.kind,
                dest=message.dest, cause="injected",
            )
            return
        if self.batch_window > 0:
            self._enqueue(message)
            return
        self._transmit(message.sender, message.dest, (message,))

    # -- batching --------------------------------------------------------------

    def _enqueue(self, message: Message) -> None:
        key = (message.sender, message.dest)
        queue = self._outboxes.setdefault(key, [])
        queue.append(message)
        if len(queue) == 1:
            generation = self._outbox_gen.get(key, 0)
            self.kernel._schedule(self.batch_window, self._flush, key, generation)

    def _flush(self, key: tuple[str, str], generation: int) -> None:
        if self._outbox_gen.get(key, 0) != generation:
            return  # flushed explicitly in the meantime
        self._flush_link(key)

    def _flush_link(self, key: tuple[str, str]) -> None:
        queue = self._outboxes.get(key)
        if not queue:
            return
        self._outboxes[key] = []
        self._outbox_gen[key] = self._outbox_gen.get(key, 0) + 1
        sender, dest = key
        src = self._nodes.get(sender)
        if src is None or src.crashed:
            # The sender died while the envelope sat in its outbox.
            self.dropped += len(queue)
            trace = self.kernel.trace
            if trace.enabled:
                for message in queue:
                    trace.emit(
                        "message_drop", message.sender, message.kind,
                        dest=message.dest, cause="sender down",
                    )
            return
        envelope = BatchMessage(sender=sender, dest=dest, messages=tuple(queue))
        trace = self.kernel.trace
        if trace.enabled:
            trace.emit(
                "envelope", sender, "batch", dest=dest, size=len(envelope),
                kinds="+".join(m.kind for m in envelope.messages),
                msg_id=envelope.msg_id,
            )
        self._transmit(sender, dest, envelope.messages)

    def flush(self) -> None:
        """Force every pending outbox onto the wire immediately."""
        for key in list(self._outboxes):
            self._flush_link(key)

    @property
    def pending_batched(self) -> int:
        """Logical messages currently waiting in outboxes."""
        return sum(len(q) for q in self._outboxes.values())

    # -- transmission ----------------------------------------------------------

    def _transmit(self, sender: str, dest: str, messages: tuple[Message, ...]) -> None:
        """One physical transmission: one loss trial, one latency sample."""
        if self.loss_rate and self._rng.random() < self.loss_rate:
            self.dropped += len(messages)
            trace = self.kernel.trace
            if trace.enabled:
                for message in messages:
                    trace.emit(
                        "message_drop", message.sender, message.kind, dest=message.dest
                    )
            return
        self.envelopes += 1
        if len(messages) > 1:
            self.piggybacked += len(messages) - 1
        delay = self.latency.sample(self._rng)
        self.kernel._schedule(delay, self._deliver_all, messages)

    def _deliver_all(self, messages: tuple[Message, ...]) -> None:
        dst = self._nodes.get(messages[0].dest)
        if dst is None or dst.crashed:
            self.dropped += len(messages)
            trace = self.kernel.trace
            if trace.enabled:
                for message in messages:
                    trace.emit(
                        "message_drop", message.sender, message.kind,
                        dest=message.dest, cause="dest down",
                    )
            return
        for message in messages:
            dst.deliver(message)
        self.delivered += len(messages)

    # -- metrics ---------------------------------------------------------------

    def message_counts(self) -> dict[str, int]:
        """Logical messages sent per kind (EXP-T5)."""
        return dict(sorted(self.by_kind.items()))

    def envelope_counts(self) -> dict[str, int]:
        """Physical-transmission accounting (EXP-T5 with batching)."""
        return {
            "logical": self.sent,
            "envelopes": self.envelopes,
            "piggybacked": self.piggybacked,
        }

    def make_batch(self, messages: tuple[Message, ...]) -> BatchMessage:
        """Build an envelope for ``messages`` (validates the link)."""
        return BatchMessage(
            sender=messages[0].sender, dest=messages[0].dest, messages=tuple(messages)
        )

    def __repr__(self) -> str:
        return f"<Network nodes={sorted(self._nodes)} sent={self.sent}>"
