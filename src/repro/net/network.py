"""The star network.

Messages travel only between the central node and a local node -- the
paper's Figure 1 communication scheme.  Latency models, optional
message loss, per-kind counters and a full message trace are provided
for the experiments.

With ``batch_window > 0`` the network keeps a per-link outbox: logical
messages bound for the same ``(sender, dest)`` link within the window
are coalesced into one :class:`~repro.net.message.BatchMessage`
envelope -- one latency sample, one loss trial, one transmission.
Metrics count *logical* messages (``sent``/``by_kind``) and *physical*
envelopes (``envelopes``) separately so the EXP-T5 message-complexity
accounting stays honest; ``piggybacked`` counts the logical messages
that rode along in an envelope after the first.  ``batch_window = 0``
(the default) takes exactly the unbatched path of the seed system.

The flush policy is *size-or-deadline*: an outbox reaching
``batch_max_msgs`` logical messages flushes immediately instead of
waiting out the window (``batch_max_msgs = 0`` disables the size
trigger, the seed behaviour).  With ``batch_policy="adaptive"`` the
deadline itself is load-sensed: an
:class:`~repro.net.adaptive.AdaptiveWindow` shrinks the window when
flushed batches report rising total queueing delay (a burst) and
re-widens it toward ``batch_window`` at quiescence.
``batch_policy="static"`` (the default) keeps the fixed-delay flush of
PR 1 byte-identical.

A node crash purges its sender-side outboxes: buffered logical
messages die with the crashed sender (its batching state is volatile,
exactly like its reliable-retransmission state) instead of being
transmitted by a stale scheduled flush after a quick restart.
Destination-bound outboxes are left alone -- their deadline flush
transmits normally and, under ``reliable=True``, the retransmission
loop carries the envelope across the destination's outage.

Fault knobs beyond probabilistic loss: ``dup_rate`` delivers a
transmission twice, ``reorder_rate`` adds extra latency to some
transmissions so later ones overtake them, and named link partitions
(:meth:`Network.partition` / :meth:`Network.heal`) cut a link in both
directions until healed.

With ``reliable=True`` every physical transmission is acknowledged by
the receiving end: unacknowledged transmissions are retransmitted with
exponential backoff up to a retry budget, and the receiver suppresses
duplicate transmissions (re-acking them, in case the first ack was
lost).  Acks and retransmissions are *physical* control traffic -- they
never appear in the logical ``sent``/``by_kind`` accounting.  All new
knobs at their defaults leave the transmission path byte-identical to
the unreliable seed system: no extra random draws, no extra events.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

from repro.errors import NodeUnreachable, TopologyViolation
from repro.net.adaptive import AdaptiveWindow
from repro.net.message import BatchMessage, Message
from repro.net.node import Node

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Kernel


class FixedLatency:
    """Constant message delay."""

    def __init__(self, delay: float = 1.0):
        self.delay = delay

    def sample(self, rng) -> float:
        return self.delay


class UniformLatency:
    """Uniformly distributed message delay in ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if low > high:
            raise ValueError("low > high")
        self.low = low
        self.high = high

    def sample(self, rng) -> float:
        return rng.uniform(self.low, self.high)


class Network:
    """Star-topology message fabric."""

    def __init__(
        self,
        kernel: "Kernel",
        latency: Optional[FixedLatency | UniformLatency] = None,
        loss_rate: float = 0.0,
        enforce_star: bool = True,
        batch_window: float = 0.0,
        batch_policy: str = "static",
        batch_max_msgs: int = 0,
        dup_rate: float = 0.0,
        reorder_rate: float = 0.0,
        reorder_spread: float = 5.0,
        reliable: bool = False,
        retransmit_timeout: float = 15.0,
        retransmit_backoff: float = 2.0,
        max_retransmits: int = 12,
        max_retransmit_delay: float = 300.0,
    ):
        if batch_window < 0:
            raise ValueError(f"negative batch window {batch_window}")
        if batch_policy not in ("static", "adaptive"):
            raise ValueError(f"unknown batch policy {batch_policy!r}")
        if batch_max_msgs < 0:
            raise ValueError(f"negative batch_max_msgs {batch_max_msgs}")
        for name, rate in (("dup_rate", dup_rate), ("reorder_rate", reorder_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} {rate} outside [0, 1]")
        self.kernel = kernel
        self.latency = latency or FixedLatency(1.0)
        self.loss_rate = loss_rate
        self.enforce_star = enforce_star
        self.batch_window = batch_window
        self.batch_policy = batch_policy
        self.batch_max_msgs = batch_max_msgs
        # The load-sensed controller exists only on the adaptive
        # policy; ``None`` keeps the static path byte-identical (no
        # enqueue-time bookkeeping, deadline always ``batch_window``).
        self.batch_controller: Optional[AdaptiveWindow] = (
            AdaptiveWindow(batch_window)
            if batch_policy == "adaptive" and batch_window > 0
            else None
        )
        self.dup_rate = dup_rate
        self.reorder_rate = reorder_rate
        self.reorder_spread = reorder_spread
        self.reliable = reliable
        self.retransmit_timeout = retransmit_timeout
        self.retransmit_backoff = retransmit_backoff
        self.max_retransmits = max_retransmits
        self.max_retransmit_delay = max_retransmit_delay
        self._nodes: dict[str, Node] = {}
        self._rng = kernel.rng.stream("network")
        # Per-link outboxes for the batching path: (sender, dest) ->
        # queued logical messages, plus a generation counter that
        # invalidates stale scheduled flushes after an explicit flush.
        self._outboxes: dict[tuple[str, str], list[Message]] = {}
        self._outbox_gen: dict[tuple[str, str], int] = {}
        # Enqueue timestamps (adaptive policy only): parallel to
        # ``_outboxes``, feeds the controller's total-wait signal.
        self._outbox_times: dict[tuple[str, str], list[float]] = {}
        # Deterministic fault hook: message kinds to drop exactly once
        # (used by the fault injector to lose a specific reply).
        self.drop_once: set[str] = set()
        # Named link partitions: a link in this set drops traffic in
        # both directions until healed.
        self._partitioned: set[frozenset[str]] = set()
        # Reliable-delivery state: unacked transmissions by id
        # (sender side) and transmission ids already delivered per
        # destination (receiver-side duplicate suppression).
        self._xmit_ids = itertools.count(1)
        self._pending_xmits: dict[int, list] = {}
        self._seen_xmits: dict[str, set[int]] = {}
        # Logical messages whose requester gave up (request timeout):
        # never retransmitted again, never delivered late.  Keeps the
        # at-most-once-per-request-window semantics the protocols'
        # own retry machinery was written against.
        self._abandoned: set[int] = set()
        # Metrics.  ``sent``/``delivered``/``dropped``/``by_kind`` count
        # logical messages; ``envelopes`` counts physical transmissions.
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.envelopes = 0
        self.piggybacked = 0
        self.by_kind: dict[str, int] = {}
        # Reliability/fault metrics (physical layer).
        self.retransmissions = 0
        self.retransmit_drops = 0
        # Per-destination logical messages whose retry budget ran out:
        # before this counter a budget-exhausted request vanished
        # silently from the metrics' point of view (only the aggregate
        # ``retransmit_drops`` moved, with no site attribution), so
        # chaos runs could not assert on *who* lost traffic.
        self.retransmit_budget_exhausted: dict[str, int] = {}
        self.lost_transmissions = 0
        self.partition_blocked = 0
        self.duplicates_injected = 0
        self.duplicates_suppressed = 0
        self.reordered = 0
        self.acks_sent = 0
        self.abandoned_messages = 0
        # Batching-policy metrics: flush triggers and crash purges.
        self.size_flushes = 0
        self.deadline_flushes = 0
        self.purged_batched = 0

    # -- membership -----------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        if node.name in self._nodes:
            raise ValueError(f"duplicate node {node.name}")
        self._nodes[node.name] = node
        # Batching state buffered *at* this node is volatile: purge it
        # the moment the node crashes so a stale scheduled flush cannot
        # transmit pre-crash messages after a quick restart.
        node.on_crash.append(lambda name=node.name: self._purge_outboxes(name))
        return node

    def node(self, name: str) -> Node:
        if name not in self._nodes:
            raise NodeUnreachable(f"unknown node {name}")
        return self._nodes[name]

    def nodes(self) -> list[Node]:
        return list(self._nodes.values())

    @property
    def central(self) -> Node:
        for node in self._nodes.values():
            if node.is_central:
                return node
        raise NodeUnreachable("no central node registered")

    # -- sending ----------------------------------------------------------------

    def send(self, message: Message) -> None:
        """Asynchronously transmit ``message`` (fire and forget)."""
        nodes = self._nodes
        src = nodes.get(message.sender)
        if src is None:
            raise NodeUnreachable(f"unknown node {message.sender}")
        dst = nodes.get(message.dest)
        if dst is None:
            raise NodeUnreachable(f"unknown node {message.dest}")
        if self.enforce_star and not (src.is_central or dst.is_central):
            raise TopologyViolation(
                f"local-to-local message {message.sender} -> {message.dest}"
            )
        self.sent += 1
        kind = message.kind
        by_kind = self.by_kind
        by_kind[kind] = by_kind.get(kind, 0) + 1
        trace = self.kernel.trace
        if trace.enabled:
            trace.emit(
                "message",
                message.sender,
                kind,
                dest=message.dest,
                gtxn=message.gtxn_id,
                msg_id=message.msg_id,
                reply_to=message.reply_to,
            )
        if self.drop_once and kind in self.drop_once:
            self.drop_once.discard(kind)
            self.dropped += 1
            trace.emit(
                "message_drop", message.sender, kind,
                dest=message.dest, cause="injected",
            )
            return
        if self.batch_window > 0:
            self._enqueue(message)
            return
        self._transmit(message.sender, message.dest, (message,))

    # -- batching --------------------------------------------------------------

    def _enqueue(self, message: Message) -> None:
        key = (message.sender, message.dest)
        queue = self._outboxes.setdefault(key, [])
        queue.append(message)
        controller = self.batch_controller
        if controller is not None:
            self._outbox_times.setdefault(key, []).append(self.kernel.now)
        if self.batch_max_msgs and len(queue) >= self.batch_max_msgs:
            # Size trigger: a full envelope has nothing to gain from
            # waiting out the deadline.
            self.size_flushes += 1
            self._flush_link(key)
            return
        if len(queue) == 1:
            generation = self._outbox_gen.get(key, 0)
            window = (
                controller.current if controller is not None else self.batch_window
            )
            self.kernel._schedule(window, self._flush, key, generation)

    def _flush(self, key: tuple[str, str], generation: int) -> None:
        if self._outbox_gen.get(key, 0) != generation:
            return  # flushed explicitly in the meantime
        if self._outboxes.get(key):
            self.deadline_flushes += 1
        self._flush_link(key)

    def _flush_link(self, key: tuple[str, str]) -> None:
        queue = self._outboxes.get(key)
        if not queue:
            return
        self._outboxes[key] = []
        self._outbox_gen[key] = self._outbox_gen.get(key, 0) + 1
        controller = self.batch_controller
        if controller is not None:
            times = self._outbox_times.get(key)
            if times:
                now = self.kernel.now
                controller.observe(sum(now - t for t in times))
                self._outbox_times[key] = []
        sender, dest = key
        src = self._nodes.get(sender)
        if src is None or src.crashed:
            # The sender died while the envelope sat in its outbox.
            self.dropped += len(queue)
            trace = self.kernel.trace
            if trace.enabled:
                for message in queue:
                    trace.emit(
                        "message_drop", message.sender, message.kind,
                        dest=message.dest, cause="sender down",
                    )
            return
        envelope = BatchMessage(sender=sender, dest=dest, messages=tuple(queue))
        trace = self.kernel.trace
        if trace.enabled:
            trace.emit(
                "envelope", sender, "batch", dest=dest, size=len(envelope),
                kinds="+".join(m.kind for m in envelope.messages),
                msg_id=envelope.msg_id,
            )
        self._transmit(sender, dest, envelope.messages)

    def flush(self) -> None:
        """Force every pending outbox onto the wire immediately."""
        for key in list(self._outboxes):
            self._flush_link(key)

    def _purge_outboxes(self, name: str) -> None:
        """Drop outboxes buffered at ``name``; it just crashed.

        Without this, a crash-then-restart inside one batch window left
        the ``(key, generation)`` guard satisfied: the scheduled flush
        fired against a now-healthy sender and transmitted messages
        that were buffered *before* the crash -- state that should have
        died with it (the reliable path's ``_attempt_xmit`` already
        treats sender-side retransmission state as volatile).  Only
        sender-side outboxes are purged: envelopes headed *to* the
        crashed node still flush on their deadline, where the reliable
        path retransmits them across the outage and the unreliable path
        drops them at delivery exactly as the seed did.
        """
        trace = self.kernel.trace
        for key, queue in self._outboxes.items():
            if key[0] != name or not queue:
                continue
            self._outboxes[key] = []
            self._outbox_gen[key] = self._outbox_gen.get(key, 0) + 1
            if self._outbox_times.get(key):
                self._outbox_times[key] = []
            self.dropped += len(queue)
            self.purged_batched += len(queue)
            if trace.enabled:
                for message in queue:
                    trace.emit(
                        "message_drop", message.sender, message.kind,
                        dest=message.dest, cause="sender down",
                    )

    @property
    def pending_batched(self) -> int:
        """Logical messages currently waiting in outboxes."""
        return sum(len(q) for q in self._outboxes.values())

    # -- partitions ------------------------------------------------------------

    def partition(self, a: str, b: str) -> None:
        """Cut the link between ``a`` and ``b`` (both directions)."""
        self.node(a)
        self.node(b)
        self._partitioned.add(frozenset((a, b)))
        self.kernel.trace.emit("partition", a, b, action="cut")

    def heal(self, a: Optional[str] = None, b: Optional[str] = None) -> None:
        """Heal one link (``heal(a, b)``) or every partition (``heal()``)."""
        if a is None and b is None:
            for link in self._partitioned:
                pair = sorted(link)
                self.kernel.trace.emit("partition", pair[0], pair[1], action="heal")
            self._partitioned.clear()
            return
        if a is None or b is None:
            raise ValueError("heal takes both endpoints or neither")
        self._partitioned.discard(frozenset((a, b)))
        self.kernel.trace.emit("partition", a, b, action="heal")

    def partitioned(self, a: str, b: str) -> bool:
        """Is the ``a``--``b`` link currently cut?"""
        return frozenset((a, b)) in self._partitioned

    # -- abandonment -----------------------------------------------------------

    def abandon(self, msg_id: int) -> None:
        """Stop (re)delivering the reliable transmission of ``msg_id``.

        Called by a requester whose timeout fired: the protocols'
        retry machinery re-sends a *fresh* request, so a late ghost
        delivery of the stale one would make the receiver act on a
        transaction the coordinator has already moved past (e.g. begin
        a subtransaction for an attempt that was aborted meanwhile).
        Abandoned messages are pruned from pending retransmissions and
        filtered out at delivery time.  No-op on unreliable networks,
        which cannot deliver late to begin with.
        """
        if self.reliable:
            self._abandoned.add(msg_id)

    # -- transmission ----------------------------------------------------------

    def _transmit(self, sender: str, dest: str, messages: tuple[Message, ...]) -> None:
        """One physical transmission: one loss trial, one latency sample."""
        if self.reliable:
            xid = next(self._xmit_ids)
            # [messages, attempts made, pending retransmit timer]
            self._pending_xmits[xid] = [messages, 0, None]
            self._attempt_xmit(xid)
            return
        if self._partitioned and frozenset((sender, dest)) in self._partitioned:
            self.partition_blocked += 1
            self.dropped += len(messages)
            trace = self.kernel.trace
            if trace.enabled:
                for message in messages:
                    trace.emit(
                        "message_drop", message.sender, message.kind,
                        dest=message.dest, cause="partition",
                    )
            return
        if self.loss_rate and self._rng.random() < self.loss_rate:
            self.dropped += len(messages)
            trace = self.kernel.trace
            if trace.enabled:
                for message in messages:
                    trace.emit(
                        "message_drop", message.sender, message.kind, dest=message.dest
                    )
            return
        self.envelopes += 1
        if len(messages) > 1:
            self.piggybacked += len(messages) - 1
        delay = self.latency.sample(self._rng)
        if self.reorder_rate and self._rng.random() < self.reorder_rate:
            delay += self._rng.uniform(0.0, self.reorder_spread)
            self.reordered += 1
        self.kernel._schedule(delay, self._deliver_all, messages)
        if self.dup_rate and self._rng.random() < self.dup_rate:
            self.duplicates_injected += len(messages)
            self.kernel._schedule(
                self.latency.sample(self._rng), self._deliver_all, messages
            )

    # -- reliable delivery -----------------------------------------------------

    def _attempt_xmit(self, xid: int) -> None:
        """One send attempt of a reliable transmission; arms the retry timer."""
        entry = self._pending_xmits.get(xid)
        if entry is None:
            return  # acked in the meantime
        messages, attempts, _ = entry
        sender, dest = messages[0].sender, messages[0].dest
        src = self._nodes.get(sender)
        if src is None or src.crashed:
            # The sender died: its retransmission state is volatile.
            del self._pending_xmits[xid]
            self.dropped += len(messages)
            trace = self.kernel.trace
            if trace.enabled:
                for message in messages:
                    trace.emit(
                        "message_drop", message.sender, message.kind,
                        dest=message.dest, cause="sender down",
                    )
            return
        blocked = (
            bool(self._partitioned) and frozenset((sender, dest)) in self._partitioned
        )
        if blocked:
            self.partition_blocked += 1
            self.lost_transmissions += 1
        elif self.loss_rate and self._rng.random() < self.loss_rate:
            self.lost_transmissions += 1
        else:
            self.envelopes += 1
            if len(messages) > 1 and attempts == 0:
                self.piggybacked += len(messages) - 1
            delay = self.latency.sample(self._rng)
            if self.reorder_rate and self._rng.random() < self.reorder_rate:
                delay += self._rng.uniform(0.0, self.reorder_spread)
                self.reordered += 1
            self.kernel._schedule(delay, self._deliver_reliable, xid, messages)
            if self.dup_rate and self._rng.random() < self.dup_rate:
                self.duplicates_injected += len(messages)
                self.kernel._schedule(
                    self.latency.sample(self._rng), self._deliver_reliable, xid, messages
                )
        # Arm the retransmit timer whether or not the attempt got out:
        # the attempt, its delivery, or its ack may all be lost.  The
        # timer future is cancelled (resolved) on ack so the kernel can
        # skip it without advancing the clock.
        entry[1] = attempts + 1
        # Exponential backoff, capped: uncapped it reaches
        # retransmit_timeout * backoff**(max_retransmits - 1) -- with
        # the defaults some 30k time units for one attempt, which turns
        # a long partition into an effectively permanent message loss.
        timeout = self.retransmit_timeout * (self.retransmit_backoff ** attempts)
        if self.max_retransmit_delay > 0:
            timeout = min(timeout, self.max_retransmit_delay)
        timer = self.kernel.timer(timeout, label="retransmit")
        entry[2] = timer
        expected_attempts = attempts + 1
        timer.add_callback(lambda _f: self._retransmit(xid, expected_attempts))

    def _retransmit(self, xid: int, attempts: int) -> None:
        entry = self._pending_xmits.get(xid)
        if entry is None or entry[1] != attempts:
            return  # acked, or a newer attempt owns the retry chain
        if self._abandoned:
            live = tuple(
                m for m in entry[0] if m.msg_id not in self._abandoned
            )
            if not live:
                del self._pending_xmits[xid]
                return  # every rider gave up: stop retransmitting
            entry[0] = live
        if attempts > self.max_retransmits:
            messages = entry[0]
            del self._pending_xmits[xid]
            self.retransmit_drops += 1
            self.dropped += len(messages)
            exhausted = self.retransmit_budget_exhausted
            for message in messages:
                exhausted[message.dest] = exhausted.get(message.dest, 0) + 1
            trace = self.kernel.trace
            if trace.enabled:
                for message in messages:
                    trace.emit(
                        "message_drop", message.sender, message.kind,
                        dest=message.dest, cause="retry budget exhausted",
                    )
            return
        self.retransmissions += 1
        self._attempt_xmit(xid)

    def _deliver_reliable(self, xid: int, messages: tuple[Message, ...]) -> None:
        dest = messages[0].dest
        dst = self._nodes.get(dest)
        if dst is None or dst.crashed:
            return  # no ack: the sender keeps retransmitting
        # Ack duplicates too -- the original ack may have been the loss.
        self._send_ack(dest, messages[0].sender, xid)
        seen = self._seen_xmits.setdefault(dest, set())
        if xid in seen:
            self.duplicates_suppressed += len(messages)
            return
        seen.add(xid)
        if self._abandoned:
            live = [m for m in messages if m.msg_id not in self._abandoned]
            stale = len(messages) - len(live)
            if stale:
                self.abandoned_messages += stale
                self.dropped += stale
                trace = self.kernel.trace
                if trace.enabled:
                    for message in messages:
                        if message.msg_id in self._abandoned:
                            trace.emit(
                                "message_drop", message.sender, message.kind,
                                dest=message.dest, cause="abandoned",
                            )
                messages = tuple(live)
        for message in messages:
            dst.deliver(message)
        self.delivered += len(messages)

    def _send_ack(self, sender: str, dest: str, xid: int) -> None:
        """Physical ack frame: subject to partition, loss and latency."""
        self.acks_sent += 1
        if self._partitioned and frozenset((sender, dest)) in self._partitioned:
            return
        if self.loss_rate and self._rng.random() < self.loss_rate:
            return
        self.kernel._schedule(self.latency.sample(self._rng), self._on_ack, xid)

    def _on_ack(self, xid: int) -> None:
        entry = self._pending_xmits.pop(xid, None)
        if entry is not None:
            timer = entry[2]
            if timer is not None and not timer._done:
                timer.resolve(None)  # cancel the pending retransmit

    def _deliver_all(self, messages: tuple[Message, ...]) -> None:
        dst = self._nodes.get(messages[0].dest)
        if dst is None or dst.crashed:
            self.dropped += len(messages)
            trace = self.kernel.trace
            if trace.enabled:
                for message in messages:
                    trace.emit(
                        "message_drop", message.sender, message.kind,
                        dest=message.dest, cause="dest down",
                    )
            return
        for message in messages:
            dst.deliver(message)
        self.delivered += len(messages)

    # -- metrics ---------------------------------------------------------------

    def message_counts(self) -> dict[str, int]:
        """Logical messages sent per kind (EXP-T5)."""
        return dict(sorted(self.by_kind.items()))

    def envelope_counts(self) -> dict[str, int]:
        """Physical-transmission accounting (EXP-T5 with batching)."""
        return {
            "logical": self.sent,
            "envelopes": self.envelopes,
            "piggybacked": self.piggybacked,
        }

    def reliability_counts(self) -> dict[str, int]:
        """Fault/reliability accounting for the chaos experiments."""
        return {
            "retransmissions": self.retransmissions,
            "retransmit_drops": self.retransmit_drops,
            "lost_transmissions": self.lost_transmissions,
            "partition_blocked": self.partition_blocked,
            "duplicates_injected": self.duplicates_injected,
            "duplicates_suppressed": self.duplicates_suppressed,
            "reordered": self.reordered,
            "acks_sent": self.acks_sent,
            "abandoned_messages": self.abandoned_messages,
            "retransmit_budget_exhausted": sum(
                self.retransmit_budget_exhausted.values()
            ),
            "unacked_in_flight": len(self._pending_xmits),
        }

    def batching_counts(self) -> dict[str, float]:
        """Flush-policy accounting (EXP-A6 adaptive batching)."""
        counts: dict[str, float] = {
            "size_flushes": self.size_flushes,
            "deadline_flushes": self.deadline_flushes,
            "purged_batched": self.purged_batched,
        }
        if self.batch_controller is not None:
            counts["batch_window_now"] = self.batch_controller.current
            counts["batch_window_shrinks"] = self.batch_controller.shrinks
            counts["batch_window_widens"] = self.batch_controller.widens
        return counts

    def make_batch(self, messages: tuple[Message, ...]) -> BatchMessage:
        """Build an envelope for ``messages`` (validates the link)."""
        return BatchMessage(
            sender=messages[0].sender, dest=messages[0].dest, messages=tuple(messages)
        )

    def __repr__(self) -> str:
        return f"<Network nodes={sorted(self._nodes)} sent={self.sent}>"
