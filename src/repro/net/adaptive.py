"""Load-sensed flush-window controller (group-commit style).

One deterministic controller shared by the two batching layers:

* :class:`~repro.net.network.Network` per-link message outboxes
  (``batch_policy="adaptive"``), and
* :class:`~repro.core.gtm.DecisionPipeline` per-site decision groups
  (``pipeline_policy="adaptive"``).

The policy is the classic group-commit one: a *size-or-deadline* flush
(the caller handles the size trigger), with the deadline window itself
adjusted multiplicatively from the queueing delay each flush actually
imposed.  The signal is the **total** wait accumulated by the flushed
batch (sum over members of ``flush_time - enqueue_time``):

* under a burst, many messages sit behind the deadline, total wait
  rises well past the window, and the controller *shrinks* the window
  so latecomers stop paying for a quiet-era deadline;
* at quiescence a lone message waits at most one window, total wait
  falls back to ``current`` (a deadline flush of one message waits the
  window exactly), and the controller *re-widens* toward the
  configured base so batching efficiency returns.

Everything is pure arithmetic on observed simulated-time delays -- no
wall clock, no randomness -- so runs stay byte-replayable.
"""

from __future__ import annotations

__all__ = ["AdaptiveWindow"]


class AdaptiveWindow:
    """Multiplicative-adjust flush window bounded to ``[floor, base]``.

    Parameters
    ----------
    base:
        The configured (maximum) window -- what a static policy would
        always use.  Must be positive.
    floor:
        Smallest window the controller may shrink to.  Defaults to
        ``base / 8``.
    shrink / grow:
        Multiplicative step applied on pressure / relief.
    pressure:
        Shrink when a flush's total queueing wait exceeds
        ``pressure * current`` -- i.e. the batch collectively waited
        longer than the window it was trying to amortise.
    relief:
        Count a flush as relief when its total wait is at most
        ``relief * current``.  The default (1.0) makes a singleton
        deadline flush -- whose lone message waits exactly one window
        -- count as relief, so a shrunk window recovers under
        quiescent traffic.  Must stay below ``pressure``.
    patience:
        Consecutive relief observations required before each widening
        step.  One stray singleton flush in the middle of a burst must
        not bounce the window back up and re-tax the burst's tail.
    """

    def __init__(
        self,
        base: float,
        *,
        floor: float = 0.0,
        shrink: float = 0.5,
        grow: float = 2.0,
        pressure: float = 1.5,
        relief: float = 1.0,
        patience: int = 6,
    ):
        if base <= 0:
            raise ValueError("adaptive window needs base > 0")
        if not 0.0 < shrink < 1.0:
            raise ValueError("shrink must be in (0, 1)")
        if grow <= 1.0:
            raise ValueError("grow must be > 1")
        if relief >= pressure:
            raise ValueError("relief must stay below pressure")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.base = base
        self.floor = floor if floor > 0 else base / 8.0
        if self.floor > base:
            raise ValueError("floor must not exceed base")
        self.shrink = shrink
        self.grow = grow
        self.pressure = pressure
        self.relief = relief
        self.patience = patience
        self._relief_streak = 0
        #: The window the next scheduled flush should use.
        self.current = base
        #: Telemetry: multiplicative steps taken in each direction.
        self.shrinks = 0
        self.widens = 0
        #: Flushes observed (size- and deadline-triggered alike).
        self.observations = 0

    def observe(self, total_wait: float) -> None:
        """Feed one flush's total queueing wait; adjust the window."""
        self.observations += 1
        if total_wait > self.pressure * self.current:
            self._relief_streak = 0
            shrunk = max(self.floor, self.current * self.shrink)
            if shrunk < self.current:
                self.current = shrunk
                self.shrinks += 1
        elif total_wait <= self.relief * self.current:
            self._relief_streak += 1
            if self._relief_streak < self.patience:
                return
            widened = min(self.base, self.current * self.grow)
            if widened > self.current:
                self.current = widened
                self.widens += 1
        else:
            self._relief_streak = 0

    def counts(self) -> dict[str, float]:
        """Telemetry snapshot (obs counters / bench reporting)."""
        return {
            "window_now": self.current,
            "shrinks": self.shrinks,
            "widens": self.widens,
            "observations": self.observations,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AdaptiveWindow(current={self.current:g}, base={self.base:g}, "
            f"floor={self.floor:g}, shrinks={self.shrinks}, "
            f"widens={self.widens})"
        )
