"""Network nodes (sites)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator

from repro.errors import NodeUnreachable
from repro.net.message import Message
from repro.sim.sync import Mailbox

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Kernel


class Node:
    """A site on the network with a message mailbox.

    ``on_crash`` / ``on_restart`` callbacks let the integration layer
    tie the node's fate to its local database engine and communication
    manager.
    """

    def __init__(self, kernel: "Kernel", name: str, is_central: bool = False):
        self.kernel = kernel
        self.name = name
        self.is_central = is_central
        self.mailbox = Mailbox(name=f"{name}:mail")
        self.crashed = False
        self.on_crash: list[Callable[[], None]] = []
        self.on_restart: list[Callable[[], None]] = []

    def recv(self) -> Generator[Any, Any, Message]:
        """Receive the next message (blocks)."""
        if self.crashed:
            raise NodeUnreachable(f"{self.name} is down")
        message = yield from self.mailbox.recv()
        return message

    def deliver(self, message: Message) -> bool:
        """Called by the network; returns False if the node is down."""
        if self.crashed:
            return False
        self.mailbox.put(message)
        return True

    def crash(self) -> None:
        """Fail the node: pending mail is lost, components notified."""
        if self.crashed:
            return
        self.crashed = True
        self.mailbox.drain()
        self.mailbox.fail_waiters(NodeUnreachable(f"{self.name} crashed"))
        for callback in self.on_crash:
            callback()

    def restart(self) -> Generator[Any, Any, None]:
        """Bring the node back up (components recover first)."""
        if not self.crashed:
            return
        self.mailbox = Mailbox(name=f"{self.name}:mail")
        for callback in self.on_restart:
            result = callback()
            if result is not None and hasattr(result, "__next__"):
                yield from result
        self.crashed = False

    def __repr__(self) -> str:
        role = "central" if self.is_central else "local"
        status = "down" if self.crashed else "up"
        return f"<Node {self.name} ({role}, {status})>"
