"""Network nodes (sites)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator

from repro.errors import NodeUnreachable
from repro.net.message import Message
from repro.sim.sync import Mailbox

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Kernel


class Node:
    """A site on the network with a message mailbox.

    ``on_crash`` / ``on_restart`` callbacks let the integration layer
    tie the node's fate to its local database engine and communication
    manager.
    """

    def __init__(self, kernel: "Kernel", name: str, is_central: bool = False):
        self.kernel = kernel
        self.name = name
        self.is_central = is_central
        self.mailbox = Mailbox(name=f"{name}:mail")
        self.crashed = False
        # True while :meth:`restart` runs its recovery callbacks: the
        # node is not usable yet, and a second concurrent restart must
        # not re-enter recovery.
        self.restarting = False
        self.on_crash: list[Callable[[], None]] = []
        self.on_restart: list[Callable[[], None]] = []

    def recv(self) -> Generator[Any, Any, Message]:
        """Receive the next message (blocks)."""
        if self.crashed:
            raise NodeUnreachable(f"{self.name} is down")
        message = yield from self.mailbox.recv()
        return message

    def deliver(self, message: Message) -> bool:
        """Called by the network; returns False if the node is down."""
        if self.crashed:
            return False
        self.mailbox.put(message)
        return True

    def crash(self) -> None:
        """Fail the node: pending mail is lost, components notified."""
        if self.crashed:
            return
        self.crashed = True
        self.mailbox.drain()
        self.mailbox.fail_waiters(NodeUnreachable(f"{self.name} crashed"))
        for callback in self.on_crash:
            callback()

    def restart(self) -> Generator[Any, Any, None]:
        """Bring the node back up (components recover first).

        Restarting a running node is a no-op, and so is a restart that
        lands while another restart is mid-recovery: both generators
        would otherwise pass the ``crashed`` check (the flag only
        clears after the recovery callbacks) and run ARIES recovery
        twice, concurrently, over the same logs.
        """
        if not self.crashed or self.restarting:
            return
        self.restarting = True
        try:
            self.mailbox = Mailbox(name=f"{self.name}:mail")
            for callback in self.on_restart:
                result = callback()
                if result is not None and hasattr(result, "__next__"):
                    yield from result
            self.crashed = False
        finally:
            self.restarting = False

    def __repr__(self) -> str:
        role = "central" if self.is_central else "local"
        status = "down" if self.crashed else "up"
        return f"<Node {self.name} ({role}, {status})>"
