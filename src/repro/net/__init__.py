"""Simulated star network connecting the central system to the locals.

Per the paper's Figure 1, local systems communicate only with the
central system, never with each other; the :class:`~repro.net.network.Network`
enforces this topology and records every message for the architecture
conformance experiment (EXP-F1) and the message-complexity table
(EXP-T5).
"""

from repro.net.message import Message
from repro.net.network import FixedLatency, Network, UniformLatency
from repro.net.node import Node

__all__ = ["FixedLatency", "Message", "Network", "Node", "UniformLatency"]
