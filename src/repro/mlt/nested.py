"""General n-level multi-level transactions (§4.1).

The paper instantiates the multi-level model with two levels for the
federation, but defines it generally: a transaction at level ``L_i``
consists of actions, each executed as a transaction at level
``L_{i-1}``; each level has its own commutativity-based conflict
definition, locks held only for the duration of the level's
transaction, and inverse actions for undo.  "If all schedules at all
levels are serializable, the whole multi-level transaction is
serializable" [Wei 86].

This module implements the general model over one local engine:

* a :class:`LevelSpec` per abstraction level -- a conflict table plus,
  per action kind, how the action *expands* into actions of the level
  below, which lock resources it touches, and how to invert it;
* a :class:`NestedTransactionManager` that executes a top-level
  transaction recursively, acquiring each level's semantic locks,
  releasing them when that level's (sub)transaction completes, and
  undoing with inverse actions level by level;
* per-level histories for the serializability theorem checker.

The bottom level executes :class:`~repro.mlt.actions.Operation` objects
as short engine transactions, exactly like the two-level manager.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.errors import ReproError, TransactionAborted
from repro.mlt.actions import Operation, inverse_of
from repro.mlt.conflicts import SEMANTIC_TABLE, ConflictTable
from repro.mlt.locks import SemanticLockManager

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.localdb.engine import LocalDatabase
    from repro.sim.kernel import Kernel


class NestedTransactionError(ReproError):
    """A nested transaction could not complete."""


@dataclass(frozen=True)
class ActionDef:
    """Semantics of one action kind at some level.

    ``expand(action, context)`` produces the actions of the next lower
    level implementing it; ``context`` carries results of the expansion
    (e.g. values read) back up so ``invert(action, context)`` can build
    the inverse action.  ``resources(action)`` lists the (table, key)
    objects whose level-lock the action needs.
    """

    kind: str
    mode_kind: str  # which conflict-table column to lock with
    expand: Callable[[Operation, dict], list[Operation]]
    invert: Callable[[Operation, dict], Optional[Operation]]
    resources: Callable[[Operation], list[tuple[str, Any]]]


@dataclass
class LevelSpec:
    """One abstraction level: a conflict table and its action kinds."""

    name: str
    conflicts: ConflictTable
    actions: dict[str, ActionDef] = field(default_factory=dict)

    def define(self, action: ActionDef) -> "LevelSpec":
        self.actions[action.kind] = action
        return self


def bottom_level(name: str = "L1", conflicts: ConflictTable = SEMANTIC_TABLE) -> LevelSpec:
    """The record-operation level: actions are plain operations.

    Each action executes as one short engine transaction; inverses come
    from the standard inverse-action algebra.
    """
    spec = LevelSpec(name, conflicts)
    for kind in ("read", "write", "increment", "insert", "delete"):
        spec.define(
            ActionDef(
                kind=kind,
                mode_kind=kind,
                expand=lambda action, context: [action],
                invert=lambda action, context: inverse_of(
                    action, context.get("before")
                ),
                resources=lambda action: [(action.table, action.key)],
            )
        )
    return spec


@dataclass
class NestedResult:
    """Outcome of a top-level nested transaction."""

    name: str
    committed: bool
    reads: dict[str, Any] = field(default_factory=dict)
    inverse_actions: int = 0
    abort_reason: Optional[str] = None


class NestedTransactionManager:
    """Executes transactions over an arbitrary stack of levels.

    ``levels[0]`` is the topmost abstraction; the last entry must be a
    :func:`bottom_level` whose actions are engine operations.
    """

    def __init__(
        self,
        kernel: "Kernel",
        engine: "LocalDatabase",
        levels: list[LevelSpec],
        max_l0_retries: int = 10,
    ):
        if not levels:
            raise ValueError("need at least one level")
        self.kernel = kernel
        self.engine = engine
        self.levels = levels
        self.max_l0_retries = max_l0_retries
        self.locks = [
            SemanticLockManager(kernel, level.conflicts, name=level.name)
            for level in levels
        ]
        self._seq = 0
        self._subtxn_counter = 0
        #: per level: (seq, owning txn at that level, kind, table, key)
        self.histories: list[list[tuple[int, str, str, str, Any]]] = [
            [] for _ in levels
        ]
        self.commits = 0
        self.aborts = 0

    # ------------------------------------------------------------------

    def run(
        self,
        name: str,
        actions: list[Operation],
        abort_after: Optional[int] = None,
        think_time: float = 0.0,
    ) -> Generator[Any, Any, NestedResult]:
        """Run a top-level transaction; returns its outcome."""
        result = NestedResult(name=name, committed=False)
        try:
            yield from self._run_level(
                0, name, actions, result, abort_after, think_time
            )
        except _IntendedAbort:
            result.abort_reason = "intended"
            self.aborts += 1
            self.locks[0].release_all(name)
            return result
        except TransactionAborted as exc:
            result.abort_reason = str(exc.reason)
            self.aborts += 1
            self.locks[0].release_all(name)
            return result
        result.committed = True
        self.commits += 1
        self.locks[0].release_all(name)
        return result

    # ------------------------------------------------------------------

    def _run_level(
        self,
        level_index: int,
        txn_name: str,
        actions: list[Operation],
        result: NestedResult,
        abort_after: Optional[int] = None,
        think_time: float = 0.0,
    ) -> Generator[Any, Any, None]:
        """One transaction at ``levels[level_index]``.

        Acquires this level's locks per action, executes each action as
        a transaction one level below (or against the engine at the
        bottom), and undoes the executed prefix with inverse actions if
        anything fails.  On success the *caller* releases this level's
        locks when ITS transaction ends -- except the top level, whose
        locks are released by :meth:`run`.
        """
        level = self.levels[level_index]
        undo: list[tuple[Operation, dict]] = []
        try:
            for index, action in enumerate(actions):
                if abort_after is not None and index >= abort_after:
                    raise _IntendedAbort()
                if think_time and index > 0:
                    yield think_time
                context = yield from self._execute_action(
                    level_index, txn_name, action, result
                )
                undo.append((action, context))
            if abort_after is not None and abort_after >= len(actions):
                raise _IntendedAbort()
        except (_IntendedAbort, TransactionAborted):
            yield from self._undo_level(level_index, txn_name, undo, result)
            raise

    def _execute_action(
        self,
        level_index: int,
        txn_name: str,
        action: Operation,
        result: NestedResult,
    ) -> Generator[Any, Any, dict]:
        level = self.levels[level_index]
        definition = level.actions.get(action.kind)
        if definition is None:
            raise NestedTransactionError(
                f"{level.name} has no action kind {action.kind!r}"
            )
        mode = level.conflicts.mode_for(definition.mode_kind)
        for resource in definition.resources(action):
            yield from self.locks[level_index].acquire(txn_name, resource, mode)
        context: dict = {}
        if level_index == len(self.levels) - 1:
            context = yield from self._execute_bottom(txn_name, action, result)
        else:
            sub_actions = definition.expand(action, context)
            self._subtxn_counter += 1
            sub_name = f"{txn_name}/{level.name}.{self._subtxn_counter}"
            try:
                # The subtransaction's own locks (next level down) are
                # released as soon as it completes -- open nesting.
                yield from self._run_level(
                    level_index + 1, sub_name, sub_actions, result
                )
            finally:
                self.locks[level_index + 1].release_all(sub_name)
        self._record(level_index, txn_name, action)
        return context

    def _execute_bottom(
        self, txn_name: str, action: Operation, result: NestedResult
    ) -> Generator[Any, Any, dict]:
        """Run one record operation as a short engine transaction."""
        engine = self.engine
        retries = 0
        while True:
            txn = engine.begin(gtxn_id=txn_name)
            try:
                value = None
                before = None
                if action.kind == "read":
                    value = yield from engine.read(txn, action.table, action.key)
                elif action.kind == "write":
                    before = yield from engine.read(txn, action.table, action.key)
                    yield from engine.write(txn, action.table, action.key, action.value)
                elif action.kind == "increment":
                    value = yield from engine.increment(
                        txn, action.table, action.key, action.value
                    )
                elif action.kind == "insert":
                    yield from engine.insert(txn, action.table, action.key, action.value)
                elif action.kind == "delete":
                    before = yield from engine.read(txn, action.table, action.key)
                    yield from engine.delete(txn, action.table, action.key)
                yield from engine.commit(txn)
                if action.kind == "read":
                    result.reads[f"{action.table}[{action.key!r}]"] = value
                return {"value": value, "before": before}
            except TransactionAborted:
                retries += 1
                if retries > self.max_l0_retries:
                    raise

    def _undo_level(
        self,
        level_index: int,
        txn_name: str,
        undo: list[tuple[Operation, dict]],
        result: NestedResult,
    ) -> Generator[Any, Any, None]:
        """Undo executed actions of this level with inverse actions."""
        level = self.levels[level_index]
        for action, context in reversed(undo):
            definition = level.actions[action.kind]
            inverse = definition.invert(action, context)
            if inverse is None:
                continue
            yield from self._execute_action(level_index, txn_name, inverse, result)
            result.inverse_actions += 1

    def _record(self, level_index: int, txn_name: str, action: Operation) -> None:
        self._seq += 1
        # Attribute the action to the *top-level* transaction for the
        # serializability histories (T1/L2.3 -> T1).
        owner = txn_name.split("/", 1)[0]
        self.histories[level_index].append(
            (self._seq, owner, action.kind, action.table, action.key)
        )

    # ------------------------------------------------------------------

    def level_reports(self, committed: Optional[set[str]] = None):
        """Per-level serializability reports (Weikum's theorem inputs)."""
        from repro.mlt.theory import check_l1

        return [
            check_l1(history, conflicts=level.conflicts, committed=committed)
            for history, level in zip(self.histories, self.levels)
        ]

    def serializable(self, committed: Optional[set[str]] = None) -> bool:
        """All levels serializable => the execution is serializable."""
        return all(bool(report) for report in self.level_reports(committed))


class _IntendedAbort(Exception):
    """Marker: the transaction's own logic decided to abort."""
