"""Multi-level transactions (§4 of the paper).

Two levels, exactly as the paper instantiates them for integrated
database systems:

* **L1** -- global transactions; actions are semantic operations
  (``read``, ``write``, ``increment``, ``insert``, ``delete``) whose
  conflicts are defined by *commutativity* (two increments commute), and
  whose undo is an *inverse action* (decrement undoes increment).
* **L0** -- local transactions executed by the existing transaction
  managers; each L1 action runs as one short L0 transaction.

The semantic L1 lock manager (:class:`~repro.mlt.locks.SemanticLockManager`)
and the inverse-action algebra (:mod:`repro.mlt.actions`) are reused by
the commit-before protocol, which is the paper's headline point: the
protocol adds no machinery beyond what multi-level transactions already
need.
"""

from repro.mlt.actions import Operation, UndoEntry, inverse_of
from repro.mlt.conflicts import (
    READ_WRITE_TABLE,
    SEMANTIC_TABLE,
    ConflictTable,
    L1Mode,
)
from repro.mlt.locks import SemanticLockManager
from repro.mlt.manager import SingleLevelManager, TwoLevelManager
from repro.mlt.nested import (
    ActionDef,
    LevelSpec,
    NestedTransactionManager,
    bottom_level,
)

__all__ = [
    "ActionDef",
    "ConflictTable",
    "L1Mode",
    "LevelSpec",
    "NestedTransactionManager",
    "Operation",
    "bottom_level",
    "READ_WRITE_TABLE",
    "SEMANTIC_TABLE",
    "SemanticLockManager",
    "SingleLevelManager",
    "TwoLevelManager",
    "UndoEntry",
    "inverse_of",
]
