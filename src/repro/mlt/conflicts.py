"""L1 conflict tables.

Two L1 actions conflict iff they do not generally commute (§4.1).  The
*semantic* table knows that increments commute with each other; the
*read/write* table is the flat approximation used as ablation EXP-A1 --
it is what a system without semantic knowledge (or the commit-after
protocol's extra CC module) must assume.
"""

from __future__ import annotations

import enum
from typing import Iterable


class L1Mode(enum.Enum):
    """Semantic lock modes at level L1."""

    SHARED = "S"        # read
    INCREMENT = "I"     # commutative increment/decrement
    EXCLUSIVE = "X"     # write / insert / delete


class ConflictTable:
    """Commutativity-based compatibility between L1 modes.

    ``compatible_pairs`` lists the unordered mode pairs that commute;
    everything else conflicts.  Compatibility is symmetric by
    construction and every mode self-conflicts unless listed.
    """

    def __init__(
        self,
        name: str,
        mode_of_kind: dict[str, L1Mode],
        compatible_pairs: Iterable[frozenset[L1Mode]],
    ):
        self.name = name
        self._mode_of_kind = dict(mode_of_kind)
        self._compatible = {frozenset(pair) for pair in compatible_pairs}

    def mode_for(self, kind: str) -> L1Mode:
        """Lock mode an operation of ``kind`` must hold."""
        if kind not in self._mode_of_kind:
            raise ValueError(f"no L1 mode for operation kind {kind!r}")
        return self._mode_of_kind[kind]

    def compatible(self, a: L1Mode, b: L1Mode) -> bool:
        """Do the two modes commute (may be held concurrently)?"""
        return frozenset((a, b)) in self._compatible

    def conflicts(self, kind_a: str, kind_b: str) -> bool:
        """Do operations of these kinds conflict on the same object?"""
        return not self.compatible(self.mode_for(kind_a), self.mode_for(kind_b))

    def __repr__(self) -> str:
        return f"<ConflictTable {self.name}>"


_BASE_MODES = {
    "read": L1Mode.SHARED,
    "write": L1Mode.EXCLUSIVE,
    "insert": L1Mode.EXCLUSIVE,
    "delete": L1Mode.EXCLUSIVE,
}

#: Semantic table: reads share, increments commute with increments.
SEMANTIC_TABLE = ConflictTable(
    "semantic",
    {**_BASE_MODES, "increment": L1Mode.INCREMENT},
    [
        frozenset((L1Mode.SHARED,)),
        frozenset((L1Mode.INCREMENT,)),
    ],
)

#: Flat read/write table: increments are plain writes (ablation EXP-A1).
READ_WRITE_TABLE = ConflictTable(
    "read-write",
    {**_BASE_MODES, "increment": L1Mode.EXCLUSIVE},
    [
        frozenset((L1Mode.SHARED,)),
    ],
)
