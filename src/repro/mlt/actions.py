"""L1 actions (global operations) and their inverse-action algebra.

An :class:`Operation` is both the unit a global transaction is written
in and the L1 action of the multi-level model.  :func:`inverse_of`
produces the action that semantically undoes an executed operation --
the machinery the commit-before protocol uses to abort globally after
locals already committed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional


#: Primitive operation kinds every engine executes directly.  Higher
#: abstraction levels (see :mod:`repro.mlt.nested`) may define further
#: kinds (e.g. ``transfer``) that expand into these.
KINDS = ("read", "write", "increment", "insert", "delete")


@dataclass(frozen=True)
class Operation:
    """One data operation on a global object.

    ``value`` holds the written value (``write``/``insert``) or the
    delta (``increment``); it is ``None`` for ``read`` and ``delete``.
    ``site`` and ``local_table`` are filled in by the schema mapper when
    the operation is routed to an existing database system.
    """

    kind: str
    table: str
    key: Any
    value: Any = None
    site: Optional[str] = None
    local_table: Optional[str] = None
    #: Data-plane routing stamp: the partition id and membership epoch
    #: the operation was routed under (``None`` outside placements).
    #: Sites fence executions whose epoch a promotion has superseded.
    partition: Optional[int] = None
    epoch: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.kind or not isinstance(self.kind, str):
            raise ValueError(f"invalid operation kind {self.kind!r}")

    @property
    def writes(self) -> bool:
        return self.kind != "read"

    def routed(self, site: str, local_table: str) -> "Operation":
        """Copy bound to a concrete site and local table."""
        return replace(self, site=site, local_table=local_table)

    def placed(
        self, site: str, local_table: str, partition: int, epoch: int
    ) -> "Operation":
        """Copy bound to a partition member, stamped for epoch fencing."""
        return replace(
            self, site=site, local_table=local_table,
            partition=partition, epoch=epoch,
        )

    def __str__(self) -> str:
        target = f"{self.table}[{self.key!r}]"
        if self.kind in ("write", "insert"):
            return f"{self.kind} {target} = {self.value!r}"
        if self.kind == "increment":
            return f"increment {target} by {self.value!r}"
        return f"{self.kind} {target}"


# Convenience constructors -- keep call sites close to the paper's prose.


def read(table: str, key: Any) -> Operation:
    return Operation("read", table, key)


def write(table: str, key: Any, value: Any) -> Operation:
    return Operation("write", table, key, value)


def increment(table: str, key: Any, delta: Any) -> Operation:
    return Operation("increment", table, key, delta)


def insert(table: str, key: Any, value: Any) -> Operation:
    return Operation("insert", table, key, value)


def delete(table: str, key: Any) -> Operation:
    return Operation("delete", table, key)


@dataclass(frozen=True)
class UndoEntry:
    """Undo-log entry: the executed operation plus what undoes it.

    ``before`` is the value observed before execution (needed to invert
    state-based operations).  ``inverse`` is ``None`` for reads.
    """

    operation: Operation
    before: Any
    inverse: Optional[Operation]


def inverse_of(operation: Operation, before: Any) -> Optional[Operation]:
    """The L1 action that semantically undoes ``operation``.

    * ``increment d``  ->  ``increment -d``  (commutative undo: other
      increments interleaved in between are preserved)
    * ``write v``      ->  ``write before``  (or ``delete`` if the key
      did not exist before)
    * ``insert v``     ->  ``delete``
    * ``delete``       ->  ``insert before``
    * ``read``         ->  ``None`` (nothing to undo)
    """
    if operation.kind == "read":
        return None
    if operation.kind == "increment":
        return replace(operation, kind="increment", value=-operation.value)
    if operation.kind == "write":
        if before is None:
            return replace(operation, kind="delete", value=None)
        return replace(operation, kind="write", value=before)
    if operation.kind == "insert":
        return replace(operation, kind="delete", value=None)
    if operation.kind == "delete":
        return replace(operation, kind="insert", value=before)
    raise ValueError(f"no inverse for {operation.kind!r}")
