"""Two-level transaction execution against a single local engine.

This is the paper's §4.1 setting (and Figure 8): multi-level
transactions inside one database system.  Each L1 action runs as its
own short L0 transaction and commits immediately, releasing its page
locks; the L1 semantic lock is held until the L1 transaction ends.
Undo of an L1 transaction executes inverse actions as new L0
transactions.

:class:`SingleLevelManager` runs the same action list as one flat L0
transaction -- the baseline whose page locks are held to the very end.
The distributed versions of both strategies live in
:mod:`repro.core.protocols`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import DeadlockDetected, LockTimeout, TransactionAborted
from repro.mlt.actions import Operation, UndoEntry, inverse_of
from repro.mlt.conflicts import SEMANTIC_TABLE, ConflictTable
from repro.mlt.locks import SemanticLockManager

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.localdb.engine import LocalDatabase
    from repro.localdb.txn import LocalTransaction
    from repro.sim.kernel import Kernel


@dataclass
class L1Result:
    """Outcome of one L1 (multi-level) transaction."""

    name: str
    committed: bool
    reads: dict[str, Any] = field(default_factory=dict)
    actions_executed: int = 0
    inverse_actions: int = 0
    l0_retries: int = 0
    abort_reason: Optional[str] = None


class TwoLevelManager:
    """Runs L1 transactions as sequences of short L0 transactions."""

    def __init__(
        self,
        kernel: "Kernel",
        engine: "LocalDatabase",
        conflicts: ConflictTable = SEMANTIC_TABLE,
        l1_timeout: Optional[float] = None,
        max_l0_retries: int = 10,
    ):
        self.kernel = kernel
        self.engine = engine
        self.locks = SemanticLockManager(
            kernel, conflicts, default_timeout=l1_timeout, name="L1"
        )
        self.conflicts = conflicts
        self.max_l0_retries = max_l0_retries
        self._seq = 0
        #: (seq, l1_txn, kind, table, key) of every executed L1 action,
        #: inverse actions included -- input to the L1 theory checker.
        self.l1_history: list[tuple[int, str, str, str, Any]] = []
        self.l1_commits = 0
        self.l1_aborts = 0

    def run(
        self,
        name: str,
        operations: list[Operation],
        abort_after: Optional[int] = None,
        think_time: float = 0.0,
    ) -> Generator[Any, Any, L1Result]:
        """Execute one L1 transaction.

        ``abort_after=n`` aborts the L1 transaction intentionally after
        ``n`` actions, exercising the inverse-action undo path.
        ``think_time`` elapses between actions (transaction logic,
        user interaction); at this level no L0 locks are held during it
        -- the source of the Figure 8 concurrency gain.
        """
        result = L1Result(name=name, committed=False)
        undo_log: list[UndoEntry] = []
        try:
            for index, operation in enumerate(operations):
                if abort_after is not None and index >= abort_after:
                    break
                if think_time and index > 0:
                    yield think_time
                value, before, retries = yield from self._execute_action(
                    name, operation
                )
                result.actions_executed += 1
                result.l0_retries += retries
                if operation.kind == "read":
                    result.reads[f"{operation.table}[{operation.key!r}]"] = value
                undo_log.append(
                    UndoEntry(operation, before, inverse_of(operation, before))
                )
            if abort_after is not None and abort_after <= len(operations):
                raise _IntendedAbort()
        except (_IntendedAbort, DeadlockDetected, LockTimeout, TransactionAborted) as exc:
            result.inverse_actions = yield from self._undo(name, undo_log)
            result.abort_reason = (
                "intended" if isinstance(exc, _IntendedAbort) else type(exc).__name__
            )
            self.l1_aborts += 1
            self.locks.release_all(name)
            return result
        result.committed = True
        self.l1_commits += 1
        self.locks.release_all(name)
        return result

    # -- internals -----------------------------------------------------------

    def _execute_action(
        self, l1_name: str, operation: Operation
    ) -> Generator[Any, Any, tuple[Any, Any, int]]:
        """One L1 action: L1 lock, then an L0 transaction, retried on
        erroneous L0 aborts (the action's effects are atomic at L0)."""
        mode = self.conflicts.mode_for(operation.kind)
        yield from self.locks.acquire(l1_name, (operation.table, operation.key), mode)
        retries = 0
        while True:
            try:
                value, before = yield from self._run_l0(l1_name, operation)
                break
            except TransactionAborted:
                retries += 1
                if retries > self.max_l0_retries:
                    raise
        self._seq += 1
        self.l1_history.append(
            (self._seq, l1_name, operation.kind, operation.table, operation.key)
        )
        return value, before, retries

    def _run_l0(
        self, l1_name: str, operation: Operation
    ) -> Generator[Any, Any, tuple[Any, Any]]:
        engine = self.engine
        txn = engine.begin(gtxn_id=l1_name)
        value = None
        before = None
        if operation.kind == "read":
            value = yield from engine.read(txn, operation.table, operation.key)
        elif operation.kind == "write":
            before = yield from engine.read(txn, operation.table, operation.key)
            yield from engine.write(txn, operation.table, operation.key, operation.value)
        elif operation.kind == "increment":
            value = yield from engine.increment(
                txn, operation.table, operation.key, operation.value
            )
        elif operation.kind == "insert":
            yield from engine.insert(txn, operation.table, operation.key, operation.value)
        elif operation.kind == "delete":
            before = yield from engine.read(txn, operation.table, operation.key)
            yield from engine.delete(txn, operation.table, operation.key)
        yield from engine.commit(txn)
        return value, before

    def _undo(
        self, l1_name: str, undo_log: list[UndoEntry]
    ) -> Generator[Any, Any, int]:
        """Execute inverse actions in reverse order, each as an L0 txn.

        Inverse actions are treated as normal actions (they appear in
        the L1 history); a failed inverse L0 transaction is repeated --
        the paper argues it cannot abort due to its logic.
        """
        executed = 0
        for entry in reversed(undo_log):
            if entry.inverse is None:
                continue
            retries = 0
            while True:
                try:
                    yield from self._run_l0(l1_name, entry.inverse)
                    break
                except TransactionAborted:
                    retries += 1
                    if retries > self.max_l0_retries:
                        raise
            self._seq += 1
            self.l1_history.append(
                (
                    self._seq,
                    l1_name,
                    entry.inverse.kind,
                    entry.inverse.table,
                    entry.inverse.key,
                )
            )
            executed += 1
        return executed


class SingleLevelManager:
    """Baseline: the action list runs as one flat L0 transaction."""

    def __init__(self, kernel: "Kernel", engine: "LocalDatabase"):
        self.kernel = kernel
        self.engine = engine
        self.commits = 0
        self.aborts = 0

    def run(
        self,
        name: str,
        operations: list[Operation],
        abort_after: Optional[int] = None,
        think_time: float = 0.0,
    ) -> Generator[Any, Any, L1Result]:
        """Execute all operations inside a single local transaction.

        ``think_time`` elapses between operations *while all page locks
        are held* -- flat transactions cannot release early.
        """
        engine = self.engine
        result = L1Result(name=name, committed=False)
        txn: "LocalTransaction" = engine.begin(gtxn_id=name)
        try:
            for index, operation in enumerate(operations):
                if abort_after is not None and index >= abort_after:
                    break
                if think_time and index > 0:
                    yield think_time
                value = yield from self._apply(txn, operation)
                result.actions_executed += 1
                if operation.kind == "read":
                    result.reads[f"{operation.table}[{operation.key!r}]"] = value
            if abort_after is not None and abort_after <= len(operations):
                yield from engine.abort(txn)
                result.abort_reason = "intended"
                self.aborts += 1
                return result
            yield from engine.commit(txn)
        except TransactionAborted as exc:
            result.abort_reason = str(exc.reason)
            self.aborts += 1
            return result
        result.committed = True
        self.commits += 1
        return result

    def _apply(self, txn: "LocalTransaction", operation: Operation) -> Generator[Any, Any, Any]:
        engine = self.engine
        if operation.kind == "read":
            value = yield from engine.read(txn, operation.table, operation.key)
            return value
        if operation.kind == "write":
            yield from engine.write(txn, operation.table, operation.key, operation.value)
        elif operation.kind == "increment":
            value = yield from engine.increment(
                txn, operation.table, operation.key, operation.value
            )
            return value
        elif operation.kind == "insert":
            yield from engine.insert(txn, operation.table, operation.key, operation.value)
        elif operation.kind == "delete":
            yield from engine.delete(txn, operation.table, operation.key)
        return None


class _IntendedAbort(Exception):
    """Internal marker: the L1 transaction chose to abort."""
