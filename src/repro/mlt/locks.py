"""Semantic lock manager for level L1 (global objects).

Key-granularity locks whose modes come from a
:class:`~repro.mlt.conflicts.ConflictTable`.  A transaction may hold
several modes on one object (e.g. it both read and incremented it);
a request is granted when its mode commutes with every mode held by
*other* transactions.  FIFO queueing, waits-for deadlock detection
(requester aborts) and optional timeouts mirror the L0 lock manager.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Generator, Hashable, Optional

from repro.errors import DeadlockDetected, LockTimeout
from repro.localdb.deadlock import WaitsForGraph
from repro.mlt.conflicts import ConflictTable, L1Mode
from repro.sim.events import AnyOf, Future

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Kernel


class _Request:
    __slots__ = ("txn_id", "mode", "future", "request_time", "granted")

    def __init__(self, txn_id: str, mode: L1Mode, request_time: float):
        self.txn_id = txn_id
        self.mode = mode
        self.future: Optional[Future] = None
        self.request_time = request_time
        self.granted = False


class _ResourceState:
    __slots__ = ("holders", "waiters", "first_grant")

    def __init__(self) -> None:
        self.holders: dict[str, set[L1Mode]] = {}
        self.waiters: deque[_Request] = deque()
        self.first_grant: dict[str, float] = {}


class SemanticLockManager:
    """L1 lock table shared by all global transactions."""

    def __init__(
        self,
        kernel: "Kernel",
        table: ConflictTable,
        default_timeout: Optional[float] = None,
        deadlock_detection: bool = True,
        name: str = "L1",
    ):
        self._kernel = kernel
        self.table = table
        self.default_timeout = default_timeout
        self.deadlock_detection = deadlock_detection
        self.name = name
        self._resources: dict[Hashable, _ResourceState] = {}
        self._graph = WaitsForGraph()
        # Metrics.
        self.grants = 0
        self.waits = 0
        self.total_wait_time = 0.0
        self.total_hold_time = 0.0
        self.deadlocks = 0
        self.timeouts = 0

    # -- queries -----------------------------------------------------------

    def holders_of(self, resource: Hashable) -> dict[str, set[L1Mode]]:
        state = self._resources.get(resource)
        return {t: set(m) for t, m in state.holders.items()} if state else {}

    def holds(self, txn_id: str, resource: Hashable, mode: L1Mode) -> bool:
        state = self._resources.get(resource)
        return bool(state and mode in state.holders.get(txn_id, ()))

    # -- acquisition ---------------------------------------------------------

    def acquire(
        self,
        txn_id: str,
        resource: Hashable,
        mode: L1Mode,
        timeout: Optional[float] = None,
    ) -> Generator[Any, Any, None]:
        """Acquire ``mode`` on ``resource``; blocks, may raise.

        Raises :class:`DeadlockDetected` (requester is the victim) or
        :class:`LockTimeout` exactly like the L0 manager, so global
        transactions can be aborted and retried by the GTM.
        """
        if timeout is None:
            timeout = self.default_timeout
        state = self._resources.setdefault(resource, _ResourceState())
        held = state.holders.get(txn_id, set())
        if mode in held:
            return
        request = _Request(txn_id, mode, self._kernel.now)
        if held:
            # Mode conversion: the transaction already holds this object.
            # Conversions get priority over plain waiters (queueing them
            # behind a waiter that conflicts with the *held* mode would
            # deadlock undetectably), so grant or queue at the front.
            if self._grantable(state, request):
                self._grant(state, request)
                return
            state.waiters.appendleft(request)
        elif not state.waiters and self._grantable(state, request):
            self._grant(state, request)
            return
        else:
            state.waiters.append(request)
        self._restate_blockers(resource)
        if self.deadlock_detection:
            cycle = self._graph.find_cycle_from(txn_id)
            if cycle is not None:
                self._remove_waiter(resource, request)
                self.deadlocks += 1
                raise DeadlockDetected(
                    f"{self.name}: {txn_id} in cycle {' -> '.join(cycle)}"
                )
        request.future = Future(label=f"{self.name}:{resource}:{txn_id}")
        self.waits += 1
        if timeout is None:
            yield request.future
        else:
            timer = self._kernel.timer(timeout, label="l1-lock-timeout")
            index, _ = yield AnyOf([request.future, timer])
            if index != 0 and not request.granted:
                self._remove_waiter(resource, request)
                self.timeouts += 1
                raise LockTimeout(f"{self.name}: {txn_id} on {resource}")
        self.total_wait_time += self._kernel.now - request.request_time

    def cancel_wait(self, txn_id: str, exc: BaseException) -> None:
        """Fail any pending waits of ``txn_id`` (external abort)."""
        for resource, state in self._resources.items():
            for request in list(state.waiters):
                if request.txn_id == txn_id and request.future is not None:
                    self._remove_waiter(resource, request)
                    request.future.fail(exc)

    # -- release ---------------------------------------------------------------

    def release_all(self, txn_id: str) -> None:
        """Drop every L1 lock of ``txn_id`` (end of global transaction)."""
        for resource, state in list(self._resources.items()):
            if txn_id in state.holders:
                del state.holders[txn_id]
                grant_time = state.first_grant.pop(txn_id, self._kernel.now)
                self.total_hold_time += self._kernel.now - grant_time
                self._dispatch(resource)
        self._graph.clear_txn(txn_id)

    # -- internals ----------------------------------------------------------------

    def _grantable(self, state: _ResourceState, request: _Request) -> bool:
        return all(
            self.table.compatible(request.mode, held_mode)
            for holder, modes in state.holders.items()
            if holder != request.txn_id
            for held_mode in modes
        )

    def _grant(self, state: _ResourceState, request: _Request) -> None:
        state.holders.setdefault(request.txn_id, set()).add(request.mode)
        state.first_grant.setdefault(request.txn_id, self._kernel.now)
        request.granted = True
        self.grants += 1
        if request.future is not None and not request.future.done:
            request.future.resolve(None)

    def _dispatch(self, resource: Hashable) -> None:
        state = self._resources.get(resource)
        if state is None:
            return
        while state.waiters and self._grantable(state, state.waiters[0]):
            front = state.waiters.popleft()
            self._graph.clear(resource, front.txn_id)
            self._grant(state, front)
        self._restate_blockers(resource)
        if not state.holders and not state.waiters:
            del self._resources[resource]

    def _remove_waiter(self, resource: Hashable, request: _Request) -> None:
        state = self._resources.get(resource)
        if state is None:
            return
        try:
            state.waiters.remove(request)
        except ValueError:
            pass
        self._graph.clear(resource, request.txn_id)
        self._dispatch(resource)

    def _restate_blockers(self, resource: Hashable) -> None:
        state = self._resources.get(resource)
        if state is None:
            return
        ahead: list[_Request] = []
        for waiter in state.waiters:
            blockers = {
                holder
                for holder, modes in state.holders.items()
                if holder != waiter.txn_id
                and any(not self.table.compatible(waiter.mode, m) for m in modes)
            }
            blockers.update(
                prior.txn_id
                for prior in ahead
                if prior.txn_id != waiter.txn_id
                and not self.table.compatible(waiter.mode, prior.mode)
            )
            self._graph.set_blockers(resource, waiter.txn_id, blockers)
            ahead.append(waiter)

    def __repr__(self) -> str:
        return f"<SemanticLockManager {self.name} table={self.table.name} resources={len(self._resources)}>"
