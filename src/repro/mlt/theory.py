"""Level-by-level serializability verification (Weikum's theorem).

"If all schedules at all levels are serializable, the whole multi-level
transaction is serializable" (§4.1, citing [Wei 86]).  The checkers
here verify that property on actual executions:

* level L0: classical read/write conflicts between the short local
  transactions;
* level L1: semantic (commutativity-based) conflicts between the L1
  actions of different L1 transactions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Optional

from repro.core.serializability import (
    HistoryOp,
    SerializabilityReport,
    check,
    ops_from_engine,
)
from repro.mlt.conflicts import SEMANTIC_TABLE, ConflictTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.localdb.engine import LocalDatabase


@dataclass
class TwoLevelReport:
    """Outcome of verifying both levels of a two-level execution."""

    l0: SerializabilityReport
    l1: SerializabilityReport

    @property
    def serializable(self) -> bool:
        """Weikum's theorem: serializable at every level => serializable."""
        return self.l0.serializable and self.l1.serializable

    def __bool__(self) -> bool:
        return self.serializable


def check_l0(engine: "LocalDatabase") -> SerializabilityReport:
    """L0 serializability of the committed local transactions."""
    return check(ops_from_engine(engine, by_gtxn=False))


def check_l1(
    l1_history: Iterable[tuple[int, str, str, str, Any]],
    conflicts: ConflictTable = SEMANTIC_TABLE,
    committed: Optional[set[str]] = None,
) -> SerializabilityReport:
    """L1 serializability under a semantic conflict table.

    ``l1_history`` rows are ``(seq, l1_txn, kind, table, key)`` as
    collected by :class:`~repro.mlt.manager.TwoLevelManager`.  With
    ``committed`` given, only those L1 transactions are considered
    (committed projection).
    """
    ops = [
        HistoryOp(seq, txn, kind, table, key)
        for seq, txn, kind, table, key in l1_history
        if committed is None or txn in committed
    ]
    return check(ops, conflicts.conflicts)


def verify_two_level(
    engine: "LocalDatabase",
    l1_history: Iterable[tuple[int, str, str, str, Any]],
    conflicts: ConflictTable = SEMANTIC_TABLE,
    committed_l1: Optional[set[str]] = None,
) -> TwoLevelReport:
    """Check both levels of one execution."""
    return TwoLevelReport(
        l0=check_l0(engine),
        l1=check_l1(l1_history, conflicts, committed_l1),
    )
