"""Checkable scenarios: small federations with known-good invariants.

A :class:`CheckSpec` fully determines one system-under-test -- protocol,
workload, coordinator count, optional mutant -- and
:func:`build_scenario` turns it into a fresh federation plus the
submitter processes, ready for one controlled execution.  The spec
round-trips through a plain dict so a ``.repro.json`` counterexample
can rebuild the identical scenario in another process.

Workloads
---------
``transfers``
    Balanced cross-site increments (the chaos harness's conservation
    workload in miniature): commutative at L1 under the semantic table,
    so every protocol keeps all invariants under every interleaving.
``rw_cross``
    Two transactions writing the same two keys on two sites in opposite
    orders, submitted simultaneously.  The classic global-serializability
    counterexample of §3.3: only the L1 layer (or a prepared protocol's
    site locks held to the decision) forces a serial order.
``replicated``
    Balanced transfers over one partitioned global table placed across
    the sites (``partitions``/``replication`` on the spec), plus one
    intends-abort transaction to exercise replica-side undo.  Combined
    with crash-point enumeration this proves atomicity *and* replica
    convergence across every durable-force boundary.
``exposure``
    One cross-site writer plus a delayed single-site writer on the same
    key -- the Short-Commit hazard in miniature.  Run under the
    crash-point sweep, the crash that swallows a participant's vote
    turns the cross-site writer's decision into an abort *after* it
    short-released at the surviving site; the late writer must still be
    held off (downgraded shared lock) until that rollback completed, or
    its committed write gets clobbered (the ``dirty_undo`` invariant).

Mutants
-------
``no_l1_guard``
    Disables the L1 acquisition/release guard of the §3.3 protocols by
    removing the coordinators' L1 table -- the paper's counterexample of
    what goes wrong when local systems commit *before* the global
    decision without a global concurrency-control layer.  Under
    ``rw_cross`` this yields a committed non-serializable history on
    the very first schedule, which the checker must find, shrink and
    replay.
``stale_epoch``
    Disables the data plane's stale-epoch fencing *and* the rejoin-time
    drain/resync -- a replica that missed decisions while evicted
    rejoins with its old image and keeps accepting requests stamped
    with a superseded epoch.  Under ``replicated`` with crash points a
    surviving-replica divergence is the guaranteed symptom, which the
    replica-convergence invariant must flag.
``presume_commit``
    One-phase only: a missing or failed piggybacked vote is treated as
    a yes, and the decision skips the §3.2 redo obligation.  Under
    ``exposure`` with the crash-point sweep a participant that dies
    mid-execution yields a committed global with a lost local effect --
    an atomicity violation the checker must find.
``short_release_all``
    Short-Commit only: write locks are *released* at the start of the
    commit phase instead of downgraded to shared.  A concurrent writer
    can then overwrite the prepared value; if the exposer's decision
    turns out to be abort, its rollback restores the before-image over
    the writer's committed effect.  Under ``exposure`` with the
    crash-point sweep this yields a ``dirty_undo`` violation the
    checker must find.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any

from repro.core.gtm import GTMConfig
from repro.core.protocols import (
    check_matrix,
    preparable_protocols,
    protocol_mutants,
)
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment, write
from repro.net.message import reset_message_ids

#: The protocol matrix the regression suite sweeps, derived from the
#: protocol registry: every ``in_check`` protocol with its natural
#: granularity, sorted by name.
CHECK_PROTOCOLS: list[tuple[str, str]] = check_matrix()

#: Cross-cutting seeded bugs plus the registry's protocol-specific
#: ones (``presume_commit`` targets one_phase, ``short_release_all``
#: targets short_commit).
MUTANTS = ("no_l1_guard", "stale_epoch") + tuple(sorted(protocol_mutants()))


@dataclass
class CheckSpec:
    """One fully-determined scenario for the exploration engine."""

    protocol: str = "before"
    granularity: str = "per_action"
    workload: str = "transfers"
    seed: int = 0
    n_sites: int = 2
    n_txns: int = 2
    coordinators: int = 1
    #: Paxos Commit only: acceptor-group fault tolerance (2F+1 built).
    paxos_f: int = 1
    mutant: str = ""
    #: Data-plane sharding: > 0 places one global table (``acct``)
    #: across the sites, each partition with ``replication`` members.
    partitions: int = 0
    replication: int = 1
    #: Group-decision pipeline window (0 = per-transaction decides,
    #: the seed path).  A positive window drives the checker through
    #: the size-or-deadline decision batching added for EXP-A6,
    #: including its Paxos acceptance-before-ack invariant.
    pipeline_window: float = 0.0
    #: Simulated-time ceiling of one execution; generous, because an
    #: exploration must never mistake a slow schedule for a hang.
    horizon: float = 20000.0

    def __post_init__(self) -> None:
        if self.mutant and self.mutant not in MUTANTS:
            raise ValueError(f"unknown mutant {self.mutant!r}")
        target = protocol_mutants().get(self.mutant)
        if target is not None and self.protocol != target:
            raise ValueError(
                f"mutant {self.mutant!r} targets protocol {target!r}, "
                f"not {self.protocol!r}"
            )
        if self.workload not in ("transfers", "rw_cross", "replicated", "exposure"):
            raise ValueError(f"unknown workload {self.workload!r}")
        if self.workload == "replicated" and self.partitions < 1:
            raise ValueError("workload 'replicated' requires partitions >= 1")
        if self.mutant == "stale_epoch" and self.partitions < 1:
            raise ValueError("mutant 'stale_epoch' requires partitions >= 1")

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CheckSpec":
        return cls(**data)


@dataclass
class Scenario:
    """A built system-under-test, ready to run once."""

    spec: CheckSpec
    federation: Federation
    processes: list = field(default_factory=list)


def _transfer_keys(spec: CheckSpec) -> list[str]:
    """One private key per transfer transaction, on distinct pages.

    Locking is page-granular at L0 (``buckets`` hash buckets per
    table), so two "disjoint" keys sharing a bucket still conflict --
    enough to distributed-deadlock simultaneously submitted transfers
    on every schedule.  Keys are picked so their buckets are pairwise
    distinct (until the table runs out of buckets, at which point
    collisions are unavoidable and accepted).
    """
    from repro.storage.heap import _stable_hash

    keys: list[str] = []
    used: set[int] = set()
    candidate = 0
    while len(keys) < spec.n_txns:
        key = f"g{candidate}"
        candidate += 1
        bucket = _stable_hash(key) % 8  # SiteSpec's default bucket count
        if bucket in used and len(used) < 8:
            continue
        used.add(bucket)
        keys.append(key)
    return keys


def _site_specs(spec: CheckSpec) -> list[SiteSpec]:
    preparable = spec.protocol in preparable_protocols()
    # "x"/"y" feed the rw_cross workload; the "g<n>" keys are the
    # transfer transactions' private, page-disjoint keys.
    rows = {"x": 100, "y": 100}
    for key in _transfer_keys(spec):
        rows[key] = 100
    return [
        SiteSpec(
            f"s{index}",
            tables={f"t{index}": dict(rows)},
            preparable=preparable,
        )
        for index in range(spec.n_sites)
    ]


def _transfer_batches(spec: CheckSpec) -> list[dict]:
    """Deterministic balanced transfers, all submitted at t=0.

    Simultaneous submission maximizes the same-instant frontier the
    scheduler gets to reorder; the amounts differ per transaction so a
    lost or doubled effect is visible in the balances, not just in the
    histories.
    """
    keys = _transfer_keys(spec)
    batches = []
    for index in range(spec.n_txns):
        src = index % spec.n_sites
        dst = (index + 1) % spec.n_sites
        amount = index + 1
        batches.append({
            "name": f"T{index}",
            "operations": [
                increment(f"t{src}", keys[index], -amount),
                increment(f"t{dst}", keys[index], amount),
            ],
        })
    return batches


def _replicated_batches(spec: CheckSpec) -> list[dict]:
    """Transfers over the placed table, plus one intends-abort.

    Distinct per-transaction keys live in one partitioned namespace;
    the final transaction intends to abort, exercising replica-side
    undo under whatever crash point the explorer lands on.
    """
    keys = _transfer_keys(spec)
    batches = []
    for index in range(spec.n_txns):
        amount = index + 1
        batches.append({
            "name": f"T{index}",
            "operations": [
                increment("acct", keys[index], -amount),
                increment("acct", keys[(index + 1) % len(keys)], amount),
            ],
            # The abort rides on the *undelayed* first transaction so
            # the staggered ones are real transfers a lost replica
            # write would visibly corrupt.
            "intends_abort": index == 0 and spec.n_txns > 1,
            # Staggered arrivals: later transactions decompose *during*
            # an early crash point's eviction window (post-promotion,
            # pre-rejoin), which is the only routing that can leave a
            # resync-less rejoiner behind -- the stale_epoch bait.
            "delay": index * 50.0,
        })
    return batches


def _rw_cross_batches(spec: CheckSpec) -> list[dict]:
    """The §3.3 write-write cross: opposite site orders, same instant."""
    return [
        {
            "name": "T0",
            "operations": [write("t0", "x", 1), write("t1", "y", 1)],
        },
        {
            "name": "T1",
            "operations": [write("t1", "y", 2), write("t0", "x", 2)],
        },
    ]


def _exposure_batches(spec: CheckSpec) -> list[dict]:
    """Staggered writers around one cross-site transaction's commit.

    ``T1`` writes the same key as ``T0`` and reaches it only once T0
    releases it -- the Short-Commit clobber victim.  ``T2`` is key- and
    page-disjoint from both but staggered so its second operation is in
    flight at ``t0`` when T0's commit record forces there -- under the
    crash-point sweep that puts a mid-execution site failure inside
    another transaction, the one-phase ``presume_commit`` window."""
    return [
        {
            "name": "T0",
            "operations": [write("t0", "x", 1), write("t1", "y", 1)],
        },
        {
            "name": "T1",
            "operations": [write("t0", "x", 2)],
            "delay": 2.0,
        },
        {
            "name": "T2",
            "operations": [write("t1", "g0", 3), write("t0", "g2", 3)],
            "delay": 6.5,
        },
    ]


def build_scenario(spec: CheckSpec) -> Scenario:
    """Build the federation and spawn the workload (nothing runs yet).

    The global message-id counter is reset first so two builds of the
    same spec -- in one process or across processes -- produce
    byte-identical traces and ``.repro.json`` files.
    """
    reset_message_ids()
    placement = None
    if spec.partitions > 0:
        from repro.dataplane import PlacementSpec

        placement = [
            PlacementSpec(
                table="acct",
                partitions=spec.partitions,
                replication=spec.replication,
                rows={key: 100 for key in _transfer_keys(spec)},
            )
        ]
    config = FederationConfig(
        seed=spec.seed,
        latency=1.0,
        coordinators=spec.coordinators,
        paxos_f=spec.paxos_f,
        placement=placement,
        gtm=GTMConfig(
            protocol=spec.protocol,
            granularity=spec.granularity,
            msg_timeout=50.0,
            pipeline_window=spec.pipeline_window,
        ),
    )
    federation = Federation(_site_specs(spec), config)
    if spec.mutant == "no_l1_guard":
        for gtm in federation.coordinators:
            gtm.l1 = None
    elif spec.mutant == "stale_epoch":
        federation.dataplane.fencing = False
        federation.dataplane.drain_on_rejoin = False
        federation.dataplane.resync_on_rejoin = False
    elif spec.mutant == "presume_commit":
        for gtm in federation.coordinators:
            gtm.protocol.presume_commit = True
    elif spec.mutant == "short_release_all":
        for gtm in federation.coordinators:
            gtm.protocol.release_all_locks = True

    if spec.workload == "rw_cross":
        batches = _rw_cross_batches(spec)
    elif spec.workload == "exposure":
        batches = _exposure_batches(spec)
    elif spec.workload == "replicated":
        batches = _replicated_batches(spec)
    else:
        batches = _transfer_batches(spec)

    def submitter(batch: dict):
        if batch.get("delay"):
            yield batch["delay"]
        outcome = yield federation.submit(
            batch["operations"],
            name=batch["name"],
            intends_abort=batch.get("intends_abort", False),
        )
        return outcome

    processes = [
        federation.kernel.spawn(submitter(batch), name=f"check:{batch['name']}")
        for batch in batches
    ]
    return Scenario(spec=spec, federation=federation, processes=processes)
