"""``python -m repro check`` -- the checker's command line.

Explore one protocol's schedule space (DFS with partial-order
reduction, or a seeded PCT sweep), optionally enumerate crash points
at durable-force boundaries, shrink the first violation found and
write it as a replayable ``.repro.json``.  ``--replay`` re-executes a
previously written trace and re-audits its invariants.

Exit status: 0 when every explored execution kept all invariants (or a
replay no longer violates), 1 when a violation was found (the shrunk
counterexample's path is printed).
"""

from __future__ import annotations

import argparse
from typing import Optional

from repro.check.engine import (
    CheckReport,
    explore,
    explore_coordinator_crash_points,
    explore_crash_points,
    replay_execution,
    run_pct,
)
from repro.check.scenarios import CHECK_PROTOCOLS, MUTANTS, CheckSpec
from repro.check.shrink import shrink_counterexample
from repro.check.trace import ReproTrace, write_counterexample


def _build_spec(args: argparse.Namespace) -> CheckSpec:
    granularity = dict(CHECK_PROTOCOLS).get(args.protocol, "per_site")
    return CheckSpec(
        protocol=args.protocol,
        granularity=granularity,
        workload=args.workload,
        seed=args.seed,
        coordinators=args.coordinators,
        mutant=args.mutant,
        partitions=args.partitions,
        replication=args.replication,
        pipeline_window=args.pipeline_window,
    )


def _emit_counterexample(
    spec: CheckSpec, report: CheckReport, out: str
) -> None:
    result = report.counterexample
    assert result is not None
    shrunk = shrink_counterexample(
        spec, result.choices, crashes=tuple(result.crashes)
    )
    if shrunk is not None:
        result = replay_execution(spec, shrunk, crashes=tuple(result.crashes))
        result.choices = shrunk
    trace = write_counterexample(out, spec, result)
    print(f"violation found after {report.executions} execution(s):")
    for violation in trace.violations:
        print(f"  {violation}")
    print(f"shrunk schedule: {trace.schedule}")
    print(f"wrote {out} (replay with: python -m repro check --replay {out})")


def _replay(path: str) -> int:
    trace = ReproTrace.read(path)
    result = trace.replay()
    status = "VIOLATES" if result.violations else "clean"
    print(
        f"replayed {path}: protocol={trace.spec.protocol} "
        f"schedule={trace.schedule} -> {status}"
    )
    for violation in result.violations:
        print(f"  {violation}")
    return 1 if result.violations else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro check",
        description="systematic schedule & crash-point exploration checker",
    )
    parser.add_argument(
        "--protocol", default="before",
        choices=sorted({protocol for protocol, _g in CHECK_PROTOCOLS}),
        help="commit protocol to check (granularity follows the protocol)",
    )
    parser.add_argument(
        "--workload", default="transfers",
        choices=("transfers", "rw_cross", "replicated", "exposure"),
        help="scenario workload (replicated needs --partitions)",
    )
    parser.add_argument(
        "--partitions", type=int, default=0,
        help="> 0: place one partitioned global table across the sites",
    )
    parser.add_argument(
        "--replication", type=int, default=1,
        help="replica-set size per partition (with --partitions)",
    )
    parser.add_argument(
        "--strategy", default="dfs", choices=("dfs", "pct"),
        help="dfs = bounded exhaustive with POR; pct = seeded priority sweep",
    )
    parser.add_argument(
        "--depth", type=int, default=6,
        help="DFS: number of backtrackable choice points",
    )
    parser.add_argument(
        "--budget", type=int, default=200,
        help="max executions (DFS) / number of seeded schedules (PCT)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument(
        "--coordinators", type=int, default=1,
        help="GTM pool width (1 = the paper's single central GTM)",
    )
    parser.add_argument(
        "--mutant", default="", choices=("",) + MUTANTS,
        help="inject a known protocol bug (regression: must be caught)",
    )
    parser.add_argument(
        "--pipeline-window", type=float, default=0.0,
        help="> 0: batch commit decisions per site (group-decision "
        "pipeline) while exploring",
    )
    parser.add_argument(
        "--crash-points", action="store_true",
        help="also run one execution per durable log-force boundary",
    )
    parser.add_argument(
        "--coordinator-crash-points", action="store_true",
        help="non-blocking exhibit: kill coordinator shard 0 (no restart) "
        "at every durable-force boundary instead of exploring schedules",
    )
    parser.add_argument(
        "--acceptor-crashes", type=int, default=0,
        help="with --coordinator-crash-points and --protocol paxos: also "
        "kill this many acceptors at the same instant (F of 2F+1)",
    )
    parser.add_argument(
        "--out", default="counterexample.repro.json",
        help="where to write the shrunk counterexample trace",
    )
    parser.add_argument(
        "--replay", metavar="PATH", default=None,
        help="re-execute a .repro.json trace and re-audit it",
    )
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.replay is not None:
        return _replay(args.replay)

    spec = _build_spec(args)
    if args.acceptor_crashes and spec.protocol != "paxos":
        parser.error("--acceptor-crashes requires --protocol paxos")
    if args.coordinator_crash_points:
        report = explore_coordinator_crash_points(
            spec, acceptor_crashes=args.acceptor_crashes
        )
        label = f"{spec.protocol} coordinators={spec.coordinators}" + (
            f" acceptor-crashes={args.acceptor_crashes}"
            if args.acceptor_crashes else ""
        )
        print(
            f"{label}: coordinator killed at each of {report.crash_points} "
            f"durable-force boundaries, {report.executions} executions, "
            f"{report.violation_count} with blocked transactions"
        )
        if report.counterexample is not None:
            result = report.counterexample
            crash = result.crashes[0]
            print(f"first blocking window: {crash.site} killed at t={crash.at}:")
            for violation in result.violations:
                print(f"  {violation}")
            return 1
        print("no execution blocked: every transaction resolved everywhere")
        return 0

    if args.strategy == "pct":
        report = CheckReport(spec=spec)
        for offset in range(args.budget):
            result = run_pct(spec, args.seed + offset)
            report.executions += 1
            report.choice_points += len(result.choices)
            report.pruned += result.pruned
            if result.violations:
                report.violation_count += 1
                if report.counterexample is None:
                    report.counterexample = result
                break
        report.exhausted = report.counterexample is None
    else:
        report = explore(spec, depth=args.depth, budget=args.budget)

    summary = report.summary()
    print(
        f"{spec.protocol}/{spec.workload}"
        + (f" [{spec.mutant}]" if spec.mutant else "")
        + f": {summary['executions']} executions, "
        f"{summary['choice_points']} choice points, "
        f"{summary['pruned']} pruned by POR, "
        f"exhausted={summary['exhausted']}"
    )
    if report.counterexample is not None:
        _emit_counterexample(spec, report, args.out)
        return 1

    if args.crash_points:
        crash_report = explore_crash_points(spec)
        print(
            f"crash points: {crash_report.crash_points} boundaries, "
            f"{crash_report.executions} executions, "
            f"{crash_report.violation_count} violations"
        )
        if crash_report.counterexample is not None:
            _emit_counterexample(spec, crash_report, args.out)
            return 1

    print("all explored executions kept every invariant")
    return 0
