"""Execution engine of the systematic checker.

Stateless model checking: the simulation is a deterministic function of
``(CheckSpec, schedule choices, crash points)``, so the explorer simply
re-executes the whole scenario once per schedule instead of snapshotting
generator state.  One :func:`run_execution` builds a fresh federation,
installs a scheduling strategy on the kernel, optionally injects site
crashes, runs to quiescence and evaluates the full invariant battery of
:func:`repro.core.invariants.check_invariants`.

:func:`explore` drives bounded-exhaustive DFS over schedule choices
(with the commutativity pruning the strategies implement),
:func:`explore_crash_points` enumerates one execution per durable
log-force boundary discovered from a traced baseline run, and
:func:`run_pct` gives the seeded randomized schedule used by the sweep
tests and the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.check.scenarios import CheckSpec, build_scenario
from repro.check.scheduler import DfsStrategy, PctStrategy, ReplayStrategy, Strategy
from repro.core.invariants import check_invariants


@dataclass
class CrashPoint:
    """One site crash at a durable-force boundary, with its restart."""

    site: str
    at: float
    restart_after: float = 60.0

    def to_dict(self) -> dict[str, Any]:
        return {"site": self.site, "at": self.at, "restart_after": self.restart_after}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CrashPoint":
        return cls(**data)


@dataclass
class ExecutionResult:
    """Audit of one controlled execution."""

    choices: list[int] = field(default_factory=list)
    arities: list[int] = field(default_factory=list)
    pruned: int = 0
    steps: int = 0
    end_time: float = 0.0
    committed: int = 0
    aborted: int = 0
    violations: list[str] = field(default_factory=list)
    crashes: list[CrashPoint] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def run_execution(
    spec: CheckSpec,
    strategy: Optional[Strategy] = None,
    crashes: tuple[CrashPoint, ...] = (),
) -> ExecutionResult:
    """One execution under ``strategy`` (``None`` = the default loop)."""
    scenario = build_scenario(spec)
    federation = scenario.federation
    federation.kernel.scheduler = strategy
    for crash in crashes:
        federation.crash_site(crash.site, at=crash.at)
        if crash.restart_after > 0:
            # restart_after <= 0 means the site stays down for the rest
            # of the execution -- the shape of the non-blocking question.
            federation.restart_site(crash.site, at=crash.at + crash.restart_after)
    end_time = federation.run(until=spec.horizon)
    result = ExecutionResult(end_time=end_time, crashes=list(crashes))
    if strategy is not None:
        result.choices = strategy.choices
        result.arities = [arity for _choice, arity in strategy.trail]
        result.pruned = strategy.pruned
        result.steps = strategy.steps
    result.committed = sum(gtm.committed for gtm in federation.coordinators)
    result.aborted = sum(gtm.aborted for gtm in federation.coordinators)
    result.violations = [
        str(violation)
        for violation in check_invariants(federation, processes=scenario.processes)
    ]
    return result


@dataclass
class CheckReport:
    """Outcome of one exploration (schedule DFS or crash enumeration)."""

    spec: CheckSpec
    executions: int = 0
    choice_points: int = 0
    pruned: int = 0
    #: Whether the bounded schedule space was fully enumerated within
    #: the execution budget.
    exhausted: bool = False
    violation_count: int = 0
    counterexample: Optional[ExecutionResult] = None
    crash_points: int = 0

    @property
    def ok(self) -> bool:
        return self.violation_count == 0

    def summary(self) -> dict[str, Any]:
        return {
            "protocol": self.spec.protocol,
            "workload": self.spec.workload,
            "coordinators": self.spec.coordinators,
            "executions": self.executions,
            "choice_points": self.choice_points,
            "pruned": self.pruned,
            "exhausted": self.exhausted,
            "violations": self.violation_count,
            "crash_points": self.crash_points,
        }


def _next_prefix(trail: list[tuple[int, int]]) -> Optional[list[int]]:
    """DFS successor: rightmost choice point with an unexplored sibling."""
    for position in range(len(trail) - 1, -1, -1):
        choice, arity = trail[position]
        if choice + 1 < arity:
            return [c for c, _a in trail[:position]] + [choice + 1]
    return None


def explore(
    spec: CheckSpec,
    depth: int = 6,
    budget: int = 200,
    stop_on_violation: bool = True,
) -> CheckReport:
    """Bounded-exhaustive DFS over schedule choices.

    ``depth`` bounds how many choice points backtrack (later ones take
    the default branch), ``budget`` caps total executions.  The report
    says whether the bounded space was exhausted, and carries the first
    violating execution (the raw counterexample) if any.
    """
    report = CheckReport(spec=spec)
    prefix: Optional[list[int]] = []
    while prefix is not None and report.executions < budget:
        strategy = DfsStrategy(prefix, depth)
        result = run_execution(spec, strategy)
        report.executions += 1
        report.choice_points += len(result.choices)
        report.pruned += result.pruned
        if result.violations:
            report.violation_count += 1
            if report.counterexample is None:
                report.counterexample = result
            if stop_on_violation:
                return report
        prefix = _next_prefix(strategy.bounded_trail())
    report.exhausted = prefix is None
    return report


def run_pct(
    spec: CheckSpec,
    seed: int,
    change_points: int = 3,
    crashes: tuple[CrashPoint, ...] = (),
) -> ExecutionResult:
    """One seeded PCT-style randomized schedule."""
    return run_execution(
        spec, PctStrategy(seed, change_points=change_points), crashes=crashes
    )


def replay_execution(
    spec: CheckSpec,
    schedule: list[int],
    crashes: tuple[CrashPoint, ...] = (),
) -> ExecutionResult:
    """Deterministically re-execute a recorded schedule."""
    return run_execution(spec, ReplayStrategy(schedule), crashes=crashes)


def enumerate_crash_points(
    spec: CheckSpec, restart_after: float = 60.0
) -> list[CrashPoint]:
    """Durable-force boundaries of the baseline execution.

    Runs the scenario once on the default loop with per-force tracing
    enabled and turns every completed log force at a data site into one
    crash point immediately after the force -- the instants where the
    paper's recovery obligations actually change (a decision, prepare
    or commit record just became durable).
    """
    scenario = build_scenario(spec)
    federation = scenario.federation
    for engine in federation.engines.values():
        engine.disk.trace_forces = True
    federation.run(until=spec.horizon)
    points: list[CrashPoint] = []
    seen: set[tuple[str, float]] = set()
    for record in federation.kernel.trace.select(category="log_force"):
        if record.site not in federation.engines:
            continue
        key = (record.site, record.time)
        if key in seen:
            continue
        seen.add(key)
        points.append(CrashPoint(record.site, record.time, restart_after))
    return points


def enumerate_decision_boundaries(spec: CheckSpec) -> list[float]:
    """Durable-force instants of the baseline execution, *all* sites.

    Like :func:`enumerate_crash_points` but including the coordinator
    side: data-site forces plus (for Paxos Commit) the acceptor group's
    consensus-record forces -- the instants where a decision becomes
    durable somewhere and a coordinator crash changes who can finish
    the transaction.
    """
    scenario = build_scenario(spec)
    federation = scenario.federation
    for engine in federation.engines.values():
        engine.disk.trace_forces = True
    federation.run(until=spec.horizon)
    return sorted({
        record.time
        for record in federation.kernel.trace.select(category="log_force")
    })


def explore_coordinator_crash_points(
    spec: CheckSpec,
    coordinator: int = 0,
    acceptor_crashes: int = 0,
    restart_after: float = 0.0,
    max_points: Optional[int] = None,
    stop_on_violation: bool = True,
) -> CheckReport:
    """One execution per decision boundary, coordinator killed there.

    The non-blocking exhibit: at every durable-force instant of the
    baseline, crash coordinator shard ``coordinator`` (and, for Paxos
    Commit, the first ``acceptor_crashes`` acceptors at the same
    instant).  ``restart_after`` <= 0 keeps them down for good.  Under
    plain 2PC with one coordinator this leaves prepared participants
    blocked (convergence violations); under Paxos Commit with a live
    peer and F surviving acceptors every execution must stay clean.
    """
    points = enumerate_decision_boundaries(spec)
    if max_points is not None:
        points = points[:max_points]
    report = CheckReport(spec=spec, crash_points=len(points))
    for at in points:
        scenario = build_scenario(spec)
        federation = scenario.federation
        federation.crash_coordinator(coordinator, at=at)
        if restart_after > 0:
            federation.restart_coordinator(coordinator, at=at + restart_after)
        for index in range(acceptor_crashes):
            federation.crash_acceptor(index, at=at)
            if restart_after > 0:
                federation.restart_acceptor(index, at=at + restart_after)
        end_time = federation.run(until=spec.horizon)
        result = ExecutionResult(end_time=end_time)
        result.crashes = [
            CrashPoint(federation.coordinators[coordinator].name, at, restart_after)
        ]
        result.committed = sum(gtm.committed for gtm in federation.coordinators)
        result.aborted = sum(gtm.aborted for gtm in federation.coordinators)
        result.violations = [
            str(violation)
            for violation in check_invariants(
                federation, processes=scenario.processes
            )
        ]
        report.executions += 1
        if result.violations:
            report.violation_count += 1
            if report.counterexample is None:
                report.counterexample = result
            if stop_on_violation:
                break
    report.exhausted = max_points is None or len(points) <= max_points
    return report


def explore_crash_points(
    spec: CheckSpec,
    restart_after: float = 60.0,
    max_points: Optional[int] = None,
    stop_on_violation: bool = True,
) -> CheckReport:
    """One execution per enumerated crash point, invariants audited.

    Crash executions run on the default loop (no schedule control): the
    dimension being explored is *where the crash lands*, and the
    default schedule keeps each execution directly comparable to the
    traced baseline the boundaries came from.
    """
    points = enumerate_crash_points(spec, restart_after=restart_after)
    if max_points is not None:
        points = points[:max_points]
    report = CheckReport(spec=spec, crash_points=len(points))
    for point in points:
        result = run_execution(spec, crashes=(point,))
        report.executions += 1
        if result.violations:
            report.violation_count += 1
            if report.counterexample is None:
                report.counterexample = result
            if stop_on_violation:
                break
    report.exhausted = max_points is None or len(points) <= max_points
    return report
