"""Replayable counterexample traces (``.repro.json``).

A :class:`ReproTrace` is everything needed to re-execute one explored
execution in a fresh process: the scenario spec, the schedule choices,
the injected crash points, and (informationally) the violations the
original run observed.  Serialization is canonical -- sorted keys,
fixed indentation, trailing newline -- so the same counterexample
always produces byte-identical files, which the determinism tests and
CI artifact diffing rely on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.check.engine import CrashPoint, ExecutionResult, replay_execution
from repro.check.scenarios import CheckSpec

FORMAT_VERSION = 1


@dataclass
class ReproTrace:
    """One replayable execution, round-trippable through JSON."""

    spec: CheckSpec
    schedule: list[int] = field(default_factory=list)
    crashes: list[CrashPoint] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)
    version: int = FORMAT_VERSION

    @classmethod
    def from_result(cls, spec: CheckSpec, result: ExecutionResult) -> "ReproTrace":
        return cls(
            spec=spec,
            schedule=list(result.choices),
            crashes=list(result.crashes),
            violations=list(result.violations),
        )

    def to_json_bytes(self) -> bytes:
        document = {
            "version": self.version,
            "spec": self.spec.to_dict(),
            "schedule": self.schedule,
            "crashes": [crash.to_dict() for crash in self.crashes],
            "violations": self.violations,
        }
        return (json.dumps(document, sort_keys=True, indent=2) + "\n").encode()

    @classmethod
    def from_json_bytes(cls, data: bytes) -> "ReproTrace":
        document = json.loads(data.decode())
        version = document.get("version", 0)
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported trace version {version}")
        return cls(
            spec=CheckSpec.from_dict(document["spec"]),
            schedule=list(document["schedule"]),
            crashes=[CrashPoint.from_dict(c) for c in document.get("crashes", [])],
            violations=list(document.get("violations", [])),
            version=version,
        )

    def write(self, path: str) -> None:
        with open(path, "wb") as handle:
            handle.write(self.to_json_bytes())

    @classmethod
    def read(cls, path: str) -> "ReproTrace":
        with open(path, "rb") as handle:
            return cls.from_json_bytes(handle.read())

    def replay(self) -> ExecutionResult:
        """Re-execute the trace deterministically and re-audit it."""
        return replay_execution(
            self.spec, list(self.schedule), crashes=tuple(self.crashes)
        )


def write_counterexample(
    path: str, spec: CheckSpec, result: ExecutionResult
) -> ReproTrace:
    """Persist a violating execution as a ``.repro.json`` file."""
    trace = ReproTrace.from_result(spec, result)
    trace.write(path)
    return trace
