"""Controlled-scheduling strategies for the systematic checker.

The kernel's :meth:`~repro.sim.kernel.Kernel._run_controlled` loop hands
each strategy the *frontier* -- every queued event sharing the earliest
timestamp -- and the strategy returns the entry to fire next.  The
strategies here agree on what a legal *choice point* is and differ only
in how they pick:

* Only **message deliveries** are reordered.  Internal events (process
  resumptions, timer firings) stay in scheduling order: the kernel's
  own invariants (a resumption runs before anything it scheduled) and
  node-local causality depend on it.
* Per-link **FIFO is preserved**.  The protocols were written against
  FIFO links, so of several same-time deliveries on one link only the
  earliest-scheduled is a candidate; later ones become eligible once it
  fired.  Reordering within a link would report phantom bugs the real
  network cannot produce.
* **Partial-order reduction**: same-time deliveries to *different*
  destinations commute (disjoint receiver state, see
  :meth:`repro.net.message.Message.commutes_with`), so exploring both
  orders is redundant.  Candidates are narrowed to those sharing the
  first candidate's destination; the alternatives are counted in
  :attr:`Strategy.pruned` instead of branched on.

Every strategy records the index it chose at each real choice point
(arity > 1) together with the arity, so any execution can be replayed
exactly by :class:`ReplayStrategy` and minimized by the shrinker.
"""

from __future__ import annotations

import random
from typing import Any

#: Kernel-callback names that deliver network messages.  Everything
#: else in a frontier is an internal event and keeps its order.
_DELIVERY_FNS = ("_deliver_all", "_deliver_reliable")

Entry = tuple  # (time, seq, fn, args) -- see Kernel._schedule


def _delivery_link(entry: Entry) -> tuple[str, str] | None:
    """The ``(sender, dest)`` link of a delivery entry, else ``None``."""
    fn = entry[2]
    name = getattr(fn, "__name__", "")
    if name not in _DELIVERY_FNS:
        return None
    # _deliver_all(messages) / _deliver_reliable(xid, messages); one
    # transmission always carries messages of a single link.
    messages = entry[3][-1]
    return messages[0].link


class Strategy:
    """Base strategy: computes choice points, records the trail.

    Subclasses implement :meth:`choose` over a non-trivial candidate
    list.  ``trail`` holds one ``(choice, arity)`` pair per real choice
    point, in execution order.
    """

    def __init__(self) -> None:
        self.trail: list[tuple[int, int]] = []
        self.pruned = 0
        self.steps = 0

    @property
    def choices(self) -> list[int]:
        return [choice for choice, _arity in self.trail]

    def pick(self, kernel: Any, batch: list[Entry]) -> Entry:
        self.steps += 1
        batch = sorted(batch, key=lambda entry: entry[1])
        candidates = self._candidates(batch)
        if len(candidates) <= 1:
            return candidates[0] if candidates else batch[0]
        index = self.choose(kernel, candidates)
        self.trail.append((index, len(candidates)))
        return candidates[index]

    def _candidates(self, batch: list[Entry]) -> list[Entry]:
        """The deliveries legally swappable at this frontier.

        The maximal *delivery prefix* of the seq-ordered frontier is
        collected (an internal event acts as a barrier: deliveries are
        never pushed past it, because a resumption at the same node may
        not commute with them), reduced to the earliest entry per link,
        then POR-narrowed to the first candidate's destination.
        """
        if not batch or _delivery_link(batch[0]) is None:
            return batch[:1]
        per_link: dict[tuple[str, str], Entry] = {}
        for entry in batch:
            link = _delivery_link(entry)
            if link is None:
                break  # internal barrier: stop collecting
            if link not in per_link:
                per_link[link] = entry
        candidates = list(per_link.values())
        if len(candidates) > 1:
            anchor_dest = _delivery_link(candidates[0])[1]
            narrowed = [
                entry
                for entry in candidates
                if _delivery_link(entry)[1] == anchor_dest
            ]
            self.pruned += len(candidates) - len(narrowed)
            candidates = narrowed
        return candidates

    def choose(self, kernel: Any, candidates: list[Entry]) -> int:
        raise NotImplementedError


class ReplayStrategy(Strategy):
    """Follow a prescribed choice list; default to 0 beyond its end.

    The default-0 tail is what makes shrinking sound: a truncated
    schedule is still a complete, legal execution.
    """

    def __init__(self, schedule: list[int]):
        super().__init__()
        self.schedule = list(schedule)

    def choose(self, kernel: Any, candidates: list[Entry]) -> int:
        position = len(self.trail)
        if position < len(self.schedule):
            # Clamp: a shrunk/edited schedule may name an index the
            # (changed) execution no longer offers.
            return min(self.schedule[position], len(candidates) - 1)
        return 0


class DfsStrategy(Strategy):
    """One execution of the bounded exhaustive (DFS) exploration.

    Follows ``prefix`` at the first choice points, picks 0 afterwards,
    and records arities so the explorer can compute the next prefix
    (rightmost position with an unexplored sibling).  Choice points
    past ``depth`` always take 0 and are excluded from backtracking,
    which is what bounds the search space.
    """

    def __init__(self, prefix: list[int], depth: int):
        super().__init__()
        self.prefix = list(prefix)
        self.depth = depth

    def choose(self, kernel: Any, candidates: list[Entry]) -> int:
        position = len(self.trail)
        if position < len(self.prefix):
            return min(self.prefix[position], len(candidates) - 1)
        return 0

    def bounded_trail(self) -> list[tuple[int, int]]:
        """The backtrackable part of the trail (within the depth bound)."""
        return self.trail[: self.depth]


class PctStrategy(Strategy):
    """PCT-style randomized priority schedule.

    Each link gets a random priority on first sight; every choice point
    fires the highest-priority candidate.  ``change_points`` pre-sampled
    step indices demote the currently hottest link when crossed, which
    is the PCT trick for hitting bugs that need a priority inversion.
    Fully deterministic given ``seed``.
    """

    def __init__(self, seed: int, change_points: int = 3, horizon: int = 256):
        super().__init__()
        self._rng = random.Random(seed)
        self._priorities: dict[tuple[str, str], float] = {}
        self._changes = sorted(
            self._rng.randrange(1, max(2, horizon)) for _ in range(change_points)
        )

    def _priority(self, link: tuple[str, str]) -> float:
        if link not in self._priorities:
            self._priorities[link] = self._rng.random()
        return self._priorities[link]

    def choose(self, kernel: Any, candidates: list[Entry]) -> int:
        while self._changes and self.steps >= self._changes[0]:
            self._changes.pop(0)
            if self._priorities:
                hottest = max(self._priorities, key=self._priorities.get)
                self._priorities[hottest] = self._rng.random() * 0.1
        best = 0
        best_priority = -1.0
        for index, entry in enumerate(candidates):
            priority = self._priority(_delivery_link(entry))
            if priority > best_priority:
                best, best_priority = index, priority
        return best
