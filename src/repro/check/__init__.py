"""Systematic schedule & crash-point exploration checker.

The ``repro.check`` layer takes control of the simulation kernel's
event scheduling (see :meth:`repro.sim.kernel.Kernel._run_controlled`)
and explores the interleaving space of small federated scenarios:
bounded-exhaustive DFS with commutativity-based partial-order
reduction, PCT-style randomized priority schedules, and crash
enumeration at durable log-force boundaries.  Every explored execution
is audited by the shared invariant battery
(:func:`repro.core.invariants.check_invariants`); violations are
greedily shrunk and written as replayable ``.repro.json`` traces.

See ``docs/checking.md`` for a walkthrough, and
``python -m repro check --help`` for the CLI.
"""

from repro.check.engine import (
    CheckReport,
    CrashPoint,
    ExecutionResult,
    enumerate_crash_points,
    enumerate_decision_boundaries,
    explore,
    explore_coordinator_crash_points,
    explore_crash_points,
    replay_execution,
    run_execution,
    run_pct,
)
from repro.check.scenarios import CHECK_PROTOCOLS, MUTANTS, CheckSpec, build_scenario
from repro.check.scheduler import (
    DfsStrategy,
    PctStrategy,
    ReplayStrategy,
    Strategy,
)
from repro.check.shrink import shrink_counterexample, shrink_schedule
from repro.check.trace import ReproTrace, write_counterexample

__all__ = [
    "CHECK_PROTOCOLS",
    "MUTANTS",
    "CheckReport",
    "CheckSpec",
    "CrashPoint",
    "DfsStrategy",
    "ExecutionResult",
    "PctStrategy",
    "ReplayStrategy",
    "ReproTrace",
    "Strategy",
    "build_scenario",
    "enumerate_crash_points",
    "enumerate_decision_boundaries",
    "explore",
    "explore_coordinator_crash_points",
    "explore_crash_points",
    "replay_execution",
    "run_execution",
    "run_pct",
    "shrink_counterexample",
    "shrink_schedule",
    "write_counterexample",
]
