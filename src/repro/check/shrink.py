"""Greedy counterexample shrinking.

A violating schedule found by DFS or PCT can carry dozens of incidental
choices.  The shrinker minimizes it by re-execution: a candidate
schedule is kept only if the violation *persists* when the scenario is
replayed under it.  Three reducers run to a fixed point:

1. **Truncation** -- drop the whole tail (shortest surviving prefix
   wins).  Sound because :class:`~repro.check.scheduler.ReplayStrategy`
   defaults to choice 0 past the schedule's end, so every prefix is a
   complete legal execution.
2. **Zeroing** -- set individual non-zero choices to the default
   branch.
3. **Trailing-zero stripping** -- a trailing 0 is the default anyway
   and carries no information.

The result is the shortest, most-default schedule this greedy descent
reaches -- not a global minimum, but in practice a handful of choices
that each provably matter.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.check.engine import CrashPoint, replay_execution
from repro.check.scenarios import CheckSpec


def shrink_schedule(
    violates: Callable[[list[int]], bool],
    schedule: list[int],
    max_attempts: int = 200,
) -> list[int]:
    """Minimize ``schedule`` while ``violates`` keeps returning true.

    ``violates`` must be deterministic (re-running the same candidate
    must give the same answer); each call costs one full execution, so
    ``max_attempts`` bounds the shrink budget.
    """
    best = list(schedule)
    attempts = 0

    def try_candidate(candidate: list[int]) -> bool:
        nonlocal attempts
        if attempts >= max_attempts:
            return False
        attempts += 1
        return violates(candidate)

    changed = True
    while changed and attempts < max_attempts:
        changed = False
        # Shortest surviving prefix first: one success here removes
        # every later choice in one step.
        for cut in range(len(best)):
            candidate = best[:cut]
            if try_candidate(candidate):
                best = candidate
                changed = True
                break
        # Default individual choices.
        for position, choice in enumerate(best):
            if choice == 0:
                continue
            candidate = best[:position] + [0] + best[position + 1:]
            if try_candidate(candidate):
                best = candidate
                changed = True
        # Trailing defaults are pure noise.
        while best and best[-1] == 0:
            candidate = best[:-1]
            if not try_candidate(candidate):
                break
            best = candidate
            changed = True
    return best


def shrink_counterexample(
    spec: CheckSpec,
    schedule: list[int],
    crashes: tuple[CrashPoint, ...] = (),
    max_attempts: int = 200,
) -> Optional[list[int]]:
    """Shrink a violating schedule for ``spec`` by re-execution.

    Returns the minimized schedule, or ``None`` if the original
    schedule does not actually reproduce a violation (a stale or
    non-deterministic report -- the caller should treat that as a bug).
    """

    def violates(candidate: list[int]) -> bool:
        return bool(replay_execution(spec, candidate, crashes=crashes).violations)

    if not violates(list(schedule)):
        return None
    return shrink_schedule(violates, list(schedule), max_attempts=max_attempts)
