"""Closed-loop experiment driver.

``closed_loop`` runs N worker processes, each submitting global
transactions back to back until the simulated horizon, then lets
in-flight work drain and collects throughput, response times, abort
counts, redo/undo executions, lock hold/wait times, message and
log-force counts -- the quantities the paper's §4.3 comparison argues
about qualitatively.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.core.gtm import GTMConfig
from repro.integration.federation import Federation, FederationConfig
from repro.mlt.actions import Operation
from repro.core.protocols import preparable_protocols

#: A workload function: rng -> (operations, intends_abort)
TxnFactory = Callable[[random.Random], tuple[list[Operation], bool]]


@dataclass
class RunStats:
    """Aggregate results of one closed-loop run."""

    label: str
    horizon: float
    committed: int = 0
    aborted: int = 0
    response_times: list[float] = field(default_factory=list)
    redo_executions: int = 0
    undo_executions: int = 0
    l0_retries: int = 0
    metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Committed global transactions per simulated time unit."""
        return self.committed / self.horizon if self.horizon else 0.0

    @property
    def mean_response_time(self) -> float:
        if not self.response_times:
            return 0.0
        return sum(self.response_times) / len(self.response_times)

    @property
    def p95_response_time(self) -> float:
        if not self.response_times:
            return 0.0
        ordered = sorted(self.response_times)
        return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]

    @property
    def abort_ratio(self) -> float:
        total = self.committed + self.aborted
        return self.aborted / total if total else 0.0


def closed_loop(
    federation: Federation,
    make_txn: TxnFactory,
    n_workers: int,
    horizon: float,
    think_time: float = 0.0,
    label: str = "run",
) -> RunStats:
    """Run a closed multiprogramming loop and collect statistics."""
    stats = RunStats(label=label, horizon=horizon)
    kernel = federation.kernel

    def worker(index: int) -> Generator[Any, Any, None]:
        rng = kernel.rng.stream(f"worker-{index}")
        while kernel.now < horizon:
            operations, intends_abort = make_txn(rng)
            outcome = yield federation.gtm.submit(
                operations, intends_abort=intends_abort
            )
            if outcome.committed:
                stats.committed += 1
                stats.response_times.append(outcome.response_time)
            else:
                stats.aborted += 1
            stats.redo_executions += outcome.redo_executions
            stats.undo_executions += outcome.undo_executions
            stats.l0_retries += outcome.l0_retries
            if think_time:
                yield think_time

    for i in range(n_workers):
        kernel.spawn(worker(i), name=f"worker-{i}")
    kernel.run()
    stats.metrics = federation.metrics()
    return stats


def protocol_federation(
    protocol: str,
    site_specs,
    granularity: str = "per_action",
    seed: int = 0,
    latency: float = 1.0,
    l1_table=None,
    l1_timeout: Any = "default",
    log_placement: str = "indb",
    msg_timeout: float = 50.0,
    batch_window: float = 0.0,
    batch_policy: str = "static",
    batch_max_msgs: int = 0,
    pipeline_window: float = 0.0,
    pipeline_policy: str = "static",
    pipeline_max_group: int = 0,
    piggyback_decisions: bool = False,
) -> Federation:
    """Build a federation configured for one protocol under test.

    2PC/3PC automatically get preparable (modified) local interfaces --
    they cannot run otherwise, which is the paper's point.
    """
    needs_prepare = protocol in preparable_protocols()
    specs = []
    for spec in site_specs:
        spec.preparable = needs_prepare
        specs.append(spec)
    gtm_kwargs: dict[str, Any] = dict(
        protocol=protocol,
        granularity=granularity,
        l1_table=l1_table,
        msg_timeout=msg_timeout,
        pipeline_window=pipeline_window,
        pipeline_policy=pipeline_policy,
        pipeline_max_group=pipeline_max_group,
        piggyback_decisions=piggyback_decisions,
    )
    if l1_timeout != "default":
        gtm_kwargs["l1_timeout"] = l1_timeout
    config = FederationConfig(
        seed=seed,
        latency=latency,
        batch_window=batch_window,
        batch_policy=batch_policy,
        batch_max_msgs=batch_max_msgs,
        log_placement=log_placement,
        gtm=GTMConfig(**gtm_kwargs),
    )
    return Federation(specs, config)
