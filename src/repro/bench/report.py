"""Plain-text report tables for the experiment harness."""

from __future__ import annotations

from typing import Any, Iterable


def _render(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(headers: list[str], rows: Iterable[Iterable[Any]], title: str = "") -> str:
    """Render an aligned ASCII table."""
    rendered = [[_render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
