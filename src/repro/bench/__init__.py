"""Benchmark harness: drivers, metrics collection and report tables."""

from repro.bench.harness import RunStats, closed_loop, protocol_federation
from repro.bench.report import format_table

__all__ = ["RunStats", "closed_loop", "format_table", "protocol_federation"]
