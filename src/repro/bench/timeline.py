"""Timeline rendering: turn a trace log into a readable protocol story.

Used by the protocol-tour example and the figure benchmarks; kept in
the library so downstream users can debug their own federations the
same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.tracing import TraceLog, TraceRecord

#: message kinds worth showing in a protocol timeline (data traffic is
#: summarized, protocol traffic is shown verbatim)
PROTOCOL_MESSAGE_KINDS = frozenset(
    (
        "prepare", "vote", "decide", "finished", "pre_commit",
        "pre_commit_ack", "finish_subtxn", "local_outcome",
        "redo_subtxn", "redo_result", "undo_subtxn", "undo_result",
        "status_query", "status_report",
    )
)


@dataclass(frozen=True)
class TimelineEvent:
    """One rendered line of a protocol timeline."""

    time: float
    actor: str
    text: str

    def __str__(self) -> str:
        return f"{self.time:8.2f}  {self.actor:<14} {self.text}"


def timeline_events(
    trace: "TraceLog",
    gtxn_prefix: Optional[str] = None,
    include_data_messages: bool = False,
) -> list[TimelineEvent]:
    """Extract the protocol-relevant events of a run, in time order.

    ``gtxn_prefix`` filters to one global transaction (and its inverse
    transactions); by default every transaction is included.
    """

    def relevant_gtxn(value: Optional[str]) -> bool:
        if gtxn_prefix is None:
            return True
        return bool(value) and str(value).startswith(gtxn_prefix)

    events: list[TimelineEvent] = []
    for record in trace.records:
        event = _render_record(record, relevant_gtxn, include_data_messages)
        if event is not None:
            events.append(event)
    return events


def _render_record(record: "TraceRecord", relevant_gtxn, include_data) -> Optional[TimelineEvent]:
    details = record.details
    if record.category == "gtxn_state" and relevant_gtxn(record.subject):
        return TimelineEvent(record.time, "GLOBAL", details["state"])
    if record.category == "gtxn_decision" and relevant_gtxn(record.subject):
        return TimelineEvent(
            record.time, "GLOBAL", f">>> decision: {details['decision']} <<<"
        )
    if record.category == "message":
        if not relevant_gtxn(details.get("gtxn")):
            return None
        if record.subject in PROTOCOL_MESSAGE_KINDS or include_data:
            return TimelineEvent(
                record.time, "message",
                f"{record.subject}: {record.site} -> {details['dest']}",
            )
        return None
    if record.category == "txn_state" and details.get("gtxn"):
        gtxn = str(details["gtxn"])
        if not relevant_gtxn(gtxn.replace("!undo", "")):
            return None
        kind = "inverse txn" if gtxn.endswith("!undo") else "local txn"
        reason = details.get("reason")
        text = f"{kind} {details['state']}" + (f" ({reason})" if reason else "")
        return TimelineEvent(record.time, record.site, text)
    if record.category in ("redo", "undo") and relevant_gtxn(record.subject):
        return TimelineEvent(
            record.time, record.category.upper(), f"at {details.get('at')}"
        )
    if record.category == "fault":
        return TimelineEvent(record.time, "FAULT", details.get("kind", "?"))
    if record.category == "site":
        return TimelineEvent(record.time, record.site, record.subject)
    return None


def render_timeline(
    trace: "TraceLog",
    gtxn_prefix: Optional[str] = None,
    include_data_messages: bool = False,
) -> str:
    """The timeline as printable text."""
    return "\n".join(
        str(event)
        for event in timeline_events(trace, gtxn_prefix, include_data_messages)
    )
