"""Order-processing workload: inserts, deletes and stock movements.

Most transfer workloads only increment; this one exercises the whole
operation vocabulary (and therefore the whole inverse-action algebra):
placing an order inserts an order row, decrements stock and credits
revenue; cancelling one deletes the row and reverses both counters.
The conservation invariant pairs every order row with its stock/revenue
movement, catching half-applied (or half-undone) transactions.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import Operation


def build_orders_federation(
    n_products: int = 4,
    initial_stock: int = 100,
    config: Optional[FederationConfig] = None,
) -> Federation:
    """Two existing systems: a warehouse and an order-entry database."""
    return Federation(
        [
            SiteSpec(
                "warehouse",
                tables={
                    "stock": {f"p{i}": initial_stock for i in range(n_products)},
                    "revenue": {"total": 0},
                },
            ),
            SiteSpec("orders_db", tables={"orders": {}}),
        ],
        config,
    )


def place_order(order_id: str, product: str, quantity: int, price: int) -> list[Operation]:
    """Insert the order row, move stock, credit revenue."""
    return [
        Operation("insert", "orders", order_id, {"product": product, "qty": quantity}),
        Operation("increment", "stock", product, -quantity),
        Operation("increment", "revenue", "total", quantity * price),
    ]


def cancel_order(order_id: str, product: str, quantity: int, price: int) -> list[Operation]:
    """The compensating business action (a *forward* cancel, not undo)."""
    return [
        Operation("delete", "orders", order_id),
        Operation("increment", "stock", product, quantity),
        Operation("increment", "revenue", "total", -quantity * price),
    ]


def random_order(rng: random.Random, n_products: int, order_seq: int):
    """A random order placement; returns (order_id, operations, meta)."""
    product = f"p{rng.randrange(n_products)}"
    quantity = rng.randint(1, 5)
    price = rng.randint(2, 9)
    order_id = f"o{order_seq}"
    return order_id, place_order(order_id, product, quantity, price), {
        "product": product, "qty": quantity, "price": price,
    }


def audit_consistency(
    federation: Federation, n_products: int, initial_stock: int, price_of: dict
) -> dict:
    """Cross-site consistency: orders must match stock and revenue.

    Returns the audit numbers; ``consistent`` is True iff every unit of
    missing stock is accounted for by an existing order row and the
    revenue matches the order book exactly.
    """
    engine = federation.engines["orders_db"]
    order_rows = {}
    heap = engine.catalog.heap("orders")

    def collect():
        txn = engine.begin()
        rows = yield from engine.scan(txn, "orders")
        yield from engine.commit(txn)
        return rows

    process = federation.kernel.spawn(collect())
    federation.kernel.run()
    order_rows = dict(process.value)

    stock_missing = 0
    for i in range(n_products):
        stock_missing += initial_stock - federation.peek("warehouse", "stock", f"p{i}")
    revenue = federation.peek("warehouse", "revenue", "total")

    booked_quantity = sum(row["qty"] for row in order_rows.values())
    booked_revenue = sum(
        row["qty"] * price_of[order_id] for order_id, row in order_rows.items()
    )
    return {
        "orders": len(order_rows),
        "stock_missing": stock_missing,
        "booked_quantity": booked_quantity,
        "revenue": revenue,
        "booked_revenue": booked_revenue,
        "consistent": stock_missing == booked_quantity and revenue == booked_revenue,
    }
