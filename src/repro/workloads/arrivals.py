"""Arrival-rate patterns for the open-loop driver.

The seed driver draws interarrival gaps from a homogeneous Poisson
process.  Production traffic is not homogeneous: it breathes with the
day, arrives in bursts, and occasionally spikes (a flash crowd).  Each
pattern here exposes one method, :meth:`rate`, giving the instantaneous
arrival rate at a simulated time; the driver draws each gap as an
exponential at the rate in force when the draw happens -- the standard
piecewise approximation of a non-homogeneous Poisson process.  One
uniform draw per arrival, exactly like the seed, so runs with
``arrival="poisson"`` stay byte-identical to the seed driver.

Patterns are pure deterministic functions of simulated time (no RNG of
their own), so a seeded run replays exactly regardless of pattern.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = [
    "ArrivalPattern",
    "DiurnalPattern",
    "BurstyPattern",
    "FlashCrowdPattern",
    "ARRIVAL_PATTERNS",
    "make_pattern",
]


class ArrivalPattern:
    """Homogeneous Poisson arrivals (the seed behaviour)."""

    name = "poisson"

    def __init__(self, base_rate: float):
        if base_rate <= 0:
            raise ValueError("arrival rate must be positive")
        self.base_rate = base_rate

    def rate(self, now: float) -> float:
        """Instantaneous arrival rate at simulated time ``now``."""
        return self.base_rate


class DiurnalPattern(ArrivalPattern):
    """Sinusoidal day/night swing around the base rate.

    ``rate(t) = base * (1 + amplitude * sin(2*pi * t / period))``,
    floored at ``base * min_fraction`` so the process never stalls.
    """

    name = "diurnal"

    def __init__(
        self,
        base_rate: float,
        period: float = 200.0,
        amplitude: float = 0.6,
        min_fraction: float = 0.1,
    ):
        super().__init__(base_rate)
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError("amplitude must be in [0, 1]")
        self.period = period
        self.amplitude = amplitude
        self.min_fraction = min_fraction

    def rate(self, now: float) -> float:
        swing = 1.0 + self.amplitude * math.sin(2.0 * math.pi * now / self.period)
        return max(self.base_rate * self.min_fraction, self.base_rate * swing)


class BurstyPattern(ArrivalPattern):
    """On-off square wave: bursts of ``burst_factor`` x base, then calm.

    Each period of length ``period`` starts with a burst lasting
    ``duty`` of it; the rest idles at ``idle_factor`` x base.  The
    time-averaged rate is ``duty*burst + (1-duty)*idle`` x base.
    """

    name = "bursty"

    def __init__(
        self,
        base_rate: float,
        period: float = 50.0,
        duty: float = 0.2,
        burst_factor: float = 4.0,
        idle_factor: float = 0.25,
    ):
        super().__init__(base_rate)
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 < duty < 1.0:
            raise ValueError("duty must be in (0, 1)")
        if burst_factor <= 0 or idle_factor <= 0:
            raise ValueError("burst/idle factors must be positive")
        self.period = period
        self.duty = duty
        self.burst_factor = burst_factor
        self.idle_factor = idle_factor

    def rate(self, now: float) -> float:
        phase = math.fmod(now, self.period) / self.period
        factor = self.burst_factor if phase < self.duty else self.idle_factor
        return self.base_rate * factor


class FlashCrowdPattern(ArrivalPattern):
    """Steady base rate with one exponentially-decaying spike.

    At ``at`` the rate jumps to ``spike_factor`` x base and decays back
    with time constant ``decay`` -- the canonical flash crowd an SLO
    controller has to ride out.
    """

    name = "flash_crowd"

    def __init__(
        self,
        base_rate: float,
        at: float = 50.0,
        spike_factor: float = 8.0,
        decay: float = 40.0,
    ):
        super().__init__(base_rate)
        if spike_factor < 1.0:
            raise ValueError("spike_factor must be >= 1")
        if decay <= 0:
            raise ValueError("decay must be positive")
        self.at = at
        self.spike_factor = spike_factor
        self.decay = decay

    def rate(self, now: float) -> float:
        if now < self.at:
            return self.base_rate
        surge = (self.spike_factor - 1.0) * math.exp(-(now - self.at) / self.decay)
        return self.base_rate * (1.0 + surge)


ARRIVAL_PATTERNS: dict[str, type[ArrivalPattern]] = {
    cls.name: cls
    for cls in (ArrivalPattern, DiurnalPattern, BurstyPattern, FlashCrowdPattern)
}


def make_pattern(name: str, base_rate: float, **params: Any) -> ArrivalPattern:
    """Build the named arrival pattern at ``base_rate``."""
    try:
        cls = ARRIVAL_PATTERNS[name]
    except KeyError:
        raise ValueError(
            f"unknown arrival pattern {name!r}; "
            f"choose from {sorted(ARRIVAL_PATTERNS)}"
        ) from None
    return cls(base_rate, **params)
