"""Open-loop traffic driver: Poisson arrivals with admission control.

The closed-loop drivers elsewhere in this package submit a fixed batch
and wait -- throughput then measures the *work*, not the system's
capacity.  An open-loop driver models outside traffic: transactions
arrive on a Poisson process whether or not the system keeps up, and an
**admission controller** decides what happens to each arrival:

* admitted -- submitted immediately, occupying one slot of the bounded
  in-flight window (``window_per_coordinator`` x live coordinators:
  each coordinator shard contributes bounded concurrency, which is
  exactly why a sharded pool carries more load);
* queued -- the window is full; the arrival waits (FIFO) until a slot
  frees, up to ``queue_limit`` waiters;
* shed -- queue full too: the arrival is dropped and counted, the
  backpressure signal an upstream load balancer would see.

Response times are measured from *arrival*, so queueing delay under
overload shows up in the p99 -- the scaling story of
``bench_s1_sharded_gtm``.

Two latency figures are reported, because a shed-blind percentile lies:

* ``p99`` -- over committed transactions only (the seed's figure, kept
  for continuity);
* ``p99_admitted_or_shed`` -- over every arrival that was either served
  (committed or aborted, measured arrival-to-completion) or shed, with
  each shed arrival censored *above* every served latency.  A system
  that sheds harder can only push this figure up, never down, which
  removes the survivorship bias: under the old accounting, shedding
  90% of traffic made the p99 look great.

With ``slo_p99 > 0`` an admission controller targets that p99 with two
levers, each matched to the failure mode it can actually fix:

* **queue bound** (overload): an arrival that finds the window full is
  shed when its *predicted* response -- queue position times the
  rolling service-time estimate divided by the window -- would bust
  the target.  Queue wait is the dominant latency under an open-loop
  spike, and no amount of window shrinking fixes it (a smaller window
  only makes the queue drain slower); shedding is the honest action,
  and the corrected percentile charges every shed to the system.
* **window scale** (contention): when the *service-only* latency
  (submission to completion, queue wait excluded) inflates past the
  target, concurrency itself is hurting -- lock conflicts, decision
  queues -- and the admission window is multiplicatively shrunk, then
  re-widened when service latency recovers.

Arrival timing can follow any :mod:`repro.workloads.arrivals` pattern
(diurnal/bursty/flash-crowd); the default ``"poisson"`` keeps the seed
draw sequence byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.core.global_txn import GlobalOutcome
from repro.errors import ProcessInterrupted
from repro.workloads.arrivals import make_pattern

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.integration.federation import Federation
    from repro.mlt.actions import Operation


@dataclass
class OpenLoopSpec:
    """Arrival process + admission-control knobs."""

    #: Mean arrivals per simulated time unit (Poisson).
    arrival_rate: float = 0.1
    #: Total number of arrivals to generate.
    n_txns: int = 100
    #: In-flight window contributed by each live coordinator.
    window_per_coordinator: int = 8
    #: Waiting-room bound; 0 = unbounded queue (nothing is shed).
    queue_limit: int = 0
    #: Name of the kernel RNG stream for interarrival draws.
    rng_stream: str = "open-loop"
    #: Arrival pattern name (see :mod:`repro.workloads.arrivals`).
    arrival: str = "poisson"
    #: Extra keyword arguments for the arrival pattern.
    arrival_params: dict = field(default_factory=dict)
    #: Target p99 response time; 0 disables the SLO controller.
    slo_p99: float = 0.0
    #: Rolling completions the p99 estimate is computed over.
    slo_window: int = 64
    #: Floor of the multiplicative admission scale.
    slo_min_scale: float = 0.25

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.window_per_coordinator < 1:
            raise ValueError("window_per_coordinator must be at least 1")
        if self.slo_p99 < 0:
            raise ValueError("slo_p99 must be >= 0")
        if self.slo_window < 4:
            raise ValueError("slo_window must be at least 4")
        if not 0.0 < self.slo_min_scale <= 1.0:
            raise ValueError("slo_min_scale must be in (0, 1]")


@dataclass
class OpenLoopResult:
    """What happened to the generated traffic."""

    submitted: int = 0
    admitted: int = 0
    queued: int = 0
    shed: int = 0
    completed: int = 0
    committed: int = 0
    aborted: int = 0
    #: In-flight transactions killed by a coordinator crash (their
    #: fate is settled by failover, not by the driver).
    interrupted: int = 0
    max_queue_depth: int = 0
    max_in_flight: int = 0
    total_queue_wait: float = 0.0
    #: Last completion time minus first arrival time.
    makespan: float = 0.0
    #: Arrival-to-completion times of committed transactions.
    response_times: list[float] = field(default_factory=list)
    #: Arrival-to-completion times of every *served* admission --
    #: committed and aborted alike (interrupted transactions have no
    #: driver-observed completion and are counted separately).
    served_latencies: list[float] = field(default_factory=list)
    #: Arrivals shed by the SLO controller (subset of ``shed``).
    slo_sheds: int = 0
    #: Times the SLO controller reduced the admission scale.
    slo_throttles: int = 0
    #: Smallest admission scale the SLO controller reached.
    min_admission_scale: float = 1.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile of committed response times (0 if none)."""
        if not self.response_times:
            return 0.0
        ordered = sorted(self.response_times)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def quantile_admitted_or_shed(self, q: float) -> float:
        """The ``q``-quantile over served *and* shed arrivals.

        Shed arrivals never completed, so their latency is censored
        above every served one (``inf``).  This is the figure that
        cannot be gamed by shedding: dropping traffic pushes mass into
        the censored tail, so the quantile only moves up.  Returns
        ``math.inf`` when the quantile lands in the shed tail.
        """
        total = len(self.served_latencies) + self.shed
        if total == 0:
            return 0.0
        index = min(total - 1, int(q * total))
        if index >= len(self.served_latencies):
            return math.inf
        return sorted(self.served_latencies)[index]

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def p99_admitted_or_shed(self) -> float:
        return self.quantile_admitted_or_shed(0.99)

    @property
    def throughput(self) -> float:
        """Committed global transactions per simulated time unit."""
        if self.makespan <= 0:
            return 0.0
        return self.committed / self.makespan

    def as_dict(self) -> dict[str, Any]:
        corrected = self.p99_admitted_or_shed
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "queued": self.queued,
            "shed": self.shed,
            "completed": self.completed,
            "committed": self.committed,
            "aborted": self.aborted,
            "interrupted": self.interrupted,
            "max_queue_depth": self.max_queue_depth,
            "max_in_flight": self.max_in_flight,
            "total_queue_wait": round(self.total_queue_wait, 3),
            "makespan": round(self.makespan, 3),
            "throughput": round(self.throughput, 6),
            "p50_response": round(self.p50, 3),
            "p99_response": round(self.p99, 3),
            # Survivorship-corrected figure: shed arrivals censored
            # above every served latency (None = quantile fell in the
            # shed tail, i.e. the system dropped >= 1% of arrivals and
            # no finite latency honestly describes its p99).
            "p99_admitted_or_shed": (
                None if math.isinf(corrected) else round(corrected, 3)
            ),
            "slo_sheds": self.slo_sheds,
            "slo_throttles": self.slo_throttles,
            "min_admission_scale": round(self.min_admission_scale, 4),
        }


class OpenLoopDriver:
    """Runs an open-loop workload against a federation."""

    def __init__(self, federation: "Federation", spec: Optional[OpenLoopSpec] = None):
        self.federation = federation
        self.spec = spec or OpenLoopSpec()
        self.result = OpenLoopResult()
        self._rng = federation.kernel.rng.stream(self.spec.rng_stream)
        self._pattern = make_pattern(
            self.spec.arrival, self.spec.arrival_rate, **self.spec.arrival_params
        )
        # FIFO of (arrival_time, operations, name, intends_abort).
        self._queue: list[tuple[float, list["Operation"], Optional[str], bool]] = []
        self._in_flight = 0
        self._first_arrival: Optional[float] = None
        self._last_completion = 0.0
        # SLO admission controller state (inert when slo_p99 == 0).
        self._admission_scale = 1.0
        self._recent_service: list[float] = []
        self._completions_since_adjust = 0
        self._service_p50 = 0.0
        self._service_p99 = 0.0

    # ------------------------------------------------------------------

    def run(
        self,
        transactions: list[dict],
        until: Optional[float] = None,
    ) -> OpenLoopResult:
        """Drive ``transactions`` through Poisson arrivals to completion.

        Each entry holds ``operations`` plus optional ``name`` and
        ``intends_abort`` -- the same batch shape as
        :meth:`Federation.run_transactions`; arrival times come from
        the driver, not the batch.
        """
        kernel = self.federation.kernel
        kernel.spawn(self._arrivals(transactions), name="open-loop-arrivals")
        kernel.run(until=until)
        self.result.makespan = max(
            0.0, self._last_completion - (self._first_arrival or 0.0)
        )
        return self.result

    def run_generated(
        self,
        generator: Any,
        until: Optional[float] = None,
    ) -> OpenLoopResult:
        """Drive ``spec.n_txns`` transactions drawn from a generator.

        Batches are pre-sampled from a dedicated RNG stream
        (``{rng_stream}:gen``) so the draw sequence is independent of
        arrival timing -- the same seed yields the same workload under
        any protocol, window, or failure schedule.
        """
        rng = self.federation.kernel.rng.stream(f"{self.spec.rng_stream}:gen")
        batches = []
        for index in range(self.spec.n_txns):
            operations, intends_abort = generator.next_transaction(rng)
            batches.append(
                {
                    "operations": operations,
                    "name": f"OL{index + 1}",
                    "intends_abort": intends_abort,
                }
            )
        return self.run(batches, until=until)

    # ------------------------------------------------------------------

    def _window(self) -> int:
        """Current admission window: per-coordinator share x live shards."""
        live = sum(
            1 for gtm in self.federation.coordinators if not gtm.crashed
        )
        base = self.spec.window_per_coordinator * max(1, live)
        if self._admission_scale >= 1.0:
            return base
        return max(1, int(base * self._admission_scale))

    def _arrivals(self, transactions: list[dict]) -> Generator[Any, Any, None]:
        pattern = self._pattern
        kernel = self.federation.kernel
        for index, batch in enumerate(transactions[: self.spec.n_txns]):
            # Inverse-transform exponential interarrival draw at the
            # rate in force now (piecewise non-homogeneous Poisson; the
            # default pattern is constant, matching the seed draws).
            rate = pattern.rate(kernel.now)
            yield -math.log(1.0 - self._rng.random()) / rate
            arrival = kernel.now
            if self._first_arrival is None:
                self._first_arrival = arrival
            self._admit(
                arrival,
                batch["operations"],
                batch.get("name") or f"OL{index + 1}",
                batch.get("intends_abort", False),
            )

    def _admit(
        self,
        arrival: float,
        operations: list["Operation"],
        name: Optional[str],
        intends_abort: bool,
    ) -> None:
        result = self.result
        if self._in_flight >= self._window():
            if self.spec.slo_p99 and self._over_slo_queue_bound():
                # Joining the queue would already bust the target:
                # predicted response (queue position x service estimate
                # / window) exceeds slo_p99, so shed instead of
                # queueing.  The corrected percentile charges every one
                # of these to the system.
                result.shed += 1
                result.slo_sheds += 1
                return
            if self.spec.queue_limit and len(self._queue) >= self.spec.queue_limit:
                result.shed += 1
                return
            self._queue.append((arrival, operations, name, intends_abort))
            result.queued += 1
            result.max_queue_depth = max(result.max_queue_depth, len(self._queue))
            return
        self._submit(arrival, operations, name, intends_abort)

    def _submit(
        self,
        arrival: float,
        operations: list["Operation"],
        name: Optional[str],
        intends_abort: bool,
    ) -> None:
        result = self.result
        kernel = self.federation.kernel
        self._in_flight += 1
        result.submitted += 1
        result.admitted += 1
        result.max_in_flight = max(result.max_in_flight, self._in_flight)
        process = self.federation.submit(
            operations, name=name, intends_abort=intends_abort
        )
        kernel.spawn(
            self._watch(process, arrival, kernel.now),
            name=f"open-loop-watch:{name}",
        )

    def _watch(
        self, process: Any, arrival: float, submitted: float
    ) -> Generator[Any, Any, None]:
        result = self.result
        value = yield process
        self._in_flight -= 1
        now = self.federation.kernel.now
        self._last_completion = max(self._last_completion, now)
        result.completed += 1
        if isinstance(value, GlobalOutcome):
            latency = now - arrival
            result.served_latencies.append(latency)
            if value.committed:
                result.committed += 1
                # Response measured from *arrival*: queueing delay under
                # overload is part of the user-visible latency.
                result.response_times.append(latency)
            else:
                result.aborted += 1
            if self.spec.slo_p99:
                # The controller sees the *service* latency (queue wait
                # excluded): that is the figure its queue-bound
                # prediction and contention throttle are built on.
                self._observe_service(now - submitted)
        elif isinstance(value, ProcessInterrupted):
            result.interrupted += 1
        # A freed slot re-admits the longest-waiting arrival.  Under an
        # SLO, a waiter whose deadline already passed (queue wait plus
        # tail service time can no longer land under the target) is
        # shed at the head of the queue instead of being served late:
        # serving it could only produce an over-target latency, and the
        # corrected percentile charges the shed either way.
        while self._queue and self._in_flight < self._window():
            queued_at, operations, name, intends_abort = self._queue.pop(0)
            if (
                self.spec.slo_p99
                and self._service_p99 > 0
                and (now - queued_at) + self._service_p99 > self.spec.slo_p99
            ):
                result.shed += 1
                result.slo_sheds += 1
                continue
            result.total_queue_wait += now - queued_at
            self._submit(queued_at, operations, name, intends_abort)

    # -- SLO admission controller --------------------------------------

    def _over_slo_queue_bound(self) -> bool:
        """Would joining the queue predictably bust the p99 target?

        With window ``W`` draining completions every ``s50 / W`` time
        units (``s50`` = rolling median service latency), an arrival at
        queue position ``L`` waits roughly ``(L + 1) * s50 / W`` and
        then -- since this is a p99 budget -- may itself take the tail
        service time ``s99``.  Bounding ``(L + 1) * s50 / W + s99`` by
        the target gives the longest queue worth joining; beyond it,
        shedding is strictly better for the p99 than queueing.  Until
        the first estimate exists the queue is unbounded (cold start
        carries no signal).
        """
        s50 = self._service_p50
        if s50 <= 0:
            return False
        window = self._window()
        budget = self.spec.slo_p99 - self._service_p99
        allowed = window * budget / s50 - 1.0
        return len(self._queue) >= max(0.0, allowed)

    def _observe_service(self, service: float) -> None:
        """Feed one service-time sample; adjust the contention throttle."""
        recent = self._recent_service
        recent.append(service)
        if len(recent) > self.spec.slo_window:
            del recent[0]
        self._completions_since_adjust += 1
        if self._completions_since_adjust < 4:
            return  # adjust every few completions, not on each one
        self._completions_since_adjust = 0
        ordered = sorted(recent)
        self._service_p50 = ordered[len(ordered) // 2]
        self._service_p99 = ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]
        result = self.result
        target = self.spec.slo_p99
        if self._service_p99 > target:
            # Service time alone busts the target: concurrency itself is
            # inflating latency (lock conflicts, decision queues).
            # Shedding cannot fix that; running narrower can.
            shrunk = max(self.spec.slo_min_scale, self._admission_scale * 0.8)
            if shrunk < self._admission_scale:
                self._admission_scale = shrunk
                result.slo_throttles += 1
                result.min_admission_scale = min(
                    result.min_admission_scale, shrunk
                )
        elif (
            self._service_p99 < 0.8 * target and self._admission_scale < 1.0
        ):
            self._admission_scale = min(1.0, self._admission_scale * 1.25)
