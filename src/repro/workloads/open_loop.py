"""Open-loop traffic driver: Poisson arrivals with admission control.

The closed-loop drivers elsewhere in this package submit a fixed batch
and wait -- throughput then measures the *work*, not the system's
capacity.  An open-loop driver models outside traffic: transactions
arrive on a Poisson process whether or not the system keeps up, and an
**admission controller** decides what happens to each arrival:

* admitted -- submitted immediately, occupying one slot of the bounded
  in-flight window (``window_per_coordinator`` x live coordinators:
  each coordinator shard contributes bounded concurrency, which is
  exactly why a sharded pool carries more load);
* queued -- the window is full; the arrival waits (FIFO) until a slot
  frees, up to ``queue_limit`` waiters;
* shed -- queue full too: the arrival is dropped and counted, the
  backpressure signal an upstream load balancer would see.

Response times are measured from *arrival*, so queueing delay under
overload shows up in the p99 -- the scaling story of
``bench_s1_sharded_gtm``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.core.global_txn import GlobalOutcome
from repro.errors import ProcessInterrupted

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.integration.federation import Federation
    from repro.mlt.actions import Operation


@dataclass
class OpenLoopSpec:
    """Arrival process + admission-control knobs."""

    #: Mean arrivals per simulated time unit (Poisson).
    arrival_rate: float = 0.1
    #: Total number of arrivals to generate.
    n_txns: int = 100
    #: In-flight window contributed by each live coordinator.
    window_per_coordinator: int = 8
    #: Waiting-room bound; 0 = unbounded queue (nothing is shed).
    queue_limit: int = 0
    #: Name of the kernel RNG stream for interarrival draws.
    rng_stream: str = "open-loop"

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.window_per_coordinator < 1:
            raise ValueError("window_per_coordinator must be at least 1")


@dataclass
class OpenLoopResult:
    """What happened to the generated traffic."""

    submitted: int = 0
    admitted: int = 0
    queued: int = 0
    shed: int = 0
    completed: int = 0
    committed: int = 0
    aborted: int = 0
    #: In-flight transactions killed by a coordinator crash (their
    #: fate is settled by failover, not by the driver).
    interrupted: int = 0
    max_queue_depth: int = 0
    max_in_flight: int = 0
    total_queue_wait: float = 0.0
    #: Last completion time minus first arrival time.
    makespan: float = 0.0
    #: Arrival-to-completion times of committed transactions.
    response_times: list[float] = field(default_factory=list)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile of committed response times (0 if none)."""
        if not self.response_times:
            return 0.0
        ordered = sorted(self.response_times)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def throughput(self) -> float:
        """Committed global transactions per simulated time unit."""
        if self.makespan <= 0:
            return 0.0
        return self.committed / self.makespan

    def as_dict(self) -> dict[str, Any]:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "queued": self.queued,
            "shed": self.shed,
            "completed": self.completed,
            "committed": self.committed,
            "aborted": self.aborted,
            "interrupted": self.interrupted,
            "max_queue_depth": self.max_queue_depth,
            "max_in_flight": self.max_in_flight,
            "total_queue_wait": round(self.total_queue_wait, 3),
            "makespan": round(self.makespan, 3),
            "throughput": round(self.throughput, 6),
            "p50_response": round(self.p50, 3),
            "p99_response": round(self.p99, 3),
        }


class OpenLoopDriver:
    """Runs an open-loop workload against a federation."""

    def __init__(self, federation: "Federation", spec: Optional[OpenLoopSpec] = None):
        self.federation = federation
        self.spec = spec or OpenLoopSpec()
        self.result = OpenLoopResult()
        self._rng = federation.kernel.rng.stream(self.spec.rng_stream)
        # FIFO of (arrival_time, operations, name, intends_abort).
        self._queue: list[tuple[float, list["Operation"], Optional[str], bool]] = []
        self._in_flight = 0
        self._first_arrival: Optional[float] = None
        self._last_completion = 0.0

    # ------------------------------------------------------------------

    def run(
        self,
        transactions: list[dict],
        until: Optional[float] = None,
    ) -> OpenLoopResult:
        """Drive ``transactions`` through Poisson arrivals to completion.

        Each entry holds ``operations`` plus optional ``name`` and
        ``intends_abort`` -- the same batch shape as
        :meth:`Federation.run_transactions`; arrival times come from
        the driver, not the batch.
        """
        kernel = self.federation.kernel
        kernel.spawn(self._arrivals(transactions), name="open-loop-arrivals")
        kernel.run(until=until)
        self.result.makespan = max(
            0.0, self._last_completion - (self._first_arrival or 0.0)
        )
        return self.result

    def run_generated(
        self,
        generator: Any,
        until: Optional[float] = None,
    ) -> OpenLoopResult:
        """Drive ``spec.n_txns`` transactions drawn from a generator.

        Batches are pre-sampled from a dedicated RNG stream
        (``{rng_stream}:gen``) so the draw sequence is independent of
        arrival timing -- the same seed yields the same workload under
        any protocol, window, or failure schedule.
        """
        rng = self.federation.kernel.rng.stream(f"{self.spec.rng_stream}:gen")
        batches = []
        for index in range(self.spec.n_txns):
            operations, intends_abort = generator.next_transaction(rng)
            batches.append(
                {
                    "operations": operations,
                    "name": f"OL{index + 1}",
                    "intends_abort": intends_abort,
                }
            )
        return self.run(batches, until=until)

    # ------------------------------------------------------------------

    def _window(self) -> int:
        """Current admission window: per-coordinator share x live shards."""
        live = sum(
            1 for gtm in self.federation.coordinators if not gtm.crashed
        )
        return self.spec.window_per_coordinator * max(1, live)

    def _arrivals(self, transactions: list[dict]) -> Generator[Any, Any, None]:
        rate = self.spec.arrival_rate
        for index, batch in enumerate(transactions[: self.spec.n_txns]):
            # Inverse-transform exponential interarrival draw.
            yield -math.log(1.0 - self._rng.random()) / rate
            arrival = self.federation.kernel.now
            if self._first_arrival is None:
                self._first_arrival = arrival
            self._admit(
                arrival,
                batch["operations"],
                batch.get("name") or f"OL{index + 1}",
                batch.get("intends_abort", False),
            )

    def _admit(
        self,
        arrival: float,
        operations: list["Operation"],
        name: Optional[str],
        intends_abort: bool,
    ) -> None:
        result = self.result
        if self._in_flight >= self._window():
            if self.spec.queue_limit and len(self._queue) >= self.spec.queue_limit:
                result.shed += 1
                return
            self._queue.append((arrival, operations, name, intends_abort))
            result.queued += 1
            result.max_queue_depth = max(result.max_queue_depth, len(self._queue))
            return
        self._submit(arrival, operations, name, intends_abort)

    def _submit(
        self,
        arrival: float,
        operations: list["Operation"],
        name: Optional[str],
        intends_abort: bool,
    ) -> None:
        result = self.result
        kernel = self.federation.kernel
        self._in_flight += 1
        result.submitted += 1
        result.admitted += 1
        result.max_in_flight = max(result.max_in_flight, self._in_flight)
        process = self.federation.submit(
            operations, name=name, intends_abort=intends_abort
        )
        kernel.spawn(
            self._watch(process, arrival), name=f"open-loop-watch:{name}"
        )

    def _watch(self, process: Any, arrival: float) -> Generator[Any, Any, None]:
        result = self.result
        value = yield process
        self._in_flight -= 1
        now = self.federation.kernel.now
        self._last_completion = max(self._last_completion, now)
        result.completed += 1
        if isinstance(value, GlobalOutcome):
            if value.committed:
                result.committed += 1
                # Response measured from *arrival*: queueing delay under
                # overload is part of the user-visible latency.
                result.response_times.append(now - arrival)
            else:
                result.aborted += 1
        elif isinstance(value, ProcessInterrupted):
            result.interrupted += 1
        # A freed slot re-admits the longest-waiting arrival.
        if self._queue and self._in_flight < self._window():
            queued_at, operations, name, intends_abort = self._queue.pop(0)
            result.total_queue_wait += now - queued_at
            self._submit(queued_at, operations, name, intends_abort)
