"""Federated banking workload.

The canonical integration scenario: each existing database system is a
bank keeping its own ``accounts`` table; global transactions transfer
money between banks (two commutative increments) or audit balances
(reads).  Money conservation is the end-to-end atomicity invariant: no
matter which protocol, which faults and which abort decisions, the
total balance over all banks must equal the initial total.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.localdb.config import LocalDBConfig
from repro.mlt.actions import Operation


def account_table(site_index: int) -> str:
    return f"accounts_{site_index}"


def build_banking_federation(
    n_sites: int = 3,
    accounts_per_site: int = 8,
    initial_balance: int = 1000,
    config: Optional[FederationConfig] = None,
    db_config: Optional[LocalDBConfig] = None,
    preparable: bool = False,
) -> Federation:
    """A federation of ``n_sites`` banks with funded accounts."""
    specs = []
    for i in range(n_sites):
        rows = {f"acct{i}_{j}": initial_balance for j in range(accounts_per_site)}
        specs.append(
            SiteSpec(
                f"bank_{i}",
                tables={account_table(i): rows},
                config=db_config,
                preparable=preparable,
            )
        )
    return Federation(specs, config)


def all_accounts(n_sites: int, accounts_per_site: int) -> list[tuple[str, str]]:
    """(table, key) pairs of every account in the federation."""
    return [
        (account_table(i), f"acct{i}_{j}")
        for i in range(n_sites)
        for j in range(accounts_per_site)
    ]


def transfer(
    rng: random.Random,
    n_sites: int,
    accounts_per_site: int,
    amount_range: tuple[int, int] = (1, 50),
    cross_site: bool = True,
) -> list[Operation]:
    """A random transfer: debit one account, credit another."""
    src_site = rng.randrange(n_sites)
    dst_site = rng.randrange(n_sites)
    if cross_site and n_sites > 1:
        while dst_site == src_site:
            dst_site = rng.randrange(n_sites)
    src_key = f"acct{src_site}_{rng.randrange(accounts_per_site)}"
    dst_key = f"acct{dst_site}_{rng.randrange(accounts_per_site)}"
    if (src_site, src_key) == (dst_site, dst_key):
        dst_key = f"acct{dst_site}_{(int(dst_key.rsplit('_', 1)[1]) + 1) % accounts_per_site}"
    amount = rng.randint(*amount_range)
    return [
        Operation("increment", account_table(src_site), src_key, -amount),
        Operation("increment", account_table(dst_site), dst_key, amount),
    ]


def balance_audit(n_sites: int, accounts_per_site: int, sample: int = 4,
                  rng: Optional[random.Random] = None) -> list[Operation]:
    """A read-only audit over a sample of accounts."""
    accounts = all_accounts(n_sites, accounts_per_site)
    chosen = rng.sample(accounts, min(sample, len(accounts))) if rng else accounts[:sample]
    return [Operation("read", table, key) for table, key in chosen]


def total_balance(federation: Federation, n_sites: int, accounts_per_site: int) -> int:
    """Sum of all balances (non-transactional; call on a quiesced run)."""
    total = 0
    for table, key in all_accounts(n_sites, accounts_per_site):
        site = f"bank_{table.rsplit('_', 1)[1]}"
        value = federation.peek(site, table, key)
        total += value if value is not None else 0
    return total
