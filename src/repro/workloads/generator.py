"""Parameterized random workload generator.

Generates global transactions over a set of (table, key) objects with a
configurable operation mix and a hotspot: a fraction of operations
target a small set of hot objects, which is what makes the concurrency
differences between the commit protocols visible (EXP-T2).
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any

from repro.mlt.actions import Operation


@dataclass
class WorkloadSpec:
    """Shape of the generated transactions.

    Fractions are operation-kind probabilities; whatever remains after
    reads and increments becomes writes.  ``hotspot_fraction`` is the
    probability that an operation targets one of the first
    ``hot_object_count`` objects.
    """

    ops_per_txn: int = 4
    read_fraction: float = 0.3
    increment_fraction: float = 0.5
    hotspot_fraction: float = 0.6
    hot_object_count: int = 4
    intended_abort_rate: float = 0.0
    write_value_range: tuple[int, int] = (0, 1000)
    #: Zipf skew exponent over the object list (rank 0 = hottest).
    #: 0.0 keeps the legacy hot/cold split; > 0 replaces it with a
    #: Zipf(s) draw, rank r weighted 1/(r+1)^s.
    zipf_s: float = 0.0

    def __post_init__(self) -> None:
        if self.read_fraction + self.increment_fraction > 1.0:
            raise ValueError("operation fractions exceed 1.0")
        if not 0.0 <= self.hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction out of range")
        if self.zipf_s < 0.0:
            raise ValueError("zipf_s must be non-negative")


class WorkloadGenerator:
    """Draws transactions from a :class:`WorkloadSpec` over given objects."""

    def __init__(self, spec: WorkloadSpec, objects: list[tuple[str, Any]]):
        if not objects:
            raise ValueError("workload needs at least one object")
        self.spec = spec
        self.objects = list(objects)
        self.hot = self.objects[: max(1, min(spec.hot_object_count, len(objects)))]
        self.cold = self.objects[len(self.hot):] or self.hot
        # Cumulative Zipf(s) weights: one uniform draw + a bisect gives
        # a deterministic, seeded skewed pick (EXP-S2 key skew).
        self._zipf_cdf: list[float] = []
        if spec.zipf_s > 0.0:
            weights = [1.0 / (rank + 1) ** spec.zipf_s for rank in range(len(self.objects))]
            total = sum(weights)
            running = 0.0
            for weight in weights:
                running += weight / total
                self._zipf_cdf.append(running)
            self._zipf_cdf[-1] = 1.0  # guard against float drift

    def next_transaction(self, rng: random.Random) -> tuple[list[Operation], bool]:
        """One transaction: (operations, intends_abort)."""
        operations = []
        for _ in range(self.spec.ops_per_txn):
            table, key = self._pick_object(rng)
            operations.append(self._pick_operation(rng, table, key))
        intends_abort = rng.random() < self.spec.intended_abort_rate
        return operations, intends_abort

    def _pick_object(self, rng: random.Random) -> tuple[str, Any]:
        if self._zipf_cdf:
            return self.objects[bisect_left(self._zipf_cdf, rng.random())]
        pool = self.hot if rng.random() < self.spec.hotspot_fraction else self.cold
        return pool[rng.randrange(len(pool))]

    def _pick_operation(self, rng: random.Random, table: str, key: Any) -> Operation:
        draw = rng.random()
        if draw < self.spec.read_fraction:
            return Operation("read", table, key)
        if draw < self.spec.read_fraction + self.spec.increment_fraction:
            return Operation("increment", table, key, rng.choice([-2, -1, 1, 2]))
        low, high = self.spec.write_value_range
        return Operation("write", table, key, rng.randint(low, high))
