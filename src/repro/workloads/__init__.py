"""Workload generators for the experiments."""

from repro.workloads.banking import (
    balance_audit,
    build_banking_federation,
    total_balance,
    transfer,
)
from repro.workloads.counters import build_counter_site, counter_transactions
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec
from repro.workloads.open_loop import OpenLoopDriver, OpenLoopResult, OpenLoopSpec

__all__ = [
    "OpenLoopDriver",
    "OpenLoopResult",
    "OpenLoopSpec",
    "WorkloadGenerator",
    "WorkloadSpec",
    "balance_audit",
    "build_banking_federation",
    "build_counter_site",
    "counter_transactions",
    "total_balance",
    "transfer",
]
