"""Workload generators for the experiments."""

from repro.workloads.arrivals import (
    ARRIVAL_PATTERNS,
    ArrivalPattern,
    BurstyPattern,
    DiurnalPattern,
    FlashCrowdPattern,
    make_pattern,
)
from repro.workloads.banking import (
    balance_audit,
    build_banking_federation,
    total_balance,
    transfer,
)
from repro.workloads.counters import build_counter_site, counter_transactions
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec
from repro.workloads.open_loop import OpenLoopDriver, OpenLoopResult, OpenLoopSpec

__all__ = [
    "ARRIVAL_PATTERNS",
    "ArrivalPattern",
    "BurstyPattern",
    "DiurnalPattern",
    "FlashCrowdPattern",
    "OpenLoopDriver",
    "OpenLoopResult",
    "OpenLoopSpec",
    "WorkloadGenerator",
    "WorkloadSpec",
    "balance_audit",
    "build_banking_federation",
    "build_counter_site",
    "counter_transactions",
    "make_pattern",
    "total_balance",
    "transfer",
]
