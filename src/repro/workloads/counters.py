"""Counter (increment) workloads -- the paper's Figure 8 scenario.

Objects ``x`` and ``y`` live on the same page ``p`` of one local
database; transactions increment them.  Under single-level locking the
page lock serializes everything; under two-level (multi-level)
execution the page locks are short and the L1 increment locks commute,
so the transactions overlap.
"""

from __future__ import annotations

import random
from typing import Any, Generator, Optional

from repro.localdb.config import LocalDBConfig
from repro.localdb.engine import LocalDatabase
from repro.mlt.actions import Operation
from repro.sim.kernel import Kernel


def build_counter_site(
    kernel: Kernel,
    n_counters: int = 2,
    site: str = "store",
    same_page: bool = True,
    config: Optional[LocalDBConfig] = None,
    initial: int = 0,
) -> tuple[LocalDatabase, list[str]]:
    """A single local database with counters, optionally co-paged.

    Returns the engine and the counter key names; the caller drives the
    returned setup generator through the kernel before using it.
    """
    engine = LocalDatabase(kernel, site, config)
    keys = [f"c{i}" for i in range(n_counters)]
    # Classic Figure 8 names for the two-counter case.
    if n_counters == 2:
        keys = ["x", "y"]

    def setup() -> Generator[Any, Any, None]:
        yield from engine.create_table("obj", 2 if same_page else max(2, n_counters))
        if same_page:
            for key in keys:
                engine.pin_key("obj", key, 0)  # all on page p
        txn = engine.begin()
        for key in keys:
            yield from engine.insert(txn, "obj", key, initial)
        yield from engine.commit(txn)

    process = kernel.spawn(setup(), name="counter-setup")
    kernel.run()
    process.value  # surface setup failures
    return engine, keys


def counter_transactions(
    rng: random.Random,
    keys: list[str],
    n_txns: int,
    increments_per_txn: int = 2,
    table: str = "obj",
) -> list[list[Operation]]:
    """Random increment transactions over the counters."""
    txns = []
    for _ in range(n_txns):
        ops = [
            Operation("increment", table, rng.choice(keys), rng.choice([1, 2, 5]))
            for _ in range(increments_per_txn)
        ]
        txns.append(ops)
    return txns
