"""Global transaction management: the paper's primary contribution.

* :mod:`repro.core.gtm` -- the global transaction manager running at
  the central system.
* :mod:`repro.core.protocols` -- the atomic commitment protocols
  compared by the paper: two-phase commit (baseline, needs modified
  local TMs), local commitment *after* the global decision (§3.2) and
  local commitment *before* the global decision (§3.3, combined with
  multi-level transactions in §4).
* :mod:`repro.core.serializability` -- serialization-graph checkers
  used to validate every run.
"""

from repro.core.global_txn import GlobalOutcome, GlobalTransaction, GlobalTxnState
from repro.core.gtm import GlobalTransactionManager, GTMConfig

__all__ = [
    "GTMConfig",
    "GlobalOutcome",
    "GlobalTransaction",
    "GlobalTransactionManager",
    "GlobalTxnState",
]
